"""Failure injection: the dynamic protocol healing its own links.

The paper's figures freeze membership and only *measure* degradation; this
example exercises the machinery the paper describes for living systems —
Fig. 6's KEEP_TABLE_UPDATED and the Fig. 4 re-bootstrap — by crashing, at
runtime, every superprocess a subscriber group points at:

1. a three-level system bootstraps dynamically,
2. at t=40 every middle-tier process that anyone uses as a link crashes,
3. maintenance detects the dead links (CHECK ≤ τ), fetches fresh contacts
   (NEWPROCESS) or re-runs FIND_SUPER_CONTACT, and
4. a publication *after* the crash still reaches the root group.

Run:  python examples/failure_injection.py
"""

from repro.core import DaMulticastConfig, DaMulticastSystem, TopicParams
from repro.failures import ChurnSchedule
from repro.topics import Topic

ROOT = Topic.parse(".")
MID = Topic.parse(".plant")
SENSORS = Topic.parse(".plant.sensors")


def main() -> None:
    churn = ChurnSchedule()
    config = DaMulticastConfig(
        # High g => supertable liveness checks run often even in small
        # groups (p_sel = g/S); short intervals => fast detection.
        default_params=TopicParams(b=3, c=4, g=30, a=1, z=3),
        maintain_interval=1.0,
        ping_timeout=0.5,
        bootstrap_timeout=1.5,
    )
    system = DaMulticastSystem(
        config=config, seed=13, mode="dynamic", failure_model=churn
    )
    system.add_group(ROOT, 5)
    system.add_group(MID, 12)
    system.add_group(SENSORS, 40)

    system.run(until=40.0)

    sensors = system.group(SENSORS)
    linked_before = [p for p in sensors if not p.super_table.is_empty]
    print(f"t=40: {len(linked_before)}/{len(sensors)} sensor processes "
          f"hold supertopic links into {MID.name}")

    # Crash HALF the middle tier — including, for each sensor process,
    # everything its supertopic table currently points at.
    victims = set()
    for process in sensors:
        victims.update(process.super_table.pids)
    mid_pids = set(system.group_pids(MID))
    victims &= mid_pids
    for pid in victims:
        churn.crash_at(pid, 40.0)
    print(f"t=40: crashed {len(victims)}/{len(mid_pids)} {MID.name} "
          "processes (every linked superprocess)")

    # Let maintenance notice and repair.
    system.run(until=120.0)

    healed = 0
    for process in sensors:
        live_links = [
            pid for pid in process.super_table.pids
            if system.harness.is_alive(pid)
        ]
        healed += bool(live_links)
    print(f"t=120: {healed}/{len(sensors)} sensor processes hold at least "
          "one LIVE supertopic link again")

    # The proof: a post-crash publication still climbs to the root.
    event = system.publish(SENSORS, payload="overpressure alarm")
    system.run(until=180.0)
    for topic in (SENSORS, MID, ROOT):
        print(
            f"  {topic.name:<16} delivered to "
            f"{system.delivered_fraction(event, topic):6.1%} "
            "of alive subscribers"
        )


if __name__ == "__main__":
    main()
