"""Per-topic reliability tuning on a market-data hierarchy.

The paper's headline flexibility: "(2) the two constants c_Ti and z_Ti make
it possible for the application to trade, for every topic of the hierarchy,
the message complexity of the dissemination with the reliability of this
dissemination."

A ticker plant publishes trades on ``.markets.equities.tech`` over a lossy
network (p_succ = 0.75). We compare two configurations of the *same*
deployment:

* a cheap profile (c=2, g=1, a=1, z=2) — fewer messages, weaker delivery,
* a reliable profile for the hot topic only (c=6, g=8, a=2, z=4 override
  on ``.markets.equities.tech``) — the paper's per-topic override in
  action: only the hot group and its links pay the premium.

Run:  python examples/stock_ticker.py
"""

from dataclasses import replace

from repro.core import DaMulticastConfig, DaMulticastSystem, TopicParams
from repro.topics import Topic

MARKETS = Topic.parse(".markets")
EQUITIES = Topic.parse(".markets.equities")
TECH = Topic.parse(".markets.equities.tech")

CHEAP = TopicParams(b=3, c=2, g=1, a=1, z=2)
HOT = TopicParams(b=3, c=6, g=8, a=2, z=4)


def run_profile(name: str, config: DaMulticastConfig, seed: int) -> None:
    system = DaMulticastSystem(
        config=config, seed=seed, p_success=0.75, mode="static"
    )
    system.add_group(MARKETS, 10)      # risk/compliance: everything
    system.add_group(EQUITIES, 50)     # equities desks
    system.add_group(TECH, 300)        # tech-sector traders

    system.finalize_static_membership()

    # A burst of 20 trades on the hot topic.
    fractions = {MARKETS: 0.0, EQUITIES: 0.0, TECH: 0.0}
    trades = 20
    for i in range(trades):
        event = system.publish(TECH, payload={"symbol": "ACME", "seq": i})
        system.run_until_idle()
        for topic in fractions:
            fractions[topic] += system.delivered_fraction(event, topic)

    messages = system.stats.event_messages_sent()
    print(f"{name}:")
    for topic, total in fractions.items():
        print(f"  {topic.name:<26} mean delivery {total / trades:6.1%}")
    print(f"  event messages for {trades} trades: {messages}")
    print(f"  messages/trade: {messages / trades:.0f}\n")


def main() -> None:
    print("lossy network: p_succ = 0.75\n")

    cheap_everywhere = DaMulticastConfig(default_params=CHEAP)
    run_profile("cheap profile everywhere", cheap_everywhere, seed=11)

    hot_topic_tuned = cheap_everywhere.with_override(TECH, HOT)
    # Give the upstream desks a modest boost too, so the hand-off holds.
    hot_topic_tuned = hot_topic_tuned.with_override(
        EQUITIES, replace(CHEAP, g=4, z=3, c=4)
    )
    run_profile("hot topic tuned (per-topic overrides)", hot_topic_tuned, seed=11)

    print(
        "The override buys delivery on the hot topic (and its supergroups)\n"
        "for a bounded message premium — exactly the c/g/a/z trade-off of\n"
        "§VI-D, applied per topic instead of system-wide."
    )


if __name__ == "__main__":
    main()
