"""Per-topic reliability tuning on a market-data hierarchy.

The paper's headline flexibility: "(2) the two constants c_Ti and z_Ti make
it possible for the application to trade, for every topic of the hierarchy,
the message complexity of the dissemination with the reliability of this
dissemination."

A ticker plant publishes trades on ``.markets.equities.tech`` over a lossy
network (p_succ = 0.75). We compare two configurations of the *same*
declarative scenario spec:

* a cheap profile (c=2, g=1, a=1, z=2) — fewer messages, weaker delivery,
* a reliable profile for the hot topic only (c=6, g=8, a=2, z=4 override
  on ``.markets.equities.tech``) — the paper's per-topic override in
  action: only the hot group and its links pay the premium.

The second profile is literally ``spec_with(spec, "params.overrides",
...)`` on the first — per-topic tuning is one spec field, so the same
comparison is a CLI sweep away.

Run:  python examples/stock_ticker.py
"""

from repro.topics import Topic
from repro.workloads.spec import compile_spec, spec_with

MARKETS = Topic.parse(".markets")
EQUITIES = Topic.parse(".markets.equities")
TECH = Topic.parse(".markets.equities.tech")

BASE_SPEC = {
    "name": "stock-ticker",
    "description": "20-trade burst on a hot topic over a lossy network",
    "topics": {"kind": "names", "names": [".markets.equities.tech"]},
    "subscriptions": {
        "kind": "explicit",
        "counts": {
            ".markets": 10,          # risk/compliance: everything
            ".markets.equities": 50,  # equities desks
            ".markets.equities.tech": 300,  # tech-sector traders
        },
    },
    "publications": {
        "kind": "burst",
        "topic": ".markets.equities.tech",
        "count": 20,
        "spacing": 1.0,
    },
    "failures": {"kind": "none"},
    "params": {"b": 3, "c": 2, "g": 1, "a": 1, "z": 2},
    "p_success": 0.75,
}

HOT_OVERRIDES = {
    # The hot group pays for reliability; upstream desks get a modest
    # boost too, so the hand-off holds.
    ".markets.equities.tech": {"c": 6, "g": 8, "a": 2, "z": 4},
    ".markets.equities": {"c": 4, "g": 4, "z": 3},
}


def run_profile(name: str, spec: dict, seed: int) -> None:
    built = compile_spec(spec).build(seed=seed)
    metrics = built.execute()
    system = built.system

    trades = len(built.published)
    print(f"{name}:")
    for topic in (MARKETS, EQUITIES, TECH):
        mean = sum(
            system.delivered_fraction(event, topic)
            for event in built.published
        ) / trades
        print(f"  {topic.name:<26} mean delivery {mean:6.1%}")
    messages = int(metrics["event_messages"])
    print(f"  event messages for {trades} trades: {messages}")
    print(f"  messages/trade: {metrics['messages_per_event']:.0f}\n")


def main() -> None:
    print("lossy network: p_succ = 0.75\n")

    run_profile("cheap profile everywhere", BASE_SPEC, seed=11)

    hot_topic_tuned = spec_with(BASE_SPEC, "params.overrides", HOT_OVERRIDES)
    run_profile("hot topic tuned (per-topic overrides)", hot_topic_tuned, seed=11)

    print(
        "The override buys delivery on the hot topic (and its supergroups)\n"
        "for a bounded message premium — exactly the c/g/a/z trade-off of\n"
        "§VI-D, applied per topic instead of system-wide."
    )


if __name__ == "__main__":
    main()
