"""Quickstart: a tiny daMulticast deployment in a dozen lines.

Builds a three-level topic hierarchy (the paper's running example
``.dsn04.reviewers``), lets the full dynamic protocol bootstrap itself —
gossip membership, FIND_SUPER_CONTACT floods, supertopic tables — then
publishes one event on the bottom topic and shows it climbing the
hierarchy: reviewers → dsn04 → root, with zero parasite deliveries.

Run:  python examples/quickstart.py
"""

from repro import DaMulticastSystem, Topic

ROOT = Topic.parse(".")
DSN04 = Topic.parse(".dsn04")
REVIEWERS = Topic.parse(".dsn04.reviewers")


def main() -> None:
    system = DaMulticastSystem(seed=42, mode="dynamic", p_success=0.95)

    # Subscribe processes at each level of the hierarchy.
    system.add_group(ROOT, 5)          # interested in everything
    system.add_group(DSN04, 15)        # interested in .dsn04 and below
    system.add_group(REVIEWERS, 40)    # interested in .dsn04.reviewers

    # Let membership converge: views fill, supertopic tables bootstrap.
    system.run(until=25.0)

    # Publish an event on the most specific topic.
    event = system.publish(REVIEWERS, payload="paper #17 accepted")
    system.run(until=50.0)

    print("event:", event)
    for topic in (REVIEWERS, DSN04, ROOT):
        fraction = system.delivered_fraction(event, topic)
        print(
            f"  {topic.name:<18} delivered to "
            f"{fraction:6.1%} of its {len(system.group(topic))} subscribers"
        )

    stats = system.stats
    print("\nnetwork totals:")
    print(f"  event messages : {stats.event_messages_sent()}")
    print(f"  overhead (membership/bootstrap/probes): "
          f"{stats.overhead_messages_sent()}")

    # The paper's property 4: nobody got anything they didn't subscribe to.
    from repro.metrics import parasite_deliveries
    parasites = parasite_deliveries(system.tracker, system.interests())
    print(f"  parasite deliveries: {parasites} (always 0 for daMulticast)")


if __name__ == "__main__":
    main()
