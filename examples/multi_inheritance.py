"""Multiple supertopics (§VIII extension): one topic, two parent feeds.

``.sports.football`` is filed both under ``.sports`` (its path parent) and
under ``.news`` (a linked second supertopic). Per the paper's concluding
remarks, each football process simply keeps one supertopic table per
parent; a match report then climbs BOTH branches — sports desks and news
desks each receive it, the root receives it exactly once despite the
diamond, and ``.news``-only events never leak into ``.sports``.

Run:  python examples/multi_inheritance.py
"""

from repro.core.multiparent import MultiParentSystem
from repro.topics import Topic, TopicDag

ROOT = Topic.parse(".")
NEWS = Topic.parse(".news")
SPORTS = Topic.parse(".sports")
FOOTBALL = Topic.parse(".sports.football")


def main() -> None:
    dag = TopicDag()
    dag.add(FOOTBALL)
    dag.add(NEWS)
    dag.link(FOOTBALL, NEWS)  # second supertopic: multiple inheritance

    system = MultiParentSystem(dag, seed=21, p_success=0.9)
    system.add_group(ROOT, 5)
    system.add_group(NEWS, 20)
    system.add_group(SPORTS, 20)
    system.add_group(FOOTBALL, 60)
    system.finalize_static_membership()

    football_process = system.group(FOOTBALL)[0]
    print("supertopic tables of one .sports.football process:")
    for parent, table in football_process.super_tables.items():
        print(f"  parent {parent.name:<9} -> {len(table)} contacts in "
              f"{table.target_topic.name}")

    event = system.publish(FOOTBALL, payload="cup final report")
    system.run_until_idle()
    print("\nmatch report published on .sports.football:")
    for topic in (FOOTBALL, SPORTS, NEWS, ROOT):
        print(f"  {topic.name:<18} delivery "
              f"{system.delivered_fraction(event, topic):6.1%}")

    root_copies = max(
        sum(1 for e in p.delivered if e.event_id == event.event_id)
        for p in system.group(ROOT)
    )
    print(f"  max copies delivered to any root process: {root_copies} "
          "(diamond deduplicated)")

    bulletin = system.publish(NEWS, payload="election bulletin")
    system.run_until_idle()
    print("\nelection bulletin published on .news:")
    for topic in (NEWS, ROOT, SPORTS, FOOTBALL):
        print(f"  {topic.name:<18} delivery "
              f"{system.delivered_fraction(bulletin, topic):6.1%}")
    print("  (.sports and .football stay clean — no parasite deliveries)")


if __name__ == "__main__":
    main()
