"""Watching the membership substrate converge, round by round.

The paper's guarantees lean on the underlying membership algorithm [10]
keeping each group's overlay connected with uniform-looking views. This
example runs the *dynamic* protocol from a cold start and uses the
round scheduler + overlay metrics to watch it happen:

* per round: overlay connectivity, mean view size, in-degree spread and
  the fraction of supertopic tables already initialized;
* at the end: a publication whose per-group hop depths show the epidemic
  O(log S) dissemination plus one extra step per inter-group hand-off.

Run:  python examples/convergence_monitor.py
"""

from repro.core import DaMulticastSystem
from repro.metrics import hops_by_group, overlay_stats, views_of
from repro.sim.rounds import RoundScheduler
from repro.topics import Topic

ROOT = Topic.parse(".")
MID = Topic.parse(".m")
LEAF = Topic.parse(".m.leaf")


def main() -> None:
    system = DaMulticastSystem(seed=33, mode="dynamic", p_success=0.95)
    system.add_group(ROOT, 4)
    system.add_group(MID, 12)
    system.add_group(LEAF, 36)

    rounds = RoundScheduler(system.engine, round_length=5.0)

    print(f"{'round':>5} {'connected':>9} {'view̅':>6} {'indeg σ':>8} "
          f"{'stable links':>12}")

    def report(round_number: int) -> None:
        stats = overlay_stats(views_of(system.group(LEAF)))
        linked = sum(
            1
            for p in system.group(LEAF)
            if p.super_table.targets_direct_super_of(LEAF)
        )
        print(
            f"{round_number:>5} {str(stats.connected):>9} "
            f"{stats.mean_view_size:>6.1f} {stats.in_degree_stdev:>8.2f} "
            f"{linked:>9}/{len(system.group(LEAF))}"
        )

    rounds.on_round(report)
    rounds.run_rounds(8)  # 40 time units of protocol activity
    rounds.stop()

    event = system.publish(LEAF, payload="converged!")
    system.run(until=rounds.current_round * 5.0 + 20.0)

    print("\npublication after convergence:")
    groups = {
        LEAF: system.group_pids(LEAF),
        MID: system.group_pids(MID),
        ROOT: system.group_pids(ROOT),
    }
    depths = hops_by_group(system.tracker, event.event_id, groups)
    for topic in (LEAF, MID, ROOT):
        fraction = system.delivered_fraction(event, topic)
        depth = depths[topic]
        depth_text = f"{depth:.1f}" if depth is not None else "-"
        print(
            f"  {topic.name:<8} delivery {fraction:6.1%}   "
            f"mean hop depth {depth_text}"
        )
    print(
        "\nHop depths grow by roughly one inter-group hand-off per level —\n"
        "the O(log S) epidemic spread plus the bottom-up climb of Fig. 2."
    )


if __name__ == "__main__":
    main()
