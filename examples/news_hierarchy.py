"""Newsgroup dissemination — the workload the paper's introduction motivates.

NNTP-style newsgroups are the paper's own point of comparison (§II-A): a
deep topic tree, Zipf-skewed subscriber populations (a few hot groups, a
long tail), and a steady stream of postings on random groups. Unlike NNTP
there is no server: every posting is disseminated peer-to-peer and climbs
only the branches that lead to interested readers.

The example builds a comp.*/rec.*/sci.* style hierarchy, subscribes ~400
readers with Zipf popularity, replays a Poisson posting schedule in static
mode (frozen membership, like the paper's §VII simulator, so the run is
fast and exactly reproducible) and reports per-newsgroup delivery and the
system-wide message bill.

Run:  python examples/news_hierarchy.py
"""

import random
from collections import Counter

from repro.core import DaMulticastConfig, DaMulticastSystem, TopicParams
from repro.metrics import parasite_deliveries
from repro.topics import Topic, from_names
from repro.workloads import PoissonSchedule, zipf_subscriptions
from repro.workloads.subscriptions import populate_system

NEWSGROUPS = [
    ".comp.lang.python",
    ".comp.lang.c",
    ".comp.arch",
    ".rec.sport.football",
    ".rec.sport.hockey",
    ".rec.music",
    ".sci.physics",
    ".sci.math",
]


def main() -> None:
    hierarchy = from_names(NEWSGROUPS)
    rng = random.Random(7)

    config = DaMulticastConfig(
        default_params=TopicParams(b=3, c=4, g=3, a=1, z=3)
    )
    system = DaMulticastSystem(
        config=config, seed=7, p_success=0.9, mode="static"
    )

    counts = zipf_subscriptions(hierarchy, 400, rng, exponent=1.2)
    populate_system(system, counts)
    system.finalize_static_membership()

    # A morning of postings: Poisson arrivals over the leaf newsgroups.
    leaves = [Topic.parse(name) for name in NEWSGROUPS]
    present = [t for t in leaves if system.group(t)]
    schedule = PoissonSchedule(present, rate=0.5, horizon=40.0)
    postings = schedule.generate(rng)

    delivered_ok = Counter()
    for posting in postings:
        event = system.publish(posting.topic, payload="article")
        system.run_until_idle()
        fraction = system.delivered_fraction(event, posting.topic)
        delivered_ok[posting.topic.name] += fraction >= 0.99

    print(f"replayed {len(postings)} postings over "
          f"{len(present)} newsgroups, {len(system.processes)} readers\n")
    print(f"{'newsgroup':<26} {'subscribers':>11} {'full-delivery postings':>23}")
    for topic in present:
        name = topic.name
        print(
            f"{name:<26} {len(system.group(topic)):>11} "
            f"{delivered_ok[name]:>23}"
        )

    stats = system.stats
    parasites = parasite_deliveries(system.tracker, system.interests())
    print(f"\nevent messages sent : {stats.event_messages_sent()}")
    print(f"parasite deliveries : {parasites} "
          "(no reader ever saw a group they did not subscribe to)")


if __name__ == "__main__":
    main()
