"""Newsgroup dissemination — the workload the paper's introduction motivates.

NNTP-style newsgroups are the paper's own point of comparison (§II-A): a
deep topic tree, Zipf-skewed subscriber populations (a few hot groups, a
long tail), and a steady stream of postings on random groups. Unlike NNTP
there is no server: every posting is disseminated peer-to-peer and climbs
only the branches that lead to interested readers.

This example runs entirely through the declarative scenario-spec
subsystem: the bundled ``zipf-feed`` preset *is* this workload (a
comp.*/rec.*/sci.* hierarchy, ~400 Zipf-popular readers, a Poisson
posting schedule replayed in static mode), so the whole simulation is one
``compile_spec(...).build(seed).execute()`` — exactly reproducible, and
sweepable over any spec field from the CLI::

    python -m repro scenario run zipf-feed
    python -m repro scenario sweep zipf-feed --field p_success \\
        --values 0.7 0.8 0.9 1.0

Run:  python examples/news_hierarchy.py
"""

from collections import Counter

from repro.workloads.presets import load_preset
from repro.workloads.spec import compile_spec


def main() -> None:
    spec = load_preset("zipf-feed")
    built = compile_spec(spec).build(seed=7)
    metrics = built.execute()
    system = built.system

    # Per-newsgroup story: which groups got postings, and how many of
    # those postings reached (essentially) every subscriber.
    delivered_ok = Counter()
    for event in built.published:
        fraction = system.delivered_fraction(event, event.topic)
        delivered_ok[event.topic.name] += fraction >= 0.99

    present = sorted(
        topic for topic, count in built.counts.items() if count > 0
    )
    print(
        f"replayed {int(metrics['events'])} postings over "
        f"{len(present)} newsgroups, {len(system.processes)} readers\n"
    )
    print(f"{'newsgroup':<26} {'subscribers':>11} {'full-delivery postings':>23}")
    for topic in present:
        print(
            f"{topic.name:<26} {built.counts[topic]:>11} "
            f"{delivered_ok[topic.name]:>23}"
        )

    print(f"\nevent messages sent : {int(metrics['event_messages'])}")
    print(
        f"parasite deliveries : {int(metrics['parasites'])} "
        "(no reader ever saw a group they did not subscribe to)"
    )


if __name__ == "__main__":
    main()
