"""Unit tests for workload generators (scenarios, subscriptions, publications)."""

import random

import pytest

from repro.errors import ConfigError
from repro.topics import ROOT, Topic
from repro.topics.builders import balanced_tree, chain
from repro.workloads import (
    PaperScenario,
    PoissonSchedule,
    burst_schedule,
    per_level_counts,
    single_shot,
    uniform_subscriptions,
    zipf_subscriptions,
)


class TestPaperScenario:
    def test_defaults_match_section7(self):
        scenario = PaperScenario()
        assert tuple(scenario.sizes) == (10, 100, 1000)
        assert scenario.b == 3
        assert scenario.c == 5
        assert scenario.g == 5
        assert scenario.a == 1
        assert scenario.z == 3
        assert scenario.p_succ == 0.85
        assert scenario.depth == 2

    def test_topics_chain(self):
        topics = PaperScenario().topics()
        assert topics[0] == ROOT
        assert len(topics) == 3
        assert topics[2].super_topic == topics[1]

    def test_build_creates_groups(self):
        run = PaperScenario(sizes=(3, 10, 30)).build(seed=1)
        for topic, size in zip(run.topics, (3, 10, 30)):
            assert len(run.system.group(topic)) == size

    def test_publisher_in_publish_group(self):
        run = PaperScenario(sizes=(3, 10, 30)).build(seed=1)
        assert run.publisher_pid in run.system.group_pids(run.publish_topic)

    def test_publisher_protected_from_stillborn(self):
        run = PaperScenario(sizes=(3, 10, 30)).build(
            seed=1, alive_fraction=0.1
        )
        assert run.system.harness.is_alive(run.publisher_pid)

    def test_dynamic_mode_keeps_everyone_alive(self):
        run = PaperScenario(sizes=(3, 10, 30)).build(
            seed=1, alive_fraction=0.3, failure_mode="dynamic"
        )
        assert all(
            run.system.harness.is_alive(p.pid) for p in run.system.processes
        )

    def test_publish_and_run_measures(self):
        run = PaperScenario(sizes=(3, 10, 30)).build(seed=2)
        event = run.publish_and_run()
        assert event is run.event
        fractions = run.delivered_fractions()
        assert set(fractions) == set(run.topics)
        intra = run.intra_group_messages()
        assert intra[run.publish_topic] > 0
        inter = run.inter_group_messages()
        assert len(inter) == 2

    def test_same_seed_same_outcome(self):
        def outcome(seed):
            run = PaperScenario(sizes=(3, 10, 30)).build(seed=seed)
            run.publish_and_run()
            return (
                run.system.stats.event_messages_sent(),
                tuple(sorted(run.delivered_fractions().values())),
            )

        assert outcome(7) == outcome(7)
        assert outcome(7) != outcome(8) or True  # different seeds may differ

    def test_invalid_failure_mode(self):
        with pytest.raises(ConfigError):
            PaperScenario(sizes=(3, 5, 7)).build(seed=0, failure_mode="odd")

    def test_invalid_alive_fraction(self):
        with pytest.raises(ConfigError):
            PaperScenario(sizes=(3, 5, 7)).build(seed=0, alive_fraction=2.0)

    def test_publish_level_override(self):
        scenario = PaperScenario(sizes=(3, 10, 30), publish_level=1)
        run = scenario.build(seed=0)
        assert run.publish_topic == run.topics[1]


class TestSubscriptions:
    def test_per_level_counts(self):
        topics = chain(2)
        counts = per_level_counts(topics, [1, 2, 3])
        assert counts[topics[2]] == 3

    def test_per_level_mismatch(self):
        with pytest.raises(ConfigError):
            per_level_counts(chain(1), [1, 2, 3])

    def test_uniform_total(self):
        h = balanced_tree(2, 2)
        counts = uniform_subscriptions(h, 100, random.Random(0))
        assert sum(counts.values()) == 100

    def test_uniform_excludes_root_when_asked(self):
        h = balanced_tree(2, 2)
        counts = uniform_subscriptions(
            h, 50, random.Random(0), include_root=False
        )
        assert ROOT not in counts

    def test_zipf_skews_head(self):
        h = balanced_tree(3, 2)
        counts = zipf_subscriptions(h, 1000, random.Random(0), exponent=1.5)
        ordered = [counts[t] for t in sorted(counts)]
        assert ordered[0] > ordered[-1]

    def test_zipf_total(self):
        h = balanced_tree(2, 2)
        counts = zipf_subscriptions(h, 300, random.Random(1))
        assert sum(counts.values()) == 300

    def test_zipf_validation(self):
        h = balanced_tree(2, 1)
        with pytest.raises(ConfigError):
            zipf_subscriptions(h, -1, random.Random(0))


class TestPublications:
    def test_single_shot(self):
        topic = Topic.parse(".a")
        schedule = single_shot(topic, at=3.0)
        assert len(schedule) == 1
        assert schedule[0].time == 3.0
        assert schedule[0].topic == topic

    def test_burst(self):
        topic = Topic.parse(".a")
        schedule = burst_schedule(topic, count=4, start=1.0, spacing=0.5)
        assert [p.time for p in schedule] == [1.0, 1.5, 2.0, 2.5]

    def test_burst_validation(self):
        with pytest.raises(ConfigError):
            burst_schedule(Topic.parse(".a"), count=0)

    def test_poisson_bounds_and_rate(self):
        topics = chain(1)
        schedule = PoissonSchedule(topics, rate=2.0, horizon=100.0)
        events = schedule.generate(random.Random(0))
        assert all(0 < p.time <= 100.0 for p in events)
        assert 120 <= len(events) <= 280  # ~200 expected

    def test_poisson_weights(self):
        a, b = Topic.parse(".a"), Topic.parse(".b")
        schedule = PoissonSchedule(
            [a, b], rate=5.0, horizon=200.0, weights=[0.9, 0.1]
        )
        events = schedule.generate(random.Random(1))
        a_count = sum(1 for p in events if p.topic == a)
        assert a_count > len(events) / 2

    def test_poisson_validation(self):
        with pytest.raises(ConfigError):
            PoissonSchedule([], rate=1.0, horizon=1.0)
        with pytest.raises(ConfigError):
            PoissonSchedule(chain(1), rate=0, horizon=1.0)
        with pytest.raises(ConfigError):
            PoissonSchedule(chain(1), rate=1.0, horizon=1.0, weights=[1.0])

    # ------------------------------------------------------------------
    # Edge cases: a NaN rate/spacing would silently yield an unsorted or
    # *infinite* schedule (nan comparisons are always False, so the
    # Poisson loop never crosses the horizon); inf likewise. All must be
    # rejected eagerly with ConfigError.
    # ------------------------------------------------------------------
    def test_burst_rejects_non_finite_spacing(self):
        topic = Topic.parse(".a")
        for bad in (float("inf"), float("nan")):
            with pytest.raises(ConfigError, match="spacing must be finite"):
                burst_schedule(topic, count=3, spacing=bad)

    def test_burst_rejects_non_finite_or_negative_start(self):
        topic = Topic.parse(".a")
        for bad in (float("inf"), float("nan")):
            with pytest.raises(ConfigError, match="start must be finite"):
                burst_schedule(topic, count=3, start=bad)
        with pytest.raises(ConfigError, match="start must be >= 0"):
            burst_schedule(topic, count=3, start=-1.0)

    def test_single_shot_rejects_bad_at(self):
        topic = Topic.parse(".a")
        with pytest.raises(ConfigError, match="at must be finite"):
            single_shot(topic, at=float("nan"))
        with pytest.raises(ConfigError, match="at must be >= 0"):
            single_shot(topic, at=-0.5)

    def test_poisson_rejects_non_finite_rate(self):
        for bad in (float("inf"), float("nan")):
            with pytest.raises(ConfigError, match="rate must be finite"):
                PoissonSchedule(chain(1), rate=bad, horizon=10.0)

    def test_poisson_rejects_non_finite_horizon(self):
        for bad in (float("inf"), float("nan")):
            with pytest.raises(ConfigError, match="horizon must be finite"):
                PoissonSchedule(chain(1), rate=1.0, horizon=bad)

    def test_poisson_rejects_bad_weights(self):
        topics = [Topic.parse(".a"), Topic.parse(".b")]
        with pytest.raises(ConfigError, match="finite and >= 0"):
            PoissonSchedule(
                topics, rate=1.0, horizon=1.0, weights=[1.0, float("nan")]
            )
        with pytest.raises(ConfigError, match="finite and >= 0"):
            PoissonSchedule(topics, rate=1.0, horizon=1.0, weights=[1.0, -1.0])
        with pytest.raises(ConfigError, match="not all be zero"):
            PoissonSchedule(topics, rate=1.0, horizon=1.0, weights=[0.0, 0.0])
