"""Clock protocol seam: Engine and AsyncClock behind one contract.

The refactor's invariant: everything that only *tells time* works
identically on the discrete-event engine (virtual time) and the live
asyncio clock (wall time) — same ``PeriodicTask`` semantics, same
``Handle`` cancellation semantics, same FIFO ordering for same-time
callbacks. Plus a hypothesis suite pinning that Engine-backed runs stay
bit-identical run-to-run through the seam.
"""

import asyncio

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.errors import SchedulingError
from repro.service.clock import AsyncClock, AsyncHandle
from repro.sim.clock import Clock, Handle, PeriodicTask
from repro.sim.engine import Engine, EventHandle


class TestProtocolConformance:
    def test_engine_is_a_clock(self):
        assert isinstance(Engine(), Clock)

    def test_async_clock_is_a_clock(self):
        assert isinstance(AsyncClock(), Clock)

    def test_engine_handle_satisfies_handle(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        assert isinstance(handle, EventHandle)
        assert isinstance(handle, Handle)

    def test_async_handle_satisfies_handle(self):
        assert isinstance(AsyncHandle(), Handle)

    def test_engine_every_returns_shared_periodic_task(self):
        engine = Engine()
        task = engine.every(1.0, lambda: None)
        assert isinstance(task, PeriodicTask)


class TestEngineCancellation:
    def test_cancel_prevents_firing(self):
        engine = Engine()
        fired = []
        handle = engine.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        engine.run_until_idle()
        assert fired == []
        assert handle.cancelled and not handle.fired and not handle.pending

    def test_cancel_after_firing_is_noop(self):
        engine = Engine()
        fired = []
        handle = engine.schedule(1.0, lambda: fired.append(1))
        engine.run_until_idle()
        handle.cancel()
        assert fired == [1]
        assert handle.fired and not handle.cancelled

    def test_periodic_stop_on_engine(self):
        engine = Engine()
        ticks = []
        task = engine.every(1.0, lambda: ticks.append(engine.now))
        engine.run(until=3.5)
        task.stop()
        engine.run(until=10.0)
        assert ticks == [1.0, 2.0, 3.0]
        assert not task.running
        assert task.firings == 3

    def test_periodic_callback_false_stops_on_engine(self):
        engine = Engine()
        task = engine.every(1.0, lambda: False)
        engine.run_until_idle()
        assert task.firings == 1
        assert not task.running


class TestAsyncClock:
    def test_now_is_zero_before_attach(self):
        assert AsyncClock().now == 0.0

    def test_schedule_outside_loop_raises(self):
        with pytest.raises(RuntimeError):
            AsyncClock().schedule(0.0, lambda: None)

    def test_negative_delay_rejected(self):
        async def run():
            clock = AsyncClock()
            clock.attach()
            with pytest.raises(SchedulingError):
                clock.schedule(-1.0, lambda: None)
            with pytest.raises(SchedulingError):
                clock.schedule_at(clock.now - 5.0, lambda: None)

        asyncio.run(run())

    def test_schedule_fires_and_marks_handle(self):
        async def run():
            clock = AsyncClock()
            clock.attach()
            fired = asyncio.Event()
            handle = clock.schedule(0.0, fired.set)
            assert handle.pending
            await asyncio.wait_for(fired.wait(), timeout=5.0)
            assert handle.fired and not handle.pending

        asyncio.run(run())

    def test_cancel_prevents_firing_on_async_clock(self):
        async def run():
            clock = AsyncClock()
            clock.attach()
            fired = []
            handle = clock.schedule(0.0, lambda: fired.append(1))
            handle.cancel()
            assert handle.cancelled and not handle.pending
            await asyncio.sleep(0.01)
            assert fired == []
            handle.cancel()  # idempotent
            assert handle.cancelled and not handle.fired

        asyncio.run(run())

    def test_periodic_task_runs_and_stops_on_async_clock(self):
        async def run():
            clock = AsyncClock()
            clock.attach()
            done = asyncio.Event()
            ticks = []

            def tick():
                ticks.append(clock.now)
                if len(ticks) >= 3:
                    done.set()

            task = clock.every(0.001, tick)
            assert task.running
            await asyncio.wait_for(done.wait(), timeout=5.0)
            task.stop()
            seen = task.firings
            assert seen >= 3
            await asyncio.sleep(0.01)
            assert task.firings == seen
            assert not task.running

        asyncio.run(run())

    def test_periodic_max_firings_on_async_clock(self):
        async def run():
            clock = AsyncClock()
            clock.attach()
            ticks = []
            task = clock.every(0.001, lambda: ticks.append(1), max_firings=2)
            for _ in range(200):
                if not task.running:
                    break
                await asyncio.sleep(0.002)
            assert ticks == [1, 1]
            assert not task.running

        asyncio.run(run())

    def test_attach_is_idempotent_per_loop(self):
        async def run():
            clock = AsyncClock()
            clock.attach()
            await asyncio.sleep(0.002)
            before = clock.now
            clock.attach()  # same loop: origin must NOT reset
            assert clock.now >= before > 0.0

        asyncio.run(run())


@given(
    delays=st.lists(
        st.floats(0.0, 100.0, allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=30,
    ),
    cancel_mask=st.lists(st.booleans(), min_size=1, max_size=30),
)
@settings(max_examples=60, deadline=None)
def test_engine_schedule_order_is_deterministic(delays, cancel_mask):
    """Same schedule/cancel sequence → identical firing trace, twice.

    The pre/post-refactor bit-identity property at the seam level: Engine
    consumed through the Clock protocol surface (schedule + Handle.cancel
    + run) yields exactly the same execution every time.
    """

    def run_once():
        engine = Engine()
        fired = []
        handles = []
        for index, delay in enumerate(delays):
            handles.append(
                engine.schedule(
                    delay, lambda i=index: fired.append((engine.now, i))
                )
            )
        for handle, cancel in zip(handles, cancel_mask):
            if cancel:
                handle.cancel()
        engine.run_until_idle()
        return fired

    first = run_once()
    second = run_once()
    assert first == second
    cancelled = {
        i for i, (_, cancel) in enumerate(zip(delays, cancel_mask)) if cancel
    }
    assert {i for _, i in first} == set(range(len(delays))) - cancelled


@given(
    interval=st.floats(0.1, 5.0, allow_nan=False, allow_infinity=False),
    horizon=st.floats(1.0, 50.0, allow_nan=False, allow_infinity=False),
)
@settings(max_examples=40, deadline=None)
def test_periodic_firing_count_matches_closed_form(interval, horizon):
    engine = Engine()
    task = engine.every(interval, lambda: None)
    engine.run(until=horizon)
    expected = int(horizon // interval)
    # Guard float-boundary flakiness: k*interval == horizon may or may
    # not be reached depending on rounding; allow the boundary tick.
    assert task.firings in (expected, expected + 1, max(0, expected - 1))
