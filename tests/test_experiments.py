"""Tests for the experiment harness (runner, figures, comparisons, ablations).

Figure experiments run on a scaled-down scenario to stay fast; the
full-scale shapes are asserted by the benchmarks.
"""

import pytest

from repro.errors import ConfigError
from repro.experiments import (
    aggregate_runs,
    measured_comparison,
    run_figure8,
    run_figure9,
    run_figure10,
    run_figure11,
    run_sweep,
)
from repro.experiments.ablations import (
    sweep_fanout_constant,
    sweep_link_redundancy,
)
from repro.workloads import PaperScenario

SMALL = PaperScenario(sizes=(4, 16, 64))
GRID = (0.3, 1.0)


class TestRunner:
    def test_aggregate_mean_std(self):
        means, stds = aggregate_runs([{"x": 1.0}, {"x": 3.0}])
        assert means["x"] == 2.0
        assert stds["x"] == pytest.approx(1.4142, rel=1e-3)

    def test_aggregate_single_run_zero_std(self):
        means, stds = aggregate_runs([{"x": 5.0}])
        assert stds["x"] == 0.0

    def test_aggregate_rejects_mismatched_keys(self):
        with pytest.raises(ConfigError):
            aggregate_runs([{"x": 1.0}, {"y": 2.0}])

    def test_aggregate_rejects_empty(self):
        with pytest.raises(ConfigError):
            aggregate_runs([])

    def test_run_sweep_shape(self):
        result = run_sweep(
            lambda x, seed: {"y": x * 2}, [1.0, 2.0, 3.0], runs=2
        )
        assert result.points == [1.0, 2.0, 3.0]
        assert result.means["y"] == [2.0, 4.0, 6.0]
        assert result.series("y") == [(1.0, 2.0), (2.0, 4.0), (3.0, 6.0)]

    def test_run_sweep_seeds_differ_across_runs(self):
        seen = []
        run_sweep(
            lambda x, seed: seen.append(seed) or {"y": 0.0}, [1.0], runs=3
        )
        assert len(set(seen)) == 3

    def test_run_sweep_deterministic(self):
        collect = lambda: run_sweep(
            lambda x, seed: {"y": seed % 1000}, [1.0, 2.0], runs=2
        ).means["y"]
        assert collect() == collect()

    def test_run_sweep_validation(self):
        with pytest.raises(ConfigError):
            run_sweep(lambda x, s: {"y": 0.0}, [], runs=1)
        with pytest.raises(ConfigError):
            run_sweep(lambda x, s: {"y": 0.0}, [1.0], runs=0)


class TestFigures:
    def test_figure8_columns_and_monotone_scale(self):
        table = run_figure8(grid=GRID, runs=2, scenario=SMALL)
        assert list(table.columns) == [
            "alive_fraction", "msgs_T2", "msgs_T1", "msgs_T0",
        ]
        msgs_t2 = table.column("msgs_T2")
        assert msgs_t2[-1] > msgs_t2[0]  # more alive -> more messages

    def test_figure8_full_aliveness_scale(self):
        table = run_figure8(grid=(1.0,), runs=1, scenario=SMALL)
        fanout = SMALL.params().fanout(64)
        assert table.column("msgs_T2")[0] == pytest.approx(64 * fanout, rel=0.2)

    def test_figure9_columns(self):
        table = run_figure9(grid=GRID, runs=2, scenario=SMALL)
        assert list(table.columns) == ["alive_fraction", "T2->T1", "T1->T0"]
        assert table.column("T2->T1")[-1] >= 1

    def test_figure10_full_aliveness_near_one(self):
        table = run_figure10(grid=(1.0,), runs=2, scenario=SMALL)
        row = table.as_dicts()[0]
        assert row["recv_T2"] >= 0.9
        assert row["recv_T1"] >= 0.9
        assert row["recv_T0"] >= 0.9

    def test_figure10_midrange_ordering(self):
        # With stillborn failures, lower groups (closer to the root) see
        # compounded losses: recv_T2 >= recv_T0 on average.
        table = run_figure10(grid=(0.4,), runs=6, scenario=SMALL)
        row = table.as_dicts()[0]
        assert row["recv_T2"] >= row["recv_T0"] - 1e-9

    def test_figure11_beats_figure10_midrange(self):
        alive = 0.5
        fig10 = run_figure10(grid=(alive,), runs=4, scenario=SMALL)
        fig11 = run_figure11(grid=(alive,), runs=4, scenario=SMALL)
        # Dynamic (transient) failures give markedly better delivery than
        # stillborn failures — the paper's Fig. 11 observation.
        assert fig11.column("recv_T2")[0] > fig10.column("recv_T2")[0]
        assert (
            fig11.column("recv_T0")[0] >= fig10.column("recv_T0")[0] - 1e-9
        )

    def test_zero_aliveness_kills_dissemination(self):
        table = run_figure10(grid=(0.0,), runs=1, scenario=SMALL)
        row = table.as_dicts()[0]
        # Only the protected publisher is alive; nobody else receives.
        assert row["recv_T0"] == 0.0
        assert row["recv_T2"] <= 2 / 64  # the publisher itself


class TestComparisons:
    def test_measured_comparison_story(self):
        table = measured_comparison(scenario=SMALL, runs=1)
        rows = {row["algorithm"]: row for row in table.as_dicts()}
        assert set(rows) == {
            "daMulticast", "broadcast (a)", "multicast (b)", "hierarchical (c)",
        }
        # The paper's qualitative claims:
        assert rows["daMulticast"]["parasites"] == 0.0
        assert rows["multicast (b)"]["parasites"] == 0.0
        assert rows["broadcast (a)"]["parasites"] > 0
        assert rows["hierarchical (c)"]["parasites"] > 0
        assert rows["daMulticast"]["tables_max"] == 2.0
        assert rows["broadcast (a)"]["tables_max"] == 1.0
        assert rows["multicast (b)"]["tables_max"] == 3.0
        # daMulticast never uses more event messages than broadcast.
        assert (
            rows["daMulticast"]["event_messages"]
            <= rows["broadcast (a)"]["event_messages"]
        )


class TestAblations:
    def test_link_redundancy_monotone(self):
        table = sweep_link_redundancy(
            g_values=(1, 20), scenario=SMALL, alive_fraction=0.6, runs=3
        )
        inter = table.column("inter_msgs")
        assert inter[-1] > inter[0]  # more links -> more inter messages

    def test_link_redundancy_analytic_column(self):
        table = sweep_link_redundancy(
            g_values=(5,), scenario=SMALL, runs=1
        )
        analytic = table.column("analytic_root")[0]
        assert 0.0 <= analytic <= 1.0

    def test_fanout_constant_tradeoff(self):
        table = sweep_fanout_constant(
            c_values=(0, 5), scenario=SMALL, runs=3
        )
        rows = table.as_dicts()
        assert rows[1]["event_msgs"] > rows[0]["event_msgs"]
        assert rows[1]["recv_bottom"] >= rows[0]["recv_bottom"] - 1e-9
        assert rows[1]["analytic_one_group"] > rows[0]["analytic_one_group"]
