"""Live service mode: pub/sub API, status surface and the replay oracle.

The golden-compare contract (the tentpole's acceptance criterion): a
recorded live trace replayed through the discrete-event engine yields
*identical* per-topic delivery sets. The live runtime's wall-clock
execution and the engine's virtual-time execution are two transports
under one protocol core — any divergence is a seam bug.
"""

import asyncio
import json

import pytest

from repro.errors import ConfigError, UnknownTopic
from repro.service import (
    LiveRuntime,
    delivery_sets_from_trace,
    replay_live_trace,
)
from repro.sim.rng import STREAM_REGISTRY


def run_live(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=60.0))


def build_runtime(seed=0, **kwargs):
    runtime = LiveRuntime(seed=seed, **kwargs)
    runtime.add_group(".conf", 5)
    runtime.add_group(".conf.dsn", 8)
    return runtime


class TestPubSubApi:
    def test_publish_delivers_to_whole_group(self):
        async def scenario():
            runtime = build_runtime()
            async with runtime:
                event = await runtime.publish(".conf.dsn", {"n": 1})
            return runtime, event

        runtime, event = run_live(scenario())
        trace = runtime.trace()
        pids = trace["deliveries"][str(event.event_id)]
        # Inclusion: a .conf.dsn event reaches its group and the .conf
        # supergroup — all 13 processes on a perfect network.
        assert pids == sorted(runtime.system.network.pids)

    def test_subscribe_callback_fires_per_delivering_process(self):
        async def scenario():
            runtime = build_runtime()
            sub_conf = []
            sub_dsn = []
            runtime.subscribe(".conf", lambda e, pid: sub_conf.append(pid))
            runtime.subscribe(".conf.dsn", lambda e, pid: sub_dsn.append(pid))
            async with runtime:
                await runtime.publish(".conf.dsn", "payload")
            return runtime, sub_conf, sub_dsn

        runtime, sub_conf, sub_dsn = run_live(scenario())
        conf_pids = set(runtime.system.group_pids(".conf"))
        dsn_pids = set(runtime.system.group_pids(".conf.dsn"))
        assert set(sub_conf) == conf_pids
        assert set(sub_dsn) == dsn_pids

    def test_publish_to_empty_topic_raises(self):
        async def scenario():
            runtime = build_runtime()
            async with runtime:
                with pytest.raises(UnknownTopic):
                    await runtime.publish(".nobody")

        run_live(scenario())

    def test_publish_requires_start(self):
        runtime = build_runtime()
        with pytest.raises(ConfigError):
            asyncio.run(runtime.publish(".conf"))

    def test_double_start_rejected(self):
        async def scenario():
            runtime = build_runtime()
            async with runtime:
                with pytest.raises(ConfigError):
                    await runtime.start()

        run_live(scenario())

    def test_static_topology_frozen_after_start(self):
        async def scenario():
            runtime = build_runtime()
            async with runtime:
                with pytest.raises(ConfigError):
                    runtime.add_group(".late", 3)

        run_live(scenario())

    def test_status_surface(self):
        async def scenario():
            runtime = build_runtime()
            async with runtime:
                for n in range(3):
                    await runtime.publish(".conf.dsn", n)
                return runtime.status()

        status = run_live(scenario())
        assert status["published"] == 3
        assert status["running"] is True
        assert status["processes"] == 13
        # the streaming tracker keys by publication topic: each .conf.dsn
        # event reaches its 8 group members plus the 5-member supergroup
        assert status["deliveries_by_topic"][".conf.dsn"] == 3 * 13
        assert status["queue"]["pending"] == 0
        assert status["queue"]["executed"] == status["queue"]["dispatched"] > 0
        assert sum(status["network"]["delivered_by_kind"].values()) > 0
        assert status["scheduler_lag"]["max"] >= 0.0

    def test_stop_shuts_down_cleanly(self):
        async def scenario():
            runtime = build_runtime()
            await runtime.start()
            await runtime.publish(".conf", "x")
            await runtime.stop()
            return runtime.status()

        status = run_live(scenario())
        assert status["running"] is False
        assert status["queue"]["pending"] == 0


class TestReplayOracle:
    def test_trace_is_json_serializable(self):
        async def scenario():
            runtime = build_runtime(seed=3)
            async with runtime:
                await runtime.publish(".conf", [1, 2])
            return runtime.trace()

        trace = run_live(scenario())
        round_tripped = json.loads(json.dumps(trace))
        assert round_tripped["seed"] == 3
        assert round_tripped["version"] == 1
        assert len(round_tripped["publishes"]) == 1

    @pytest.mark.parametrize("seed", [0, 7, 12345])
    def test_live_trace_replays_identically_on_engine(self, seed):
        """THE golden compare: live delivery sets == engine delivery sets."""

        async def scenario():
            runtime = build_runtime(seed=seed)
            async with runtime:
                for n in range(4):
                    await runtime.publish(".conf.dsn", {"n": n})
                await runtime.publish(".conf", "up")
            return runtime.trace()

        trace = run_live(scenario())
        result = replay_live_trace(trace)
        assert result["matches"], (
            result["deliveries"],
            delivery_sets_from_trace(trace),
        )
        # and the replayed system really delivered to everyone (perfect
        # network): every event reaches its full inclusion set
        for record in trace["publishes"]:
            assert trace["deliveries"][record["event"]]

    def test_replay_with_channel_loss(self):
        """p_success < 1: both sides draw identical channel-loss outcomes
        because the shared streams see identical draw sequences."""

        async def scenario():
            runtime = build_runtime(seed=11, p_success=0.8)
            async with runtime:
                for n in range(3):
                    await runtime.publish(".conf.dsn", n)
            return runtime.trace()

        trace = run_live(scenario())
        assert trace["p_success"] == 0.8
        assert replay_live_trace(trace)["matches"]

    def test_replay_rejects_unknown_version(self):
        with pytest.raises(ConfigError):
            replay_live_trace({"version": 99, "mode": "static"})

    def test_replay_rejects_dynamic_traces(self):
        with pytest.raises(ConfigError):
            replay_live_trace(
                {"version": 1, "mode": "dynamic", "seed": 0}
            )

    def test_replay_detects_divergent_trace(self):
        async def scenario():
            runtime = build_runtime(seed=2)
            async with runtime:
                await runtime.publish(".conf", "x")
            return runtime.trace()

        trace = run_live(scenario())
        trace["deliveries"] = {
            key: pids[:-1] for key, pids in trace["deliveries"].items()
        }
        assert replay_live_trace(trace)["matches"] is False

    def test_live_publish_stream_is_registered(self):
        """DET004 satellite: the live runtime's dedicated stream label is
        declared in the registry."""
        assert "live/publish" in STREAM_REGISTRY["run"]


class TestServeCli:
    def test_serve_smoke_with_replay_verification(self, capsys, tmp_path):
        from repro.cli import main

        trace_path = tmp_path / "trace.json"
        code = main(
            [
                "serve",
                "--topics",
                ".conf:4",
                ".conf.dsn:6",
                "--publish",
                "8",
                "--seed",
                "5",
                "--verify-replay",
                "--trace-out",
                str(trace_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "delivery sets match" in out
        assert "0 pending" in out
        saved = json.loads(trace_path.read_text())
        assert len(saved["publishes"]) == 8
        assert replay_live_trace(saved)["matches"]

    def test_serve_rejects_bad_topic_spec(self, capsys):
        from repro.cli import main

        assert main(["serve", "--topics", "nocount"]) == 2
        assert "TOPIC:COUNT" in capsys.readouterr().err
