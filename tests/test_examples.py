"""Smoke tests: every example must run end-to-end and print its story.

Examples are user-facing documentation; breaking one silently is as bad
as breaking the API. Each test imports the example module and runs its
``main()`` with stdout captured.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples.{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "parasite deliveries: 0" in out
        assert ".dsn04.reviewers" in out

    def test_news_hierarchy(self, capsys):
        out = run_example("news_hierarchy", capsys)
        assert "parasite deliveries : 0" in out
        assert "newsgroup" in out

    def test_stock_ticker(self, capsys):
        out = run_example("stock_ticker", capsys)
        assert "cheap profile everywhere" in out
        assert "hot topic tuned" in out

    def test_failure_injection(self, capsys):
        out = run_example("failure_injection", capsys)
        assert "crashed" in out
        assert "LIVE supertopic link" in out

    def test_multi_inheritance(self, capsys):
        out = run_example("multi_inheritance", capsys)
        assert "diamond deduplicated" in out
        assert "no parasite deliveries" in out

    def test_convergence_monitor(self, capsys):
        out = run_example("convergence_monitor", capsys)
        assert "publication after convergence" in out
        assert "hop depth" in out
