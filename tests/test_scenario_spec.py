"""Tests for the declarative scenario-spec subsystem.

Covers: precise ConfigError validation (unknown keys, bad distributions,
negative rates, impossible references), seed determinism (same spec + seed
⇒ identical metrics digest across serial and ``pool:2``), bundled preset
integrity (every preset runs end-to-end and is bit-identical across CLI
``--jobs 1`` / ``--jobs 2``), and the spec-manipulation helpers.
"""

import copy
import json

import pytest

from repro.cli import main
from repro.errors import ConfigError
from repro.workloads.presets import load_preset, preset_names
from repro.workloads.spec import (
    compile_spec,
    load_spec,
    metrics_digest,
    run_scenario,
    run_spec,
    spec_with,
    sweep_scenario,
)

SMALL = {
    "name": "small",
    "topics": {"kind": "chain", "depth": 2, "prefix": "t"},
    "subscriptions": {"kind": "per_level", "counts": [3, 8, 20]},
    "publications": {"kind": "single", "level": -1},
    "failures": {"kind": "stillborn", "alive_fraction": 0.7},
    "params": {"b": 3, "c": 5, "g": 5, "a": 1, "z": 3, "fanout_log_base": 10},
    "p_success": 0.85,
}


def small(**patches) -> dict:
    """SMALL with top-level sections replaced."""
    spec = copy.deepcopy(SMALL)
    spec.update(patches)
    return spec


class TestValidation:
    def test_unknown_top_level_key(self):
        with pytest.raises(ConfigError, match="unknown key.*'fauilures'"):
            compile_spec(small(fauilures={"kind": "none"}))

    def test_missing_topics(self):
        spec = small()
        del spec["topics"]
        with pytest.raises(ConfigError, match="missing required section 'topics'"):
            compile_spec(spec)

    def test_unknown_topics_kind(self):
        with pytest.raises(ConfigError, match="topics: 'kind'"):
            compile_spec(small(topics={"kind": "ring", "size": 5}))

    def test_unknown_subscription_key(self):
        with pytest.raises(ConfigError, match="subscriptions: unknown key"):
            compile_spec(
                small(
                    subscriptions={"kind": "zipf", "n": 10, "alpha": 2.0}
                )
            )

    def test_per_level_requires_chain(self):
        with pytest.raises(ConfigError, match="per_level.*chain"):
            compile_spec(
                small(
                    topics={"kind": "tree", "arity": 2, "depth": 2},
                    publications={"kind": "single", "topic": ".s0"},
                )
            )

    def test_per_level_count_mismatch(self):
        with pytest.raises(ConfigError, match="2 counts for 3 chain levels"):
            compile_spec(
                small(subscriptions={"kind": "per_level", "counts": [3, 8]})
            )

    def test_negative_count(self):
        with pytest.raises(ConfigError, match="counts must be >= 0"):
            compile_spec(
                small(
                    subscriptions={"kind": "per_level", "counts": [3, -1, 20]}
                )
            )

    def test_zipf_negative_exponent(self):
        with pytest.raises(ConfigError, match="exponent must be >= 0"):
            compile_spec(
                small(
                    subscriptions={"kind": "zipf", "n": 50, "exponent": -0.5}
                )
            )

    def test_explicit_topic_outside_hierarchy(self):
        with pytest.raises(ConfigError, match="not in.*hierarchy"):
            compile_spec(
                small(
                    subscriptions={
                        "kind": "explicit",
                        "counts": {".unrelated": 5},
                    }
                )
            )

    def test_burst_zero_count(self):
        with pytest.raises(ConfigError, match="count must be >= 1"):
            compile_spec(
                small(publications={"kind": "burst", "level": -1, "count": 0})
            )

    def test_burst_negative_start(self):
        with pytest.raises(ConfigError, match="start must be >= 0"):
            compile_spec(
                small(
                    publications={
                        "kind": "burst",
                        "level": -1,
                        "count": 3,
                        "start": -1.0,
                    }
                )
            )

    def test_poisson_negative_rate(self):
        with pytest.raises(ConfigError, match="rate must be > 0"):
            compile_spec(
                small(
                    publications={
                        "kind": "poisson",
                        "rate": -2.0,
                        "horizon": 10.0,
                    }
                )
            )

    def test_poisson_non_finite_rate(self):
        with pytest.raises(ConfigError, match="rate must be finite"):
            compile_spec(
                small(
                    publications={
                        "kind": "poisson",
                        "rate": float("inf"),
                        "horizon": 10.0,
                    }
                )
            )

    def test_poisson_nan_horizon(self):
        with pytest.raises(ConfigError, match="horizon must be finite"):
            compile_spec(
                small(
                    publications={
                        "kind": "poisson",
                        "rate": 1.0,
                        "horizon": float("nan"),
                    }
                )
            )

    def test_poisson_weights_without_targets(self):
        with pytest.raises(ConfigError, match="weights.*requires explicit"):
            compile_spec(
                small(
                    publications={
                        "kind": "poisson",
                        "rate": 1.0,
                        "horizon": 5.0,
                        "weights": [1.0, 2.0],
                    }
                )
            )

    def test_mixed_rejects_nested_mixed(self):
        with pytest.raises(ConfigError, match=r"parts\[0\]: 'kind'"):
            compile_spec(
                small(
                    publications={
                        "kind": "mixed",
                        "parts": [{"kind": "mixed", "parts": []}],
                    }
                )
            )

    def test_level_out_of_range(self):
        with pytest.raises(ConfigError, match="level 7 out of range"):
            compile_spec(small(publications={"kind": "single", "level": 7}))

    def test_level_requires_chain(self):
        with pytest.raises(ConfigError, match="'level' requires a chain"):
            compile_spec(
                small(
                    topics={"kind": "names", "names": [".a.b"]},
                    subscriptions={
                        "kind": "explicit",
                        "counts": {".a.b": 10},
                    },
                    publications={"kind": "single", "level": -1},
                )
            )

    def test_unknown_failure_kind(self):
        with pytest.raises(ConfigError, match="failures: 'kind'"):
            compile_spec(small(failures={"kind": "meteor"}))

    def test_alive_fraction_out_of_range(self):
        with pytest.raises(ConfigError, match="alive_fraction must be <= 1"):
            compile_spec(
                small(failures={"kind": "stillborn", "alive_fraction": 1.5})
            )

    def test_partition_single_island(self):
        with pytest.raises(ConfigError, match="'islands' must be an integer >= 2"):
            compile_spec(small(failures={"kind": "partition", "islands": 1}))

    def test_churn_requires_horizon(self):
        with pytest.raises(ConfigError, match="missing required key 'horizon'"):
            compile_spec(
                small(failures={"kind": "churn", "crash_probability": 0.5})
            )

    def test_params_unknown_key(self):
        with pytest.raises(ConfigError, match="params: unknown key"):
            compile_spec(small(params={"b": 3, "beta": 2}))

    def test_params_domain_error(self):
        with pytest.raises(ConfigError, match="params: .*a <= z"):
            compile_spec(small(params={"a": 5, "z": 2}))

    def test_overrides_require_damulticast(self):
        with pytest.raises(ConfigError, match="overrides require protocol"):
            compile_spec(
                small(
                    protocol="broadcast",
                    params={"overrides": {".t1": {"c": 6}}},
                )
            )

    def test_unknown_protocol(self):
        with pytest.raises(ConfigError, match="protocol must be one of"):
            compile_spec(small(protocol="carrier-pigeon"))

    def test_protocol_options_only_for_hierarchical(self):
        with pytest.raises(ConfigError, match="only valid for 'hierarchical'"):
            compile_spec(
                small(protocol={"name": "broadcast", "n_clusters": 4})
            )

    def test_p_success_out_of_range(self):
        with pytest.raises(ConfigError, match="p_success must be <= 1"):
            compile_spec(small(p_success=1.2))

    def test_unknown_preset(self):
        with pytest.raises(ConfigError, match="unknown preset"):
            load_spec("definitely-not-a-preset")

    def test_publication_topic_without_subscribers(self):
        spec = small(
            subscriptions={"kind": "per_level", "counts": [3, 8, 0]},
            publications={"kind": "single", "level": -1},
        )
        with pytest.raises(ConfigError, match="has no subscribers"):
            run_spec(spec, seed=0)


class TestSpecWith:
    def test_sets_nested_field(self):
        modified = spec_with(SMALL, "failures.alive_fraction", 0.5)
        assert modified["failures"]["alive_fraction"] == 0.5
        assert SMALL["failures"]["alive_fraction"] == 0.7  # original intact

    def test_creates_missing_sections(self):
        spec = small()
        del spec["failures"]
        modified = spec_with(spec, "failures.kind", "none")
        assert modified["failures"] == {"kind": "none"}

    def test_rejects_empty_path(self):
        with pytest.raises(ConfigError, match="invalid spec path"):
            spec_with(SMALL, "failures..kind", 1)

    def test_rejects_non_mapping_intermediate(self):
        with pytest.raises(ConfigError, match="is not a mapping"):
            spec_with(SMALL, "name.sub", 1)


class TestDeterminism:
    def test_same_spec_same_seed_same_metrics(self):
        assert run_spec(SMALL, seed=7) == run_spec(SMALL, seed=7)

    def test_different_seeds_differ(self):
        digest_a = metrics_digest(run_spec(SMALL, seed=0))
        digest_b = metrics_digest(run_spec(SMALL, seed=1))
        assert digest_a != digest_b

    def test_run_scenario_bit_identical_across_jobs(self):
        serial = run_scenario(SMALL, runs=4, master_seed=3, executor="serial")
        parallel = run_scenario(SMALL, runs=4, master_seed=3, executor="pool:2")
        assert serial == parallel
        assert metrics_digest(serial) == metrics_digest(parallel)

    def test_numeric_sweep_bit_identical_across_jobs(self):
        kwargs = dict(runs=2, master_seed=0)
        serial = sweep_scenario(
            SMALL, "failures.alive_fraction", [0.5, 1.0], executor="serial", **kwargs
        )
        parallel = sweep_scenario(
            SMALL, "failures.alive_fraction", [0.5, 1.0], executor="pool:2", **kwargs
        )
        assert serial.points == parallel.points
        assert serial.means == parallel.means
        assert serial.stds == parallel.stds

    def test_non_numeric_sweep_over_protocol(self):
        result = sweep_scenario(
            SMALL, "protocol", ["daMulticast", "broadcast"], runs=1
        )
        assert result.points == ["daMulticast", "broadcast"]
        # broadcast floods everyone from one global group: more messages.
        messages = result.means["event_messages"]
        assert messages[1] > messages[0] * 0.5  # both ran and produced data
        parallel = sweep_scenario(
            SMALL, "protocol", ["daMulticast", "broadcast"], runs=1, executor="pool:2"
        )
        assert parallel.means == result.means

    def test_sweep_validates_every_point_eagerly(self):
        with pytest.raises(ConfigError, match="alive_fraction must be <= 1"):
            sweep_scenario(SMALL, "failures.alive_fraction", [0.5, 2.0], runs=1)


class TestProtocolsAndFailures:
    @pytest.mark.parametrize(
        "protocol", ["broadcast", "multicast", "hierarchical", "naive"]
    )
    def test_every_baseline_runs(self, protocol):
        metrics = run_spec(small(protocol=protocol), seed=0)
        assert metrics["events"] == 1.0
        assert metrics["event_messages"] > 0

    def test_dynamic_failures_run(self):
        metrics = run_spec(
            small(
                failures={
                    "kind": "dynamic",
                    "alive_fraction": 0.8,
                    "mode": "per_pair",
                }
            ),
            seed=0,
        )
        assert 0.0 <= metrics["mean_delivery"] <= 1.0

    def test_churn_failures_run(self):
        metrics = run_spec(
            small(
                publications={
                    "kind": "burst",
                    "level": -1,
                    "count": 5,
                    "spacing": 2.0,
                },
                failures={
                    "kind": "churn",
                    "crash_probability": 0.5,
                    "horizon": 10.0,
                },
            ),
            seed=0,
        )
        assert metrics["events"] == 5.0

    def test_partition_by_topic_blocks_climb(self):
        # Every group its own island and no healing: the event cannot
        # cross into the supergroups, so delivery on the publication
        # topic stays intra-island.
        metrics = run_spec(
            small(failures={"kind": "partition", "islands": "by_topic"}),
            seed=0,
        )
        assert metrics["events"] == 1.0

    def test_partition_heal_restores_delivery(self):
        split = small(
            failures={"kind": "partition", "islands": 2},
            publications={"kind": "single", "level": -1},
        )
        healed = spec_with(split, "failures.heals_at", 0.0)
        degraded = run_spec(split, seed=0)["mean_delivery"]
        restored = run_spec(healed, seed=0)["mean_delivery"]
        assert restored >= degraded

    def test_params_overrides_apply(self):
        cheap = small(params={"c": 1, "g": 1, "z": 2, "fanout_log_base": 10})
        tuned = spec_with(
            cheap, "params.overrides", {".t1.t2": {"c": 8, "g": 8}}
        )
        cheap_messages = run_spec(cheap, seed=2)["event_messages"]
        tuned_messages = run_spec(tuned, seed=2)["event_messages"]
        assert tuned_messages > cheap_messages

    def test_uniform_and_tree(self):
        metrics = run_spec(
            {
                "name": "tree-uniform",
                "topics": {"kind": "tree", "arity": 2, "depth": 2},
                "subscriptions": {"kind": "uniform", "n": 60},
                "publications": {"kind": "single"},
                "params": {"fanout_log_base": 10},
            },
            seed=3,
        )
        assert metrics["processes"] == 60.0


class TestPresets:
    def test_expected_catalog(self):
        assert preset_names() == [
            "baseline-compare",
            "bootstrap-wave",
            "churn-heavy",
            "churn-recover",
            "loss-sweep",
            "lossy-wan",
            "news-burst",
            "paper-vii",
            "partition-heal",
            "super-link-attack",
            "zipf-feed",
        ]

    @pytest.mark.parametrize("name", preset_names())
    def test_preset_runs_end_to_end(self, name):
        metrics = run_spec(load_preset(name), seed=0)
        assert metrics, "metrics dict must not be empty"
        assert metrics["events"] >= 1.0
        assert metrics["processes"] > 0

    def test_paper_vii_matches_section7_population(self):
        metrics = run_spec(load_preset("paper-vii"), seed=0)
        assert metrics["processes"] == 1110.0
        assert metrics["parasites"] == 0.0

    def test_baseline_compare_exposes_parasites(self):
        metrics = run_spec(load_preset("baseline-compare"), seed=0)
        assert metrics["parasites"] > 0


class TestCli:
    @pytest.mark.parametrize("name", preset_names())
    def test_preset_bit_identical_across_jobs(self, name, capsys):
        """Acceptance: every bundled preset runs from the CLI and is
        bit-identical across --jobs 1 and --jobs 2 for the same seed."""
        args = ["scenario", "run", name, "--runs", "2", "--seed", "3"]
        assert main([*args, "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main([*args, "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial
        assert "metrics digest:" in serial

    def test_run_spec_file(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(SMALL))
        assert main(["scenario", "run", str(path), "--runs", "1"]) == 0
        out = capsys.readouterr().out
        assert "scenario small" in out
        assert "event_messages" in out

    def test_sweep_command(self, capsys):
        assert (
            main(
                [
                    "scenario",
                    "run",
                    "paper-vii",
                    "--runs",
                    "1",
                    "--set",
                    "subscriptions.counts=[3, 8, 20]",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "scenario",
                    "sweep",
                    "paper-vii",
                    "--field",
                    "failures.alive_fraction",
                    "--values",
                    "0.5",
                    "1.0",
                    "--runs",
                    "1",
                    "--set",
                    "subscriptions.counts=[3, 8, 20]",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "failures.alive_fraction" in out
        assert "mean_delivery" in out

    def test_list_command(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        assert "paper-vii" in out and "zipf-feed" in out
        assert main(["scenario", "list", "--names"]) == 0
        names = capsys.readouterr().out.split()
        assert names == preset_names()

    def test_set_override_changes_result(self, capsys):
        base = ["scenario", "run", "paper-vii", "--runs", "1",
                "--set", "subscriptions.counts=[3, 8, 20]"]
        assert main(base) == 0
        first = capsys.readouterr().out
        assert main([*base, "--set", "p_success=1.0"]) == 0
        second = capsys.readouterr().out
        assert first != second

    def test_invalid_spec_exits_2(self, capsys):
        assert main(["scenario", "run", "no-such-preset"]) == 2
        assert "unknown preset" in capsys.readouterr().err

    def test_bad_set_pair_exits_2(self, capsys):
        assert (
            main(["scenario", "run", "paper-vii", "--set", "nonsense"]) == 2
        )
        assert "PATH=VALUE" in capsys.readouterr().err
