"""Unit tests for static (paper-mode) membership drawing."""

import math
import random

import pytest

from repro.errors import ConfigError
from repro.membership import (
    ProcessDescriptor,
    draw_super_table,
    draw_topic_table,
    static_table_capacity,
)
from repro.membership.static import nearest_populated_super
from repro.topics import ROOT, Topic

T1 = Topic.parse(".t1")
T2 = Topic.parse(".t1.t2")


def group(topic, pids):
    return [ProcessDescriptor(pid, topic) for pid in pids]


class TestCapacity:
    def test_paper_value_base10(self):
        # S=1000, b=3, log10 -> (3+1)*3 = 12
        assert static_table_capacity(1000, b=3, log_base=10) == 12

    def test_paper_value_natural(self):
        expected = math.ceil(4 * math.log(1000))
        assert static_table_capacity(1000, b=3) == expected

    def test_singleton_group(self):
        assert static_table_capacity(1, b=3) == 1

    def test_small_group_at_least_one(self):
        assert static_table_capacity(2, b=0) >= 1

    def test_invalid_size(self):
        with pytest.raises(ConfigError):
            static_table_capacity(0, b=3)


class TestDrawTopicTable:
    def test_excludes_self(self):
        members = group(T2, range(10))
        table = draw_topic_table(members[0], members, 5, random.Random(0))
        assert members[0].pid not in table

    def test_capacity_respected(self):
        members = group(T2, range(50))
        table = draw_topic_table(members[0], members, 7, random.Random(0))
        assert len(table) == 7

    def test_small_group_takes_everyone_else(self):
        members = group(T2, range(3))
        table = draw_topic_table(members[0], members, 10, random.Random(0))
        assert len(table) == 2

    def test_deterministic(self):
        members = group(T2, range(30))
        t1 = draw_topic_table(members[0], members, 5, random.Random(3))
        t2 = draw_topic_table(members[0], members, 5, random.Random(3))
        assert t1.pids == t2.pids


class TestDrawSuperTable:
    def test_size_z(self):
        supers = group(T1, range(100, 120))
        table = draw_super_table(supers, 3, random.Random(0))
        assert len(table) == 3

    def test_small_supergroup(self):
        supers = group(T1, [100])
        table = draw_super_table(supers, 3, random.Random(0))
        assert table.pids == [100]


class TestNearestPopulatedSuper:
    def test_direct_super_populated(self):
        population = {T1: group(T1, [1]), T2: group(T2, [2])}
        assert nearest_populated_super(T2, population) == T1

    def test_skips_empty_super(self):
        population = {T1: [], ROOT: group(ROOT, [0]), T2: group(T2, [2])}
        assert nearest_populated_super(T2, population) == ROOT

    def test_unlisted_super_skipped(self):
        population = {ROOT: group(ROOT, [0]), T2: group(T2, [2])}
        assert nearest_populated_super(T2, population) == ROOT

    def test_no_populated_super(self):
        population = {T2: group(T2, [2])}
        assert nearest_populated_super(T2, population) is None

    def test_root_has_no_super(self):
        population = {ROOT: group(ROOT, [0])}
        assert nearest_populated_super(ROOT, population) is None
