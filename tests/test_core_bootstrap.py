"""Unit tests for FIND_SUPER_CONTACT (Fig. 4) at the message level.

These drive the search directly over a real (small) network so the flood,
widening, narrowing and stop conditions can be observed step by step.
"""

import pytest

from repro.core import DaMulticastConfig, DaMulticastSystem
from repro.core.bootstrap import known_contacts_for
from repro.topics import ROOT, Topic

T1 = Topic.parse(".t1")
T2 = Topic.parse(".t1.t2")
T3 = Topic.parse(".t1.t2.t3")


def build(groups, *, seed=0, config=None):
    system = DaMulticastSystem(
        config=config
        or DaMulticastConfig(bootstrap_timeout=2.0, bootstrap_ttl=4),
        seed=seed,
        mode="dynamic",
    )
    for topic, count in groups.items():
        system.add_group(topic, count, subscribe=False)
    return system


class TestWidening:
    def test_targets_start_with_direct_super(self):
        system = build({T2: 2, T1: 2})
        process = system.group(T2)[0]
        process.find_super_contact.start()
        assert process.find_super_contact._targets == [T1]

    def test_targets_widen_on_timeout(self):
        # Nobody in T1 or ROOT -> the search widens level by level.
        system = build({T2: 3})
        process = system.group(T2)[0]
        process.subscribe()
        system.run(until=2.5)  # one timeout elapsed
        assert ROOT in process.find_super_contact._targets

    def test_root_process_never_searches(self):
        system = build({ROOT: 2})
        process = system.group(ROOT)[0]
        process.find_super_contact.start()
        assert not process.find_super_contact.active

    def test_search_gives_up_after_max_attempts(self):
        system = build({T2: 3})
        process = system.group(T2)[0]
        process.find_super_contact._max_attempts = 3
        # Start the task alone (no maintenance loop, which would restart
        # it per Fig. 6 lines 12-14 — covered by the next test).
        process.find_super_contact.start()
        system.run(until=30.0)
        assert not process.find_super_contact.active
        assert process.find_super_contact._attempts == 3

    def test_maintenance_restarts_abandoned_search(self):
        system = build({T2: 3})
        process = system.group(T2)[0]
        process.find_super_contact._max_attempts = 3
        process.subscribe()  # maintenance re-arms the search on emptiness
        system.run(until=30.0)
        # The task may be mid-cycle or between give-up and restart, but it
        # must have gone through several full search cycles.
        assert process.find_super_contact._attempts >= 1
        assert system.stats.sent_by_kind["req_contact"] > 10


class TestStopAndNarrow:
    def test_stops_on_direct_super_answer(self):
        system = build({T2: 4, T1: 4, ROOT: 2})
        for process in system.group(T1) + system.group(ROOT):
            process.subscribe()
        target = system.group(T2)[0]
        target.subscribe()
        system.run(until=10.0)
        assert target.super_table.target_topic == T1
        assert not target.find_super_contact.active

    def test_adopts_farther_super_but_keeps_searching(self):
        # Only the root is populated: table adopts root contacts but the
        # task must stay active, still hoping for a direct T1 contact.
        system = build({T2: 4, ROOT: 3})
        target = system.group(T2)[0]
        target.subscribe()
        for process in system.group(ROOT):
            process.subscribe()
        system.run(until=6.0)
        if not target.super_table.is_empty:
            assert target.super_table.target_topic == ROOT
            assert target.find_super_contact.active

    def test_narrowing_prefers_deeper_answers(self):
        # Root found first, then T1 appears: the table re-targets to T1.
        system = build({T2: 4, ROOT: 3})
        target = system.group(T2)[0]
        target.subscribe()
        for process in system.group(ROOT):
            process.subscribe()
        system.run(until=8.0)
        late_t1 = system.add_process(T1)
        system.run(until=40.0)
        assert target.super_table.target_topic == T1
        assert late_t1.pid in target.super_table.pids or len(
            target.super_table
        ) >= 1


class TestReceiverSide:
    def test_known_contacts_prefers_deepest_topic(self):
        system = build({T2: 3, T1: 2})
        process = system.group(T2)[0]
        # The process knows T2 (itself + table) and nothing of T1 yet.
        answer = known_contacts_for(process, (T1, T2))
        assert answer is not None
        topic, contacts = answer
        assert topic == T2
        assert any(d.pid == process.pid for d in contacts)

    def test_unknown_topics_return_none(self):
        system = build({T2: 2})
        process = system.group(T2)[0]
        assert known_contacts_for(process, (T1, ROOT)) is None

    def test_super_table_knowledge_is_shared(self):
        system = build({T2: 4, T1: 3, ROOT: 2})
        for process in system.processes:
            process.subscribe()
        system.run(until=15.0)
        informed = [
            p for p in system.group(T2) if not p.super_table.is_empty
        ]
        assert informed
        answer = known_contacts_for(informed[0], (T1,))
        assert answer is not None
        assert answer[0] == T1

    def test_flood_is_deduplicated(self):
        system = build({T2: 5})
        target = system.group(T2)[0]
        target.subscribe()
        system.run(until=2.0)
        sent_first = system.stats.sent_by_kind["req_contact"]
        # The flood must terminate: bounded by TTL and per-process dedup,
        # not exponential.
        assert sent_first <= 5 * 5 * 5  # generous cap
