"""Unit + statistical tests for the deterministic link-fault layer."""

import math
import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.errors import ConfigError
from repro.net import (
    BernoulliLoss,
    ConstantLatency,
    DelaySpike,
    DuplicateModel,
    FaultPipeline,
    GilbertElliott,
    LinkClassFaults,
    LinkFaultModel,
    Network,
    NO_FAULTS,
    NoFaults,
)
from repro.net.message import Message, Ping
from repro.net.stats import (
    DROP_FAULT_LOSS,
    FAULT_DELAY_SPIKE,
    FAULT_DUPLICATE,
    FAULT_LOSS,
)
from repro.sim import Engine


class Recorder:
    def __init__(self, pid: int):
        self.pid = pid
        self.inbox: list[Message] = []

    def handle_message(self, message: Message) -> None:
        self.inbox.append(message)


class SentinelRng(random.Random):
    """A Random that fails the test if any draw method is consulted."""

    def random(self):  # pragma: no cover - reaching it IS the failure
        raise AssertionError("fault RNG consulted while faults are disabled")

    def randint(self, a, b):  # pragma: no cover
        raise AssertionError("fault RNG consulted while faults are disabled")


def make_net(faults=None, fault_rng=None, **kwargs):
    engine = Engine()
    net = Network(
        engine, random.Random(0), faults=faults, fault_rng=fault_rng, **kwargs
    )
    actors = [Recorder(i) for i in range(6)]
    for actor in actors:
        net.register(actor)
    return engine, net, actors


# ----------------------------------------------------------------------
# Construction validation (satellite: NaN/out-of-range must not pass)
# ----------------------------------------------------------------------
class TestValidation:
    @pytest.mark.parametrize(
        "bad", [float("nan"), float("inf"), -0.1, 1.1, True, "0.5", None]
    )
    def test_bernoulli_rejects_bad_probability(self, bad):
        with pytest.raises(ConfigError):
            BernoulliLoss(bad)

    @pytest.mark.parametrize("bad", [float("nan"), -0.01, 2.0, True])
    def test_gilbert_elliott_rejects_bad_probabilities(self, bad):
        with pytest.raises(ConfigError):
            GilbertElliott(bad, 0.5)
        with pytest.raises(ConfigError):
            GilbertElliott(0.5, bad)
        with pytest.raises(ConfigError):
            GilbertElliott(0.1, 0.5, loss_good=bad)
        with pytest.raises(ConfigError):
            GilbertElliott(0.1, 0.5, loss_bad=bad)

    def test_gilbert_elliott_rejects_frozen_chain(self):
        with pytest.raises(ConfigError):
            GilbertElliott(0.0, 0.0)

    @pytest.mark.parametrize("bad", [1, 0, -2, 2.0, True, None])
    def test_duplicate_rejects_bad_max_copies(self, bad):
        with pytest.raises(ConfigError):
            DuplicateModel(0.5, bad)

    def test_duplicate_rejects_nan_probability(self):
        with pytest.raises(ConfigError):
            DuplicateModel(float("nan"))

    def test_delay_spike_requires_exactly_one_shape(self):
        with pytest.raises(ConfigError):
            DelaySpike(0.1)
        with pytest.raises(ConfigError):
            DelaySpike(0.1, factor=2.0, extra=1.0)

    @pytest.mark.parametrize("bad", [0.5, float("nan"), -1.0])
    def test_delay_spike_rejects_bad_factor(self, bad):
        with pytest.raises(ConfigError):
            DelaySpike(0.1, factor=bad)

    @pytest.mark.parametrize("bad", [-0.5, float("nan"), float("inf")])
    def test_delay_spike_rejects_bad_extra(self, bad):
        with pytest.raises(ConfigError):
            DelaySpike(0.1, extra=bad)

    def test_pipeline_requires_stages(self):
        with pytest.raises(ConfigError):
            FaultPipeline([])

    def test_protocol_conformance(self):
        for model in (
            NO_FAULTS,
            BernoulliLoss(0.5),
            GilbertElliott(0.1, 0.5),
            DuplicateModel(0.5),
            DelaySpike(0.5, factor=2.0),
            FaultPipeline([BernoulliLoss(0.1)]),
            LinkClassFaults(NO_FAULTS, {"inter": BernoulliLoss(0.5)}),
        ):
            assert isinstance(model, LinkFaultModel)


# ----------------------------------------------------------------------
# Model behaviour
# ----------------------------------------------------------------------
class TestModels:
    def test_no_faults_is_identity_and_draw_free(self):
        rng = SentinelRng()
        assert NoFaults().transmit(0, 1, 3.5, rng) == (1, 3.5)

    def test_bernoulli_extremes(self):
        rng = random.Random(0)
        assert BernoulliLoss(1.0).transmit(0, 1, 2.0, rng) == (0, 2.0)
        assert BernoulliLoss(0.0).transmit(0, 1, 2.0, rng) == (1, 2.0)

    def test_duplicate_copies_share_delay(self):
        model = DuplicateModel(1.0, max_copies=4)
        rng = random.Random(3)
        for _ in range(50):
            copies, delay = model.transmit(0, 1, 1.5, rng)
            assert 2 <= copies <= 4
            assert delay == 1.5

    def test_delay_spike_factor_and_extra(self):
        rng = random.Random(0)
        assert DelaySpike(1.0, factor=3.0).transmit(0, 1, 2.0, rng) == (1, 6.0)
        assert DelaySpike(1.0, extra=4.0).transmit(0, 1, 2.0, rng) == (1, 6.0)
        assert DelaySpike(0.0, extra=4.0).transmit(0, 1, 2.0, rng) == (1, 2.0)

    def test_pipeline_loss_short_circuits(self):
        dup = DuplicateModel(1.0, max_copies=3)
        pipe = FaultPipeline([BernoulliLoss(1.0), dup, DelaySpike(1.0, extra=9.0)])
        rng = SentinelRngAfterOne()
        copies, delay = pipe.transmit(0, 1, 1.0, rng)
        assert copies == 0
        assert delay == 1.0  # later stages never consulted

    def test_pipeline_composes_copies_and_delay(self):
        pipe = FaultPipeline(
            [DuplicateModel(1.0, max_copies=2), DelaySpike(1.0, extra=2.0)]
        )
        copies, delay = pipe.transmit(0, 1, 1.0, random.Random(0))
        assert copies == 2
        assert delay == 3.0

    def test_link_class_faults_routes_by_class(self):
        model = LinkClassFaults(NoFaults(), {"inter": BernoulliLoss(1.0)})
        model.bind(lambda s, t: "inter" if t == 9 else "intra")
        rng = random.Random(0)
        assert model.transmit(0, 9, 1.0, rng)[0] == 0  # inter: always lost
        assert model.transmit(0, 1, 1.0, rng)[0] == 1  # intra: default

    def test_link_class_faults_unbound_uses_default(self):
        model = LinkClassFaults(BernoulliLoss(1.0), {"inter": NoFaults()})
        assert model.transmit(0, 1, 1.0, random.Random(0))[0] == 0

    def test_link_class_faults_rejects_non_models(self):
        with pytest.raises(ConfigError):
            LinkClassFaults(NO_FAULTS, {"inter": 0.5})
        with pytest.raises(ConfigError):
            LinkClassFaults("lossy")
        with pytest.raises(ConfigError):
            LinkClassFaults(NO_FAULTS, {"": BernoulliLoss(0.5)})


class SentinelRngAfterOne(random.Random):
    """Allows exactly one draw (the loss coin), fails on any further one."""

    def __init__(self):
        super().__init__(0)
        self.draws = 0

    def random(self):
        self.draws += 1
        if self.draws > 1:
            raise AssertionError("stage consulted after a loss")
        return 0.0  # < p, so the loss fires


# ----------------------------------------------------------------------
# Gilbert-Elliott statistics (satellite: stationary-loss-rate test)
# ----------------------------------------------------------------------
class TestGilbertElliottStatistics:
    def test_stationary_loss_rate_formula(self):
        ge = GilbertElliott(0.1, 0.4, loss_good=0.05, loss_bad=0.8)
        pi_bad = 0.1 / 0.5
        assert ge.stationary_loss_rate() == pytest.approx(
            (1 - pi_bad) * 0.05 + pi_bad * 0.8
        )

    def test_single_link_long_run_matches_stationary_rate(self):
        ge = GilbertElliott(0.05, 0.3, loss_good=0.0, loss_bad=0.9)
        rng = random.Random(42)
        n = 40_000
        lost = sum(1 for _ in range(n) if ge.transmit(0, 1, 0.0, rng)[0] == 0)
        rate = ge.stationary_loss_rate()
        # Mixing inflates the variance vs i.i.d.; 4 i.i.d. sigmas plus the
        # chain's correlation still keeps this far from flaky at n=40k.
        sigma = math.sqrt(rate * (1 - rate) / n)
        assert abs(lost / n - rate) < 8 * sigma

    def test_fresh_links_start_at_stationary_rate(self):
        """One consult per link must already lose at the stationary rate
        (gossip touches most links once; an always-good initial state
        would neuter burst loss entirely)."""
        ge = GilbertElliott(0.05, 0.3, loss_good=0.0, loss_bad=0.9)
        rng = random.Random(7)
        n = 20_000
        lost = sum(
            1 for i in range(n) if ge.transmit(i, i + 1, 0.0, rng)[0] == 0
        )
        rate = ge.stationary_loss_rate()
        sigma = math.sqrt(rate * (1 - rate) / n)
        assert abs(lost / n - rate) < 5 * sigma

    def test_bad_state_bursts(self):
        """Consecutive losses on one link must exceed the i.i.d. rate:
        that correlation is the whole point of the two-state chain."""
        ge = GilbertElliott(0.02, 0.2, loss_good=0.0, loss_bad=1.0)
        rng = random.Random(3)
        outcomes = [ge.transmit(0, 1, 0.0, rng)[0] == 0 for _ in range(40_000)]
        losses = sum(outcomes)
        pairs = sum(
            1 for a, b in zip(outcomes, outcomes[1:]) if a and b
        )
        rate = losses / len(outcomes)
        conditional = pairs / max(1, losses)
        assert conditional > 2 * rate

    @given(
        p_gb=st.floats(0.01, 1.0),
        p_bg=st.floats(0.01, 1.0),
        seed=st.integers(0, 2**32),
    )
    @settings(max_examples=25, deadline=None)
    def test_transmit_never_mutates_delay(self, p_gb, p_bg, seed):
        ge = GilbertElliott(p_gb, p_bg)
        rng = random.Random(seed)
        for _ in range(32):
            copies, delay = ge.transmit(0, 1, 2.5, rng)
            assert delay == 2.5
            assert copies in (0, 1)


# ----------------------------------------------------------------------
# Network wiring: all three delivery paths + stats by reason
# ----------------------------------------------------------------------
class TestNetworkWiring:
    def test_uninstalled_faults_never_touch_the_rng(self):
        """The disabled path must be provably draw-free — the bit-identity
        guarantee for every pre-existing scenario rests on it."""
        engine, net, actors = make_net()  # no faults installed
        assert net.faults is None
        net.send(0, 1, Ping(sender=0, nonce=1))
        net.multicast(0, [1, 2, 3], Ping(sender=0, nonce=2))
        engine.run()
        assert len(actors[1].inbox) == 2

    def test_no_faults_instance_uninstalls(self):
        _, net, _ = make_net(faults=NoFaults())
        assert net.faults is None

    def test_active_model_requires_rng(self):
        engine = Engine()
        with pytest.raises(ConfigError):
            Network(engine, random.Random(0), faults=BernoulliLoss(0.5))

    def test_send_loss_drops_and_counts(self):
        engine, net, actors = make_net(
            faults=BernoulliLoss(1.0), fault_rng=random.Random(1)
        )
        assert net.send(0, 1, Ping(sender=0, nonce=1)) is False
        engine.run()
        assert actors[1].inbox == []
        assert net.stats.faults_by_reason[FAULT_LOSS] == 1
        assert net.stats.dropped_by_reason[DROP_FAULT_LOSS] == 1

    def test_send_duplicates_deliver_extra_copies(self):
        engine, net, actors = make_net(
            faults=DuplicateModel(1.0, max_copies=2),
            fault_rng=random.Random(1),
        )
        assert net.send(0, 1, Ping(sender=0, nonce=1)) is True
        engine.run()
        assert len(actors[1].inbox) == 2
        assert net.stats.faults_by_reason[FAULT_DUPLICATE] == 1
        assert net.stats.delivered_by_kind["ping"] == 2

    def test_send_delay_spike_postpones_delivery(self):
        engine, net, actors = make_net(
            faults=DelaySpike(1.0, extra=5.0),
            fault_rng=random.Random(1),
            latency=ConstantLatency(1.0),
        )
        net.send(0, 1, Ping(sender=0, nonce=1))
        engine.run(until=5.5)
        assert actors[1].inbox == []
        engine.run()
        assert len(actors[1].inbox) == 1
        assert engine.now == pytest.approx(6.0)
        assert net.stats.faults_by_reason[FAULT_DELAY_SPIKE] == 1

    def test_multicast_faulted_targets_split_from_batch(self):
        engine, net, actors = make_net(
            faults=DelaySpike(0.5, extra=5.0),
            fault_rng=random.Random(0),
            latency=ConstantLatency(1.0),
        )
        net.multicast(0, [1, 2, 3, 4, 5], Ping(sender=0, nonce=1))
        engine.run()
        delivered = [a for a in actors[1:] if a.inbox]
        assert len(delivered) == 5
        spikes = net.stats.faults_by_reason[FAULT_DELAY_SPIKE]
        assert 0 < spikes < 5  # seed 0: both branches exercised

    def test_multicast_loss_counts_per_target(self):
        engine, net, actors = make_net(
            faults=BernoulliLoss(1.0), fault_rng=random.Random(1)
        )
        net.multicast(0, [1, 2, 3], Ping(sender=0, nonce=1))
        engine.run()
        assert all(not a.inbox for a in actors[1:])
        assert net.stats.faults_by_reason[FAULT_LOSS] == 3
        assert net.stats.dropped_by_reason[DROP_FAULT_LOSS] == 3

    def test_multicast_duplicates_stay_in_one_batch(self):
        engine, net, actors = make_net(
            faults=DuplicateModel(1.0, max_copies=3),
            fault_rng=random.Random(2),
        )
        net.multicast(0, [1, 2], Ping(sender=0, nonce=1))
        engine.run()
        extra = net.stats.faults_by_reason[FAULT_DUPLICATE]
        assert extra >= 2
        assert len(actors[1].inbox) + len(actors[2].inbox) == 2 + extra

    def test_stats_as_dict_reports_faults(self):
        engine, net, _ = make_net(
            faults=BernoulliLoss(1.0), fault_rng=random.Random(1)
        )
        net.send(0, 1, Ping(sender=0, nonce=1))
        engine.run()
        payload = net.stats.as_dict()
        assert payload["faults_by_reason"] == {FAULT_LOSS: 1}

    def test_install_faults_can_swap_models_mid_run(self):
        engine, net, actors = make_net()
        net.install_faults(BernoulliLoss(1.0), random.Random(1))
        assert isinstance(net.faults, BernoulliLoss)
        net.send(0, 1, Ping(sender=0, nonce=1))
        net.install_faults(None)
        net.send(0, 1, Ping(sender=0, nonce=2))
        engine.run()
        assert [m.nonce for m in actors[1].inbox] == [2]

    @given(p=st.floats(0.0, 1.0), seed=st.integers(0, 2**32))
    @settings(max_examples=30, deadline=None)
    def test_bernoulli_loss_conserves_messages(self, p, seed):
        """sent == delivered + fault drops on the multicast path, for any
        loss probability and seed."""
        engine, net, actors = make_net(
            faults=BernoulliLoss(p), fault_rng=random.Random(seed)
        )
        for nonce in range(10):
            net.multicast(0, [1, 2, 3, 4, 5], Ping(sender=0, nonce=nonce))
        engine.run()
        delivered = sum(len(a.inbox) for a in actors)
        dropped = net.stats.dropped_by_reason[DROP_FAULT_LOSS]
        assert delivered + dropped == 50
        assert net.stats.faults_by_reason[FAULT_LOSS] == dropped
