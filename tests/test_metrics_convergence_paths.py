"""Tests for overlay-convergence metrics and hop-depth analysis."""

import pytest

from repro.core import DaMulticastSystem
from repro.core.events import Event, EventId
from repro.metrics.collector import DeliveryTracker
from repro.metrics.convergence import overlay_stats, view_graph, views_of
from repro.metrics.paths import (
    hop_distribution,
    hops_by_group,
    max_hops,
    mean_hops,
)
from repro.topics import ROOT, Topic

T1 = Topic.parse(".t1")
T2 = Topic.parse(".t1.t2")


class TestOverlayStats:
    def test_connected_ring(self):
        views = {i: [(i + 1) % 5] for i in range(5)}
        stats = overlay_stats(views)
        assert stats.connected
        assert stats.reachable_from_first == 5
        assert stats.min_in_degree == 1
        assert stats.mean_view_size == 1.0

    def test_disconnected_detected(self):
        views = {0: [1], 1: [0], 2: [3], 3: [2]}
        stats = overlay_stats(views)
        assert not stats.connected
        assert stats.reachable_from_first == 2

    def test_stale_entries_counted(self):
        views = {0: [1, 99], 1: [0]}  # 99 is not a participant
        stats = overlay_stats(views)
        assert stats.stale_entry_fraction == pytest.approx(1 / 3)

    def test_dead_members_excluded(self):
        views = {0: [1, 2], 1: [0], 2: [0]}
        stats = overlay_stats(views, is_alive=lambda pid: pid != 2)
        assert stats.n_processes == 2
        # Entry pointing at dead 2 counts as stale.
        assert stats.stale_entry_fraction > 0

    def test_isolated_member_unhealthy(self):
        views = {0: [1], 1: [0], 2: []}  # 2 knows nobody, nobody knows 2
        stats = overlay_stats(views)
        assert not stats.is_healthy()
        assert stats.min_in_degree == 0

    def test_empty_population(self):
        stats = overlay_stats({})
        assert stats.connected
        assert stats.n_processes == 0

    def test_view_graph_restricts_to_members(self):
        graph = view_graph({0: [1, 99], 1: [0]})
        assert graph[0] == {1}

    def test_views_of_damulticast_processes(self):
        system = DaMulticastSystem(seed=0, mode="static")
        system.add_group(T2, 5)
        system.finalize_static_membership()
        views = views_of(system.group(T2))
        assert len(views) == 5
        stats = overlay_stats(views)
        assert stats.connected  # static drawing connects small groups

    def test_dynamic_membership_converges_to_healthy_overlay(self):
        system = DaMulticastSystem(seed=3, mode="dynamic")
        system.add_group(T2, 15)
        system.run(until=40.0)
        stats = overlay_stats(views_of(system.group(T2)))
        assert stats.connected
        assert stats.min_in_degree >= 1


class TestHops:
    def test_tracker_records_hops(self):
        tracker = DeliveryTracker()
        event = Event(EventId(0, 1), T2, None, 0.0)
        tracker.record_delivery(1, event, 0.0, hops=2)
        tracker.record_delivery(2, event, 0.0, hops=3)
        tracker.record_delivery(2, event, 0.0, hops=9)  # duplicate ignored
        assert tracker.delivery_hops(event.event_id) == {1: 2, 2: 3}

    def test_distribution_and_aggregates(self):
        tracker = DeliveryTracker()
        event = Event(EventId(0, 1), T2, None, 0.0)
        tracker.record_delivery(0, event, 0.0, hops=0)  # publisher
        tracker.record_delivery(1, event, 0.0, hops=1)
        tracker.record_delivery(2, event, 0.0, hops=1)
        tracker.record_delivery(3, event, 0.0, hops=3)
        assert hop_distribution(tracker, event.event_id)[1] == 2
        assert mean_hops(tracker, event.event_id) == pytest.approx(5 / 3)
        assert max_hops(tracker, event.event_id) == 3

    def test_mean_hops_none_when_unrecorded(self):
        tracker = DeliveryTracker()
        assert mean_hops(tracker, EventId(0, 9)) is None
        assert max_hops(tracker, EventId(0, 9)) == 0

    def test_end_to_end_hops_grow_up_the_hierarchy(self):
        system = DaMulticastSystem(seed=5, mode="static")
        system.add_group(ROOT, 4)
        system.add_group(T1, 10)
        system.add_group(T2, 40)
        system.finalize_static_membership()
        event = system.publish(T2)
        system.run_until_idle()
        per_group = hops_by_group(
            system.tracker,
            event.event_id,
            {
                T2: system.group_pids(T2),
                T1: system.group_pids(T1),
                ROOT: system.group_pids(ROOT),
            },
        )
        assert per_group[T2] is not None
        assert per_group[T1] is not None
        assert per_group[ROOT] is not None
        # Supergroups are reached strictly deeper than the publication group.
        assert per_group[T1] > per_group[T2]
        assert per_group[ROOT] > per_group[T1]

    def test_hops_bounded_by_logarithmic_depth(self):
        system = DaMulticastSystem(seed=6, mode="static")
        system.add_group(T2, 60)
        system.finalize_static_membership()
        event = system.publish(T2)
        system.run_until_idle()
        # Epidemic depth is O(log S): generous cap well below S.
        assert max_hops(system.tracker, event.event_id) <= 20
