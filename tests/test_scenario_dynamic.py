"""Dynamic-mode scenario specs: validation, determinism, campaign goldens.

The contracts under test:

* ``mode: "dynamic"`` specs compile to full-protocol runs (staggered
  bootstrap, maintenance, optional campaign, latency models) with the
  same precise ``ConfigError`` validation as static specs;
* ``run_spec(spec, seed)`` stays a pure function of ``(spec, seed)`` in
  dynamic mode — bit-identical metrics across repeated in-process runs,
  ``--jobs 1`` / ``--jobs 2``, and serial-vs-spawned-pool execution
  (hypothesis over master seeds);
* campaign actions realize deterministically: the action log of the
  ``churn-recover`` preset is pinned as a golden;
* NaN/inf latency parameters, churn transition times and campaign action
  times are rejected eagerly (the satellite bugfixes of this PR).
"""

import copy
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.errors import ConfigError
from repro.workloads.presets import load_preset, preset_names
from repro.workloads.spec import (
    compile_spec,
    metrics_digest,
    run_scenario,
    run_spec,
    spec_with,
    sweep_scenario,
)

#: Small and fast: 14 processes, short warmup, two events, one campaign.
DYNAMIC = {
    "name": "dyn-small",
    "mode": "dynamic",
    "topics": {"kind": "chain", "depth": 2, "prefix": "t"},
    "subscriptions": {"kind": "per_level", "counts": [2, 4, 8]},
    "publications": {
        "kind": "burst", "level": -1, "count": 2, "start": 0.0, "spacing": 6.0
    },
    "dynamic": {
        "bootstrap": {"kind": "staggered", "start": 0.0, "spacing": 0.2},
        "warmup": 15.0,
        "settle": 10.0,
    },
    "campaign": {
        "actions": [
            {"kind": "kill_fraction", "at": 18.0, "fraction": 0.25, "level": -1},
            {"kind": "recover", "at": 26.0, "fraction": 1.0},
        ]
    },
    "latency": {"kind": "exponential", "mean": 0.2},
    "p_success": 0.9,
}

DYNAMIC_PRESETS = ("bootstrap-wave", "churn-recover", "super-link-attack")


def dynamic(**patches) -> dict:
    """DYNAMIC with top-level sections replaced."""
    spec = copy.deepcopy(DYNAMIC)
    spec.update(patches)
    return spec


class TestValidation:
    def test_unknown_mode(self):
        with pytest.raises(ConfigError, match="'mode' must be 'static' or 'dynamic'"):
            compile_spec(dynamic(mode="hybrid"))

    def test_dynamic_section_requires_dynamic_mode(self):
        spec = dynamic()
        del spec["mode"], spec["campaign"]
        with pytest.raises(ConfigError, match="'dynamic' section requires mode"):
            compile_spec(spec)

    def test_campaign_requires_dynamic_mode(self):
        spec = dynamic()
        del spec["mode"], spec["dynamic"]
        with pytest.raises(ConfigError, match="'campaign' section requires mode"):
            compile_spec(spec)

    def test_dynamic_mode_rejects_baselines(self):
        with pytest.raises(ConfigError, match="requires protocol 'daMulticast'"):
            compile_spec(dynamic(protocol="broadcast"))

    def test_dynamic_mode_rejects_stillborn(self):
        with pytest.raises(ConfigError, match="static-mode plan"):
            compile_spec(
                dynamic(failures={"kind": "stillborn", "alive_fraction": 0.7})
            )

    def test_campaign_incompatible_with_dynamic_failures(self):
        with pytest.raises(ConfigError, match="cannot combine with 'dynamic'"):
            compile_spec(
                dynamic(failures={"kind": "dynamic", "alive_fraction": 0.8})
            )

    def test_unknown_dynamic_key(self):
        with pytest.raises(ConfigError, match="dynamic: unknown key"):
            compile_spec(
                dynamic(dynamic={"warmup": 5.0, "cooldown": 1.0})
            )

    def test_unknown_bootstrap_kind(self):
        with pytest.raises(ConfigError, match="dynamic.bootstrap: 'kind'"):
            compile_spec(
                dynamic(dynamic={"bootstrap": {"kind": "thundering-herd"}})
            )

    def test_bad_bootstrap_order(self):
        with pytest.raises(ConfigError, match="'order' must be"):
            compile_spec(
                dynamic(
                    dynamic={
                        "bootstrap": {
                            "kind": "staggered", "spacing": 0.1, "order": "random"
                        }
                    }
                )
            )

    def test_staggered_requires_spacing(self):
        with pytest.raises(ConfigError, match="missing required key 'spacing'"):
            compile_spec(dynamic(dynamic={"bootstrap": {"kind": "staggered"}}))

    def test_waves_require_positive_interval(self):
        with pytest.raises(ConfigError, match="interval must be > 0"):
            compile_spec(
                dynamic(
                    dynamic={
                        "bootstrap": {
                            "kind": "waves", "wave_size": 4, "interval": 0.0
                        }
                    }
                )
            )

    def test_campaign_needs_actions(self):
        with pytest.raises(ConfigError, match="non-empty list of action"):
            compile_spec(dynamic(campaign={"actions": []}))

    def test_unknown_action_kind(self):
        with pytest.raises(ConfigError, match=r"campaign.actions\[0\]: 'kind'"):
            compile_spec(
                dynamic(campaign={"actions": [{"kind": "nuke", "at": 1.0}]})
            )

    def test_action_nan_time_rejected(self):
        with pytest.raises(ConfigError, match="at must be finite"):
            compile_spec(
                dynamic(
                    campaign={
                        "actions": [
                            {"kind": "recover_all", "at": float("nan")}
                        ]
                    }
                )
            )

    def test_kill_fraction_out_of_range(self):
        with pytest.raises(ConfigError, match="fraction must be <= 1"):
            compile_spec(
                dynamic(
                    campaign={
                        "actions": [
                            {"kind": "kill_fraction", "at": 1.0, "fraction": 1.5}
                        ]
                    }
                )
            )

    def test_kill_super_links_needs_target(self):
        with pytest.raises(ConfigError, match="needs a 'topic' or 'level'"):
            compile_spec(
                dynamic(
                    campaign={
                        "actions": [{"kind": "kill_super_links", "at": 1.0}]
                    }
                )
            )

    def test_action_topic_outside_hierarchy(self):
        with pytest.raises(ConfigError, match="not in the declared"):
            compile_spec(
                dynamic(
                    campaign={
                        "actions": [
                            {
                                "kind": "kill_fraction",
                                "at": 1.0,
                                "fraction": 0.5,
                                "topic": ".elsewhere",
                            }
                        ]
                    }
                )
            )

    @pytest.mark.parametrize(
        "latency,message",
        [
            ({"kind": "constant", "delay": float("nan")}, "delay must be finite"),
            ({"kind": "uniform", "low": float("nan"), "high": 1.0}, "low must be finite"),
            ({"kind": "uniform", "low": 0.0, "high": float("inf")}, "high must be finite"),
            ({"kind": "exponential", "mean": float("inf")}, "mean must be finite"),
            ({"kind": "exponential", "mean": 0.0}, "mean must be > 0"),
            ({"kind": "uniform", "low": 2.0, "high": 1.0}, "need low <= high"),
            ({"kind": "teleport"}, "latency: 'kind'"),
        ],
    )
    def test_bad_latency_sections(self, latency, message):
        with pytest.raises(ConfigError, match=message):
            compile_spec(dynamic(latency=latency))

    def test_unknown_link_class(self):
        with pytest.raises(ConfigError, match="unknown link class 'wan'"):
            compile_spec(
                dynamic(
                    latency={
                        "kind": "constant",
                        "delay": 0.1,
                        "overrides": {"wan": {"kind": "constant", "delay": 1.0}},
                    }
                )
            )

    def test_link_overrides_require_damulticast(self):
        spec = dynamic(protocol="broadcast")
        del spec["mode"], spec["dynamic"], spec["campaign"]
        spec["latency"] = {
            "kind": "constant",
            "delay": 0.1,
            "overrides": {"inter": {"kind": "constant", "delay": 1.0}},
        }
        with pytest.raises(ConfigError, match="per-link-class latency requires"):
            compile_spec(spec)

    def test_nested_overrides_rejected(self):
        with pytest.raises(ConfigError, match="overrides\\['inter'\\]: unknown key"):
            compile_spec(
                dynamic(
                    latency={
                        "kind": "constant",
                        "overrides": {
                            "inter": {
                                "kind": "constant",
                                "overrides": {},
                            }
                        },
                    }
                )
            )


class TestDynamicRuns:
    def test_metrics_keys_match_static(self):
        static = dynamic()
        del static["mode"], static["dynamic"], static["campaign"]
        assert set(run_spec(DYNAMIC, seed=0)) == set(run_spec(static, seed=0))

    def test_events_published_and_delivered(self):
        metrics = run_spec(DYNAMIC, seed=0)
        assert metrics["events"] == 2.0
        assert metrics["event_messages"] > 0
        assert 0.0 < metrics["mean_delivery"] <= 1.0
        assert metrics["processes"] == 14.0

    def test_churn_failures_in_dynamic_mode(self):
        spec = dynamic(
            failures={
                "kind": "churn",
                "crash_probability": 0.3,
                "horizon": 20.0,
            }
        )
        del spec["campaign"]
        metrics = run_spec(spec, seed=1)
        assert metrics["events"] == 2.0

    def test_campaign_composes_with_churn_failures(self):
        spec = dynamic(
            failures={
                "kind": "churn",
                "crash_probability": 0.2,
                "horizon": 20.0,
            }
        )
        built = compile_spec(spec).build(seed=3)
        built.execute()
        kinds = [kind for _, kind, _ in built.campaign.log.actions]
        assert kinds == ["crash_fraction", "recover"]

    def test_interleaved_order_differs_from_by_topic(self):
        by_topic = run_spec(DYNAMIC, seed=2)
        interleaved = run_spec(
            spec_with(DYNAMIC, "dynamic.bootstrap.order", "interleaved"), seed=2
        )
        assert metrics_digest(by_topic) != metrics_digest(interleaved)

    def test_immediate_bootstrap_is_default(self):
        spec = dynamic(dynamic={"warmup": 15.0, "settle": 10.0})
        metrics = run_spec(spec, seed=0)
        assert metrics["events"] == 2.0

    def test_super_link_attack_heals(self):
        built = compile_spec(load_preset("super-link-attack")).build(seed=0)
        metrics = built.execute()
        kinds = [kind for _, kind, _ in built.campaign.log.actions]
        assert kinds == ["crash_super_links", "recover"]
        # The second event publishes after recover_all: the healed tables
        # must still carry it upward.
        assert metrics["events"] == 2.0
        assert metrics["mean_delivery"] > 0.5


class TestCampaignGolden:
    #: Captured at the commit introducing dynamic-mode specs: the exact
    #: action log of the churn-recover preset, seed 0. Any change to the
    #: spec RNG streams, pid assignment order or campaign sampling shows
    #: up here immediately.
    GOLDEN_ACTIONS = [
        (30.0, "crash_fraction", (16, 29, 27, 24, 23, 21)),
        (45.0, "recover", (21, 27, 24, 29, 16, 23)),
    ]
    GOLDEN_DIGEST = (
        "b575f4770200c0c0b205bf83e182f4b51fd223a7aa8b399d1a04ed4870cdb604"
    )

    def test_churn_recover_action_log_golden(self):
        import hashlib

        built = compile_spec(load_preset("churn-recover")).build(seed=0)
        built.execute()
        actions = built.campaign.log.actions
        assert actions == self.GOLDEN_ACTIONS
        payload = json.dumps(actions, separators=(",", ":"))
        assert hashlib.sha256(payload.encode()).hexdigest() == self.GOLDEN_DIGEST


class TestDeterminism:
    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 2**32))
    def test_run_spec_pure_in_seed(self, seed):
        assert run_spec(DYNAMIC, seed=seed) == run_spec(DYNAMIC, seed=seed)

    @settings(max_examples=3, deadline=None)
    @given(master_seed=st.integers(0, 2**32))
    def test_run_scenario_bit_identical_across_jobs(self, master_seed):
        serial = run_scenario(
            DYNAMIC, runs=2, master_seed=master_seed, executor="serial"
        )
        parallel = run_scenario(
            DYNAMIC, runs=2, master_seed=master_seed, executor="pool:2"
        )
        assert serial == parallel
        assert metrics_digest(serial) == metrics_digest(parallel)

    def test_sweep_bit_identical_serial_vs_pool(self):
        kwargs = dict(runs=2, master_seed=7)
        serial = sweep_scenario(
            DYNAMIC, "p_success", [0.85, 1.0], executor="serial", **kwargs
        )
        parallel = sweep_scenario(
            DYNAMIC, "p_success", [0.85, 1.0], executor="pool:2", **kwargs
        )
        assert serial.points == parallel.points
        assert serial.means == parallel.means
        assert serial.stds == parallel.stds

    def test_different_seeds_differ(self):
        assert metrics_digest(run_spec(DYNAMIC, seed=0)) != metrics_digest(
            run_spec(DYNAMIC, seed=1)
        )


class TestDynamicPresets:
    def test_presets_are_dynamic_mode(self):
        for name in DYNAMIC_PRESETS:
            assert load_preset(name)["mode"] == "dynamic"

    @pytest.mark.parametrize("name", DYNAMIC_PRESETS)
    def test_preset_runs_with_nonempty_metrics(self, name):
        metrics = run_spec(load_preset(name), seed=0)
        assert metrics
        assert metrics["events"] >= 1.0
        assert metrics["mean_delivery"] > 0.0

    def test_catalog_contains_dynamic_presets(self):
        assert set(DYNAMIC_PRESETS) <= set(preset_names())


class TestCli:
    def test_dynamic_preset_bit_identical_across_jobs(self, capsys):
        """Acceptance: a mode='dynamic' preset with a campaign and
        non-constant latency produces non-empty metrics bit-identical
        across --jobs 1 and --jobs 2."""
        args = ["scenario", "run", "churn-recover", "--runs", "2", "--seed", "1"]
        assert main([*args, "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main([*args, "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial
        assert "metrics digest:" in serial
        assert "mean_delivery" in serial

    def test_sweep_out_then_render(self, tmp_path, capsys):
        """Acceptance: scenario render emits a table from a sweep output."""
        out = tmp_path / "sweep.json"
        assert (
            main(
                [
                    "scenario", "sweep", "churn-recover",
                    "--field", "p_success", "--values", "0.9", "1.0",
                    "--runs", "1", "--out", str(out),
                ]
            )
            == 0
        )
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro-scenario-sweep-v1"
        assert payload["points"] == [0.9, 1.0]
        assert main(["scenario", "render", str(out)]) == 0
        table = capsys.readouterr().out
        assert "p_success" in table and "mean_delivery" in table
        assert main(["scenario", "render", str(out), "--format", "csv"]) == 0
        csv_out = capsys.readouterr().out
        assert csv_out.splitlines()[0].startswith("p_success,")
        assert len(csv_out.splitlines()) == 3

    def test_run_out_then_render_with_metric_subset(self, tmp_path, capsys):
        out = tmp_path / "run.json"
        assert (
            main(
                [
                    "scenario", "run", "bootstrap-wave",
                    "--runs", "1", "--out", str(out),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "scenario", "render", str(out),
                    "--metrics", "mean_delivery", "events",
                    "--format", "json",
                ]
            )
            == 0
        )
        rendered = json.loads(capsys.readouterr().out)
        assert [row["metric"] for row in rendered["rows"]] == [
            "mean_delivery",
            "events",
        ]

    def test_render_unknown_metric_exits_2(self, tmp_path, capsys):
        out = tmp_path / "run.json"
        assert (
            main(
                [
                    "scenario", "run", "bootstrap-wave",
                    "--runs", "1", "--out", str(out),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(["scenario", "render", str(out), "--metrics", "nope"]) == 2
        )
        assert "unknown metric" in capsys.readouterr().err

    def test_render_missing_file_exits_2(self, capsys):
        assert main(["scenario", "render", "no-such-payload.json"]) == 2
        assert "not found" in capsys.readouterr().err

    def test_nan_latency_override_exits_2(self, capsys):
        """Acceptance: NaN latency input exits 2 with a precise ConfigError
        (json.loads parses a bare NaN, so --set can inject one)."""
        assert (
            main(
                [
                    "scenario", "run", "churn-recover",
                    "--set", "latency.mean=NaN",
                ]
            )
            == 2
        )
        assert "mean must be finite" in capsys.readouterr().err
