"""Unit tests for the Network transmission pipeline."""

import random

import pytest

from repro.errors import ConfigError, UnknownActor
from repro.failures import DynamicFailures, StillbornFailures
from repro.failures.churn import ChurnSchedule
from repro.net import ConstantLatency, Network, StaticPartition
from repro.net.message import Message, Ping
from repro.sim import Engine, TraceLog


class Recorder:
    """Minimal actor capturing everything delivered to it."""

    def __init__(self, pid: int):
        self.pid = pid
        self.inbox: list[Message] = []

    def handle_message(self, message: Message) -> None:
        self.inbox.append(message)


def make_net(**kwargs):
    engine = Engine()
    net = Network(engine, random.Random(0), **kwargs)
    actors = [Recorder(i) for i in range(4)]
    for actor in actors:
        net.register(actor)
    return engine, net, actors


class TestRegistration:
    def test_register_and_lookup(self):
        _, net, actors = make_net()
        assert net.actor(0) is actors[0]
        assert 2 in net
        assert len(net) == 4
        assert net.pids == [0, 1, 2, 3]

    def test_duplicate_pid_rejected(self):
        _, net, _ = make_net()
        with pytest.raises(ConfigError):
            net.register(Recorder(0))

    def test_unknown_actor_lookup_raises(self):
        _, net, _ = make_net()
        with pytest.raises(UnknownActor):
            net.actor(99)

    def test_send_to_unknown_raises(self):
        _, net, _ = make_net()
        with pytest.raises(UnknownActor):
            net.send(0, 99, Ping(sender=0, nonce=1))


class TestDelivery:
    def test_reliable_delivery(self):
        engine, net, actors = make_net()
        net.send(0, 1, Ping(sender=0, nonce=7))
        engine.run()
        assert len(actors[1].inbox) == 1
        assert actors[1].inbox[0].nonce == 7

    def test_stats_count_sent_and_delivered(self):
        engine, net, _ = make_net()
        net.send(0, 1, Ping(sender=0, nonce=1))
        engine.run()
        assert net.stats.sent_by_kind["ping"] == 1
        assert net.stats.delivered_by_kind["ping"] == 1

    def test_latency_delays_delivery(self):
        engine, net, actors = make_net(latency=ConstantLatency(5.0))
        net.send(0, 1, Ping(sender=0, nonce=1))
        engine.run(until=4.0)
        assert actors[1].inbox == []
        engine.run()
        assert len(actors[1].inbox) == 1
        assert engine.now == 5.0

    def test_lossy_channel_drops_some(self):
        engine, net, actors = make_net(p_success=0.5)
        for _ in range(200):
            net.send(0, 1, Ping(sender=0, nonce=1))
        engine.run()
        delivered = len(actors[1].inbox)
        assert 60 <= delivered <= 140  # ~100 expected
        assert net.stats.dropped_by_reason["channel_loss"] == 200 - delivered

    def test_p_success_zero_drops_all(self):
        engine, net, actors = make_net(p_success=0.0)
        net.send(0, 1, Ping(sender=0, nonce=1))
        engine.run()
        assert actors[1].inbox == []

    def test_invalid_p_success(self):
        with pytest.raises(ConfigError):
            make_net(p_success=1.5)


class TestFailures:
    def test_dead_target_drops_at_delivery(self):
        engine, net, actors = make_net(failure_model=StillbornFailures({1}))
        net.send(0, 1, Ping(sender=0, nonce=1))
        engine.run()
        assert actors[1].inbox == []
        assert net.stats.dropped_by_reason["dead_target"] == 1
        # The send attempt is still counted (message complexity is paid).
        assert net.stats.sent_by_kind["ping"] == 1

    def test_dead_sender_cannot_send(self):
        engine, net, actors = make_net(failure_model=StillbornFailures({0}))
        net.send(0, 1, Ping(sender=0, nonce=1))
        engine.run()
        assert actors[1].inbox == []
        assert net.stats.dropped_by_reason["dead_sender"] == 1

    def test_alive_passthrough(self):
        _, net, _ = make_net(failure_model=StillbornFailures({3}))
        assert net.is_alive(0)
        assert not net.is_alive(3)
        assert net.alive_pids() == [0, 1, 2]

    def test_dynamic_failures_block_probabilistically(self):
        engine, net, actors = make_net(
            failure_model=DynamicFailures(fail_probability=0.5)
        )
        for _ in range(200):
            net.send(0, 1, Ping(sender=0, nonce=1))
        engine.run()
        blocked = net.stats.dropped_by_reason["perceived_failed"]
        assert 60 <= blocked <= 140

    def test_churn_target_dies_in_flight(self):
        schedule = ChurnSchedule().crash_at(1, 2.0)
        engine, net, actors = make_net(
            failure_model=schedule, latency=ConstantLatency(5.0)
        )
        net.send(0, 1, Ping(sender=0, nonce=1))  # arrives at t=5, dead at t=2
        engine.run()
        assert actors[1].inbox == []
        assert net.stats.dropped_by_reason["dead_target"] == 1


class TestPartitions:
    def test_partitioned_pair_blocked(self):
        engine, net, actors = make_net(
            partition_model=StaticPartition([[0, 1], [2, 3]])
        )
        net.send(0, 2, Ping(sender=0, nonce=1))
        net.send(0, 1, Ping(sender=0, nonce=2))
        engine.run()
        assert actors[2].inbox == []
        assert len(actors[1].inbox) == 1
        assert net.stats.dropped_by_reason["partitioned"] == 1

    def test_partition_heals(self):
        engine, net, actors = make_net(
            partition_model=StaticPartition([[0, 1], [2, 3]], heals_at=10.0)
        )
        engine.schedule(10.0, lambda: net.send(0, 2, Ping(sender=0, nonce=1)))
        engine.run()
        assert len(actors[2].inbox) == 1


class TestTracing:
    def test_trace_records_sent_and_delivered(self):
        engine = Engine()
        trace = TraceLog()
        net = Network(engine, random.Random(0), trace=trace)
        a, b = Recorder(0), Recorder(1)
        net.register(a)
        net.register(b)
        net.send(0, 1, Ping(sender=0, nonce=1))
        engine.run()
        assert trace.count("net.sent") == 1
        assert trace.count("net.delivered") == 1

    def test_trace_records_drops_with_reason(self):
        engine = Engine()
        trace = TraceLog()
        net = Network(
            engine,
            random.Random(0),
            trace=trace,
            failure_model=StillbornFailures({1}),
        )
        net.register(Recorder(0))
        net.register(Recorder(1))
        net.send(0, 1, Ping(sender=0, nonce=1))
        engine.run()
        drops = trace.filter("net.dropped")
        assert len(drops) == 1
        assert drops[0].detail["reason"] == "dead_target"
