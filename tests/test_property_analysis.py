"""Property-based tests: the closed-form analysis behaves like analysis.

Monotonicity, bounds and algebraic identities over random parameters —
these catch transcription errors in formulas that spot checks miss.
"""

import math

import hypothesis.strategies as st
from hypothesis import assume, given, settings

from repro.analysis import (
    atomic_gossip_reliability,
    damulticast_memory,
    damulticast_messages,
    damulticast_reliability,
    intergroup_propagation_probability,
    match_broadcast,
    match_hierarchical,
    match_multicast,
)
from repro.analysis.complexity import damulticast_message_bound

sizes_strategy = st.lists(st.integers(1, 5000), min_size=1, max_size=6)
prob = st.floats(0.01, 1.0)


@given(sizes_strategy, st.floats(0, 10), st.floats(1, 20), st.integers(1, 10))
@settings(max_examples=150)
def test_messages_nonnegative_and_bounded(sizes, c, g, z):
    value = damulticast_messages(sizes, c=c, g=g, a=1, z=z)
    assert value >= 0
    bound = damulticast_message_bound(sizes, c=c, z=z)
    intra_only = sum(s * (math.log(s) if s > 1 else 0) + s * c for s in sizes)
    assert value >= intra_only - 1e-9


@given(sizes_strategy, st.floats(0, 8))
def test_messages_monotone_in_c(sizes, c):
    low = damulticast_messages(sizes, c=c)
    high = damulticast_messages(sizes, c=c + 1)
    assert high >= low


@given(st.integers(1, 100_000), st.floats(0, 10), st.integers(1, 10))
def test_memory_monotone_in_group_size(s, c, z):
    assert damulticast_memory(s + 1, c=c, z=z) >= damulticast_memory(
        s, c=c, z=z
    )


@given(st.floats(-2, 12))
def test_atomic_reliability_is_probability(c):
    value = atomic_gossip_reliability(c)
    assert 0.0 < value < 1.0


@given(st.integers(1, 10_000), st.floats(1, 50), prob)
def test_pit_is_probability_and_monotone_in_g(s, g, p_succ):
    low = intergroup_propagation_probability(s, g=g, p_succ=p_succ)
    high = intergroup_propagation_probability(s, g=g + 1, p_succ=p_succ)
    assert 0.0 <= low <= 1.0
    assert high >= low - 1e-12


@given(sizes_strategy, st.floats(0, 8), prob)
def test_reliability_is_probability_and_shrinks_with_depth(sizes, c, p_succ):
    value = damulticast_reliability(sizes, c=c, p_succ=p_succ)
    assert 0.0 <= value <= 1.0
    deeper = damulticast_reliability(sizes + [10], c=c, p_succ=p_succ)
    assert deeper <= value + 1e-12


@given(st.floats(0.0, 7.0), st.floats(0.9, 0.999999), st.integers(1, 6))
@settings(max_examples=200)
def test_multicast_match_algebra_balances(c, pit, t):
    result = match_multicast(c, pit, t=t, s_t=1000)
    if not result.feasible:
        return
    # (e^{-e^{-c1}} * pit)^t == (e^{-e^{-c}})^t  — the Appendix identity.
    ours = (atomic_gossip_reliability(result.c1) * pit) ** t
    target = atomic_gossip_reliability(c) ** t
    assert math.isclose(ours, target, rel_tol=1e-9)
    assert result.c1 >= 0.0


@given(st.floats(0.0, 6.0), st.floats(0.99, 0.999999), st.integers(1, 6))
@settings(max_examples=200)
def test_broadcast_match_algebra_balances(c, pit, t):
    result = match_broadcast(c, pit, t=t, n=10_000, s_t=1000)
    if not result.feasible:
        return
    ours = (atomic_gossip_reliability(result.c1) * pit) ** t
    assert math.isclose(
        ours, atomic_gossip_reliability(c), rel_tol=1e-9
    )
    assert result.c1 >= -1e-12


@given(
    st.floats(0.0, 8.0),
    st.floats(0.99, 0.999999),
    st.integers(1, 6),
    st.integers(1, 40),
)
@settings(max_examples=200)
def test_hierarchical_match_algebra_balances(c, pit, t, n_clusters):
    result = match_hierarchical(c, pit, t=t, n_clusters=n_clusters)
    if not result.feasible:
        return
    ours = (atomic_gossip_reliability(result.c1) * pit) ** t
    target = math.exp(-n_clusters * math.exp(-c) - math.exp(-c))
    assert math.isclose(ours, target, rel_tol=1e-9)
    assert result.c1 >= -1e-12


@given(st.floats(0.0, 7.0), st.floats(0.9, 0.999999), st.integers(1, 6))
def test_feasibility_windows_are_consistent(c, pit, t):
    result = match_multicast(c, pit, t=t)
    low, high = result.c_window
    assert result.feasible == (low <= c <= high)
