"""Tests for the determinism lint (``repro.lint``).

Each DET rule gets a fixture pair: a known-bad snippet the rule must
flag and a corrected snippet it must stay quiet on. On top of that,
the pragma machinery is exercised (suppression, mandatory rationale,
unused-pragma findings), and two repo-wide gates run: the src/ tree
must be lint-clean, and deleting any single inline pragma from src/
must make the lint fail again (checked on in-memory copies).
"""

import pathlib

import pytest

from repro.cli import main
from repro.lint import lint_source, run_lint
from repro.lint.pragmas import PRAGMA_MARKER, scan_pragmas
from repro.sim.rng import (
    STREAM_REGISTRY,
    normalize_stream_label,
    stream_pattern_regex,
    validate_stream_registry,
)

SRC_ROOT = pathlib.Path(__file__).resolve().parents[1] / "src"

#: a path that hits no exemption pattern in the default config
LIB_PATH = "src/repro/somewhere/module.py"


def rules_of(report):
    return sorted({finding.rule for finding in report.findings})


def lint(source, path=LIB_PATH):
    return lint_source(source, path)


# ----------------------------------------------------------------------
# DET001 — global random module
# ----------------------------------------------------------------------


class TestDet001:
    def test_fires_on_module_level_draw(self):
        report = lint("import random\nx = random.random()\n")
        assert "DET001" in rules_of(report)

    def test_fires_on_from_import(self):
        report = lint("from random import randint\nx = randint(1, 6)\n")
        assert "DET001" in rules_of(report)

    def test_fires_on_global_seed(self):
        report = lint("import random\nrandom.seed(0)\n")
        assert "DET001" in rules_of(report)

    def test_quiet_on_instance_draws(self):
        source = (
            "import random\n"
            "def draw(rng: random.Random) -> float:\n"
            "    return rng.random()\n"
        )
        assert "DET001" not in rules_of(lint(source))

    def test_quiet_on_random_random_construction(self):
        source = (
            "import random\n"
            "def make(seed: int):\n"
            "    return random.Random(seed)\n"
        )
        assert "DET001" not in rules_of(lint(source))


# ----------------------------------------------------------------------
# DET002 — wall-clock / entropy sources
# ----------------------------------------------------------------------


class TestDet002:
    def test_fires_on_time_time(self):
        report = lint("import time\nt = time.time()\n")
        assert "DET002" in rules_of(report)

    def test_fires_on_datetime_now(self):
        report = lint(
            "import datetime\nstamp = datetime.datetime.now()\n"
        )
        assert "DET002" in rules_of(report)

    def test_fires_on_os_urandom_and_secrets(self):
        assert "DET002" in rules_of(
            lint("import os\nblob = os.urandom(8)\n")
        )
        assert "DET002" in rules_of(lint("import secrets\n"))

    def test_fires_on_uuid4(self):
        report = lint("import uuid\nident = uuid.uuid4()\n")
        assert "DET002" in rules_of(report)

    def test_quiet_in_cli_paths(self):
        source = "import time\nt = time.time()\n"
        report = lint_source(source, "src/repro/cli.py")
        assert "DET002" not in rules_of(report)

    def test_quiet_in_benchmarks(self):
        source = "import time\nt = time.time()\n"
        report = lint_source(source, "benchmarks/bench_engine.py")
        assert "DET002" not in rules_of(report)


# ----------------------------------------------------------------------
# DET003 — PYTHONHASHSEED hazards
# ----------------------------------------------------------------------


class TestDet003:
    def test_fires_on_set_iteration_that_appends(self):
        source = (
            "def collect(rows):\n"
            "    names = {row.name for row in rows}\n"
            "    out = []\n"
            "    for name in names:\n"
            "        out.append(name)\n"
            "    return out\n"
        )
        assert "DET003" in rules_of(lint(source))

    def test_quiet_when_sorted(self):
        source = (
            "def collect(rows):\n"
            "    names = {row.name for row in rows}\n"
            "    out = []\n"
            "    for name in sorted(names):\n"
            "        out.append(name)\n"
            "    return out\n"
        )
        assert "DET003" not in rules_of(lint(source))

    def test_fires_on_dict_view_loop_with_rng_draw(self):
        source = (
            "def pick(tables, rng):\n"
            "    chosen = []\n"
            "    for name, table in tables.items():\n"
            "        if rng.random() < 0.5:\n"
            "            chosen.append(name)\n"
            "    return chosen\n"
        )
        assert "DET003" in rules_of(lint(source))

    def test_quiet_on_dict_view_loop_without_order_sensitivity(self):
        source = (
            "def total(counts):\n"
            "    best = 0\n"
            "    for value in counts.values():\n"
            "        best = max(best, value)\n"
            "    return best\n"
        )
        assert "DET003" not in rules_of(lint(source))

    def test_fires_on_hash_builtin(self):
        source = "def key(name: str) -> int:\n    return hash(name)\n"
        assert "DET003" in rules_of(lint(source))

    def test_quiet_on_set_membership_and_len(self):
        source = (
            "def seen(rows):\n"
            "    names = {row.name for row in rows}\n"
            "    return len(names)\n"
        )
        assert "DET003" not in rules_of(lint(source))


# ----------------------------------------------------------------------
# DET004 — stream-label registry
# ----------------------------------------------------------------------


class TestDet004:
    def test_fires_on_undeclared_literal(self):
        source = (
            "from repro.sim.rng import derive_seed\n"
            "seed = derive_seed(1, 'no-such-stream-label')\n"
        )
        assert "DET004" in rules_of(lint(source))

    def test_quiet_on_declared_literal(self):
        source = (
            "from repro.sim.rng import derive_seed\n"
            "seed = derive_seed(1, 'static-membership')\n"
        )
        assert "DET004" not in rules_of(lint(source))

    def test_quiet_on_declared_pattern_label(self):
        source = (
            "def seed_for(rngs, pid):\n"
            "    return rngs.stream(f'process/{pid}')\n"
        )
        assert "DET004" not in rules_of(lint(source))

    def test_fires_on_fstring_without_variable(self):
        source = (
            "from repro.sim.rng import derive_seed\n"
            "seed = derive_seed(1, f'static-membership')\n"
        )
        assert "DET004" in rules_of(lint(source))

    def test_fires_on_dynamic_label_that_matches_no_pattern(self):
        source = (
            "from repro.sim.rng import derive_seed\n"
            "def child(seed, a, b, c, d):\n"
            "    return derive_seed(seed, f'{a}/{b}/{c}/{d}')\n"
        )
        assert "DET004" in rules_of(lint(source))

    def test_fires_on_non_static_label(self):
        source = (
            "from repro.sim.rng import derive_seed\n"
            "def child(seed, name):\n"
            "    return derive_seed(seed, name)\n"
        )
        assert "DET004" in rules_of(lint(source))


# ----------------------------------------------------------------------
# DET005 — finite-checks on float parameters
# ----------------------------------------------------------------------


class TestDet005:
    def test_fires_on_raw_stored_float_param(self):
        source = (
            "class Model:\n"
            "    def __init__(self, rate: float):\n"
            "        self.rate = rate\n"
        )
        assert "DET005" in rules_of(lint(source))

    def test_quiet_when_validated(self):
        source = (
            "from repro.validation import check_finite\n"
            "class Model:\n"
            "    def __init__(self, rate: float):\n"
            "        check_finite(rate, 'rate')\n"
            "        self.rate = rate\n"
        )
        assert "DET005" not in rules_of(lint(source))

    def test_chained_comparison_counts_as_validation(self):
        source = (
            "class Model:\n"
            "    def __init__(self, p: float):\n"
            "        if not 0.0 <= p <= 1.0:\n"
            "            raise ValueError(p)\n"
            "        self.p = p\n"
        )
        assert "DET005" not in rules_of(lint(source))

    def test_single_comparison_does_not_count(self):
        # `nan < 0` is False — a lone ordered comparison accepts NaN.
        source = (
            "class Model:\n"
            "    def __init__(self, rate: float):\n"
            "        if rate < 0:\n"
            "            raise ValueError(rate)\n"
            "        self.rate = rate\n"
        )
        assert "DET005" in rules_of(lint(source))

    def test_delegation_counts(self):
        source = (
            "class Model:\n"
            "    def __init__(self, rate: float, clock):\n"
            "        self.task = clock.schedule(rate)\n"
        )
        assert "DET005" not in rules_of(lint(source))

    def test_module_functions_only_in_configured_paths(self):
        source = "def run(rate: float):\n    return {'rate': rate * 2}\n"
        assert "DET005" in rules_of(
            lint_source(source, "src/repro/workloads/extra.py")
        )
        assert "DET005" not in rules_of(
            lint_source(source, "src/repro/analysis/extra.py")
        )


# ----------------------------------------------------------------------
# Pragmas
# ----------------------------------------------------------------------

BAD_HASH = "def key(name: str) -> int:\n    return hash(name)\n"


class TestPragmas:
    def test_trailing_pragma_suppresses(self):
        source = (
            "def key(name: str) -> int:\n"
            "    return hash(name)  "
            "# repro-lint: allow[DET003]: interned lookup key only\n"
        )
        report = lint(source)
        assert report.ok
        assert [s.finding.rule for s in report.suppressed] == ["DET003"]
        assert report.suppressed[0].rationale == "interned lookup key only"

    def test_standalone_pragma_covers_next_line(self):
        source = (
            "def key(name: str) -> int:\n"
            "    # repro-lint: allow[DET003]: interned lookup key only\n"
            "    return hash(name)\n"
        )
        assert lint(source).ok

    def test_rationale_is_mandatory(self):
        source = (
            "def key(name: str) -> int:\n"
            "    return hash(name)  # repro-lint: allow[DET003]\n"
        )
        report = lint(source)
        rules = rules_of(report)
        assert "LINT001" in rules  # malformed / missing rationale
        assert "DET003" in rules  # and the finding is NOT suppressed

    def test_unused_pragma_is_a_finding(self):
        source = (
            "x = 1  # repro-lint: allow[DET001]: nothing to suppress here\n"
        )
        report = lint(source)
        assert rules_of(report) == ["LINT002"]

    def test_pragma_must_name_the_right_rule(self):
        source = (
            "def key(name: str) -> int:\n"
            "    return hash(name)  "
            "# repro-lint: allow[DET001]: wrong rule named\n"
        )
        report = lint(source)
        rules = rules_of(report)
        assert "DET003" in rules  # not suppressed by a DET001 pragma
        assert "LINT002" in rules  # and the DET001 pragma is unused

    def test_pragma_inside_string_literal_is_ignored(self):
        source = 'text = "# repro-lint: allow[DET001]: not a comment"\n'
        assert lint(source).ok


# ----------------------------------------------------------------------
# Repo-wide gates
# ----------------------------------------------------------------------


class TestSrcTreeGates:
    def test_src_tree_is_lint_clean(self):
        report = run_lint([SRC_ROOT])
        assert report.ok, "\n".join(f.render() for f in report.findings)

    def test_every_suppression_has_a_rationale(self):
        report = run_lint([SRC_ROOT])
        assert report.suppressed  # the triage left intentional pragmas
        for suppression in report.suppressed:
            assert suppression.rationale, suppression.finding.render()

    def test_deleting_any_pragma_fails_the_lint(self):
        """Every inline pragma in src/ suppresses a live finding: strip
        any one of them (in memory) and the lint must fail again."""
        checked = 0
        for path in sorted(SRC_ROOT.rglob("*.py")):
            source = path.read_text(encoding="utf-8")
            if PRAGMA_MARKER not in source:
                continue
            lines = source.splitlines(keepends=True)
            # the linter's own tokenize scan: comments only, so pragma
            # examples quoted inside docstrings are not touched
            for pragma in scan_pragmas(source, str(path)).pragmas:
                index = pragma.line - 1
                line = lines[index]
                mutated = lines.copy()
                if line.lstrip().startswith("#"):
                    del mutated[index]  # standalone pragma comment line
                else:
                    mutated[index] = line[: line.index("#")].rstrip() + "\n"
                report = lint_source("".join(mutated), str(path))
                assert not report.ok, (
                    f"{path}:{pragma.line}: pragma removed but lint stayed "
                    "clean — stale pragma?"
                )
                checked += 1
        assert checked >= 10  # the triage pass left real pragmas behind


# ----------------------------------------------------------------------
# Stream-label registry
# ----------------------------------------------------------------------


class TestStreamRegistry:
    def test_declared_registry_is_sound(self):
        assert validate_stream_registry() == []

    def test_duplicate_entry_detected(self):
        bad = {"run": ("network", "network")}
        assert any(
            "duplicate" in problem
            for problem in validate_stream_registry(bad)
        )

    def test_static_pattern_collision_detected(self):
        bad = {"run": ("pair/7/3", "pair/{sender}/{target}")}
        assert any(
            "collides" in problem
            for problem in validate_stream_registry(bad)
        )

    def test_pattern_pattern_collision_detected(self):
        bad = {"run": ("group/{topic}", "{kind}/{name}")}
        assert validate_stream_registry(bad)

    def test_distinct_prefixes_do_not_collide(self):
        good = {"run": ("group/{topic}", "pair/{sender}/{target}")}
        assert validate_stream_registry(good) == []

    def test_pattern_regex_matches_realizations(self):
        regex = stream_pattern_regex("pair/{sender}/{target}")
        assert regex.fullmatch("pair/3/9")
        assert not regex.fullmatch("pair/3/9/0")
        assert not regex.fullmatch("group/3")

    def test_normalize_stream_label(self):
        assert normalize_stream_label("pair/{sender}/{target}") == "pair/{}/{}"

    def test_registry_covers_every_scope(self):
        assert set(STREAM_REGISTRY) == {"run", "sweep", "registry"}


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestCli:
    def test_lint_src_exits_zero(self, capsys):
        assert main(["lint", str(SRC_ROOT)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_lint_reports_violations_with_exit_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n")
        assert main(["lint", str(bad)]) == 1
        assert "DET001" in capsys.readouterr().out

    def test_lint_json_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        assert main(["lint", "--format", "json", str(bad)]) == 1
        out = capsys.readouterr().out
        assert '"rule": "DET002"' in out

    def test_syntax_error_is_reported_not_raised(self, tmp_path, capsys):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        assert main(["lint", str(bad)]) == 1
        assert "LINT000" in capsys.readouterr().out
