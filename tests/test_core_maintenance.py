"""Unit tests for KEEP_TABLE_UPDATED (Fig. 6)."""

from repro.core import DaMulticastConfig, DaMulticastSystem, TopicParams
from repro.failures import ChurnSchedule
from repro.topics import ROOT, Topic

T1 = Topic.parse(".t1")
T2 = Topic.parse(".t1.t2")


def build(*, seed=0, g=50.0, failure_model=None):
    """Small dynamic system with aggressive maintenance for fast tests."""
    config = DaMulticastConfig(
        default_params=TopicParams(g=g, c=4, z=3, tau=1),
        maintain_interval=1.0,
        ping_timeout=0.5,
        bootstrap_timeout=1.0,
    )
    system = DaMulticastSystem(
        config=config, seed=seed, mode="dynamic", failure_model=failure_model
    )
    system.add_group(ROOT, 3)
    system.add_group(T1, 8)
    system.add_group(T2, 15)
    return system


class TestProbing:
    def test_probes_happen_with_high_g(self):
        system = build()
        system.run(until=20.0)
        probing = [
            p for p in system.group(T2) if p.maintenance.probes_started > 0
        ]
        assert probing  # p_sel = min(1, 50/15) = 1: everyone probes

    def test_probes_rare_with_low_g(self):
        system = build(g=1.0)  # p_sel = 1/15 per tick
        system.run(until=5.0)
        total_probes = sum(
            p.maintenance.probes_started for p in system.group(T2)
        )
        # 15 processes * ~5 ticks * 1/15 ~ 5 expected, far below all-probing.
        assert total_probes <= 25

    def test_pings_answered_with_pongs(self):
        system = build()
        system.run(until=10.0)
        stats = system.stats
        assert stats.sent_by_kind["ping"] > 0
        assert stats.sent_by_kind["pong"] > 0

    def test_healthy_table_not_refreshed(self):
        system = build()
        system.run(until=20.0)
        # All superprocesses alive: CHECK > tau, no NEWPROCESS traffic
        # beyond the odd race at startup.
        refreshes = sum(
            p.maintenance.refreshes_requested for p in system.group(T2)
        )
        assert refreshes <= 5


class TestRepair:
    def test_dead_entries_replaced(self):
        churn = ChurnSchedule()
        system = build(failure_model=churn)
        system.run(until=15.0)
        victim_holder = next(
            p for p in system.group(T2) if len(p.super_table) >= 2
        )
        victims = list(victim_holder.super_table.pids)[:-1]  # keep one alive
        for pid in victims:
            churn.crash_at(pid, 15.0)
        system.run(until=60.0)
        live = [
            pid
            for pid in victim_holder.super_table.pids
            if system.harness.is_alive(pid)
        ]
        assert live, "maintenance must re-populate live superprocesses"

    def test_total_loss_triggers_rebootstrap(self):
        churn = ChurnSchedule()
        system = build(failure_model=churn)
        system.run(until=15.0)
        holder = next(
            p for p in system.group(T2) if not p.super_table.is_empty
        )
        for pid in list(holder.super_table.pids):
            churn.crash_at(pid, 15.0)
        # Run long enough for probe -> clear -> FIND_SUPER_CONTACT cycle.
        system.run(until=80.0)
        live = [
            pid
            for pid in holder.super_table.pids
            if system.harness.is_alive(pid)
        ]
        assert live

    def test_empty_table_restarts_search(self):
        system = build()
        system.run(until=15.0)
        process = system.group(T2)[0]
        process.super_table.clear()
        process.find_super_contact.stop()
        system.run(until=25.0)
        assert not process.super_table.is_empty or (
            process.find_super_contact.active
        )


class TestLifecycle:
    def test_root_processes_do_not_maintain(self):
        system = build()
        system.run(until=5.0)
        for process in system.group(ROOT):
            assert not process.maintenance.running

    def test_unsubscribe_stops_everything(self):
        system = build()
        system.run(until=10.0)
        process = system.group(T2)[0]
        process.unsubscribe()
        assert not process.maintenance.running
        assert not process.find_super_contact.active
        assert not process.membership.started
