"""Tests for the three baseline algorithms (§VI-E comparisons)."""

import pytest

from repro.baselines import (
    GossipBroadcastSystem,
    GossipMulticastSystem,
    HierarchicalGossipSystem,
)
from repro.baselines.broadcast import GLOBAL_GROUP
from repro.baselines.hierarchical import CLUSTERS_ROOT
from repro.errors import ConfigError, UnknownTopic
from repro.failures import StillbornFailures
from repro.topics import ROOT, Topic

T1 = Topic.parse(".t1")
T2 = Topic.parse(".t1.t2")
SIZES = {ROOT: 5, T1: 20, T2: 60}


def populate(system):
    for topic, count in SIZES.items():
        system.add_group(topic, count)
    system.finalize_membership()
    return system


class TestBroadcast:
    def test_everyone_receives_everything(self):
        system = populate(GossipBroadcastSystem(seed=0))
        event = system.publish(T2)
        system.run_until_idle()
        receivers = system.tracker.delivery_count(event.event_id)
        assert receivers == sum(SIZES.values())

    def test_parasites_counted(self):
        system = populate(GossipBroadcastSystem(seed=0))
        system.publish(T1)  # T2 subscribers are NOT interested in T1 events
        system.run_until_idle()
        assert system.parasite_count() == SIZES[T2]

    def test_single_table_per_process(self):
        system = populate(GossipBroadcastSystem(seed=0))
        for process in system.processes:
            assert process.table_count == 1
            assert GLOBAL_GROUP in process.groups

    def test_message_complexity_n_log_n(self):
        system = populate(GossipBroadcastSystem(seed=0))
        system.publish(T2)
        system.run_until_idle()
        n = sum(SIZES.values())
        fanout = system.fanout(n)
        sent = system.stats.event_messages_sent()
        assert sent <= n * fanout
        assert sent >= 0.9 * n * fanout

    def test_publish_requires_finalize(self):
        system = GossipBroadcastSystem(seed=0)
        system.add_group(T2, 5)
        with pytest.raises(ConfigError):
            system.publish(T2)

    def test_delivered_fraction_full_on_reliable_network(self):
        system = populate(GossipBroadcastSystem(seed=0))
        event = system.publish(T2)
        system.run_until_idle()
        assert system.delivered_fraction(event, T2) == 1.0
        assert system.delivered_fraction(event, ROOT) == 1.0


class TestMulticast:
    def test_subscribers_join_subtopic_groups(self):
        system = populate(GossipMulticastSystem(seed=0))
        # A ROOT subscriber joins the root, T1 and T2 groups (3 tables);
        # a T2 subscriber joins only T2's group (1 table).
        root_proc = system.subscribers_of(ROOT)[0]
        t2_proc = system.subscribers_of(T2)[0]
        assert root_proc.table_count == 3
        assert t2_proc.table_count == 1

    def test_event_reaches_all_interested_only(self):
        system = populate(GossipMulticastSystem(seed=0))
        event = system.publish(T2)
        system.run_until_idle()
        receivers = set(system.tracker.receivers(event.event_id))
        interested = {p.pid for p in system.interested_in(T2)}
        assert receivers == interested

    def test_no_parasites(self):
        system = populate(GossipMulticastSystem(seed=0))
        system.publish(T2)
        system.publish(T1)
        system.run_until_idle()
        assert system.parasite_count() == 0

    def test_supertopic_event_skips_subtopic_subscribers(self):
        system = populate(GossipMulticastSystem(seed=0))
        event = system.publish(T1)
        system.run_until_idle()
        t2_pids = {p.pid for p in system.subscribers_of(T2)}
        receivers = set(system.tracker.receivers(event.event_id))
        assert receivers.isdisjoint(t2_pids)

    def test_unknown_topic_publish_rejected(self):
        system = populate(GossipMulticastSystem(seed=0))
        with pytest.raises(UnknownTopic):
            system.publish(".nonexistent")

    def test_group_membership_counts(self):
        system = populate(GossipMulticastSystem(seed=0))
        # Group T2 = subscribers of T2 + T1 + ROOT.
        assert len(system.group_members(T2)) == sum(SIZES.values())
        assert len(system.group_members(T1)) == SIZES[ROOT] + SIZES[T1]
        assert len(system.group_members(ROOT)) == SIZES[ROOT]


class TestHierarchical:
    def test_cluster_partition(self):
        system = populate(HierarchicalGossipSystem(seed=0, n_clusters=5))
        clusters = system.clusters()
        assert len(clusters) == 5
        total = sum(len(members) for members in clusters.values())
        assert total == sum(SIZES.values())
        sizes = {len(members) for members in clusters.values()}
        assert max(sizes) - min(sizes) <= 1  # balanced

    def test_two_tables_per_process(self):
        system = populate(HierarchicalGossipSystem(seed=0, n_clusters=5))
        for process in system.processes:
            assert process.table_count == 2
            assert CLUSTERS_ROOT in process.groups

    def test_cross_cluster_table_excludes_own_cluster(self):
        system = populate(HierarchicalGossipSystem(seed=0, n_clusters=5))
        for process in system.processes:
            cross = process.groups[CLUSTERS_ROOT].view
            for descriptor in cross:
                assert descriptor.topic != process.cluster

    def test_everyone_receives(self):
        system = populate(HierarchicalGossipSystem(seed=1, n_clusters=5))
        event = system.publish(T2)
        system.run_until_idle()
        assert system.tracker.delivery_count(event.event_id) == sum(
            SIZES.values()
        )

    def test_parasites_nonzero(self):
        system = populate(HierarchicalGossipSystem(seed=1, n_clusters=5))
        system.publish(T1)
        system.run_until_idle()
        assert system.parasite_count() == SIZES[T2]

    def test_inter_cluster_messages_tracked(self):
        system = populate(HierarchicalGossipSystem(seed=1, n_clusters=5))
        system.publish(T2)
        system.run_until_idle()
        inter = sum(system.stats.inter_group_sent.values())
        assert inter >= 1

    def test_too_many_clusters_rejected(self):
        system = HierarchicalGossipSystem(seed=0, n_clusters=50)
        system.add_group(T2, 10)
        with pytest.raises(ConfigError):
            system.finalize_membership()

    def test_invalid_cluster_count(self):
        with pytest.raises(ConfigError):
            HierarchicalGossipSystem(n_clusters=0)


class TestFairSubstrate:
    def test_failures_affect_baselines_too(self):
        failed = set(range(0, 85, 2))
        system = GossipBroadcastSystem(
            seed=3, failure_model=StillbornFailures(failed)
        )
        for topic, count in SIZES.items():
            system.add_group(topic, count)
        system.finalize_membership()
        alive_t2 = [
            p
            for p in system.subscribers_of(T2)
            if system.harness.is_alive(p.pid)
        ]
        event = system.publish(T2, publisher=alive_t2[0])
        system.run_until_idle()
        assert system.tracker.delivery_count(event.event_id) < sum(SIZES.values())

    def test_lossy_channels(self):
        system = populate(GossipBroadcastSystem(seed=4, p_success=0.85))
        event = system.publish(T2)
        system.run_until_idle()
        fraction = system.delivered_fraction(event, T2)
        assert fraction > 0.8
