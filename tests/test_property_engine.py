"""Property-based tests: the simulation engine's ordering guarantees."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.sim import Engine


@given(st.lists(st.floats(0.0, 100.0), min_size=0, max_size=40))
@settings(max_examples=150)
def test_callbacks_fire_in_nondecreasing_time_order(delays):
    engine = Engine()
    fired: list[float] = []
    for delay in delays:
        engine.schedule(delay, lambda: fired.append(engine.now))
    engine.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(st.lists(st.floats(0.0, 50.0), min_size=1, max_size=30))
def test_now_never_goes_backwards(delays):
    engine = Engine()
    observed: list[float] = []
    for delay in delays:
        engine.schedule(delay, lambda: observed.append(engine.now))
    previous = -1.0
    while engine.step():
        assert engine.now >= previous
        previous = engine.now


@given(
    st.lists(st.floats(0.0, 20.0), min_size=0, max_size=20),
    st.floats(0.0, 25.0),
)
def test_run_until_horizon_is_exact_split(delays, horizon):
    engine = Engine()
    fired: list[float] = []
    for delay in delays:
        engine.schedule(delay, lambda d=delay: fired.append(d))
    engine.run(until=horizon)
    assert all(d <= horizon for d in fired)
    remaining = [d for d in delays if d > horizon]
    assert engine.pending == len(remaining)
    engine.run()
    assert sorted(fired) == sorted(delays)


@given(st.lists(st.integers(0, 30), min_size=1, max_size=25))
def test_same_time_events_fire_fifo(tags):
    engine = Engine()
    fired: list[int] = []
    for tag in tags:
        engine.schedule(1.0, lambda tag=tag: fired.append(tag))
    engine.run()
    assert fired == tags


@given(
    st.lists(st.floats(0.0, 10.0), min_size=2, max_size=20),
    st.data(),
)
def test_cancellation_is_exact(delays, data):
    engine = Engine()
    fired: list[int] = []
    handles = [
        engine.schedule(delay, lambda i=i: fired.append(i))
        for i, delay in enumerate(delays)
    ]
    cancel_indices = data.draw(
        st.sets(st.integers(0, len(delays) - 1), max_size=len(delays))
    )
    for index in cancel_indices:
        handles[index].cancel()
    engine.run()
    assert set(fired) == set(range(len(delays))) - cancel_indices
