"""Unit tests for message types, scopes and latency models."""

import random

import pytest

from repro.core.events import Event, EventFactory, EventId
from repro.errors import ConfigError
from repro.net import (
    ConstantLatency,
    ExponentialLatency,
    UniformLatency,
    ZERO_LATENCY,
)
from repro.net.message import EventMessage, Scope
from repro.topics import Topic

T1 = Topic.parse(".t1")
T2 = Topic.parse(".t1.t2")


class TestScope:
    def test_intra_scope(self):
        scope = Scope("intra", T2)
        assert scope.kind == "intra"
        assert scope.super_group is None

    def test_inter_scope_requires_super_group(self):
        with pytest.raises(ValueError):
            Scope("inter", T2)

    def test_inter_scope(self):
        scope = Scope("inter", T2, T1)
        assert scope.super_group == T1

    def test_scope_is_hashable_value(self):
        assert Scope("intra", T2) == Scope("intra", T2)
        assert len({Scope("intra", T2), Scope("intra", T2)}) == 1


class TestEventMessage:
    def test_default_hops(self):
        event = Event(EventId(1, 1), T2, None, 0.0)
        message = EventMessage(sender=1, event=event, scope=Scope("intra", T2))
        assert message.hops == 1
        assert message.kind == "event"

    def test_messages_are_immutable(self):
        event = Event(EventId(1, 1), T2, None, 0.0)
        message = EventMessage(sender=1, event=event, scope=Scope("intra", T2))
        with pytest.raises(AttributeError):
            message.hops = 5  # type: ignore[misc]


class TestEventFactory:
    def test_sequences_increase(self):
        factory = EventFactory(7)
        first = factory.create(T2, None, 0.0)
        second = factory.create(T2, None, 1.0)
        assert first.event_id.sequence < second.event_id.sequence
        assert first.event_id.publisher == 7

    def test_event_ids_unique_across_factories(self):
        a = EventFactory(1).create(T2, None, 0.0)
        b = EventFactory(2).create(T2, None, 0.0)
        assert a.event_id != b.event_id

    def test_is_of_topic(self):
        event = EventFactory(1).create(T2, None, 0.0)
        assert event.is_of_topic(T2)
        assert event.is_of_topic(T1)
        assert not event.is_of_topic(Topic.parse(".other"))

    def test_str_forms(self):
        event = EventFactory(3).create(T2, None, 0.0)
        assert str(event.event_id) == "e3.1"
        assert ".t1.t2" in str(event)


class TestLatencyModels:
    def test_constant(self):
        rng = random.Random(0)
        model = ConstantLatency(2.5)
        assert model.sample(rng) == 2.5
        assert ZERO_LATENCY.sample(rng) == 0.0

    def test_constant_validation(self):
        with pytest.raises(ConfigError):
            ConstantLatency(-1.0)

    def test_uniform_bounds(self):
        rng = random.Random(1)
        model = UniformLatency(1.0, 3.0)
        samples = [model.sample(rng) for _ in range(200)]
        assert all(1.0 <= s <= 3.0 for s in samples)
        assert max(samples) > 2.5  # spread actually used

    def test_uniform_validation(self):
        with pytest.raises(ConfigError):
            UniformLatency(3.0, 1.0)
        with pytest.raises(ConfigError):
            UniformLatency(-1.0, 1.0)

    def test_exponential_mean(self):
        rng = random.Random(2)
        model = ExponentialLatency(2.0)
        samples = [model.sample(rng) for _ in range(3000)]
        mean = sum(samples) / len(samples)
        assert 1.8 <= mean <= 2.2
        assert all(s >= 0 for s in samples)

    def test_exponential_validation(self):
        with pytest.raises(ConfigError):
            ExponentialLatency(0.0)

    def test_reprs(self):
        assert "2.5" in repr(ConstantLatency(2.5))
        assert "Uniform" in repr(UniformLatency(0, 1))
        assert "Exponential" in repr(ExponentialLatency(1.0))
