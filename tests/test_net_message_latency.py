"""Unit tests for message types, scopes and latency models."""

import random

import pytest

from repro.core.events import Event, EventFactory, EventId
from repro.errors import ConfigError
from repro.net import (
    ConstantLatency,
    ExponentialLatency,
    UniformLatency,
    ZERO_LATENCY,
)
from repro.net.message import EventMessage, Scope
from repro.topics import Topic

T1 = Topic.parse(".t1")
T2 = Topic.parse(".t1.t2")


class TestScope:
    def test_intra_scope(self):
        scope = Scope("intra", T2)
        assert scope.kind == "intra"
        assert scope.super_group is None

    def test_inter_scope_requires_super_group(self):
        with pytest.raises(ValueError):
            Scope("inter", T2)

    def test_inter_scope(self):
        scope = Scope("inter", T2, T1)
        assert scope.super_group == T1

    def test_scope_is_hashable_value(self):
        assert Scope("intra", T2) == Scope("intra", T2)
        assert len({Scope("intra", T2), Scope("intra", T2)}) == 1


class TestEventMessage:
    def test_default_hops(self):
        event = Event(EventId(1, 1), T2, None, 0.0)
        message = EventMessage(sender=1, event=event, scope=Scope("intra", T2))
        assert message.hops == 1
        assert message.kind == "event"

    def test_messages_are_immutable(self):
        event = Event(EventId(1, 1), T2, None, 0.0)
        message = EventMessage(sender=1, event=event, scope=Scope("intra", T2))
        with pytest.raises(AttributeError):
            message.hops = 5  # type: ignore[misc]


class TestEventFactory:
    def test_sequences_increase(self):
        factory = EventFactory(7)
        first = factory.create(T2, None, 0.0)
        second = factory.create(T2, None, 1.0)
        assert first.event_id.sequence < second.event_id.sequence
        assert first.event_id.publisher == 7

    def test_event_ids_unique_across_factories(self):
        a = EventFactory(1).create(T2, None, 0.0)
        b = EventFactory(2).create(T2, None, 0.0)
        assert a.event_id != b.event_id

    def test_is_of_topic(self):
        event = EventFactory(1).create(T2, None, 0.0)
        assert event.is_of_topic(T2)
        assert event.is_of_topic(T1)
        assert not event.is_of_topic(Topic.parse(".other"))

    def test_str_forms(self):
        event = EventFactory(3).create(T2, None, 0.0)
        assert str(event.event_id) == "e3.1"
        assert ".t1.t2" in str(event)


class TestLatencyModels:
    def test_constant(self):
        rng = random.Random(0)
        model = ConstantLatency(2.5)
        assert model.sample(rng) == 2.5
        assert ZERO_LATENCY.sample(rng) == 0.0

    def test_constant_validation(self):
        with pytest.raises(ConfigError):
            ConstantLatency(-1.0)

    def test_constant_rejects_non_finite(self):
        # `nan < 0` is False, so an unguarded constructor would accept a
        # NaN delay and schedule deliveries at NaN timestamps.
        with pytest.raises(ConfigError, match="finite"):
            ConstantLatency(float("nan"))
        with pytest.raises(ConfigError, match="finite"):
            ConstantLatency(float("inf"))

    def test_uniform_bounds(self):
        rng = random.Random(1)
        model = UniformLatency(1.0, 3.0)
        samples = [model.sample(rng) for _ in range(200)]
        assert all(1.0 <= s <= 3.0 for s in samples)
        assert max(samples) > 2.5  # spread actually used

    def test_uniform_validation(self):
        with pytest.raises(ConfigError):
            UniformLatency(3.0, 1.0)
        with pytest.raises(ConfigError):
            UniformLatency(-1.0, 1.0)

    def test_uniform_rejects_non_finite(self):
        # NaN bounds pass `low < 0 or high < low` (both comparisons False).
        with pytest.raises(ConfigError, match="finite"):
            UniformLatency(float("nan"), float("nan"))
        with pytest.raises(ConfigError, match="finite"):
            UniformLatency(0.0, float("inf"))

    def test_exponential_mean(self):
        rng = random.Random(2)
        model = ExponentialLatency(2.0)
        samples = [model.sample(rng) for _ in range(3000)]
        mean = sum(samples) / len(samples)
        assert 1.8 <= mean <= 2.2
        assert all(s >= 0 for s in samples)

    def test_exponential_validation(self):
        with pytest.raises(ConfigError):
            ExponentialLatency(0.0)

    def test_exponential_rejects_non_finite(self):
        # `inf <= 0` is False, so an unguarded mean of inf was accepted
        # and expovariate(1/inf) degenerated to rate-0 sampling.
        with pytest.raises(ConfigError, match="finite"):
            ExponentialLatency(float("inf"))
        with pytest.raises(ConfigError, match="finite"):
            ExponentialLatency(float("nan"))

    def test_reprs(self):
        assert "2.5" in repr(ConstantLatency(2.5))
        assert "Uniform" in repr(UniformLatency(0, 1))
        assert "Exponential" in repr(ExponentialLatency(1.0))


class TestLinkClassLatency:
    def _model(self):
        from repro.net import LinkClassLatency

        return LinkClassLatency(
            ConstantLatency(0.1), {"inter": ConstantLatency(2.0)}
        )

    def test_unbound_falls_back_to_default(self):
        rng = random.Random(0)
        model = self._model()
        assert model.sample(rng) == 0.1
        assert model.sample_link(1, 2, rng) == 0.1

    def test_bound_classifier_selects_override(self):
        rng = random.Random(0)
        model = self._model()
        model.bind(lambda s, t: "inter" if (s, t) == (1, 2) else "intra")
        assert model.sample_link(1, 2, rng) == 2.0
        assert model.sample_link(2, 1, rng) == 0.1  # intra has no override

    def test_unclassifiable_link_uses_default(self):
        rng = random.Random(0)
        model = self._model()
        model.bind(lambda s, t: None)
        assert model.sample_link(5, 6, rng) == 0.1

    def test_rejects_bad_class_names(self):
        from repro.net import LinkClassLatency

        with pytest.raises(ConfigError):
            LinkClassLatency(ConstantLatency(0.0), {"": ConstantLatency(1.0)})

    def test_network_uses_per_link_delays(self):
        from repro.net import LinkClassLatency, Network
        from repro.sim import Engine

        class Sink:
            def __init__(self, pid):
                self.pid = pid
                self.received_at = []

            def handle_message(self, message):
                self.received_at.append(engine.now)

        engine = Engine()
        model = LinkClassLatency(
            ConstantLatency(0.0), {"inter": ConstantLatency(3.0)}
        )
        model.bind(lambda s, t: "inter" if t == 2 else "intra")
        network = Network(engine, random.Random(0), latency=model)
        sinks = [Sink(i) for i in range(3)]
        for sink in sinks:
            network.register(sink)
        from repro.net.message import Ping

        ping = Ping(sender=0, nonce=1)
        network.send(0, 1, ping)
        network.send(0, 2, ping)
        network.multicast(0, [1, 2], ping)
        engine.run()
        assert sinks[1].received_at == [0.0, 0.0]
        assert sinks[2].received_at == [3.0, 3.0]
