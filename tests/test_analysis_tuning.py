"""Unit tests for the Appendix tuning equivalences (eqs. 14-30).

The key property tested throughout: plugging the derived ``c1`` back into
the reliability formulas reproduces the target baseline's reliability —
i.e. the algebra of the Appendix actually balances.
"""

import math

import pytest

from repro.analysis import (
    atomic_gossip_reliability,
    match_broadcast,
    match_hierarchical,
    match_multicast,
)
from repro.errors import ConfigError


def damulticast_average_reliability(c1: float, pit: float, t: int) -> float:
    """The paper's worst case (j=0) average-case form: (e^{-e^{-c1}}·pit)^t."""
    return (atomic_gossip_reliability(c1) * pit) ** t


class TestMatchMulticast:
    def test_equality_holds(self):
        pit = 0.999
        c = 2.0
        result = match_multicast(c, pit, t=3)
        assert result.feasible
        ours = damulticast_average_reliability(result.c1, pit, t=3)
        target = atomic_gossip_reliability(c) ** 3
        assert ours == pytest.approx(target, rel=1e-9)

    def test_feasibility_window(self):
        pit = 0.99
        limit = -math.log(-math.log(pit))
        assert match_multicast(limit - 0.01, pit).feasible
        assert not match_multicast(limit + 0.01, pit).feasible
        assert not match_multicast(-0.5, pit).feasible

    def test_pit_one_degenerates_to_c(self):
        result = match_multicast(3.0, 1.0)
        assert result.feasible
        assert result.c1 == pytest.approx(3.0)

    def test_c1_exceeds_c(self):
        # Compensating for lossy inter-group hops requires more gossip.
        result = match_multicast(2.0, 0.995, t=3)
        assert result.c1 > 2.0

    def test_z_bound_positive_for_paper_scenario(self):
        result = match_multicast(2.0, 0.9999, t=3, s_t=1000)
        assert result.z_bound is not None
        assert result.z_bound > 3  # paper's z=3 fits comfortably

    def test_z_bound_formula(self):
        pit, c, t, s_t = 0.999, 1.0, 3, 500.0
        result = match_multicast(c, pit, t=t, s_t=s_t)
        expected = (t - 1) * (math.log(s_t) + c) + math.log(
            1 + math.exp(c) * math.log(pit)
        )
        assert result.z_bound == pytest.approx(expected)

    def test_infeasible_has_no_values(self):
        result = match_multicast(10.0, 0.9)
        assert not result.feasible
        assert result.c1 is None
        assert result.z_bound is None

    def test_pit_validation(self):
        with pytest.raises(ConfigError):
            match_multicast(1.0, 0.0)
        with pytest.raises(ConfigError):
            match_multicast(1.0, 1.5)


class TestMatchBroadcast:
    def test_equality_holds(self):
        pit = 0.9995
        c = 2.0
        t = 3
        result = match_broadcast(c, pit, t=t)
        assert result.feasible
        # Appendix eq. 21: sum of e^{-c1} minus ln(prod pit) equals e^{-c}.
        lhs = t * math.exp(-result.c1) - t * math.log(pit)
        assert lhs == pytest.approx(math.exp(-c), rel=1e-9)

    def test_end_to_end_reliability_matches(self):
        pit = 0.9995
        c = 2.0
        t = 3
        result = match_broadcast(c, pit, t=t)
        ours = damulticast_average_reliability(result.c1, pit, t)
        assert ours == pytest.approx(atomic_gossip_reliability(c), rel=1e-9)

    def test_feasibility_window(self):
        pit, t = 0.995, 3
        limit = -math.log(-t * math.log(pit))
        assert match_broadcast(limit - 0.01, pit, t=t).feasible
        assert not match_broadcast(limit + 0.01, pit, t=t).feasible

    def test_z_bound_needs_n_much_larger_than_st(self):
        # Gain requires ln(n) > ln(S_T) + ln(t): try a big system.
        good = match_broadcast(1.0, 0.9999, t=3, n=100_000, s_t=1000)
        assert good.z_bound is not None and good.z_bound > 0
        tight = match_broadcast(1.0, 0.9999, t=3, n=1110, s_t=1000)
        assert tight.z_bound is not None and tight.z_bound < 1


class TestMatchHierarchical:
    def test_equality_holds(self):
        pit, c, t, n = 0.9995, 2.0, 3, 10
        result = match_hierarchical(c, pit, t=t, n_clusters=n)
        assert result.feasible
        # Appendix eq. 27: t·e^{-cT} − t·ln(pit) = (N+1)·e^{-c}.
        lhs = t * math.exp(-result.c1) - t * math.log(pit)
        rhs = (n + 1) * math.exp(-c)
        assert lhs == pytest.approx(rhs, rel=1e-9)

    def test_end_to_end_reliability_matches(self):
        pit, c, t, n = 0.9995, 2.0, 3, 10
        result = match_hierarchical(c, pit, t=t, n_clusters=n)
        ours = damulticast_average_reliability(result.c1, pit, t)
        target = math.exp(-n * math.exp(-c) - math.exp(-c))
        assert ours == pytest.approx(target, rel=1e-9)

    def test_window_has_lower_bound(self):
        pit, t, n = 0.9995, 3, 10
        result = match_hierarchical(5.0, pit, t=t, n_clusters=n)
        low, high = result.c_window
        assert low > 0  # unlike the other baselines, c must not be too small
        assert not match_hierarchical(low - 0.05, pit, t=t, n_clusters=n).feasible
        if math.isfinite(high):
            assert not match_hierarchical(
                high + 0.05, pit, t=t, n_clusters=n
            ).feasible

    def test_z_bound_formula(self):
        pit, c, t, n = 0.999, 2.0, 3, 10
        result = match_hierarchical(c, pit, t=t, n_clusters=n)
        if result.feasible:
            inner = t * math.exp(c) * math.log(pit) + n + 1
            expected = c + math.log(n) + math.log(inner) - math.log(t)
            assert result.z_bound == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ConfigError):
            match_hierarchical(1.0, 0.99, n_clusters=0)
        with pytest.raises(ConfigError):
            match_hierarchical(1.0, 0.99, t=0)
