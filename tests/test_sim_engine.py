"""Unit tests for the discrete-event engine and periodic tasks."""

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.sim import Engine


class TestScheduling:
    def test_events_run_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(3.0, lambda: order.append("c"))
        engine.schedule(1.0, lambda: order.append("a"))
        engine.schedule(2.0, lambda: order.append("b"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_fifo(self):
        engine = Engine()
        order = []
        for label in "abc":
            engine.schedule(1.0, lambda label=label: order.append(label))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_now_advances_to_event_time(self):
        engine = Engine()
        times = []
        engine.schedule(2.5, lambda: times.append(engine.now))
        engine.run()
        assert times == [2.5]
        assert engine.now == 2.5

    def test_zero_delay_runs_after_current_event(self):
        engine = Engine()
        order = []

        def first():
            order.append("first")
            engine.schedule(0.0, lambda: order.append("nested"))

        engine.schedule(1.0, first)
        engine.schedule(1.0, lambda: order.append("second"))
        engine.run()
        # nested was scheduled during 'first' so it runs after 'second'
        # (FIFO among same-time events).
        assert order == ["first", "second", "nested"]

    def test_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(SchedulingError):
            engine.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        engine = Engine()
        engine.schedule(5.0, lambda: None)
        engine.run()
        with pytest.raises(SchedulingError):
            engine.schedule_at(1.0, lambda: None)

    def test_cancel_prevents_execution(self):
        engine = Engine()
        fired = []
        handle = engine.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        engine.run()
        assert fired == []
        assert handle.cancelled
        assert not handle.fired

    def test_handle_flags(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        assert handle.pending
        engine.run()
        assert handle.fired
        assert not handle.pending


class TestRun:
    def test_run_until_horizon(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(10.0, lambda: fired.append(2))
        executed = engine.run(until=5.0)
        assert executed == 1
        assert fired == [1]
        assert engine.now == 5.0
        # The later event still fires on the next run.
        engine.run()
        assert fired == [1, 2]

    def test_run_until_advances_clock_when_queue_empties(self):
        engine = Engine()
        engine.run(until=42.0)
        assert engine.now == 42.0

    def test_max_events_guard_raises_on_livelock(self):
        engine = Engine()

        def rearm():
            engine.schedule(1.0, rearm)

        engine.schedule(1.0, rearm)
        with pytest.raises(SimulationError):
            engine.run(max_events=100)

    def test_max_events_with_until_stops_quietly(self):
        engine = Engine()

        def rearm():
            engine.schedule(1.0, rearm)

        engine.schedule(1.0, rearm)
        executed = engine.run(until=1000.0, max_events=10)
        assert executed == 10

    def test_run_not_reentrant(self):
        engine = Engine()
        errors = []

        def inner():
            try:
                engine.run()
            except SimulationError as exc:
                errors.append(exc)

        engine.schedule(1.0, inner)
        engine.run()
        assert len(errors) == 1

    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False

    def test_processed_counter(self):
        engine = Engine()
        for _ in range(5):
            engine.schedule(1.0, lambda: None)
        engine.run()
        assert engine.processed == 5


class TestPeriodicTask:
    def test_fires_repeatedly(self):
        engine = Engine()
        ticks = []
        engine.every(1.0, lambda: ticks.append(engine.now), initial_delay=1.0)
        engine.run(until=5.5)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_stop(self):
        engine = Engine()
        ticks = []
        task = engine.every(1.0, lambda: ticks.append(1), initial_delay=1.0)
        engine.schedule(2.5, task.stop)
        engine.run(until=10.0)
        assert len(ticks) == 2
        assert not task.running

    def test_callback_false_stops(self):
        engine = Engine()
        ticks = []

        def tick():
            ticks.append(1)
            return len(ticks) < 3

        engine.every(1.0, tick)
        engine.run(until=100.0)
        assert len(ticks) == 3

    def test_max_firings(self):
        engine = Engine()
        ticks = []
        task = engine.every(1.0, lambda: ticks.append(1), max_firings=4)
        engine.run(until=100.0)
        assert len(ticks) == 4
        assert task.firings == 4

    def test_invalid_interval(self):
        with pytest.raises(SchedulingError):
            Engine().every(0.0, lambda: None)

    def test_initial_delay_zero_not_allowed_to_loop(self):
        engine = Engine()
        ticks = []
        engine.every(2.0, lambda: ticks.append(engine.now), initial_delay=0.5)
        engine.run(until=5.0)
        assert ticks == [0.5, 2.5, 4.5]
