"""Unit tests for the discrete-event engine and periodic tasks."""

import gc
import weakref

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.sim import Engine


class TestScheduling:
    def test_events_run_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(3.0, lambda: order.append("c"))
        engine.schedule(1.0, lambda: order.append("a"))
        engine.schedule(2.0, lambda: order.append("b"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_fifo(self):
        engine = Engine()
        order = []
        for label in "abc":
            engine.schedule(1.0, lambda label=label: order.append(label))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_now_advances_to_event_time(self):
        engine = Engine()
        times = []
        engine.schedule(2.5, lambda: times.append(engine.now))
        engine.run()
        assert times == [2.5]
        assert engine.now == 2.5

    def test_zero_delay_runs_after_current_event(self):
        engine = Engine()
        order = []

        def first():
            order.append("first")
            engine.schedule(0.0, lambda: order.append("nested"))

        engine.schedule(1.0, first)
        engine.schedule(1.0, lambda: order.append("second"))
        engine.run()
        # nested was scheduled during 'first' so it runs after 'second'
        # (FIFO among same-time events).
        assert order == ["first", "second", "nested"]

    def test_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(SchedulingError):
            engine.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        engine = Engine()
        engine.schedule(5.0, lambda: None)
        engine.run()
        with pytest.raises(SchedulingError):
            engine.schedule_at(1.0, lambda: None)

    def test_cancel_prevents_execution(self):
        engine = Engine()
        fired = []
        handle = engine.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        engine.run()
        assert fired == []
        assert handle.cancelled
        assert not handle.fired

    def test_handle_flags(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        assert handle.pending
        engine.run()
        assert handle.fired
        assert not handle.pending


class TestRun:
    def test_run_until_horizon(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(10.0, lambda: fired.append(2))
        executed = engine.run(until=5.0)
        assert executed == 1
        assert fired == [1]
        assert engine.now == 5.0
        # The later event still fires on the next run.
        engine.run()
        assert fired == [1, 2]

    def test_run_until_advances_clock_when_queue_empties(self):
        engine = Engine()
        engine.run(until=42.0)
        assert engine.now == 42.0

    def test_max_events_guard_raises_on_livelock(self):
        engine = Engine()

        def rearm():
            engine.schedule(1.0, rearm)

        engine.schedule(1.0, rearm)
        with pytest.raises(SimulationError):
            engine.run(max_events=100)

    def test_max_events_with_until_stops_quietly(self):
        engine = Engine()

        def rearm():
            engine.schedule(1.0, rearm)

        engine.schedule(1.0, rearm)
        executed = engine.run(until=1000.0, max_events=10)
        assert executed == 10

    def test_run_not_reentrant(self):
        engine = Engine()
        errors = []

        def inner():
            try:
                engine.run()
            except SimulationError as exc:
                errors.append(exc)

        engine.schedule(1.0, inner)
        engine.run()
        assert len(errors) == 1

    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False

    def test_processed_counter(self):
        engine = Engine()
        for _ in range(5):
            engine.schedule(1.0, lambda: None)
        engine.run()
        assert engine.processed == 5


class TestPendingAccuracy:
    def test_pending_counts_live_events_only(self):
        engine = Engine()
        first = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        assert engine.pending == 2
        first.cancel()
        # The dead heap entry no longer counts, even before it is popped.
        assert engine.pending == 1
        engine.run()
        assert engine.pending == 0

    def test_double_cancel_does_not_double_decrement(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert engine.pending == 1

    def test_cancel_after_fire_is_noop(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        engine.run()
        handle.cancel()
        assert engine.pending == 0
        assert handle.fired and not handle.cancelled

    def test_cancel_releases_callback_closure(self):
        engine = Engine()

        class Payload:
            pass

        payload = Payload()
        ref = weakref.ref(payload)
        handle = engine.schedule(100.0, lambda: payload)
        del payload
        handle.cancel()
        gc.collect()
        # The closure (and everything it captured) is gone even though the
        # cancelled entry still sits in the heap.
        assert ref() is None

    def test_fired_callback_released_too(self):
        engine = Engine()

        class Payload:
            pass

        payload = Payload()
        ref = weakref.ref(payload)
        handle = engine.schedule(1.0, lambda: payload)
        engine.run()
        del payload
        gc.collect()
        assert handle.fired
        assert ref() is None


class TestScheduleBatch:
    def test_batch_runs_all_in_order(self):
        engine = Engine()
        order = []
        engine.schedule_batch(
            1.0, [lambda label=label: order.append(label) for label in "abc"]
        )
        engine.run()
        assert order == ["a", "b", "c"]

    def test_batch_interleaves_fifo_with_singles(self):
        engine = Engine()
        order = []
        engine.schedule(1.0, lambda: order.append("before"))
        engine.schedule_batch(
            1.0, [lambda n=n: order.append(f"batch{n}") for n in (1, 2)]
        )
        engine.schedule(1.0, lambda: order.append("after"))
        engine.run()
        assert order == ["before", "batch1", "batch2", "after"]

    def test_zero_delay_batch_runs_after_current_same_time_events(self):
        engine = Engine()
        order = []

        def first():
            order.append("first")
            engine.schedule_batch(0.0, [lambda: order.append("nested")])

        engine.schedule(1.0, first)
        engine.schedule(1.0, lambda: order.append("second"))
        engine.run()
        assert order == ["first", "second", "nested"]

    def test_batch_counts_each_callback(self):
        engine = Engine()
        engine.schedule_batch(1.0, [lambda: None] * 3)
        assert engine.pending == 3
        executed = engine.run()
        assert executed == 3
        assert engine.processed == 3

    def test_cancel_batch_cancels_all(self):
        engine = Engine()
        fired = []
        handle = engine.schedule_batch(1.0, [lambda: fired.append(1)] * 4)
        assert engine.pending == 4
        handle.cancel()
        assert engine.pending == 0
        engine.run()
        assert fired == []

    def test_empty_batch_rejected(self):
        with pytest.raises(SchedulingError):
            Engine().schedule_batch(1.0, [])

    def test_negative_delay_rejected(self):
        with pytest.raises(SchedulingError):
            Engine().schedule_batch(-1.0, [lambda: None])

    def test_schedule_batch_at_past_rejected(self):
        engine = Engine()
        engine.schedule(5.0, lambda: None)
        engine.run()
        with pytest.raises(SchedulingError):
            engine.schedule_batch_at(1.0, [lambda: None])

    def test_schedule_batch_at_absolute_time(self):
        engine = Engine()
        times = []
        engine.schedule_batch_at(3.5, [lambda: times.append(engine.now)] * 2)
        engine.run()
        assert times == [3.5, 3.5]


class TestScheduleApply:
    def test_apply_calls_fn_with_args(self):
        engine = Engine()
        seen = []
        engine.schedule_apply(1.0, lambda a, b: seen.append((a, b)), (3, "x"))
        engine.run()
        assert seen == [(3, "x")]

    def test_apply_count_accounting(self):
        engine = Engine()
        calls = []
        engine.schedule_apply(1.0, calls.append, ("batch",), count=7)
        assert engine.pending == 7
        executed = engine.run()
        assert calls == ["batch"]  # one physical call...
        assert executed == 7  # ...standing for seven logical events
        assert engine.processed == 7
        assert engine.pending == 0

    def test_apply_no_args(self):
        engine = Engine()
        seen = []
        engine.schedule_apply(0.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [0.0]

    def test_apply_interleaves_fifo_with_closures(self):
        engine = Engine()
        order = []
        engine.schedule(1.0, lambda: order.append("before"))
        engine.schedule_apply(1.0, order.append, ("applied",), count=3)
        engine.schedule(1.0, lambda: order.append("after"))
        engine.run()
        assert order == ["before", "applied", "after"]

    def test_cancel_apply_releases_args_and_count(self):
        engine = Engine()
        fired = []
        handle = engine.schedule_apply(1.0, fired.append, (1,), count=5)
        assert engine.pending == 5
        handle.cancel()
        assert engine.pending == 0
        assert handle._args is None
        engine.run()
        assert fired == []

    def test_apply_negative_delay_rejected(self):
        with pytest.raises(SchedulingError):
            Engine().schedule_apply(-1.0, lambda: None)

    def test_apply_zero_count_rejected(self):
        with pytest.raises(SchedulingError):
            Engine().schedule_apply(1.0, lambda: None, (), count=0)

    def test_apply_at_past_rejected(self):
        engine = Engine()
        engine.schedule(5.0, lambda: None)
        engine.run()
        with pytest.raises(SchedulingError):
            engine.schedule_apply_at(1.0, lambda: None)

    def test_apply_at_absolute_time(self):
        engine = Engine()
        times = []
        engine.schedule_apply_at(3.5, lambda: times.append(engine.now))
        engine.run()
        assert times == [3.5]


class TestZeroLatencyBucket:
    def test_mixed_bucket_and_heap_order(self):
        engine = Engine()
        order = []

        def at_two():
            order.append("heap@2")
            engine.schedule(0.0, lambda: order.append("bucket@2"))
            engine.schedule(1.0, lambda: order.append("heap@3"))

        engine.schedule(2.0, at_two)
        engine.run()
        assert order == ["heap@2", "bucket@2", "heap@3"]

    def test_cancelled_bucket_entry_skipped(self):
        engine = Engine()
        fired = []

        def kickoff():
            doomed = engine.schedule(0.0, lambda: fired.append("doomed"))
            engine.schedule(0.0, lambda: fired.append("kept"))
            doomed.cancel()

        engine.schedule(1.0, kickoff)
        engine.run()
        assert fired == ["kept"]

    def test_until_horizon_with_bucket_events(self):
        engine = Engine()
        fired = []

        def at_one():
            fired.append("one")
            engine.schedule(0.0, lambda: fired.append("one-nested"))

        engine.schedule(1.0, at_one)
        engine.schedule(10.0, lambda: fired.append("ten"))
        engine.run(until=5.0)
        assert fired == ["one", "one-nested"]
        assert engine.now == 5.0


class TestPeriodicTask:
    def test_fires_repeatedly(self):
        engine = Engine()
        ticks = []
        engine.every(1.0, lambda: ticks.append(engine.now), initial_delay=1.0)
        engine.run(until=5.5)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_stop(self):
        engine = Engine()
        ticks = []
        task = engine.every(1.0, lambda: ticks.append(1), initial_delay=1.0)
        engine.schedule(2.5, task.stop)
        engine.run(until=10.0)
        assert len(ticks) == 2
        assert not task.running

    def test_callback_false_stops(self):
        engine = Engine()
        ticks = []

        def tick():
            ticks.append(1)
            return len(ticks) < 3

        engine.every(1.0, tick)
        engine.run(until=100.0)
        assert len(ticks) == 3

    def test_max_firings(self):
        engine = Engine()
        ticks = []
        task = engine.every(1.0, lambda: ticks.append(1), max_firings=4)
        engine.run(until=100.0)
        assert len(ticks) == 4
        assert task.firings == 4

    def test_invalid_interval(self):
        with pytest.raises(SchedulingError):
            Engine().every(0.0, lambda: None)

    def test_initial_delay_zero_not_allowed_to_loop(self):
        engine = Engine()
        ticks = []
        engine.every(2.0, lambda: ticks.append(engine.now), initial_delay=0.5)
        engine.run(until=5.0)
        assert ticks == [0.5, 2.5, 4.5]
