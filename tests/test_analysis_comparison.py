"""Tests for the §VI-E closed-form comparison tables."""

import math

import pytest

from repro.analysis.comparison import ChainScenario, comparison_table
from repro.errors import ConfigError


class TestChainScenario:
    def test_defaults_are_paper_values(self):
        scenario = ChainScenario()
        assert tuple(scenario.sizes) == (1000, 100, 10)
        assert scenario.n == 1110
        assert scenario.t == 3
        assert scenario.cluster_size == 111

    def test_empty_sizes_rejected(self):
        with pytest.raises(ConfigError):
            ChainScenario(sizes=())

    def test_cluster_size_at_least_one(self):
        scenario = ChainScenario(sizes=(3,), n_clusters=10)
        assert scenario.cluster_size == 1


class TestComparisonTable:
    def test_three_tables_produced(self):
        tables = comparison_table()
        assert set(tables) == {"messages", "memory", "reliability"}

    def test_all_algorithms_present(self):
        tables = comparison_table()
        for table in tables.values():
            algorithms = table.column("algorithm")
            assert any("daMulticast" in a for a in algorithms)
            assert any("(a)" in a for a in algorithms)
            assert any("(b)" in a for a in algorithms)
            assert any("(c)" in a for a in algorithms)

    def test_message_complexity_rows(self):
        tables = comparison_table()
        rows = {
            row["algorithm"]: row for row in tables["messages"].as_dicts()
        }
        assert (
            rows["gossip broadcast (a)"]["messages"]
            > rows["gossip multicast (b)"]["messages"]
        )
        # daMulticast pays only the inter-group hand-offs over (b).
        delta = (
            rows["daMulticast"]["messages"]
            - rows["gossip multicast (b)"]["messages"]
        )
        assert 0 < delta <= 2 * 5  # 2 edges * g*a

    def test_memory_ordering(self):
        tables = comparison_table()
        rows = {row["algorithm"]: row for row in tables["memory"].as_dicts()}
        assert rows["daMulticast"]["tables"] == 2
        assert rows["gossip multicast (b)"]["tables"] == 3
        assert (
            rows["daMulticast"]["memory"]
            < rows["gossip multicast (b)"]["memory"]
        )

    def test_reliability_rows_are_probabilities(self):
        tables = comparison_table()
        for row in tables["reliability"].as_dicts():
            assert 0.0 <= row["reliability"] <= 1.0

    def test_perfect_channels_match_multicast(self):
        tables = comparison_table(ChainScenario(p_succ=1.0))
        rows = {
            row["algorithm"]: row["reliability"]
            for row in tables["reliability"].as_dicts()
        }
        assert rows["daMulticast (hop-exact eq. 1)"] == pytest.approx(
            rows["gossip multicast (b)"]
        )

    def test_log_base_propagates(self):
        natural = comparison_table(ChainScenario(log_base=math.e))
        base10 = comparison_table(ChainScenario(log_base=10.0))
        natural_messages = natural["messages"].column("messages")[0]
        base10_messages = base10["messages"].column("messages")[0]
        assert base10_messages < natural_messages  # log10 < ln
