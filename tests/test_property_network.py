"""Property-based tests: network accounting and membership invariants."""

import random

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.failures import DynamicFailures, StillbornFailures
from repro.membership import FlatMembership, FlatMembershipConfig, ProcessDescriptor
from repro.net import Network
from repro.net.message import Ping
from repro.sim import Engine
from repro.topics import Topic

GROUP = Topic.parse(".g")


class Sink:
    def __init__(self, pid):
        self.pid = pid
        self.received = 0

    def handle_message(self, message):
        self.received += 1


@given(
    st.integers(2, 8),
    st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=60),
    st.floats(0.0, 1.0),
    st.integers(0, 2**32),
)
@settings(max_examples=100)
def test_conservation_sent_equals_delivered_plus_dropped(
    n, sends, p_success, seed
):
    """After quiescence every send attempt is delivered or dropped."""
    engine = Engine()
    network = Network(engine, random.Random(seed), p_success=p_success)
    actors = [Sink(i) for i in range(n)]
    for actor in actors:
        network.register(actor)
    attempted = 0
    for src, dst in sends:
        if src < n and dst < n:
            network.send(src, dst, Ping(sender=src, nonce=1))
            attempted += 1
    engine.run()
    stats = network.stats
    assert stats.total_sent == attempted
    assert stats.total_delivered + stats.total_dropped == attempted
    assert sum(a.received for a in actors) == stats.total_delivered


@given(
    st.floats(0.0, 1.0),
    st.integers(0, 2**32),
)
@settings(max_examples=50)
def test_stillborn_targets_never_receive(fail_share, seed):
    rng = random.Random(seed)
    n = 10
    failed = {pid for pid in range(n) if rng.random() < fail_share}
    engine = Engine()
    network = Network(
        engine,
        random.Random(seed),
        failure_model=StillbornFailures(failed),
    )
    actors = [Sink(i) for i in range(n)]
    for actor in actors:
        network.register(actor)
    alive = [pid for pid in range(n) if pid not in failed]
    if not alive:
        return
    sender = alive[0]
    for dst in range(n):
        if dst != sender:
            network.send(sender, dst, Ping(sender=sender, nonce=1))
    engine.run()
    for pid in failed:
        assert actors[pid].received == 0


@given(st.floats(0.0, 1.0), st.integers(0, 2**32))
@settings(max_examples=50)
def test_dynamic_failures_never_kill_ground_truth(p_fail, seed):
    engine = Engine()
    network = Network(
        engine,
        random.Random(seed),
        failure_model=DynamicFailures(p_fail),
    )
    a, b = Sink(0), Sink(1)
    network.register(a)
    network.register(b)
    for _ in range(30):
        network.send(0, 1, Ping(sender=0, nonce=1))
    engine.run()
    # Everyone is really alive; deliveries + perceived-failure drops
    # account for every attempt.
    stats = network.stats
    assert (
        stats.total_delivered
        + stats.dropped_by_reason["perceived_failed"]
        == 30
    )


class MemberActor:
    def __init__(self, pid, engine, network, rng, config):
        self.pid = pid
        self.descriptor = ProcessDescriptor(pid, GROUP)
        self.membership = FlatMembership(
            self.descriptor,
            GROUP,
            config,
            engine,
            rng,
            send=lambda target, msg: network.send(self.pid, target, msg),
        )

    def handle_message(self, message):
        self.membership.handle_message(message)


@given(
    st.integers(3, 12),
    st.integers(2, 6),
    st.integers(0, 2**32),
    st.floats(0.6, 1.0),
)
@settings(max_examples=25, deadline=None)
def test_flat_membership_invariants_under_loss(n, capacity, seed, p_success):
    """For any group size/capacity/loss: no self-entries, capacity bound."""
    engine = Engine()
    network = Network(engine, random.Random(seed), p_success=p_success)
    config = FlatMembershipConfig(capacity=capacity)
    members = []
    for pid in range(n):
        actor = MemberActor(
            pid, engine, network, random.Random(seed * 2654435761 % 2**31 + pid), config
        )
        network.register(actor)
        members.append(actor)
    members[0].membership.start()
    for actor in members[1:]:
        actor.membership.start(members[0].descriptor)
    engine.run(until=25.0)
    for actor in members:
        view = actor.membership.view
        assert len(view) <= capacity
        assert actor.pid not in view
        for descriptor in view:
            assert descriptor.topic == GROUP
            assert 0 <= descriptor.pid < n
