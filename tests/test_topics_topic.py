"""Unit tests for the Topic value object."""

import pytest

from repro.errors import InvalidTopicName
from repro.topics import ROOT, Topic


class TestParsing:
    def test_parse_simple(self):
        topic = Topic.parse(".dsn04.reviewers")
        assert topic.segments == ("dsn04", "reviewers")
        assert topic.name == ".dsn04.reviewers"

    def test_parse_without_leading_dot(self):
        assert Topic.parse("dsn04.reviewers") == Topic.parse(".dsn04.reviewers")

    def test_parse_root_forms(self):
        assert Topic.parse(".") is ROOT or Topic.parse(".") == ROOT
        assert Topic.parse("") == ROOT
        assert Topic.parse("  .  ".strip()) == ROOT

    def test_parse_rejects_trailing_dot(self):
        with pytest.raises(InvalidTopicName):
            Topic.parse(".a.b.")

    def test_parse_rejects_double_dot(self):
        with pytest.raises(InvalidTopicName):
            Topic.parse(".a..b")

    def test_parse_rejects_bad_characters(self):
        with pytest.raises(InvalidTopicName):
            Topic.parse(".a.b c")
        with pytest.raises(InvalidTopicName):
            Topic.parse(".a.b!c")

    def test_parse_rejects_non_string(self):
        with pytest.raises(InvalidTopicName):
            Topic.parse(42)  # type: ignore[arg-type]

    def test_constructor_validates_segments(self):
        with pytest.raises(InvalidTopicName):
            Topic(("ok", "not ok"))

    def test_allowed_characters(self):
        topic = Topic.parse(".A-1_b.c2")
        assert topic.depth == 2


class TestNavigation:
    def test_super_topic(self):
        topic = Topic.parse(".dsn04.reviewers")
        assert topic.super_topic == Topic.parse(".dsn04")
        assert Topic.parse(".dsn04").super_topic == ROOT
        assert ROOT.super_topic is None

    def test_child(self):
        assert ROOT.child("a").child("b") == Topic.parse(".a.b")

    def test_depth(self):
        assert ROOT.depth == 0
        assert Topic.parse(".a").depth == 1
        assert Topic.parse(".a.b.c").depth == 3

    def test_is_root(self):
        assert ROOT.is_root
        assert not Topic.parse(".a").is_root

    def test_leaf_segment(self):
        assert Topic.parse(".a.b").leaf_segment == "b"
        with pytest.raises(InvalidTopicName):
            _ = ROOT.leaf_segment

    def test_ancestors_exclude_self(self):
        topic = Topic.parse(".a.b.c")
        assert list(topic.ancestors()) == [
            Topic.parse(".a.b"),
            Topic.parse(".a"),
            ROOT,
        ]

    def test_ancestors_include_self(self):
        topic = Topic.parse(".a.b")
        assert list(topic.ancestors(include_self=True))[0] == topic

    def test_root_has_no_ancestors(self):
        assert list(ROOT.ancestors()) == []
        assert list(ROOT.ancestors(include_self=True)) == [ROOT]


class TestInclusion:
    def test_includes_is_reflexive(self):
        topic = Topic.parse(".a.b")
        assert topic.includes(topic)

    def test_supertopic_includes_subtopic(self):
        assert Topic.parse(".a").includes(Topic.parse(".a.b.c"))
        assert ROOT.includes(Topic.parse(".x.y"))

    def test_subtopic_does_not_include_supertopic(self):
        assert not Topic.parse(".a.b").includes(Topic.parse(".a"))

    def test_siblings_do_not_include_each_other(self):
        assert not Topic.parse(".a.x").includes(Topic.parse(".a.y"))
        assert not Topic.parse(".a.y").includes(Topic.parse(".a.x"))

    def test_prefix_segment_names_are_not_inclusion(self):
        # .ab is not a supertopic of .abc — segment-wise, not string-wise.
        assert not Topic.parse(".ab").includes(Topic.parse(".abc"))

    def test_strict_supertopic(self):
        a = Topic.parse(".a")
        assert a.is_strict_supertopic_of(Topic.parse(".a.b"))
        assert not a.is_strict_supertopic_of(a)

    def test_is_subtopic_of(self):
        assert Topic.parse(".a.b").is_subtopic_of(Topic.parse(".a"))
        assert Topic.parse(".a").is_subtopic_of(Topic.parse(".a"))

    def test_common_ancestor(self):
        x = Topic.parse(".a.b.x")
        y = Topic.parse(".a.b.y.z")
        assert x.common_ancestor(y) == Topic.parse(".a.b")
        assert x.common_ancestor(Topic.parse(".q")) == ROOT
        assert x.common_ancestor(x) == x

    def test_relative_depth(self):
        leaf = Topic.parse(".a.b.c")
        assert leaf.relative_depth(Topic.parse(".a")) == 2
        assert leaf.relative_depth(leaf) == 0
        with pytest.raises(InvalidTopicName):
            leaf.relative_depth(Topic.parse(".q"))

    def test_distance_to_root(self):
        assert Topic.parse(".a.b").distance_to_root() == 2
        assert ROOT.distance_to_root() == 0


class TestValueSemantics:
    def test_equality_and_hash(self):
        a1 = Topic.parse(".a.b")
        a2 = Topic(("a", "b"))
        assert a1 == a2
        assert hash(a1) == hash(a2)
        assert len({a1, a2}) == 1

    def test_inequality_with_other_types(self):
        assert Topic.parse(".a") != ".a"

    def test_ordering_is_lexicographic_on_segments(self):
        topics = [Topic.parse(".b"), Topic.parse(".a.z"), Topic.parse(".a"), ROOT]
        assert sorted(topics) == [
            ROOT,
            Topic.parse(".a"),
            Topic.parse(".a.z"),
            Topic.parse(".b"),
        ]

    def test_str_and_repr(self):
        topic = Topic.parse(".a.b")
        assert str(topic) == ".a.b"
        assert repr(topic) == "Topic('.a.b')"
        assert str(ROOT) == "."
