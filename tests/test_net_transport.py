"""The transport seam: EngineTransport vs QueueTransport equivalence.

The refactor's contract: the network's sender-side pipeline (and hence
every RNG draw) is transport-independent, and the two transports execute
the surviving deliveries in the same order — heap ``(time, seq)`` on the
engine, ``(due, enqueue order)`` in the queue. The equivalence tests
drive identical workloads through both and require bit-identical results
including the network RNG's final state.
"""

import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.errors import SchedulingError
from repro.net.latency import ConstantLatency, UniformLatency
from repro.net.message import Message, Ping
from repro.net.network import Network
from repro.net.transport import (
    EngineTransport,
    QueueTransport,
    QueuedDelivery,
    Transport,
)
from repro.sim.engine import Engine


class Recorder:
    def __init__(self, pid: int):
        self.pid = pid
        self.inbox: list[Message] = []

    def handle_message(self, message: Message) -> None:
        self.inbox.append(message)


class TickClock:
    """Minimal manual clock for transport unit tests."""

    def __init__(self):
        self.now = 0.0


class TestEngineTransport:
    def test_default_transport_is_engine_transport(self):
        engine = Engine()
        net = Network(engine, random.Random(0))
        assert isinstance(net.transport, EngineTransport)
        assert net.transport.scheduler is engine
        assert isinstance(net.transport, Transport)

    def test_rejects_plain_clocks(self):
        with pytest.raises(SchedulingError):
            EngineTransport(TickClock())

    def test_dispatch_lands_on_engine(self):
        engine = Engine()
        transport = EngineTransport(engine)
        seen = []
        transport.dispatch(1.5, seen.append, ("x",))
        assert engine.pending == 1
        engine.run_until_idle()
        assert seen == ["x"]


class TestQueueTransport:
    def test_dispatch_and_pump_fifo(self):
        clock = TickClock()
        transport = QueueTransport(clock)
        seen = []
        transport.dispatch(0.0, seen.append, (1,))
        transport.dispatch(0.0, seen.append, (2,))
        transport.dispatch(0.0, seen.append, (3,))
        assert transport.pending == 3
        assert transport.next_due() == 0.0
        assert transport.pump() == 3
        assert seen == [1, 2, 3]
        assert transport.pending == 0
        assert transport.next_due() is None
        assert transport.executed == 3

    def test_due_ordering_over_enqueue_ordering(self):
        clock = TickClock()
        transport = QueueTransport(clock)
        seen = []
        transport.dispatch(2.0, seen.append, ("late",))
        transport.dispatch(1.0, seen.append, ("early",))
        clock.now = 5.0
        transport.pump()
        assert seen == ["early", "late"]

    def test_pump_horizon_leaves_future_entries(self):
        clock = TickClock()
        transport = QueueTransport(clock)
        seen = []
        transport.dispatch(0.0, seen.append, ("now",))
        transport.dispatch(3.0, seen.append, ("later",))
        assert transport.pump() == 1
        assert seen == ["now"]
        assert transport.pending == 1
        assert transport.next_due() == 3.0

    def test_cascade_joins_same_pump(self):
        clock = TickClock()
        transport = QueueTransport(clock)
        seen = []

        def first():
            seen.append("first")
            transport.dispatch(0.0, lambda: seen.append("cascade"), ())

        transport.dispatch(0.0, first, ())
        assert transport.pump() == 2
        assert seen == ["first", "cascade"]

    def test_cancel_drops_delivery(self):
        clock = TickClock()
        transport = QueueTransport(clock)
        seen = []
        handle = transport.dispatch(0.0, seen.append, (1,))
        assert isinstance(handle, QueuedDelivery)
        assert handle.pending
        handle.cancel()
        assert handle.cancelled and not handle.pending
        assert transport.pending == 0
        assert transport.next_due() is None
        assert transport.pump() == 0
        assert seen == []
        handle.cancel()  # idempotent

    def test_count_accounting(self):
        clock = TickClock()
        transport = QueueTransport(clock)
        transport.dispatch(0.0, lambda a, b: None, (1, 2), count=5)
        assert transport.dispatched == 5
        assert transport.pending == 5
        assert transport.pump() == 5
        assert transport.executed == 5

    def test_nan_and_negative_delay_rejected(self):
        transport = QueueTransport(TickClock())
        with pytest.raises(SchedulingError):
            transport.dispatch(float("nan"), lambda: None, ())
        with pytest.raises(SchedulingError):
            transport.dispatch(-1.0, lambda: None, ())

    def test_on_enqueue_fires_per_dispatch(self):
        woken = []
        transport = QueueTransport(TickClock(), on_enqueue=lambda: woken.append(1))
        transport.dispatch(0.0, lambda: None, ())
        transport.dispatch(0.0, lambda: None, ())
        assert woken == [1, 1]

    def test_on_virtual_engine_clock(self):
        """A QueueTransport can ride an Engine as its time source."""
        engine = Engine()
        transport = QueueTransport(engine)
        seen = []
        transport.dispatch(0.0, seen.append, ("a",))
        transport.pump()
        assert seen == ["a"]


def _run_workload(transport_factory, *, seed, p_success, latency, sends):
    """Drive one deterministic workload and snapshot everything observable."""
    engine = Engine()
    rng = random.Random(seed)
    transport = transport_factory(engine)
    net = Network(
        engine,
        rng,
        p_success=p_success,
        latency=latency,
        transport=transport,
    )
    actors = [Recorder(i) for i in range(6)]
    for actor in actors:
        net.register(actor)
    for index, (kind, sender, targets) in enumerate(sends):
        if kind == "send":
            net.send(sender, targets[0], Ping(sender=sender, nonce=index))
        else:
            net.multicast(sender, targets, Ping(sender=sender, nonce=index))
        # Drain between operations — mirrors the live runtime's
        # publish-then-drain discipline the equivalence argument rests on.
        if isinstance(transport, QueueTransport):
            while transport.next_due() is not None:
                transport.pump(transport.next_due())
        else:
            engine.run_until_idle()
    inboxes = [
        [(m.sender, m.nonce) for m in actor.inbox] for actor in actors
    ]
    return inboxes, rng.getstate(), net.stats.as_dict()


WORKLOAD = [
    ("multicast", 0, (1, 2, 3, 4, 5)),
    ("send", 1, (0,)),
    ("multicast", 2, (0, 1, 3)),
    ("multicast", 3, (0, 1, 2, 4, 5)),
    ("send", 4, (2,)),
    ("multicast", 5, (0, 4)),
]


class TestTransportEquivalence:
    @pytest.mark.parametrize("p_success", [1.0, 0.85, 0.5])
    def test_queue_matches_engine_bit_identically(self, p_success):
        """Same workload, same seed → same inboxes, same RNG state, same
        stats on both transports (zero latency: the replay-oracle case)."""
        from repro.net.latency import ZERO_LATENCY

        engine_run = _run_workload(
            EngineTransport,
            seed=7,
            p_success=p_success,
            latency=ZERO_LATENCY,
            sends=WORKLOAD,
        )
        queue_run = _run_workload(
            QueueTransport,
            seed=7,
            p_success=p_success,
            latency=ZERO_LATENCY,
            sends=WORKLOAD,
        )
        assert engine_run == queue_run

    def test_queue_matches_engine_with_latency_classes(self):
        """Nonzero sampled latencies: deliveries split into latency-class
        batches; the queue's (due, seq) order must match the engine's."""
        engine_run = _run_workload(
            EngineTransport,
            seed=11,
            p_success=0.9,
            latency=UniformLatency(0.1, 2.0),
            sends=WORKLOAD,
        )
        queue_run = _run_workload(
            QueueTransport,
            seed=11,
            p_success=0.9,
            latency=UniformLatency(0.1, 2.0),
            sends=WORKLOAD,
        )
        assert engine_run == queue_run

    @given(
        seed=st.integers(0, 2**16),
        p_success=st.floats(0.3, 1.0, allow_nan=False),
    )
    @settings(max_examples=30, deadline=None)
    def test_equivalence_property(self, seed, p_success):
        latency = ConstantLatency(0.5)
        engine_run = _run_workload(
            EngineTransport,
            seed=seed,
            p_success=p_success,
            latency=latency,
            sends=WORKLOAD,
        )
        queue_run = _run_workload(
            QueueTransport,
            seed=seed,
            p_success=p_success,
            latency=latency,
            sends=WORKLOAD,
        )
        assert engine_run == queue_run


class TestPidCaching:
    def test_pids_stay_a_sorted_list(self):
        engine = Engine()
        net = Network(engine, random.Random(0))
        for pid in (3, 1, 2):
            net.register(Recorder(pid))
        assert net.pids == [1, 2, 3]
        assert isinstance(net.pids, list)

    def test_pid_view_is_cached_until_registration(self):
        engine = Engine()
        net = Network(engine, random.Random(0))
        net.register(Recorder(0))
        first = net.pid_view()
        assert first == (0,)
        assert net.pid_view() is first  # cached, no rebuild
        net.register(Recorder(1))
        second = net.pid_view()
        assert second == (0, 1)
        assert second is not first

    def test_pids_copy_is_independent(self):
        engine = Engine()
        net = Network(engine, random.Random(0))
        net.register(Recorder(0))
        pids = net.pids
        pids.append(99)
        assert net.pids == [0]
        assert net.pid_view() == (0,)

    def test_alive_pids_matches_rebuild_semantics(self):
        from repro.failures import StillbornFailures

        engine = Engine()
        net = Network(
            engine,
            random.Random(0),
            failure_model=StillbornFailures([1, 4]),
        )
        for pid in range(6):
            net.register(Recorder(pid))
        expected = [pid for pid in net.pids if net.is_alive(pid)]
        assert net.alive_pids() == expected

    def test_block_registration_invalidates_cache(self):
        engine = Engine()
        net = Network(engine, random.Random(0))
        net.register(Recorder(0))
        assert net.pid_view() == (0,)

        class Block:
            def handle_batch(self, sender, targets, message):
                pass

        net.register_block(Block(), 10, 13)
        assert net.pid_view() == (0, 10, 11, 12)
        assert net.pids == [0, 10, 11, 12]
