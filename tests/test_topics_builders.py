"""Unit tests for hierarchy builders."""

import random

import pytest

from repro.errors import ConfigError
from repro.topics import ROOT, Topic, balanced_tree, chain, from_names, paper_hierarchy
from repro.topics.builders import group_sizes_for_chain, random_hierarchy


class TestChain:
    def test_chain_depth_zero_is_root_only(self):
        assert chain(0) == [ROOT]

    def test_chain_structure(self):
        topics = chain(3)
        assert len(topics) == 4
        for child, parent in zip(topics[1:], topics):
            assert child.super_topic == parent

    def test_chain_prefix(self):
        topics = chain(2, prefix="x")
        assert topics[1].name == ".x1"
        assert topics[2].name == ".x1.x2"

    def test_chain_negative_depth_raises(self):
        with pytest.raises(ConfigError):
            chain(-1)


class TestPaperHierarchy:
    def test_three_levels(self):
        hierarchy, topics = paper_hierarchy()
        assert len(topics) == 3
        t0, t1, t2 = topics
        assert t0 == ROOT
        assert t1.super_topic == t0
        assert t2.super_topic == t1
        assert hierarchy.depth == 2  # root at depth 0, T2 at depth 2

    def test_registered_in_hierarchy(self):
        hierarchy, topics = paper_hierarchy()
        for t in topics:
            assert t in hierarchy


class TestFromNames:
    def test_from_names(self):
        h = from_names([".a.b", ".c"])
        assert Topic.parse(".a") in h
        assert Topic.parse(".c") in h


class TestBalancedTree:
    def test_shape(self):
        h = balanced_tree(arity=2, depth=2)
        # root + 2 + 4 topics
        assert len(h) == 7
        assert len(h.leaves()) == 4
        assert h.depth == 2

    def test_depth_zero(self):
        h = balanced_tree(arity=3, depth=0)
        assert len(h) == 1

    def test_invalid_args(self):
        with pytest.raises(ConfigError):
            balanced_tree(0, 1)
        with pytest.raises(ConfigError):
            balanced_tree(2, -1)


class TestRandomHierarchy:
    def test_size(self):
        h = random_hierarchy(random.Random(7), n_topics=20)
        assert len(h) == 21  # includes root

    def test_determinism(self):
        a = random_hierarchy(random.Random(3), n_topics=15)
        b = random_hierarchy(random.Random(3), n_topics=15)
        assert a.topics == b.topics

    def test_max_children_respected(self):
        h = random_hierarchy(random.Random(1), n_topics=50, max_children=2)
        for t in h.topics:
            assert len(h.children(t)) <= 2

    def test_validates(self):
        h = random_hierarchy(random.Random(5), n_topics=30)
        h.validate()

    def test_invalid_args(self):
        with pytest.raises(ConfigError):
            random_hierarchy(random.Random(0), n_topics=-1)
        with pytest.raises(ConfigError):
            random_hierarchy(random.Random(0), n_topics=5, max_children=0)


class TestGroupSizes:
    def test_zip(self):
        topics = chain(2)
        sizes = group_sizes_for_chain(topics, [10, 100, 1000])
        assert sizes[topics[0]] == 10
        assert sizes[topics[2]] == 1000

    def test_length_mismatch_raises(self):
        with pytest.raises(ConfigError):
            group_sizes_for_chain(chain(1), [1, 2, 3])

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigError):
            group_sizes_for_chain(chain(1), [0, 5])
