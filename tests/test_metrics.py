"""Unit tests for the metrics layer (tracker, delivery queries, reports)."""

import pytest

from repro.core.events import Event, EventId
from repro.metrics import (
    DeliveryTracker,
    Table,
    all_received,
    delivered_fraction,
    format_series,
    parasite_deliveries,
)
from repro.metrics.delivery import mean_delivery_latency
from repro.topics import Topic

T1 = Topic.parse(".t1")
T2 = Topic.parse(".t1.t2")


def event(eid=1, topic=T2, at=0.0):
    return Event(EventId(0, eid), topic, None, at)


class TestTracker:
    def test_publish_and_delivery_recorded(self):
        tracker = DeliveryTracker()
        e = event()
        tracker.record_publish(e, publisher=0)
        tracker.record_delivery(1, e, 2.0)
        assert tracker.publisher_of(e.event_id) == 0
        assert tracker.receivers(e.event_id) == {1: 2.0}
        assert tracker.received_by(e.event_id, 1)
        assert not tracker.received_by(e.event_id, 2)

    def test_first_delivery_wins(self):
        tracker = DeliveryTracker()
        e = event()
        tracker.record_delivery(1, e, 2.0)
        tracker.record_delivery(1, e, 5.0)
        assert tracker.receivers(e.event_id)[1] == 2.0

    def test_delivery_count_and_times(self):
        tracker = DeliveryTracker()
        e = event()
        tracker.record_delivery(1, e, 3.0)
        tracker.record_delivery(2, e, 1.0)
        assert tracker.delivery_count(e.event_id) == 2
        assert tracker.delivery_times(e.event_id) == [1.0, 3.0]

    def test_unknown_event(self):
        tracker = DeliveryTracker()
        assert tracker.receivers(EventId(9, 9)) == {}
        assert tracker.publisher_of(EventId(9, 9)) is None
        assert tracker.delivery_count(EventId(9, 9)) == 0

    def test_clear(self):
        tracker = DeliveryTracker()
        e = event()
        tracker.record_publish(e, 0)
        tracker.record_delivery(1, e, 1.0)
        tracker.clear()
        assert tracker.events == []
        assert tracker.delivery_count(e.event_id) == 0


class TestDeliveredFraction:
    def test_basic_fraction(self):
        tracker = DeliveryTracker()
        e = event()
        tracker.record_delivery(1, e, 0.0)
        tracker.record_delivery(2, e, 0.0)
        assert delivered_fraction(tracker, e.event_id, [1, 2, 3, 4]) == 0.5

    def test_alive_filter(self):
        tracker = DeliveryTracker()
        e = event()
        tracker.record_delivery(1, e, 0.0)
        fraction = delivered_fraction(
            tracker, e.event_id, [1, 2], is_alive=lambda pid: pid == 1
        )
        assert fraction == 1.0

    def test_empty_group_vacuous(self):
        tracker = DeliveryTracker()
        assert delivered_fraction(tracker, EventId(0, 1), []) == 1.0

    def test_all_dead_group_vacuous_and_queries_agree(self):
        """Heavy stillborn failure can kill a whole small group: both
        reliability queries must then agree on the vacuous-truth answer
        (nobody left who *could* receive → trivially reliable), never on
        0.0-vs-True or 1.0-vs-False."""
        tracker = DeliveryTracker()
        e = event()
        # Nobody delivered anything, every member is dead.
        dead = lambda pid: False
        fraction = delivered_fraction(tracker, e.event_id, [1, 2, 3], dead)
        received = all_received(tracker, e.event_id, [1, 2, 3], dead)
        assert fraction == 1.0
        assert received is True

    def test_receivers_view_is_read_only(self):
        tracker = DeliveryTracker()
        e = event()
        tracker.record_delivery(1, e, 2.0)
        receivers = tracker.receivers(e.event_id)
        assert receivers == {1: 2.0}
        with pytest.raises(TypeError):
            receivers[2] = 0.0
        # Unknown events share one empty read-only view, equal to {}.
        missing = tracker.receivers(EventId(9, 9))
        assert missing == {}
        with pytest.raises(TypeError):
            missing[1] = 0.0

    def test_delivered_fast_path(self):
        tracker = DeliveryTracker()
        e = event()
        tracker.record_delivery(1, e, 2.0)
        assert tracker.delivered(e.event_id, 1)
        assert not tracker.delivered(e.event_id, 2)
        assert not tracker.delivered(EventId(9, 9), 1)

    def test_all_received(self):
        tracker = DeliveryTracker()
        e = event()
        tracker.record_delivery(1, e, 0.0)
        assert all_received(tracker, e.event_id, [1])
        assert not all_received(tracker, e.event_id, [1, 2])
        assert all_received(
            tracker, e.event_id, [1, 2], is_alive=lambda pid: pid == 1
        )


class TestParasites:
    def test_counts_uninterested_deliveries(self):
        tracker = DeliveryTracker()
        e = event(topic=T1)  # event of the supertopic
        tracker.record_publish(e, 0)
        tracker.record_delivery(1, e, 0.0)  # pid 1 subscribes to T2: parasite
        tracker.record_delivery(2, e, 0.0)  # pid 2 subscribes to T1: fine
        interests = {1: T2, 2: T1}
        assert parasite_deliveries(tracker, interests) == 1

    def test_subtopic_event_is_not_parasitic_for_super(self):
        tracker = DeliveryTracker()
        e = event(topic=T2)
        tracker.record_publish(e, 0)
        tracker.record_delivery(1, e, 0.0)
        assert parasite_deliveries(tracker, {1: T1}) == 0

    def test_unknown_interest_counts_as_parasite(self):
        tracker = DeliveryTracker()
        e = event()
        tracker.record_publish(e, 0)
        tracker.record_delivery(7, e, 0.0)
        assert parasite_deliveries(tracker, {}) == 1


class TestLatency:
    def test_mean_latency(self):
        tracker = DeliveryTracker()
        e = event(at=1.0)
        tracker.record_publish(e, 0)
        tracker.record_delivery(1, e, 2.0)
        tracker.record_delivery(2, e, 4.0)
        assert mean_delivery_latency(tracker, e.event_id) == 2.0

    def test_unknown_event_returns_none(self):
        tracker = DeliveryTracker()
        assert mean_delivery_latency(tracker, EventId(0, 1)) is None

    def test_undelivered_returns_none(self):
        tracker = DeliveryTracker()
        e = event()
        tracker.record_publish(e, 0)
        assert mean_delivery_latency(tracker, e.event_id) is None

    def test_tracker_event_indexed_lookup(self):
        tracker = DeliveryTracker()
        events = [event(eid=i + 1, at=float(i)) for i in range(5)]
        for i, e in enumerate(events):
            tracker.record_publish(e, i)
        for e in events:
            assert tracker.event(e.event_id) is e
        assert tracker.event(EventId(99, 99)) is None

    def test_latency_over_stream_uses_index(self):
        # Every event of a stream resolves through the O(1) index; the
        # per-event latency is publish-relative, not absolute.
        tracker = DeliveryTracker()
        events = [event(eid=i + 1, at=float(i)) for i in range(10)]
        for i, e in enumerate(events):
            tracker.record_publish(e, 0)
            tracker.record_delivery(1, e, float(i) + 2.0)
        for e in events:
            assert mean_delivery_latency(tracker, e.event_id) == 2.0


class TestTable:
    def test_render_alignment(self):
        table = Table("Title", ["a", "bb"], precision=2)
        table.add_row(1, 2.5)
        rendered = table.render()
        assert "Title" in rendered
        assert "2.50" in rendered

    def test_row_length_checked(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_as_dicts_and_column(self):
        table = Table("T", ["x", "y"])
        table.add_row(1, 10)
        table.add_row(2, 20)
        assert table.as_dicts() == [{"x": 1, "y": 10}, {"x": 2, "y": 20}]
        assert table.column("y") == [10, 20]

    def test_column_unknown_raises(self):
        with pytest.raises(ValueError):
            Table("T", ["x"]).column("nope")

    def test_empty_table_renders(self):
        table = Table("Empty", ["col"])
        assert "Empty" in table.render()

    def test_bool_cells_render_as_words(self):
        table = Table("T", ["ok"])
        table.add_row(True)
        assert "True" in table.render()

    def test_format_series(self):
        line = format_series("s", [0.0, 1.0], [0.5, 0.75], precision=2)
        assert line == "s: (0, 0.50) (1, 0.75)"
