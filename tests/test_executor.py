"""The execution port: backend equivalence, spec parsing, warm pools.

The acceptance contract: every executor backend (serial, pool, warm) is
bit-identical to :class:`SerialExecutor` for any worker count, because
each backend derives cell seeds inside the worker from ``(master_seed,
cell.seed_name)`` and returns results in cell order. On top of that:
spec strings parse predictably, warm pools actually reuse their worker
processes across ``map_cells`` calls, failures stay deterministic and
leave a warm pool usable, the optional joblib/dask adapters are
import-gated, and no internal call site still uses the deprecated
``jobs``/``chunk_size``/``start_method`` keywords.
"""

import ast
import os
import pathlib
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.experiments.executor import (
    DaskExecutor,
    Executor,
    JoblibExecutor,
    PoolExecutor,
    SerialExecutor,
    SweepCell,
    SweepWorkerError,
    WarmPoolExecutor,
    coerce_executor,
    parse_executor_spec,
    resolve_executor,
)
from repro.sim.rng import derive_seed

SRC_ROOT = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"


def _metrics(point, seed):
    return {"m": (seed % 9973) * point, "b": float(seed % 7)}


def _echo_seed(point, seed):
    return {"seed": float(seed)}


def _worker_pid(point, seed):
    return {"pid": float(os.getpid()), "seed": float(seed)}


def _fail_at_two(point, seed):
    if point == 2.0:
        raise ValueError("boom")
    return {"y": 1.0}


def _cells(points, label="x"):
    return [
        SweepCell(arg=p, seed_name=f"{label}/{p}", describe=f"point={p}")
        for p in points
    ]


class TestBackendEquivalence:
    @settings(max_examples=8, deadline=None)
    @given(
        points=st.lists(
            st.floats(-100.0, 100.0).map(lambda x: round(x, 2)),
            min_size=1,
            max_size=6,
        ),
        master_seed=st.integers(0, 2**32),
        jobs=st.integers(1, 4),
        backend=st.sampled_from(["pool", "warm"]),
    )
    def test_hypothesis_bit_identical_to_serial(
        self, points, master_seed, jobs, backend
    ):
        cells = _cells(points)
        serial = SerialExecutor().map_cells(
            _metrics, cells, master_seed=master_seed
        )
        factory = PoolExecutor if backend == "pool" else WarmPoolExecutor
        executor = factory(jobs)
        try:
            other = executor.map_cells(
                _metrics, cells, master_seed=master_seed
            )
        finally:
            executor.close()
        assert other == serial
        assert [list(sample) for sample in other] == [
            list(sample) for sample in serial
        ]

    def test_seed_derived_inside_worker(self):
        cells = _cells([1.0, 2.0, 3.0], label="seeds")
        for executor in (SerialExecutor(), PoolExecutor(2)):
            results = executor.map_cells(_echo_seed, cells, master_seed=9)
            assert [r["seed"] for r in results] == [
                float(derive_seed(9, f"seeds/{p}")) for p in (1.0, 2.0, 3.0)
            ]

    def test_warm_repeated_calls_identical(self):
        cells = _cells([0.5, 1.5, 2.5])
        with WarmPoolExecutor(2) as warm:
            first = warm.map_cells(_metrics, cells, master_seed=4)
            second = warm.map_cells(_metrics, cells, master_seed=4)
        assert first == second
        assert first == SerialExecutor().map_cells(
            _metrics, cells, master_seed=4
        )


class TestWarmPoolReuse:
    def test_workers_persist_across_calls(self):
        cells = _cells([float(i) for i in range(8)])
        with WarmPoolExecutor(2, chunk_size=1) as warm:
            pids_first = {
                r["pid"] for r in warm.map_cells(_worker_pid, cells)
            }
            pids_second = {
                r["pid"] for r in warm.map_cells(_worker_pid, cells)
            }
        # One persistent 2-worker pool serves both calls, so at most 2
        # distinct pids appear across them; a pool respawned per call
        # (the cold PoolExecutor behavior) would show up to 4.
        assert len(pids_first | pids_second) <= 2
        assert os.getpid() not in {int(p) for p in pids_first | pids_second}

    def test_cold_pool_respawns_per_call(self):
        cells = _cells([float(i) for i in range(8)])
        pool = PoolExecutor(2, chunk_size=1)
        pids_first = {r["pid"] for r in pool.map_cells(_worker_pid, cells)}
        pids_second = {r["pid"] for r in pool.map_cells(_worker_pid, cells)}
        # Fresh processes per call: the two worker sets are disjoint.
        assert not (pids_first & pids_second)

    def test_warm_pool_survives_cell_failure(self):
        ok_cells = _cells([1.0, 3.0])
        bad_cells = _cells([1.0, 2.0, 3.0])
        with WarmPoolExecutor(2, chunk_size=1) as warm:
            before = warm.map_cells(_fail_at_two, ok_cells)
            with pytest.raises(SweepWorkerError, match="point=2.0"):
                warm.map_cells(_fail_at_two, bad_cells)
            after = warm.map_cells(_fail_at_two, ok_cells)
        assert before == after == [{"y": 1.0}, {"y": 1.0}]

    def test_close_is_idempotent_and_allows_reuse(self):
        warm = WarmPoolExecutor(2)
        cells = _cells([1.0, 2.0])
        assert warm.map_cells(_metrics, cells) == SerialExecutor().map_cells(
            _metrics, cells
        )
        warm.close()
        warm.close()
        # A closed executor lazily re-creates its pool on the next call.
        assert warm.map_cells(_metrics, cells) == SerialExecutor().map_cells(
            _metrics, cells
        )
        warm.close()

    def test_single_cell_never_spawns_pool(self):
        # Lambdas are unpicklable; a 1-cell call must stay in-process.
        with WarmPoolExecutor(4) as warm:
            assert warm.map_cells(
                lambda p, s: {"y": p}, _cells([7.0])
            ) == [{"y": 7.0}]


class TestOnResult:
    @pytest.mark.parametrize(
        "factory",
        [SerialExecutor, lambda: PoolExecutor(2, chunk_size=1),
         lambda: WarmPoolExecutor(2, chunk_size=1)],
    )
    def test_every_cell_announced_once(self, factory):
        cells = _cells([1.0, 2.0, 3.0, 4.0])
        seen = []
        executor = factory()
        try:
            executor.map_cells(
                _metrics,
                cells,
                on_result=lambda index, done, total: seen.append(
                    (index, done, total)
                ),
            )
        finally:
            executor.close()
        assert sorted(index for index, _, _ in seen) == [0, 1, 2, 3]
        assert sorted(done for _, done, _ in seen) == [1, 2, 3, 4]
        assert all(total == 4 for _, _, total in seen)


class TestSpecParsing:
    def test_serial(self):
        assert isinstance(parse_executor_spec("serial"), SerialExecutor)

    def test_pool_with_count(self):
        executor = parse_executor_spec("pool:3")
        assert isinstance(executor, PoolExecutor)
        assert executor.jobs == 3

    def test_warm_with_count(self):
        executor = parse_executor_spec("warm:2")
        assert isinstance(executor, WarmPoolExecutor)
        assert executor.jobs == 2

    def test_count_defaults_to_cpu(self):
        assert parse_executor_spec("pool").jobs == (os.cpu_count() or 1)

    @pytest.mark.parametrize(
        "bad", ["serial:2", "bogus", "pool:x", "pool:", "warm:0"]
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ConfigError):
            parse_executor_spec(bad)

    def test_resolve_none_is_serial(self):
        assert isinstance(resolve_executor(None), SerialExecutor)

    def test_resolve_passes_instances_through(self):
        executor = PoolExecutor(2)
        assert resolve_executor(executor) is executor

    def test_resolve_rejects_non_executors(self):
        with pytest.raises(ConfigError, match="executor"):
            resolve_executor(42)

    def test_protocol_runtime_checkable(self):
        assert isinstance(SerialExecutor(), Executor)
        assert isinstance(WarmPoolExecutor(1), Executor)


class TestCoerceExecutor:
    def test_no_args_is_serial(self):
        assert isinstance(coerce_executor(), SerialExecutor)

    def test_legacy_jobs_warns_and_builds_pool(self):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            executor = coerce_executor(jobs=3)
        assert isinstance(executor, PoolExecutor)
        assert executor.jobs == 3

    def test_legacy_jobs_one_is_serial(self):
        with pytest.warns(DeprecationWarning):
            assert isinstance(coerce_executor(jobs=1), SerialExecutor)

    def test_both_sources_conflict(self):
        with pytest.raises(ConfigError, match="not both"):
            coerce_executor("pool:2", jobs=2)


class TestOptionalAdapters:
    def test_joblib_gated_or_equivalent(self):
        try:
            import joblib  # noqa: F401
        except ImportError:
            with pytest.raises(ConfigError, match="joblib"):
                JoblibExecutor(2)
            with pytest.raises(ConfigError, match="joblib"):
                parse_executor_spec("joblib:2")
            return
        cells = _cells([1.0, 2.0, 3.0])
        assert JoblibExecutor(2).map_cells(
            _metrics, cells, master_seed=3
        ) == SerialExecutor().map_cells(_metrics, cells, master_seed=3)

    def test_dask_gated_or_equivalent(self):
        try:
            import dask.bag  # noqa: F401
        except ImportError:
            with pytest.raises(ConfigError, match="dask"):
                DaskExecutor(2)
            return
        cells = _cells([1.0, 2.0, 3.0])
        assert DaskExecutor(2).map_cells(
            _metrics, cells, master_seed=3
        ) == SerialExecutor().map_cells(_metrics, cells, master_seed=3)


class TestNoInternalLegacyUse:
    """The deprecated keyword trio survives only as the user-facing shim."""

    def test_no_internal_call_site_passes_legacy_kwargs(self):
        # Every call in src/repro that passes jobs=/chunk_size=/
        # start_method= must be the shim forwarding into coerce_executor
        # (or live in executor.py, which implements the shim). Anything
        # else is an internal caller still on the deprecated API.
        offenders = []
        legacy = {"jobs", "chunk_size", "start_method"}
        for path in sorted(SRC_ROOT.rglob("*.py")):
            if path.name == "executor.py":
                continue
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                if not isinstance(node, ast.Call):
                    continue
                passed = {
                    kw.arg for kw in node.keywords if kw.arg in legacy
                }
                if not passed:
                    continue
                func = node.func
                name = getattr(func, "id", getattr(func, "attr", None))
                if name != "coerce_executor":
                    offenders.append(
                        f"{path.relative_to(SRC_ROOT)}:{node.lineno} "
                        f"passes {sorted(passed)} to {name}"
                    )
        assert not offenders, "\n".join(offenders)

    def test_public_entry_points_warn_free(self):
        # Behavioral counterpart: exercising the executor-based API end
        # to end (library sweep + scenario + CLI --jobs alias) must not
        # trip the deprecation shim anywhere internally.
        from repro.cli import main
        from repro.experiments.runner import run_sweep
        from repro.workloads.spec import run_scenario

        spec = {
            "name": "warnfree",
            "topics": {"kind": "chain", "depth": 1},
            "subscriptions": {"kind": "per_level", "counts": [2, 4]},
        }
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_sweep(_metrics, [1.0, 2.0], runs=2, executor="pool:2")
            run_scenario(spec, runs=2, executor="pool:2")
            assert main([
                "fig10", "--jobs", "2", "--runs", "1",
                "--grid", "0.5", "--sizes", "3", "8", "20",
            ]) == 0
