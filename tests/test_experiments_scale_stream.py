"""Unit tests for the scaling and steady-state-stream experiments."""

import pytest

from repro.experiments.multievent import run_stream, stream_table
from repro.experiments.scale import sweep_depth, sweep_group_size
from repro.workloads import PaperScenario

SMALL = PaperScenario(sizes=(3, 10, 40), p_succ=1.0)


class TestScaleSweeps:
    def test_group_size_columns_and_rows(self):
        table = sweep_group_size(
            s_values=(20, 40), upper_sizes=(3, 6), runs=1
        )
        assert list(table.columns) == [
            "S", "event_messages", "bottom_messages", "S_logS_c", "normalized",
        ]
        assert [row["S"] for row in table.as_dicts()] == [20, 40]

    def test_group_size_normalization_near_one(self):
        table = sweep_group_size(
            s_values=(100, 400), upper_sizes=(3, 6), runs=2
        )
        for row in table.as_dicts():
            assert 0.6 <= row["normalized"] <= 1.4

    def test_depth_rows(self):
        table = sweep_depth(t_values=(1, 2), level_size=20, runs=1)
        rows = table.as_dicts()
        assert rows[0]["levels"] == 2
        assert rows[1]["levels"] == 3
        assert rows[1]["event_messages"] > rows[0]["event_messages"]

    def test_depth_per_level_flat(self):
        table = sweep_depth(t_values=(1, 3), level_size=30, runs=2)
        per_level = table.column("per_level")
        assert max(per_level) / min(per_level) <= 1.3


class TestStream:
    def test_run_stream_metrics_shape(self):
        metrics = run_stream(
            scenario=SMALL, rate=0.3, horizon=30.0, seed=1
        )
        assert set(metrics) == {
            "events",
            "messages_per_event",
            "mean_delivery",
            "min_delivery",
            "parasites",
        }
        assert metrics["events"] >= 1
        assert metrics["parasites"] == 0.0
        assert 0.0 <= metrics["min_delivery"] <= metrics["mean_delivery"] <= 1.0

    def test_empty_stream_degenerates_cleanly(self):
        metrics = run_stream(
            scenario=SMALL, rate=0.001, horizon=0.5, seed=2
        )
        if metrics["events"] == 0:
            assert metrics["mean_delivery"] == 1.0
            assert metrics["messages_per_event"] == 0.0

    def test_stream_deterministic_per_seed(self):
        a = run_stream(scenario=SMALL, rate=0.3, horizon=20.0, seed=5)
        b = run_stream(scenario=SMALL, rate=0.3, horizon=20.0, seed=5)
        assert a == b

    def test_stream_table_rows(self):
        table = stream_table(
            rates=(0.2, 0.4), runs=1, scenario=SMALL, publish_levels=(2,)
        )
        assert [row["rate"] for row in table.as_dicts()] == [0.2, 0.4]
        for row in table.as_dicts():
            assert row["parasites"] == 0.0

    def test_single_level_cost_rate_independent(self):
        table = stream_table(
            rates=(0.2, 0.6), runs=2, scenario=SMALL, publish_levels=(2,)
        )
        costs = table.column("messages_per_event")
        assert max(costs) / min(costs) <= 1.35
