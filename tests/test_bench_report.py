"""Tests for the standardized per-PR bench record (BENCH_PR<k>.json)."""

import importlib.util
import json
import pathlib
import sys

REPORT_SCRIPT = (
    pathlib.Path(__file__).parent.parent / "benchmarks" / "make_bench_report.py"
)


def _load_module():
    spec = importlib.util.spec_from_file_location(
        "make_bench_report", REPORT_SCRIPT
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


RAW = {
    "machine_info": {"python_version": "3.12.0"},
    "commit_info": {"id": "abc123"},
    "benchmarks": [
        {
            "name": "test_engine_event_throughput",
            "group": None,
            "stats": {"mean": 0.01, "min": 0.009, "rounds": 5},
            "extra_info": {"events": 10000},
        },
        {
            "name": "test_membership_build",
            "group": None,
            "stats": {"mean": 2.5, "min": 2.5, "rounds": 1},
            "extra_info": {"build_seconds": {"5000": 0.15}},
        },
        {
            "name": "test_dynamic_scenario_event_throughput",
            "group": None,
            "stats": {"mean": 0.05, "min": 0.04, "rounds": 3},
            "extra_info": {
                "events": 5000,
                "scenario": "churn-recover (mode=dynamic)",
            },
        },
    ],
}


class TestBenchReport:
    def test_build_report_schema(self):
        module = _load_module()
        report = module.build_report(RAW, pr="4")
        assert report["schema"] == "repro-bench-v1"
        assert report["pr"] == "4"
        assert report["python"] == "3.12.0"
        assert report["commit"] == "abc123"
        assert len(report["benches"]) == 3

    def test_events_per_sec_derived(self):
        module = _load_module()
        benches = {
            bench["name"]: bench
            for bench in module.build_report(RAW, pr="x")["benches"]
        }
        throughput = benches["test_engine_event_throughput"]
        assert throughput["events_per_sec"] == 10000 / 0.01
        assert throughput["ops_per_sec"] == 1 / 0.01

    def test_dynamic_scenario_row_included(self):
        # The bench trajectory must cover the dynamic-protocol path: the
        # dynamic-scenario bench reports engine callbacks as `events`, so
        # its events/sec lands in BENCH_PR<k>.json like the static rows.
        module = _load_module()
        benches = {
            bench["name"]: bench
            for bench in module.build_report(RAW, pr="x")["benches"]
        }
        dynamic = benches["test_dynamic_scenario_event_throughput"]
        assert dynamic["events_per_sec"] == 5000 / 0.05
        assert dynamic["extra_info"]["scenario"].startswith("churn-recover")
        # No "events" in extra_info → no events_per_sec key.
        assert "events_per_sec" not in benches["test_membership_build"]

    def test_main_writes_named_file(self, tmp_path, monkeypatch, capsys):
        module = _load_module()
        raw_path = tmp_path / "raw.json"
        raw_path.write_text(json.dumps(RAW))
        monkeypatch.setenv("REPRO_PR_NUMBER", "17")
        assert module.main([str(raw_path)]) == 0
        out_path = tmp_path / "BENCH_PR17.json"
        assert out_path.is_file()
        report = json.loads(out_path.read_text())
        assert report["pr"] == "17"
        assert report["benches"], "record must be populated"

    def test_main_rejects_empty_dump(self, tmp_path, monkeypatch, capsys):
        module = _load_module()
        raw_path = tmp_path / "raw.json"
        raw_path.write_text(json.dumps({"benchmarks": []}))
        monkeypatch.setenv("REPRO_PR_NUMBER", "17")
        assert module.main([str(raw_path)]) == 1
