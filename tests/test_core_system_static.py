"""End-to-end tests of the static (paper-§VII) mode."""

import math

import pytest

from repro.core import DaMulticastConfig, DaMulticastSystem, TopicParams
from repro.errors import ConfigError, ProtocolError, UnknownTopic
from repro.failures import StillbornFailures
from repro.topics import ROOT, Topic

T1 = Topic.parse(".t1")
T2 = Topic.parse(".t1.t2")


def build_paper_like_system(
    *,
    seed=0,
    p_success=1.0,
    failure_model=None,
    sizes=(5, 20, 100),
    log_base=10.0,
):
    config = DaMulticastConfig(
        default_params=TopicParams(fanout_log_base=log_base),
    )
    system = DaMulticastSystem(
        config=config,
        seed=seed,
        p_success=p_success,
        failure_model=failure_model,
        mode="static",
    )
    system.add_group(ROOT, sizes[0])
    system.add_group(T1, sizes[1])
    system.add_group(T2, sizes[2])
    system.finalize_static_membership()
    return system


class TestStaticMembership:
    def test_topic_tables_filled(self):
        system = build_paper_like_system()
        for process in system.group(T2):
            table = process.topic_table()
            expected = process.params.table_capacity(100)
            assert len(table) == expected
            assert process.pid not in table

    def test_super_tables_point_at_direct_super(self):
        system = build_paper_like_system()
        for process in system.group(T2):
            assert process.super_table.target_topic == T1
            assert len(process.super_table) == process.params.z
        for process in system.group(T1):
            assert process.super_table.target_topic == ROOT

    def test_root_group_has_no_super_table(self):
        system = build_paper_like_system()
        for process in system.group(ROOT):
            assert process.super_table.is_empty

    def test_super_table_skips_empty_group(self):
        config = DaMulticastConfig()
        system = DaMulticastSystem(config=config, mode="static")
        system.add_group(ROOT, 3)
        system.add_group(T2, 10)  # T1 exists in hierarchy but has no members
        system.finalize_static_membership()
        for process in system.group(T2):
            assert process.super_table.target_topic == ROOT

    def test_publish_before_finalize_raises(self):
        system = DaMulticastSystem(mode="static")
        system.add_group(T2, 5)
        with pytest.raises(ConfigError):
            system.publish(T2)

    def test_finalize_requires_static_mode(self):
        system = DaMulticastSystem(mode="dynamic")
        with pytest.raises(ConfigError):
            system.finalize_static_membership()

    def test_invalid_mode(self):
        with pytest.raises(ConfigError):
            DaMulticastSystem(mode="hybrid")


class TestDissemination:
    def test_reliable_network_full_coverage(self):
        system = build_paper_like_system()
        event = system.publish(T2)
        system.run_until_idle()
        assert system.delivered_fraction(event, T2) == 1.0
        assert system.delivered_fraction(event, T1) == 1.0
        assert system.delivered_fraction(event, ROOT) == 1.0
        assert system.all_received(event, T2)

    def test_no_parasite_deliveries_possible(self):
        # Publishing on T1 must never reach T2 processes (T2 does not
        # include T1); the process invariant raises if routing leaks.
        system = build_paper_like_system()
        event = system.publish(T1)
        system.run_until_idle()
        assert system.delivered_fraction(event, T1) == 1.0
        assert system.delivered_fraction(event, ROOT) == 1.0
        # No T2 process received the supertopic event.
        assert system.delivered_fraction(event, T2) == 0.0

    def test_event_climbs_one_group_at_a_time(self):
        system = build_paper_like_system()
        system.publish(T2)
        system.run_until_idle()
        stats = system.stats
        assert stats.events_sent_between(T2, T1) >= 1
        assert stats.events_sent_between(T1, ROOT) >= 1
        assert stats.events_sent_between(T2, ROOT) == 0  # never skips levels

    def test_root_publication_stays_in_root(self):
        system = build_paper_like_system()
        event = system.publish(ROOT)
        system.run_until_idle()
        assert system.delivered_fraction(event, ROOT) == 1.0
        assert system.stats.inter_group_sent == {}

    def test_message_counts_scale_with_group(self):
        system = build_paper_like_system()
        system.publish(T2)
        system.run_until_idle()
        stats = system.stats
        # Every T2 member forwards fanout messages once: S*(log10(S)+c).
        fanout = TopicParams(fanout_log_base=10).fanout(100)
        assert stats.events_sent_in_group(T2) <= 100 * fanout
        assert stats.events_sent_in_group(T2) >= 0.9 * 100 * fanout
        assert stats.events_sent_in_group(T1) <= 20 * TopicParams(
            fanout_log_base=10
        ).fanout(20)

    def test_publisher_also_delivers_to_itself(self):
        system = build_paper_like_system()
        publisher = system.group(T2)[0]
        event = system.publish(T2, publisher=publisher)
        system.run_until_idle()
        assert system.tracker.received_by(event.event_id, publisher.pid)

    def test_duplicate_events_delivered_once(self):
        system = build_paper_like_system()
        event = system.publish(T2)
        system.run_until_idle()
        for process in system.group(T2):
            count = sum(
                1 for e in process.delivered if e.event_id == event.event_id
            )
            assert count <= 1

    def test_lossy_channels_degrade_gracefully(self):
        system = build_paper_like_system(p_success=0.85, seed=3)
        event = system.publish(T2)
        system.run_until_idle()
        assert system.delivered_fraction(event, T2) > 0.9

    def test_stillborn_failures_reduce_coverage(self):
        # Half the processes dead: coverage among alive should still be
        # substantial but below the failure-free case in lower groups.
        pids = list(range(125))
        failure = StillbornFailures(set(pids[1::2]))  # every other pid
        system = build_paper_like_system(failure_model=failure, seed=5)
        alive_t2 = [
            p for p in system.group(T2) if system.harness.is_alive(p.pid)
        ]
        event = system.publish(T2, publisher=alive_t2[0])
        system.run_until_idle()
        fraction = system.delivered_fraction(event, T2, alive_only=True)
        assert 0.3 <= fraction <= 1.0

    def test_publish_with_no_alive_member_raises(self):
        failure = StillbornFailures(set(range(200)))
        system = build_paper_like_system(failure_model=failure)
        with pytest.raises(UnknownTopic):
            system.publish(T2)


class TestQueries:
    def test_group_listing(self):
        system = build_paper_like_system()
        assert len(system.group(T2)) == 100
        assert len(system.group_pids(T1)) == 20
        assert system.group(".unused") == []

    def test_topics(self):
        system = build_paper_like_system()
        assert system.topics() == [ROOT, T1, T2]

    def test_interests_mapping(self):
        system = build_paper_like_system(sizes=(1, 1, 1))
        interests = system.interests()
        assert len(interests) == 3
        assert set(interests.values()) == {ROOT, T1, T2}

    def test_memory_footprints(self):
        system = build_paper_like_system()
        footprints = system.memory_footprints(T2)
        params = TopicParams(fanout_log_base=10)
        bound = params.table_capacity(100) + params.z
        assert all(fp <= bound for fp in footprints)

    def test_process_lookup(self):
        system = build_paper_like_system(sizes=(1, 1, 1))
        pid = system.group_pids(ROOT)[0]
        assert system.process(pid).topic == ROOT
        with pytest.raises(UnknownTopic):
            system.process(10_000)

    def test_add_group_validation(self):
        system = DaMulticastSystem(mode="static")
        with pytest.raises(ConfigError):
            system.add_group(T2, 0)
