"""Unit tests for the structured trace log."""

from repro.sim import TraceLog


class TestTraceLog:
    def test_record_and_len(self):
        log = TraceLog()
        log.record(0.0, "net.sent", 1, 2, message_kind="event")
        log.record(1.0, "net.delivered", 1, 2, message_kind="event")
        assert len(log) == 2

    def test_disabled_log_is_noop(self):
        log = TraceLog(enabled=False)
        log.record(0.0, "net.sent")
        assert len(log) == 0

    def test_filter_exact_kind(self):
        log = TraceLog()
        log.record(0.0, "net.sent")
        log.record(0.0, "net.delivered")
        assert len(log.filter("net.sent")) == 1

    def test_filter_prefix_kind(self):
        log = TraceLog()
        log.record(0.0, "net.sent")
        log.record(0.0, "net.delivered")
        log.record(0.0, "app.delivered")
        assert len(log.filter("net")) == 2

    def test_prefix_requires_dot_boundary(self):
        log = TraceLog()
        log.record(0.0, "network_other")
        assert log.filter("net") == []

    def test_filter_predicate(self):
        log = TraceLog()
        log.record(0.0, "net.sent", source=1)
        log.record(0.0, "net.sent", source=2)
        only_two = log.filter("net.sent", lambda r: r.source == 2)
        assert len(only_two) == 1
        assert only_two[0].source == 2

    def test_count(self):
        log = TraceLog()
        for _ in range(5):
            log.record(0.0, "x")
        assert log.count("x") == 5
        assert log.count("y") == 0

    def test_kinds_histogram(self):
        log = TraceLog()
        log.record(0.0, "a")
        log.record(0.0, "a")
        log.record(0.0, "b")
        assert log.kinds() == {"a": 2, "b": 1}

    def test_detail_payload(self):
        log = TraceLog()
        log.record(0.0, "net.dropped", 1, 2, reason="loss")
        assert log.records[0].detail["reason"] == "loss"

    def test_clear(self):
        log = TraceLog()
        log.record(0.0, "a")
        log.clear()
        assert len(log) == 0

    def test_iteration(self):
        log = TraceLog()
        log.record(0.0, "a")
        log.record(1.0, "b")
        assert [r.kind for r in log] == ["a", "b"]
