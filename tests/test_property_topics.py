"""Property-based tests: the topic-inclusion algebra.

Inclusion is the relation the whole protocol is built on; these properties
must hold for *any* topics, not just the chains used in the figures.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.topics import ROOT, Topic

segment = st.text(
    alphabet=st.sampled_from("abcxyz012_-"), min_size=1, max_size=4
)
topic_strategy = st.builds(
    Topic, st.lists(segment, min_size=0, max_size=5).map(tuple)
)


@given(topic_strategy)
def test_includes_is_reflexive(topic):
    assert topic.includes(topic)


@given(topic_strategy, topic_strategy)
def test_includes_is_antisymmetric(a, b):
    if a.includes(b) and b.includes(a):
        assert a == b


@given(topic_strategy, topic_strategy, topic_strategy)
@settings(max_examples=200)
def test_includes_is_transitive(a, b, c):
    if a.includes(b) and b.includes(c):
        assert a.includes(c)


@given(topic_strategy)
def test_root_includes_everything(topic):
    assert ROOT.includes(topic)


@given(topic_strategy)
def test_super_topic_includes_strictly(topic):
    parent = topic.super_topic
    if parent is not None:
        assert parent.is_strict_supertopic_of(topic)
        assert not topic.includes(parent) or topic == parent


@given(topic_strategy)
def test_parse_roundtrip(topic):
    assert Topic.parse(topic.name) == topic


@given(topic_strategy)
def test_depth_equals_segments(topic):
    assert topic.depth == len(topic.segments)
    assert topic.distance_to_root() == topic.depth


@given(topic_strategy)
def test_ancestor_chain_is_monotone(topic):
    chain = list(topic.ancestors(include_self=True))
    assert chain[0] == topic
    assert chain[-1] == ROOT
    for deeper, shallower in zip(chain, chain[1:]):
        assert shallower.includes(deeper)
        assert shallower.depth == deeper.depth - 1


@given(topic_strategy, topic_strategy)
def test_common_ancestor_includes_both(a, b):
    ancestor = a.common_ancestor(b)
    assert ancestor.includes(a)
    assert ancestor.includes(b)


@given(topic_strategy, topic_strategy)
def test_common_ancestor_is_deepest(a, b):
    """No strictly deeper topic includes both."""
    ancestor = a.common_ancestor(b)
    # Candidate deeper ancestors are prefixes of a below `ancestor`.
    for candidate in a.ancestors(include_self=True):
        if candidate.depth > ancestor.depth:
            assert not (candidate.includes(a) and candidate.includes(b))


@given(topic_strategy, topic_strategy)
def test_inclusion_matches_relative_depth_contract(a, b):
    if a.includes(b):
        assert b.relative_depth(a) == b.depth - a.depth


@given(st.lists(topic_strategy, min_size=1, max_size=8))
def test_sorting_is_stable_and_total(topics):
    ordered = sorted(topics)
    assert sorted(ordered) == ordered
    assert len(ordered) == len(topics)


@given(topic_strategy, segment)
def test_child_inverts_super(topic, name):
    child = topic.child(name)
    assert child.super_topic == topic
    assert topic.includes(child)
