"""Streaming delivery tracker: aggregates, bounds, and loud refusals."""

import math

import pytest

from repro.core.columnar import ColumnarStaticSystem
from repro.core.events import Event, EventId
from repro.errors import MetricsError
from repro.metrics import (
    DeliveryTracker,
    StreamingDeliveryTracker,
    topic_delivery_summary,
)
from repro.metrics.streaming import _bucket_upper_bound, _latency_bucket
from repro.topics import Topic

T1 = Topic.parse(".t1")
T2 = Topic.parse(".t1.t2")


def event(eid=1, topic=T2, at=0.0):
    return Event(EventId(0, eid), topic, None, at)


class TestAggregates:
    def test_publish_and_delivery_fold_into_topic_stats(self):
        tracker = StreamingDeliveryTracker()
        e = event(at=1.0)
        tracker.record_publish(e, publisher=0)
        tracker.record_delivery(1, e, 3.0, hops=2)
        tracker.record_delivery(2, e, 5.0, hops=4)
        stats = tracker.topic_stats(T2)
        assert stats.published == 1
        assert stats.delivered == 2
        assert stats.latency_sum == pytest.approx(6.0)
        assert stats.latency_min == pytest.approx(2.0)
        assert stats.latency_max == pytest.approx(4.0)
        assert stats.mean_latency == pytest.approx(3.0)
        assert stats.mean_hops == pytest.approx(3.0)
        assert stats.hops_max == 4
        assert tracker.deliveries == 2
        assert tracker.events_published == 1

    def test_topics_are_separated(self):
        tracker = StreamingDeliveryTracker()
        tracker.record_delivery(1, event(topic=T1), 1.0)
        tracker.record_delivery(1, event(topic=T2), 2.0)
        assert tracker.topics() == [T1, T2]
        assert tracker.delivery_count_by_topic(T1) == 1
        assert tracker.delivery_count_by_topic(T2) == 1

    def test_unseen_topic_reads_as_zeros(self):
        tracker = StreamingDeliveryTracker()
        stats = tracker.topic_stats(T1)
        assert stats.published == 0
        assert stats.delivered == 0
        assert stats.mean_latency is None
        assert stats.mean_hops is None
        assert tracker.mean_latency(T1) is None
        assert tracker.latency_percentile(T1, 0.5) is None

    def test_hops_optional(self):
        tracker = StreamingDeliveryTracker()
        tracker.record_delivery(1, event(), 1.0)
        stats = tracker.topic_stats(T2)
        assert stats.hops_count == 0
        assert stats.mean_hops is None

    def test_clear(self):
        tracker = StreamingDeliveryTracker()
        tracker.record_publish(event(), 0)
        tracker.record_delivery(1, event(), 1.0)
        tracker.clear()
        assert tracker.state_size() == 0
        assert tracker.deliveries == 0
        assert tracker.events_published == 0


class TestPercentiles:
    def test_bucket_edges(self):
        assert _latency_bucket(0.0) == 0
        assert _latency_bucket(-1.0) == 0
        assert _bucket_upper_bound(0) == 0.0
        # latency in [2**(e-1), 2**e) lands in the bucket whose upper
        # bound is 2**e
        for latency in (0.75, 1.0, 1.5, 2.0, 1000.0, 2**-20):
            # latency lives in the half-open magnitude range
            # [upper/2, upper); frexp puts exact powers of two at the
            # lower edge inclusive.
            upper = _bucket_upper_bound(_latency_bucket(latency))
            assert upper / 2 <= latency < upper
        # clamping: denormal-tiny and astronomically-large both stay in
        # range
        assert _latency_bucket(1e-300) == 1
        assert _latency_bucket(1e300) == 63

    def test_zero_latency_percentiles_are_exact(self):
        tracker = StreamingDeliveryTracker()
        for pid in range(10):
            tracker.record_delivery(pid, event(), 0.0)
        assert tracker.latency_percentile(T2, 0.5) == 0.0
        assert tracker.latency_percentile(T2, 1.0) == 0.0

    def test_percentile_bounded_by_max(self):
        tracker = StreamingDeliveryTracker()
        for pid, latency in enumerate((0.1, 0.2, 0.3, 1.7)):
            tracker.record_delivery(pid, event(), latency)
        p100 = tracker.latency_percentile(T2, 1.0)
        assert p100 == pytest.approx(1.7)  # capped at latency_max
        p25 = tracker.latency_percentile(T2, 0.25)
        assert 0.1 <= p25 <= 0.3  # bucket upper bound approximation

    def test_quantile_validated(self):
        tracker = StreamingDeliveryTracker()
        tracker.record_delivery(1, event(), 1.0)
        with pytest.raises(MetricsError):
            tracker.latency_percentile(T2, 1.5)
        with pytest.raises(MetricsError):
            tracker.topic_stats(T2).latency_percentile(-0.1)


class TestPerEventQueriesRefuse:
    @pytest.mark.parametrize(
        "query",
        [
            lambda t: t.receivers(EventId(0, 1)),
            lambda t: t.received_by(EventId(0, 1), 1),
            lambda t: t.delivered(EventId(0, 1), 1),
            lambda t: t.delivery_count(EventId(0, 1)),
            lambda t: t.delivery_times(EventId(0, 1)),
            lambda t: t.delivery_hops(EventId(0, 1)),
            lambda t: t.event(EventId(0, 1)),
            lambda t: t.publisher_of(EventId(0, 1)),
        ],
    )
    def test_raises_metrics_error(self, query):
        tracker = StreamingDeliveryTracker()
        with pytest.raises(MetricsError, match="streaming tracker"):
            query(tracker)


class TestTopicDeliverySummary:
    def test_streaming_and_full_agree(self):
        """The same delivery stream summarised by either tracker flavour
        yields identical per-topic numbers."""
        full = DeliveryTracker()
        streaming = StreamingDeliveryTracker()
        deliveries = [
            (event(1, T2, at=0.0), [(1, 1.0), (2, 3.0)]),
            (event(2, T2, at=2.0), [(1, 2.5)]),
            (event(3, T1, at=0.0), [(5, 4.0)]),
        ]
        for e, receivers in deliveries:
            for tracker in (full, streaming):
                tracker.record_publish(e, publisher=0)
                for pid, time in receivers:
                    tracker.record_delivery(pid, e, time)
        for topic in (T1, T2):
            full_summary = topic_delivery_summary(full, topic)
            stream_summary = topic_delivery_summary(streaming, topic)
            assert full_summary == pytest.approx(stream_summary)

    def test_undelivered_topic(self):
        summary = topic_delivery_summary(StreamingDeliveryTracker(), T1)
        assert summary == {
            "published": 0, "delivered": 0, "mean_latency": None,
        }


class TestMemoryBound:
    def test_state_stays_o_topics_over_ten_thousand_events(self):
        """The issue's acceptance test: publish >= 10^4 events through a
        paper-shaped (two-level) columnar system and check the tracker's
        state never grows past the topic count — memory is O(topics), not
        O(messages)."""
        system = ColumnarStaticSystem(seed=42)
        system.add_group(".t1", 4)
        system.add_group(".t1.t2", 8)
        system.finalize_static_membership()
        events = 10_000
        for i in range(events):
            system.publish(".t1.t2" if i % 2 else ".t1")
            system.run_until_idle()
            assert system.tracker.state_size() <= 2
        assert system.tracker.events_published == events
        assert system.tracker.deliveries >= events
        assert system.tracker.state_size() == 2
