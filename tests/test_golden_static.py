"""Golden same-seed regression tests for the static-mode simulator.

The constants below were captured from the repository *before* the batched
multicast transport landed (one ``Network.send``, one closure and one heap
entry per destination). The batched fast path must reproduce the paper
scenario's trajectories bit-for-bit: identical per-kind send/delivery
counters, identical drop reasons, identical delivery fractions per group.
Any change to RNG draw order anywhere in the transport or dissemination
stack shows up here immediately.

``test_static_construction_golden_large`` extends the net to the
membership *construction* itself at a larger scale (S=500 plus a
supergroup): its digest covers every table's exact content in exact
insertion order, so a construction-order regression in the O(S·k) build
context (index mapping, working-list advance, bulk install) is caught even
if the aggregate dissemination counters happen to survive it. Captured
from the pre-build-context implementation.
"""

import hashlib

import pytest

from repro.core.system import DaMulticastSystem
from repro.workloads import PaperScenario

#: (seed, alive_fraction) -> observable outcome of one §VII publication,
#: captured at the pre-batching commit.
GOLDEN = {
    (7, 1.0): {
        "sent": {"event": 8733},
        "delivered": {"event": 7376},
        "dropped": {"channel_loss": 1357},
        "fractions": {".": 1.0, ".t1": 0.99, ".t1.t2": 0.998},
    },
    (11, 0.7): {
        "sent": {"event": 6068},
        "delivered": {"event": 3664},
        "dropped": {"channel_loss": 863, "dead_target": 1541},
        "fractions": {".": 0.6, ".t1": 0.71, ".t1.t2": 0.692},
    },
    (42, 0.85): {
        "sent": {"event": 7409},
        "delivered": {"event": 5323},
        "dropped": {"channel_loss": 1106, "dead_target": 980},
        "fractions": {".": 0.8, ".t1": 0.85, ".t1.t2": 0.846},
    },
}


@pytest.mark.parametrize("seed,alive_fraction", sorted(GOLDEN))
def test_static_mode_outcomes_unchanged_by_batched_transport(
    seed, alive_fraction
):
    built = PaperScenario().build(seed=seed, alive_fraction=alive_fraction)
    built.publish_and_run()
    system = built.system
    want = GOLDEN[(seed, alive_fraction)]
    assert dict(system.stats.sent_by_kind) == want["sent"]
    assert dict(system.stats.delivered_by_kind) == want["delivered"]
    assert dict(system.stats.dropped_by_reason) == want["dropped"]
    fractions = {
        topic.name: round(fraction, 12)
        for topic, fraction in built.delivered_fractions().items()
    }
    assert fractions == want["fractions"]


#: Captured at the pre-build-context commit: SHA-256 over every process's
#: topic-table pids, supertopic-table pids and sTable target, in creation
#: and insertion order, for seed=123 / S_t1=100 / S_t1.t2=500.
GOLDEN_LARGE_TABLE_DIGEST = (
    "bdff3d531e067390fa3662fe0a6acd3b4ba5d74d54f9da36d9faedab0a644499"
)
GOLDEN_LARGE_PUBLISH = {
    "sent": {"event": 7010},
    "delivered": {"event": 6323},
    "dropped": {"channel_loss": 687},
}


def test_static_construction_golden_large():
    """S=500 membership construction is bit-identical, table by table."""
    system = DaMulticastSystem(seed=123, p_success=0.9, mode="static")
    system.add_group(".t1", 100)
    system.add_group(".t1.t2", 500)
    system.finalize_static_membership()

    digest = hashlib.sha256()
    for process in system.processes:
        digest.update(b"T")
        digest.update(",".join(map(str, process.topic_table().pids)).encode())
        digest.update(b"S")
        digest.update(",".join(map(str, process.super_table.pids)).encode())
        digest.update(str(process.super_table.target_topic).encode())
    assert digest.hexdigest() == GOLDEN_LARGE_TABLE_DIGEST

    event = system.publish(".t1.t2")
    system.run_until_idle()
    assert dict(system.stats.sent_by_kind) == GOLDEN_LARGE_PUBLISH["sent"]
    assert (
        dict(system.stats.delivered_by_kind)
        == GOLDEN_LARGE_PUBLISH["delivered"]
    )
    assert (
        dict(system.stats.dropped_by_reason) == GOLDEN_LARGE_PUBLISH["dropped"]
    )
    assert round(system.delivered_fraction(event, ".t1.t2"), 12) == 1.0
    assert round(system.delivered_fraction(event, ".t1"), 12) == 1.0
