"""Golden same-seed regression tests for the static-mode simulator.

The constants below were captured from the repository *before* the batched
multicast transport landed (one ``Network.send``, one closure and one heap
entry per destination). The batched fast path must reproduce the paper
scenario's trajectories bit-for-bit: identical per-kind send/delivery
counters, identical drop reasons, identical delivery fractions per group.
Any change to RNG draw order anywhere in the transport or dissemination
stack shows up here immediately.
"""

import pytest

from repro.workloads import PaperScenario

#: (seed, alive_fraction) -> observable outcome of one §VII publication,
#: captured at the pre-batching commit.
GOLDEN = {
    (7, 1.0): {
        "sent": {"event": 8733},
        "delivered": {"event": 7376},
        "dropped": {"channel_loss": 1357},
        "fractions": {".": 1.0, ".t1": 0.99, ".t1.t2": 0.998},
    },
    (11, 0.7): {
        "sent": {"event": 6068},
        "delivered": {"event": 3664},
        "dropped": {"channel_loss": 863, "dead_target": 1541},
        "fractions": {".": 0.6, ".t1": 0.71, ".t1.t2": 0.692},
    },
    (42, 0.85): {
        "sent": {"event": 7409},
        "delivered": {"event": 5323},
        "dropped": {"channel_loss": 1106, "dead_target": 980},
        "fractions": {".": 0.8, ".t1": 0.85, ".t1.t2": 0.846},
    },
}


@pytest.mark.parametrize("seed,alive_fraction", sorted(GOLDEN))
def test_static_mode_outcomes_unchanged_by_batched_transport(
    seed, alive_fraction
):
    built = PaperScenario().build(seed=seed, alive_fraction=alive_fraction)
    built.publish_and_run()
    system = built.system
    want = GOLDEN[(seed, alive_fraction)]
    assert dict(system.stats.sent_by_kind) == want["sent"]
    assert dict(system.stats.delivered_by_kind) == want["delivered"]
    assert dict(system.stats.dropped_by_reason) == want["dropped"]
    fractions = {
        topic.name: round(fraction, 12)
        for topic, fraction in built.delivered_fractions().items()
    }
    assert fractions == want["fractions"]
