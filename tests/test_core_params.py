"""Unit tests for TopicParams and DaMulticastConfig."""

import math

import pytest

from repro.core import DaMulticastConfig, TopicParams
from repro.errors import ConfigError
from repro.topics import Topic

T1 = Topic.parse(".t1")
T2 = Topic.parse(".t1.t2")


class TestValidation:
    def test_defaults_are_paper_values(self):
        params = TopicParams()
        assert params.b == 3
        assert params.c == 5
        assert params.g == 5
        assert params.a == 1
        assert params.z == 3

    def test_a_bounds(self):
        with pytest.raises(ConfigError):
            TopicParams(a=0)
        with pytest.raises(ConfigError):
            TopicParams(a=4, z=3)
        TopicParams(a=3, z=3)  # a == z allowed

    def test_tau_bounds(self):
        with pytest.raises(ConfigError):
            TopicParams(tau=-1)
        with pytest.raises(ConfigError):
            TopicParams(tau=4, z=3)
        TopicParams(tau=3, z=3)

    def test_g_bound(self):
        with pytest.raises(ConfigError):
            TopicParams(g=0.5)

    def test_z_bound(self):
        with pytest.raises(ConfigError):
            TopicParams(z=0, a=1)

    def test_log_base(self):
        with pytest.raises(ConfigError):
            TopicParams(fanout_log_base=1.0)

    def test_negative_constants(self):
        with pytest.raises(ConfigError):
            TopicParams(b=-1)
        with pytest.raises(ConfigError):
            TopicParams(c=-1)


class TestDerived:
    def test_p_sel(self):
        params = TopicParams(g=5)
        assert params.p_sel(1000) == 0.005
        assert params.p_sel(5) == 1.0
        assert params.p_sel(2) == 1.0  # clamped

    def test_p_sel_invalid_group(self):
        with pytest.raises(ConfigError):
            TopicParams().p_sel(0)

    def test_p_a(self):
        assert TopicParams(a=1, z=3).p_a == pytest.approx(1 / 3)
        assert TopicParams(a=3, z=3).p_a == 1.0

    def test_fanout_natural_log(self):
        params = TopicParams(c=5)
        assert params.fanout(1000) == math.ceil(math.log(1000) + 5)  # 12

    def test_fanout_log10_matches_figure8_scale(self):
        params = TopicParams(c=5, fanout_log_base=10)
        assert params.fanout(1000) == 8  # 3 + 5: the ~8000-messages scale

    def test_fanout_singleton_group(self):
        assert TopicParams(c=5).fanout(1) == 5

    def test_fanout_minimum_one(self):
        assert TopicParams(c=0).fanout(1) == 1

    def test_table_capacity(self):
        params = TopicParams(b=3, fanout_log_base=10)
        assert params.table_capacity(1000) == 12  # (3+1)*3
        assert params.table_capacity(1) == 1

    def test_memory_footprint(self):
        params = TopicParams(c=5, z=3, fanout_log_base=10)
        assert params.memory_footprint(1000) == pytest.approx(3 + 5 + 3)
        assert params.memory_footprint(1000, has_super=False) == pytest.approx(8)


class TestConfig:
    def test_default_params(self):
        config = DaMulticastConfig()
        assert config.params_for(T2) == TopicParams()

    def test_override(self):
        special = TopicParams(c=9)
        config = DaMulticastConfig().with_override(T2, special)
        assert config.params_for(T2) == special
        assert config.params_for(T1) == TopicParams()

    def test_with_override_is_persistent_copy(self):
        base = DaMulticastConfig()
        derived = base.with_override(T2, TopicParams(c=9))
        assert base.params_for(T2) == TopicParams()
        assert derived.params_for(T2).c == 9

    def test_with_defaults(self):
        config = DaMulticastConfig().with_defaults(TopicParams(c=2))
        assert config.params_for(T1).c == 2

    def test_interval_validation(self):
        with pytest.raises(ConfigError):
            DaMulticastConfig(maintain_interval=0)
        with pytest.raises(ConfigError):
            DaMulticastConfig(bootstrap_timeout=-1)
        with pytest.raises(ConfigError):
            DaMulticastConfig(bootstrap_ttl=0)
        with pytest.raises(ConfigError):
            DaMulticastConfig(ping_timeout=0)


class TestOverrideInheritance:
    def test_no_inheritance_by_default(self):
        config = DaMulticastConfig().with_override(T1, TopicParams(c=9))
        assert config.params_for(T2) == TopicParams()  # T2 under T1

    def test_subtree_inherits_nearest_ancestor(self):
        config = DaMulticastConfig(inherit_overrides=True).with_override(
            T1, TopicParams(c=9)
        )
        assert config.params_for(T2).c == 9
        deep = Topic.parse(".t1.t2.t3.t4")
        assert config.params_for(deep).c == 9

    def test_exact_override_beats_inherited(self):
        config = (
            DaMulticastConfig(inherit_overrides=True)
            .with_override(T1, TopicParams(c=9))
            .with_override(T2, TopicParams(c=2))
        )
        assert config.params_for(T2).c == 2

    def test_nearest_ancestor_wins(self):
        root_override = TopicParams(c=1)
        mid_override = TopicParams(c=7)
        from repro.topics import ROOT

        config = (
            DaMulticastConfig(inherit_overrides=True)
            .with_override(ROOT, root_override)
            .with_override(T1, mid_override)
        )
        assert config.params_for(T2).c == 7
        assert config.params_for(Topic.parse(".other")).c == 1

    def test_siblings_unaffected(self):
        config = DaMulticastConfig(inherit_overrides=True).with_override(
            T1, TopicParams(c=9)
        )
        assert config.params_for(Topic.parse(".other.leaf")) == TopicParams()
