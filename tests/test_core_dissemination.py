"""Unit tests for the DISSEMINATE/RECEIVE logic against a scripted peer."""

import random

import pytest

from repro.core.dissemination import disseminate, should_deliver
from repro.core.events import Event, EventId
from repro.core.params import TopicParams
from repro.core.tables import SuperTopicTable
from repro.membership.view import PartialView, ProcessDescriptor
from repro.net.message import EventMessage
from repro.topics import Topic

T1 = Topic.parse(".t1")
T2 = Topic.parse(".t1.t2")


class ScriptedPeer:
    """A DisseminationPeer with fully controlled tables and rng."""

    def __init__(self, *, params, group_size, table_pids, super_pids, seed=0):
        self.pid = 0
        self.topic = T2
        self.rng = random.Random(seed)
        self.params = params
        self.group_size = group_size
        self._table = PartialView(max(1, len(table_pids) or 1))
        for pid in table_pids:
            self._table.add(ProcessDescriptor(pid, T2))
        self.super_table = SuperTopicTable(params.z)
        if super_pids:
            self.super_table.adopt(
                T1,
                [ProcessDescriptor(pid, T1) for pid in super_pids],
                self.rng,
                own_topic=T2,
            )
        self.sent: list[tuple[int, EventMessage]] = []

    def topic_table(self):
        return self._table

    def send(self, target, message):
        self.sent.append((target, message))

    def multicast(self, targets, message):
        for target in targets:
            self.sent.append((target, message))


def make_event(topic=T2) -> Event:
    return Event(EventId(99, 1), topic, None, 0.0)


class TestIntraGossip:
    def test_fanout_respected(self):
        peer = ScriptedPeer(
            params=TopicParams(c=2, fanout_log_base=10),
            group_size=100,
            table_pids=range(1, 30),
            super_pids=[],
        )
        intra, inter = disseminate(peer, make_event())
        # fanout = ceil(log10(100) + 2) = 4
        assert intra == 4
        assert inter == 0
        assert len(peer.sent) == 4

    def test_targets_distinct(self):
        peer = ScriptedPeer(
            params=TopicParams(c=5),
            group_size=50,
            table_pids=range(1, 40),
            super_pids=[],
        )
        disseminate(peer, make_event())
        targets = [t for t, _ in peer.sent]
        assert len(set(targets)) == len(targets)

    def test_small_table_degrades_gracefully(self):
        peer = ScriptedPeer(
            params=TopicParams(c=5),
            group_size=1000,
            table_pids=[1, 2],
            super_pids=[],
        )
        intra, _ = disseminate(peer, make_event())
        assert intra == 2  # can't exceed what we know

    def test_never_sends_to_self(self):
        peer = ScriptedPeer(
            params=TopicParams(c=5),
            group_size=10,
            table_pids=[0, 1, 2],  # includes own pid 0
            super_pids=[],
        )
        disseminate(peer, make_event())
        assert all(target != 0 for target, _ in peer.sent)

    def test_intra_scope_tagged(self):
        peer = ScriptedPeer(
            params=TopicParams(c=1),
            group_size=10,
            table_pids=[1, 2, 3, 4, 5],
            super_pids=[],
        )
        disseminate(peer, make_event())
        for _, message in peer.sent:
            assert message.scope.kind == "intra"
            assert message.scope.group == T2


class TestSuperHandoff:
    def test_force_link_always_sends_up(self):
        peer = ScriptedPeer(
            params=TopicParams(g=1, a=3, z=3),  # p_a = 1: all entries
            group_size=10_000,  # p_sel ~ 0: only force_link explains sends
            table_pids=[],
            super_pids=[10, 11, 12],
        )
        peer._table = PartialView(1)  # empty topic table
        _, inter = disseminate(peer, make_event(), force_link=True)
        assert inter == 3

    def test_election_probability_zeroish_without_force(self):
        sent_up = 0
        for seed in range(50):
            peer = ScriptedPeer(
                params=TopicParams(g=1, a=3, z=3),
                group_size=10_000,  # p_sel = 1e-4
                table_pids=[1],
                super_pids=[10],
                seed=seed,
            )
            _, inter = disseminate(peer, make_event())
            sent_up += inter
        assert sent_up == 0  # 50 trials at p=1e-4: overwhelmingly zero

    def test_election_certain_in_tiny_group(self):
        peer = ScriptedPeer(
            params=TopicParams(g=5, a=3, z=3),  # p_sel = 1 for S<=5, p_a=1
            group_size=3,
            table_pids=[1, 2],
            super_pids=[10, 11, 12],
        )
        _, inter = disseminate(peer, make_event())
        assert inter == 3

    def test_p_a_thins_supertable_sends(self):
        total = 0
        trials = 300
        for seed in range(trials):
            peer = ScriptedPeer(
                params=TopicParams(g=5, a=1, z=3),  # p_a = 1/3
                group_size=2,  # p_sel = 1
                table_pids=[1],
                super_pids=[10, 11, 12],
                seed=seed,
            )
            _, inter = disseminate(peer, make_event())
            total += inter
        # E[inter] = z * p_a = 1 per trial.
        assert 0.75 * trials / 3 * 3 <= total <= 1.25 * trials

    def test_empty_super_table_sends_nothing_up(self):
        peer = ScriptedPeer(
            params=TopicParams(),
            group_size=5,
            table_pids=[1, 2],
            super_pids=[],
        )
        _, inter = disseminate(peer, make_event(), force_link=True)
        assert inter == 0

    def test_inter_scope_tagged_with_edge(self):
        peer = ScriptedPeer(
            params=TopicParams(g=5, a=3, z=3),
            group_size=2,
            table_pids=[1],
            super_pids=[10, 11, 12],
        )
        disseminate(peer, make_event())
        inter_messages = [
            m for _, m in peer.sent if m.scope.kind == "inter"
        ]
        assert inter_messages
        for message in inter_messages:
            assert message.scope.group == T2
            assert message.scope.super_group == T1


class TestShouldDeliver:
    def test_own_topic(self):
        assert should_deliver(make_event(T2), T2)

    def test_supertopic_subscriber_gets_subtopic_event(self):
        assert should_deliver(make_event(T2), T1)

    def test_subtopic_subscriber_rejects_supertopic_event(self):
        assert not should_deliver(make_event(T1), T2)

    def test_sibling_rejected(self):
        assert not should_deliver(make_event(T2), Topic.parse(".t1.other"))
