"""Unit tests for the §VI-B/§VI-C/Appendix complexity closed forms."""

import math

import pytest

from repro.analysis import (
    broadcast_memory,
    broadcast_messages,
    damulticast_memory,
    damulticast_messages,
    hierarchical_memory,
    hierarchical_messages,
    multicast_memory,
    multicast_messages,
)
from repro.analysis.complexity import damulticast_message_bound
from repro.errors import ConfigError

PAPER_SIZES = [1000, 100, 10]  # S_T2, S_T1, S_T0


class TestDaMulticastMessages:
    def test_intra_term_matches_formula(self):
        # With g a z p_succ making inter-group traffic zero-ish impossible;
        # compare against manual computation instead.
        expected_intra = sum(s * (math.log(s) + 5) for s in PAPER_SIZES)
        expected_inter = sum(
            min(1.0, 5 / s) * s * 1.0 for s in PAPER_SIZES[:-1]
        )  # g*a*p_succ per edge
        value = damulticast_messages(PAPER_SIZES, p_succ=1.0)
        assert value == pytest.approx(expected_intra + expected_inter)

    def test_inter_term_is_g_a_psucc_per_edge(self):
        with_loss = damulticast_messages(PAPER_SIZES, p_succ=0.5)
        without = damulticast_messages(PAPER_SIZES, p_succ=1.0)
        # 2 edges * g*a*(1 - 0.5) difference
        assert without - with_loss == pytest.approx(2 * 5 * 1 * 0.5)

    def test_log10_variant(self):
        value = damulticast_messages(
            [1000], c=5, g=5, a=1, z=3, p_succ=1.0, log_base=10
        )
        assert value == pytest.approx(1000 * 8)  # no super edge for 1 level

    def test_single_group(self):
        # One level: no inter-group traffic at all.
        assert damulticast_messages([100], g=5) == pytest.approx(
            100 * (math.log(100) + 5)
        )

    def test_upper_bound_dominates(self):
        bound = damulticast_message_bound(PAPER_SIZES)
        assert bound >= damulticast_messages(PAPER_SIZES)

    def test_validation(self):
        with pytest.raises(ConfigError):
            damulticast_messages([])
        with pytest.raises(ConfigError):
            damulticast_messages([0])


class TestBaselineMessages:
    def test_broadcast_n_log_n(self):
        assert broadcast_messages(1110, c=5) == pytest.approx(
            1110 * (math.log(1110) + 5)
        )

    def test_multicast_sums_levels(self):
        assert multicast_messages(PAPER_SIZES, c=5) == pytest.approx(
            sum(s * (math.log(s) + 5) for s in PAPER_SIZES)
        )

    def test_hierarchical_eq10(self):
        value = hierarchical_messages(10, 111, c1=5, c2=5)
        assert value == pytest.approx(
            10 * 111 * (math.log(10) + math.log(111) + 10)
        )

    def test_broadcast_dominates_multicast_on_paper_scenario(self):
        n = sum(PAPER_SIZES)
        assert broadcast_messages(n) > multicast_messages(PAPER_SIZES)

    def test_damulticast_close_to_multicast(self):
        # daMulticast pays only g*a extra messages per level over (b).
        diff = damulticast_messages(PAPER_SIZES) - multicast_messages(PAPER_SIZES)
        assert 0 < diff <= 2 * 5  # 2 edges, g*a = 5 each


class TestMemory:
    def test_damulticast_range(self):
        top = damulticast_memory(1000, c=5, z=3)
        root = damulticast_memory(10, c=5, z=3, has_super=False)
        assert top == pytest.approx(math.log(1000) + 5 + 3)
        assert root == pytest.approx(math.log(10) + 5)

    def test_broadcast_memory(self):
        assert broadcast_memory(1110, c=5) == pytest.approx(math.log(1110) + 5)

    def test_multicast_memory_sums_tables(self):
        assert multicast_memory(PAPER_SIZES, c=5) == pytest.approx(
            sum(math.log(s) + 5 for s in PAPER_SIZES)
        )

    def test_hierarchical_memory_eq9(self):
        assert hierarchical_memory(10, 111, c1=5, c2=5) == pytest.approx(
            math.log(10) + math.log(111) + 10
        )

    def test_paper_claim_damulticast_smallest(self):
        """§VI-E.2: 'the memory complexity of a process is always smaller
        in our algorithm than in the other algorithms' (paper scenario)."""
        ours = damulticast_memory(1000, c=5, z=3)
        assert ours < broadcast_memory(1110, c=5) + 3  # within z slack
        assert ours < multicast_memory(PAPER_SIZES, c=5)
        assert ours < hierarchical_memory(10, 111, c1=5, c2=5)

    def test_validation(self):
        with pytest.raises(ConfigError):
            damulticast_memory(0)
        with pytest.raises(ConfigError):
            broadcast_messages(0)
        with pytest.raises(ConfigError):
            hierarchical_messages(0, 10)
