"""Unit tests for the weakly-consistent bootstrap overlay."""

import random

import pytest

from repro.errors import ConfigError, UnknownActor
from repro.membership import BootstrapOverlay, ProcessDescriptor
from repro.topics import Topic

T = Topic.parse(".t")


def population(n):
    return [ProcessDescriptor(pid, T) for pid in range(n)]


class TestPopulate:
    def test_degree_contacts(self):
        overlay = BootstrapOverlay(degree=5)
        overlay.populate(population(50), random.Random(0))
        for pid in range(50):
            contacts = overlay.neighborhood(pid)
            assert len(contacts) == 5
            assert all(c.pid != pid for c in contacts)

    def test_small_population(self):
        overlay = BootstrapOverlay(degree=5)
        overlay.populate(population(3), random.Random(0))
        assert len(overlay.neighborhood(0)) == 2

    def test_contacts_distinct(self):
        overlay = BootstrapOverlay(degree=10)
        overlay.populate(population(30), random.Random(1))
        contacts = overlay.neighborhood(0)
        assert len({c.pid for c in contacts}) == len(contacts)

    def test_len_and_contains(self):
        overlay = BootstrapOverlay()
        overlay.populate(population(10), random.Random(0))
        assert len(overlay) == 10
        assert 3 in overlay
        assert 99 not in overlay

    def test_invalid_degree(self):
        with pytest.raises(ConfigError):
            BootstrapOverlay(degree=0)


class TestAddProcess:
    def test_late_joiner_gets_contacts(self):
        overlay = BootstrapOverlay(degree=4)
        overlay.populate(population(20), random.Random(0))
        joiner = ProcessDescriptor(100, T)
        overlay.add_process(joiner, random.Random(1))
        assert len(overlay.neighborhood(100)) == 4

    def test_late_joiner_is_discoverable(self):
        overlay = BootstrapOverlay(degree=4)
        overlay.populate(population(20), random.Random(0))
        joiner = ProcessDescriptor(100, T)
        overlay.add_process(joiner, random.Random(1))
        knowers = [
            pid
            for pid in range(20)
            if any(c.pid == 100 for c in overlay.neighborhood(pid))
        ]
        assert len(knowers) >= 1

    def test_first_process_has_no_contacts(self):
        overlay = BootstrapOverlay(degree=4)
        overlay.add_process(ProcessDescriptor(0, T), random.Random(0))
        assert overlay.neighborhood(0) == []


class TestQueries:
    def test_descriptor_lookup(self):
        overlay = BootstrapOverlay()
        overlay.populate(population(5), random.Random(0))
        assert overlay.descriptor(3).pid == 3

    def test_unknown_pid_raises(self):
        overlay = BootstrapOverlay()
        with pytest.raises(UnknownActor):
            overlay.neighborhood(7)
        with pytest.raises(UnknownActor):
            overlay.descriptor(7)

    def test_neighborhood_returns_copy(self):
        overlay = BootstrapOverlay()
        overlay.populate(population(5), random.Random(0))
        overlay.neighborhood(0).clear()
        assert overlay.neighborhood(0)  # unaffected
