"""Unit + property tests for the batched multicast transport path.

The central contract: under the same seed, ``Network.multicast(sender,
targets, message)`` is observably equivalent to ``for t in targets:
Network.send(sender, t, message)`` — identical delivery sets, drop
reasons, :class:`NetworkStats` counters, *and* RNG end-state — across
arbitrary pipelines (loss, perceived failures, partitions, latency).
"""

import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.errors import UnknownActor
from repro.failures import DynamicFailures, StillbornFailures
from repro.net import ConstantLatency, Network, StaticPartition, UniformLatency
from repro.net.message import Message, Ping
from repro.sim import Engine, TraceLog

N_ACTORS = 8


class Recorder:
    """Minimal actor capturing everything delivered to it."""

    def __init__(self, pid: int):
        self.pid = pid
        self.inbox: list[Message] = []

    def handle_message(self, message: Message) -> None:
        self.inbox.append(message)


class Forwarder(Recorder):
    """Re-multicasts its first reception — exercises nested fan-outs."""

    def __init__(self, pid: int, network: "Network", fan_to: list[int]):
        super().__init__(pid)
        self._network = network
        self._fan_to = fan_to

    def handle_message(self, message: Message) -> None:
        first = not self.inbox
        super().handle_message(message)
        if first and self._fan_to:
            self._network.multicast(self.pid, self._fan_to, message)


def make_net(n=N_ACTORS, actor_cls=Recorder, **kwargs):
    engine = Engine()
    net = Network(engine, random.Random(0), **kwargs)
    actors = [actor_cls(i) for i in range(n)]
    for actor in actors:
        net.register(actor)
    return engine, net, actors


class TestMulticastBasics:
    def test_delivers_to_every_target(self):
        engine, net, actors = make_net()
        scheduled = net.multicast(0, [1, 2, 3], Ping(sender=0, nonce=7))
        engine.run()
        assert scheduled == 3
        for pid in (1, 2, 3):
            assert len(actors[pid].inbox) == 1
            assert actors[pid].inbox[0].nonce == 7
        assert actors[4].inbox == []

    def test_counts_one_send_per_target(self):
        engine, net, _ = make_net()
        net.multicast(0, [1, 2, 3, 4], Ping(sender=0, nonce=1))
        engine.run()
        assert net.stats.sent_by_kind["ping"] == 4
        assert net.stats.delivered_by_kind["ping"] == 4

    def test_empty_target_list_is_noop(self):
        engine, net, _ = make_net()
        assert net.multicast(0, [], Ping(sender=0, nonce=1)) == 0
        assert net.stats.total_sent == 0
        assert engine.pending == 0

    def test_duplicate_targets_each_count(self):
        engine, net, actors = make_net()
        net.multicast(0, [1, 1, 1], Ping(sender=0, nonce=1))
        engine.run()
        assert len(actors[1].inbox) == 3
        assert net.stats.sent_by_kind["ping"] == 3

    def test_unknown_target_raises_before_any_send(self):
        _, net, _ = make_net()
        with pytest.raises(UnknownActor):
            net.multicast(0, [1, 99], Ping(sender=0, nonce=1))
        assert net.stats.total_sent == 0

    def test_dead_sender_drops_everything(self):
        engine, net, actors = make_net(failure_model=StillbornFailures({0}))
        net.multicast(0, [1, 2, 3], Ping(sender=0, nonce=1))
        engine.run()
        assert all(actors[pid].inbox == [] for pid in (1, 2, 3))
        assert net.stats.dropped_by_reason["dead_sender"] == 3
        assert net.stats.sent_by_kind["ping"] == 3  # attempts still paid

    def test_dead_targets_dropped_at_delivery(self):
        engine, net, actors = make_net(failure_model=StillbornFailures({2, 3}))
        net.multicast(0, [1, 2, 3, 4], Ping(sender=0, nonce=1))
        engine.run()
        assert len(actors[1].inbox) == 1 and len(actors[4].inbox) == 1
        assert net.stats.dropped_by_reason["dead_target"] == 2
        assert net.stats.delivered_by_kind["ping"] == 2

    def test_partitioned_targets_dropped(self):
        engine, net, actors = make_net(
            partition_model=StaticPartition([[0, 1], [2, 3]])
        )
        net.multicast(0, [1, 2, 3], Ping(sender=0, nonce=1))
        engine.run()
        assert len(actors[1].inbox) == 1
        assert actors[2].inbox == [] and actors[3].inbox == []
        assert net.stats.dropped_by_reason["partitioned"] == 2

    def test_single_engine_entry_for_zero_latency_fanout(self):
        engine, net, _ = make_net()
        net.multicast(0, [1, 2, 3, 4, 5], Ping(sender=0, nonce=1))
        # One applied array-batch entry standing for five logical events:
        # per-destination accounting, single queue entry.
        assert engine.pending == 5
        assert len(engine._bucket) + len(engine._queue) == 1
        assert engine.run() == 5
        assert net.stats.delivered_by_kind["ping"] == 5

    def test_latency_delays_the_whole_batch(self):
        engine, net, actors = make_net(latency=ConstantLatency(5.0))
        net.multicast(0, [1, 2], Ping(sender=0, nonce=1))
        engine.run(until=4.0)
        assert actors[1].inbox == [] and actors[2].inbox == []
        engine.run()
        assert len(actors[1].inbox) == 1 and len(actors[2].inbox) == 1
        assert engine.now == 5.0

    def test_trace_multiset_matches_outcomes(self):
        engine = Engine()
        trace = TraceLog()
        net = Network(
            engine,
            random.Random(0),
            trace=trace,
            failure_model=StillbornFailures({2}),
        )
        for pid in range(4):
            net.register(Recorder(pid))
        net.multicast(0, [1, 2, 3], Ping(sender=0, nonce=1))
        engine.run()
        assert trace.count("net.sent") == 3
        assert trace.count("net.delivered") == 2
        drops = trace.filter("net.dropped")
        assert len(drops) == 1 and drops[0].detail["reason"] == "dead_target"


class BlockRecorder:
    """Minimal block actor capturing every delivered (sender, targets)."""

    def __init__(self):
        self.batches: list[tuple[int, tuple[int, ...], Message]] = []

    def handle_batch(self, sender, targets, message):
        self.batches.append((sender, targets, message))


class TestBlockActors:
    def test_multicast_into_block_is_one_handle_batch_call(self):
        engine = Engine()
        net = Network(engine, random.Random(0))
        net.register(Recorder(0))
        block = BlockRecorder()
        net.register_block(block, 10, 20)
        net.multicast(0, [11, 13, 17], Ping(sender=0, nonce=4))
        engine.run()
        assert len(block.batches) == 1
        sender, targets, message = block.batches[0]
        assert sender == 0 and targets == (11, 13, 17)
        assert message.nonce == 4
        assert net.stats.delivered_by_kind["ping"] == 3

    def test_send_into_block_delivers_singleton_batch(self):
        engine = Engine()
        net = Network(engine, random.Random(0))
        net.register(Recorder(0))
        block = BlockRecorder()
        net.register_block(block, 5, 8)
        net.send(0, 6, Ping(sender=0, nonce=1))
        engine.run()
        assert block.batches == [(0, (6,), block.batches[0][2])]

    def test_mixed_batch_splits_between_blocks_and_actors(self):
        engine = Engine()
        net = Network(engine, random.Random(0))
        plain = [Recorder(pid) for pid in (0, 1)]
        for actor in plain:
            net.register(actor)
        left, right = BlockRecorder(), BlockRecorder()
        net.register_block(left, 10, 15)
        net.register_block(right, 20, 25)
        net.multicast(0, [10, 11, 1, 21, 22, 12], Ping(sender=0, nonce=9))
        engine.run()
        assert left.batches[0][1] == (10, 11)
        assert left.batches[1][1] == (12,)
        assert right.batches[0][1] == (21, 22)
        assert len(plain[1].inbox) == 1

    def test_dead_block_targets_dropped_at_delivery(self):
        engine = Engine()
        net = Network(
            engine, random.Random(0), failure_model=StillbornFailures({11})
        )
        net.register(Recorder(0))
        block = BlockRecorder()
        net.register_block(block, 10, 13)
        net.multicast(0, [10, 11, 12], Ping(sender=0, nonce=1))
        engine.run()
        assert block.batches[0][1] == (10, 12)
        assert net.stats.dropped_by_reason["dead_target"] == 1

    def test_registry_queries_cover_blocks(self):
        net = Network(Engine(), random.Random(0))
        net.register(Recorder(0))
        block = BlockRecorder()
        net.register_block(block, 10, 13)
        assert 0 in net and 10 in net and 12 in net
        assert 13 not in net and 9 not in net
        assert len(net) == 4
        assert net.pids == [0, 10, 11, 12]
        assert net.actor(11) is block

    def test_overlapping_registrations_rejected(self):
        from repro.errors import ConfigError

        net = Network(Engine(), random.Random(0))
        net.register(Recorder(11))
        net.register_block(BlockRecorder(), 20, 30)
        with pytest.raises(ConfigError):
            net.register_block(BlockRecorder(), 10, 12)  # covers pid 11
        with pytest.raises(ConfigError):
            net.register_block(BlockRecorder(), 25, 35)  # overlaps block
        with pytest.raises(ConfigError):
            net.register_block(BlockRecorder(), 30, 30)  # empty
        with pytest.raises(ConfigError):
            net.register(Recorder(22))  # inside the block

    def test_unknown_pid_outside_blocks_still_raises(self):
        net = Network(Engine(), random.Random(0))
        net.register_block(BlockRecorder(), 10, 13)
        with pytest.raises(UnknownActor):
            net.multicast(10, [10, 40], Ping(sender=10, nonce=1))
        with pytest.raises(UnknownActor):
            net.actor(40)


# ----------------------------------------------------------------------
# Property: multicast == loop of sends, bit for bit, under any pipeline
# ----------------------------------------------------------------------

LATENCIES = st.sampled_from(
    [ConstantLatency(0.0), ConstantLatency(2.5), UniformLatency(0.0, 3.0)]
)

FAILURES = st.one_of(
    st.none(),
    st.builds(
        StillbornFailures,
        st.sets(st.integers(1, N_ACTORS - 1), max_size=3),
    ),
    st.builds(
        DynamicFailures,
        st.floats(0.0, 0.6),
    ),
)

PARTITIONS = st.one_of(
    st.none(),
    st.builds(
        lambda left: StaticPartition([sorted(left), []]),
        st.sets(st.integers(0, N_ACTORS - 1), max_size=4),
    ),
)

FANOUTS = st.lists(
    st.lists(st.integers(0, N_ACTORS - 1), min_size=0, max_size=6),
    min_size=1,
    max_size=4,
)


def _observe(engine, net, actors):
    return {
        "inboxes": [
            [(m.kind, m.nonce) for m in actor.inbox] for actor in actors
        ],
        "stats": {
            "sent": dict(net.stats.sent_by_kind),
            "delivered": dict(net.stats.delivered_by_kind),
            "dropped_reason": dict(net.stats.dropped_by_reason),
            "dropped_kind": dict(net.stats.dropped_by_kind),
        },
        "rng_state": net._rng.getstate(),
        "now": engine.now,
    }


@given(
    seed=st.integers(0, 2**32 - 1),
    p_success=st.floats(0.0, 1.0),
    latency=LATENCIES,
    failure_model=FAILURES,
    partition_model=PARTITIONS,
    fanouts=FANOUTS,
)
@settings(max_examples=120, deadline=None)
def test_multicast_same_seed_equivalent_to_send_loop(
    seed, p_success, latency, failure_model, partition_model, fanouts
):
    observations = []
    for batched in (False, True):
        engine = Engine()
        net = Network(
            engine,
            random.Random(seed),
            p_success=p_success,
            latency=latency,
            failure_model=failure_model,
            partition_model=partition_model,
        )
        actors = [Recorder(i) for i in range(N_ACTORS)]
        for actor in actors:
            net.register(actor)
        for nonce, targets in enumerate(fanouts):
            message = Ping(sender=0, nonce=nonce)
            if batched:
                net.multicast(0, targets, message)
            else:
                for target in targets:
                    net.send(0, target, message)
        engine.run()
        observations.append(_observe(engine, net, actors))
    loop, batch = observations
    assert batch == loop


@given(seed=st.integers(0, 2**32 - 1), p_success=st.floats(0.5, 1.0))
@settings(max_examples=40, deadline=None)
def test_equivalence_holds_through_nested_forwarding(seed, p_success):
    """Cascading multicasts (receivers fanning out at delivery time)
    stay equivalent to cascades over the same seed."""
    observations = []
    for batched in (False, True):
        engine = Engine()
        net = Network(engine, random.Random(seed), p_success=p_success)
        actors = [
            Forwarder(pid, net, fan_to=[(pid + 1) % 4, (pid + 2) % 4])
            for pid in range(4)
        ]
        for actor in actors:
            net.register(actor)
        message = Ping(sender=0, nonce=0)
        if batched:
            net.multicast(0, [1, 2], message)
        else:
            # The outer fan-out as a send loop; inner hops still batch —
            # mixing the two paths must not change the trajectory either.
            net.send(0, 1, message)
            net.send(0, 2, message)
        engine.run()
        observations.append(_observe(engine, net, actors))
    loop, batch = observations
    assert batch == loop
