"""Tests for the exception hierarchy contract.

Applications rely on catching ``ReproError`` for any library failure and
on subsystem-specific subclasses for selective handling; this locks the
hierarchy in place.
"""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not errors.ReproError:
                    assert issubclass(obj, errors.ReproError), name

    def test_topic_errors(self):
        assert issubclass(errors.InvalidTopicName, errors.TopicError)
        assert issubclass(errors.UnknownTopic, errors.TopicError)
        assert issubclass(errors.HierarchyError, errors.TopicError)

    def test_simulation_errors(self):
        assert issubclass(errors.SchedulingError, errors.SimulationError)

    def test_network_errors(self):
        assert issubclass(errors.UnknownActor, errors.NetworkError)

    def test_catchability(self):
        from repro.topics import Topic

        with pytest.raises(errors.ReproError):
            Topic.parse(".bad topic!")

    def test_config_error_is_repro_error(self):
        from repro.core import TopicParams

        with pytest.raises(errors.ReproError):
            TopicParams(z=0)
