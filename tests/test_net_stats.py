"""Unit tests for network statistics, including Figs. 8/9 attribution."""

from repro.core.events import Event, EventId
from repro.net.message import EventMessage, Ping, Scope
from repro.net.stats import NetworkStats
from repro.topics import Topic


def event_message(scope: Scope) -> EventMessage:
    event = Event(
        event_id=EventId(publisher=1, sequence=1),
        topic=scope.group,
        payload="x",
        published_at=0.0,
    )
    return EventMessage(sender=1, event=event, scope=scope)


T1 = Topic.parse(".t1")
T2 = Topic.parse(".t1.t2")
INTRA = Scope("intra", T2)
INTER = Scope("inter", T2, T1)


class TestEventAttribution:
    def test_intra_group_counted_per_group(self):
        stats = NetworkStats()
        stats.record_sent(event_message(INTRA))
        stats.record_sent(event_message(INTRA))
        assert stats.events_sent_in_group(T2) == 2
        assert stats.events_sent_in_group(T1) == 0

    def test_inter_group_counted_per_edge(self):
        stats = NetworkStats()
        stats.record_sent(event_message(INTER))
        assert stats.events_sent_between(T2, T1) == 1
        assert stats.events_sent_between(T1, T2) == 0

    def test_delivered_counters_mirror_sent(self):
        stats = NetworkStats()
        message = event_message(INTRA)
        stats.record_sent(message)
        stats.record_delivered(message)
        assert stats.intra_group_delivered[T2] == 1

    def test_event_messages_sent_totals_both_scopes(self):
        stats = NetworkStats()
        stats.record_sent(event_message(INTRA))
        stats.record_sent(event_message(INTER))
        assert stats.event_messages_sent() == 2

    def test_overhead_excludes_events(self):
        stats = NetworkStats()
        stats.record_sent(event_message(INTRA))
        stats.record_sent(Ping(sender=0, nonce=1))
        assert stats.overhead_messages_sent() == 1


class TestAggregates:
    def test_totals(self):
        stats = NetworkStats()
        ping = Ping(sender=0, nonce=1)
        stats.record_sent(ping)
        stats.record_sent(ping)
        stats.record_delivered(ping)
        stats.record_dropped(ping, "channel_loss")
        assert stats.total_sent == 2
        assert stats.total_delivered == 1
        assert stats.total_dropped == 1

    def test_delivery_ratio(self):
        stats = NetworkStats()
        ping = Ping(sender=0, nonce=1)
        for _ in range(4):
            stats.record_sent(ping)
        stats.record_delivered(ping)
        assert stats.delivery_ratio("ping") == 0.25
        assert stats.delivery_ratio() == 0.25

    def test_delivery_ratio_empty_is_one(self):
        assert NetworkStats().delivery_ratio() == 1.0
        assert NetworkStats().delivery_ratio("event") == 1.0

    def test_as_dict_stable_keys(self):
        stats = NetworkStats()
        stats.record_sent(event_message(INTRA))
        stats.record_sent(event_message(INTER))
        snapshot = stats.as_dict()
        assert snapshot["intra_group_sent"] == {T2.name: 1}
        assert snapshot["inter_group_sent"] == {f"{T2.name}->{T1.name}": 1}

    def test_reset(self):
        stats = NetworkStats()
        stats.record_sent(event_message(INTRA))
        stats.reset()
        assert stats.total_sent == 0
        assert stats.events_sent_in_group(T2) == 0
