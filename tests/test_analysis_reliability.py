"""Unit tests for the §VI-D reliability closed forms."""

import math

import pytest

from repro.analysis import (
    atomic_gossip_reliability,
    broadcast_reliability,
    damulticast_reliability,
    damulticast_reliability_paper,
    hierarchical_reliability,
    intergroup_propagation_probability,
    multicast_reliability,
)
from repro.analysis.reliability import susceptible_processes
from repro.errors import ConfigError

PAPER_SIZES = [1000, 100, 10]


class TestAtomic:
    def test_erdos_renyi_form(self):
        assert atomic_gossip_reliability(5) == pytest.approx(
            math.exp(-math.exp(-5))
        )

    def test_monotone_in_c(self):
        values = [atomic_gossip_reliability(c) for c in (0, 1, 3, 5, 8)]
        assert values == sorted(values)

    def test_c0_is_1_over_e_ish(self):
        assert atomic_gossip_reliability(0) == pytest.approx(math.exp(-1))


class TestSusceptible:
    def test_g_pi_product(self):
        # S*p_sel*pi with p_sel=g/S -> g*pi
        assert susceptible_processes(1000, g=5, pi=0.8) == pytest.approx(4.0)

    def test_small_group_clamps_p_sel(self):
        assert susceptible_processes(3, g=5, pi=1.0) == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            susceptible_processes(0)
        with pytest.raises(ConfigError):
            susceptible_processes(10, pi=1.5)


class TestPit:
    def test_exponent_is_g_a_pi(self):
        # pit = 1 - (1-p)^(g*a*pi)
        pit = intergroup_propagation_probability(
            1000, g=5, a=1, z=3, p_succ=0.85, pi=1.0
        )
        assert pit == pytest.approx(1 - 0.15**5)

    def test_perfect_channel(self):
        assert intergroup_propagation_probability(1000, p_succ=1.0) == 1.0

    def test_more_links_help(self):
        weak = intergroup_propagation_probability(1000, g=1, p_succ=0.5)
        strong = intergroup_propagation_probability(1000, g=10, p_succ=0.5)
        assert strong > weak

    def test_validation(self):
        with pytest.raises(ConfigError):
            intergroup_propagation_probability(10, p_succ=1.5)
        with pytest.raises(ConfigError):
            intergroup_propagation_probability(10, a=0)


class TestEndToEnd:
    def test_single_group_equals_atomic(self):
        assert damulticast_reliability([1000], c=5) == pytest.approx(
            atomic_gossip_reliability(5)
        )

    def test_hop_exact_vs_paper_form(self):
        exact = damulticast_reliability(PAPER_SIZES, p_succ=0.85)
        paper = damulticast_reliability_paper(PAPER_SIZES, p_succ=0.85)
        assert paper < exact  # one extra pit factor
        # They differ exactly by pit of the top group.
        top_pit = intergroup_propagation_probability(10, p_succ=0.85)
        assert paper == pytest.approx(exact * top_pit)

    def test_reliability_decreases_with_depth(self):
        r1 = damulticast_reliability([1000], p_succ=0.85)
        r2 = damulticast_reliability([1000, 100], p_succ=0.85)
        r3 = damulticast_reliability(PAPER_SIZES, p_succ=0.85)
        assert r1 > r2 > r3

    def test_validation(self):
        with pytest.raises(ConfigError):
            damulticast_reliability([])
        with pytest.raises(ConfigError):
            damulticast_reliability([0])


class TestBaselineReliability:
    def test_broadcast(self):
        assert broadcast_reliability(5) == atomic_gossip_reliability(5)

    def test_multicast_power(self):
        assert multicast_reliability(3, 5) == pytest.approx(
            atomic_gossip_reliability(5) ** 3
        )

    def test_hierarchical_form(self):
        value = hierarchical_reliability(10, 5, 5)
        assert value == pytest.approx(
            math.exp(-10 * math.exp(-5) - math.exp(-5))
        )

    def test_paper_claim_damulticast_below_baselines(self):
        """§VI-E.3: with lossy inter-group links, daMulticast's end-to-end
        reliability is smaller than the baselines' "in the general case"
        (the price of data-awareness, tunable via g/a/z). Baselines (a)
        and (b) dominate for any loss; (c) pays an N·e^{-c1} penalty of
        its own, so it only dominates under heavy inter-group loss."""
        ours = damulticast_reliability(PAPER_SIZES, p_succ=0.7)
        assert ours < broadcast_reliability(5)
        assert ours < multicast_reliability(3, 5)
        heavy_loss = damulticast_reliability(PAPER_SIZES, p_succ=0.2)
        assert heavy_loss < hierarchical_reliability(10, 5, 5)

    def test_perfect_links_match_multicast(self):
        """With pit = 1 the product collapses to (b)'s reliability."""
        ours = damulticast_reliability(PAPER_SIZES, p_succ=1.0)
        assert ours == pytest.approx(multicast_reliability(3, 5))

    def test_validation(self):
        with pytest.raises(ConfigError):
            multicast_reliability(0)
        with pytest.raises(ConfigError):
            hierarchical_reliability(0)
