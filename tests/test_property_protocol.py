"""Property-based tests: end-to-end protocol invariants on random systems.

For arbitrary small chain systems and failure patterns, one publication
must satisfy the paper's structural guarantees:

* no parasite delivery (enforced by a raising invariant in the process),
* at-most-once delivery per process,
* events never skip levels on the way up,
* on a perfect network every interested process receives the event,
* intra-group message count is bounded by S·fanout(S) per group.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import DaMulticastConfig, DaMulticastSystem, TopicParams
from repro.failures import StillbornFailures
from repro.topics.builders import chain

chain_sizes = st.lists(st.integers(1, 25), min_size=1, max_size=4)


def build_static(sizes, seed, p_success=1.0, failed=frozenset()):
    topics = chain(len(sizes) - 1, prefix="t")
    config = DaMulticastConfig(
        default_params=TopicParams(b=3, c=3, g=3, a=1, z=2)
    )
    system = DaMulticastSystem(
        config=config,
        seed=seed,
        p_success=p_success,
        mode="static",
        failure_model=StillbornFailures(failed) if failed else None,
    )
    for topic, size in zip(topics, sizes):
        system.add_group(topic, size)
    system.finalize_static_membership()
    return system, topics


#: Sizes for which delivery is *deterministic* on a perfect network: the
#: fan-out ``ceil(log S)+3`` covers the whole group (S ≤ 6) and p_a is
#: forced to 1 below, so no probabilistic choice can lose the event.
tiny_chain_sizes = st.lists(st.integers(1, 6), min_size=1, max_size=4)


@given(tiny_chain_sizes, st.integers(0, 2**32))
@settings(max_examples=60, deadline=None)
def test_perfect_network_total_delivery(sizes, seed):
    topics = chain(len(sizes) - 1, prefix="t")
    config = DaMulticastConfig(
        # a == z makes p_a = 1; g large makes p_sel = 1 in tiny groups.
        default_params=TopicParams(b=3, c=3, g=50, a=2, z=2)
    )
    system = DaMulticastSystem(config=config, seed=seed, mode="static")
    for topic, size in zip(topics, sizes):
        system.add_group(topic, size)
    system.finalize_static_membership()
    event = system.publish(topics[-1])
    system.run_until_idle()
    for topic in topics:
        assert system.delivered_fraction(event, topic) == 1.0


@given(chain_sizes, st.integers(0, 2**32))
@settings(max_examples=60, deadline=None)
def test_at_most_once_delivery(sizes, seed):
    system, topics = build_static(sizes, seed, p_success=0.8)
    event = system.publish(topics[-1])
    system.run_until_idle()
    for process in system.processes:
        count = sum(
            1 for e in process.delivered if e.event_id == event.event_id
        )
        assert count <= 1


@given(chain_sizes, st.integers(0, 2**32))
@settings(max_examples=60, deadline=None)
def test_events_climb_one_level_at_a_time(sizes, seed):
    system, topics = build_static(sizes, seed, p_success=0.9)
    system.publish(topics[-1])
    system.run_until_idle()
    for (src, dst), count in system.stats.inter_group_sent.items():
        if count:
            assert dst == src.super_topic or (
                # levels may be skipped only when the intermediate group
                # is empty — impossible here since all sizes >= 1.
                False
            )


@given(chain_sizes, st.integers(0, 2**32))
@settings(max_examples=40, deadline=None)
def test_intra_messages_bounded_by_s_times_fanout(sizes, seed):
    system, topics = build_static(sizes, seed)
    params = system.config.default_params
    system.publish(topics[-1])
    system.run_until_idle()
    for topic, size in zip(topics, sizes):
        sent = system.stats.events_sent_in_group(topic)
        assert sent <= size * params.fanout(size)


@given(
    chain_sizes,
    st.integers(0, 2**32),
    st.floats(0.2, 1.0),
)
@settings(max_examples=40, deadline=None)
def test_failures_never_break_invariants(sizes, seed, alive_fraction):
    import random

    rng = random.Random(seed)
    total = sum(sizes)
    all_pids = list(range(total))
    n_failed = int(total * (1 - alive_fraction))
    failed = frozenset(rng.sample(all_pids, n_failed))
    system, topics = build_static(sizes, seed, p_success=0.8, failed=failed)
    publishers = [
        p
        for p in system.group(topics[-1])
        if system.harness.is_alive(p.pid)
    ]
    if not publishers:
        return
    event = system.publish(topics[-1], publisher=publishers[0])
    system.run_until_idle()
    # Dead processes never deliver.
    for pid in failed:
        assert not system.tracker.received_by(event.event_id, pid)
    # Nothing exceeds the message bound even under failures.
    for topic, size in zip(topics, sizes):
        sent = system.stats.events_sent_in_group(topic)
        assert sent <= size * system.config.default_params.fanout(size)
