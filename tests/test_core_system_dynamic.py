"""End-to-end tests of the dynamic (full-protocol) mode.

These exercise what the paper's own simulation froze: the FIND_SUPER_CONTACT
bootstrap over the weakly-consistent overlay, membership convergence, the
KEEP_TABLE_UPDATED repair loop, and dissemination on live tables.
"""

import pytest

from repro.core import DaMulticastConfig, DaMulticastSystem, TopicParams
from repro.failures import ChurnSchedule
from repro.topics import ROOT, Topic

T1 = Topic.parse(".t1")
T2 = Topic.parse(".t1.t2")


def build_dynamic_system(*, seed=0, sizes=(3, 8, 20), failure_model=None, config=None):
    system = DaMulticastSystem(
        config=config or DaMulticastConfig(),
        seed=seed,
        mode="dynamic",
        failure_model=failure_model,
    )
    system.add_group(ROOT, sizes[0])
    system.add_group(T1, sizes[1])
    system.add_group(T2, sizes[2])
    return system


class TestBootstrap:
    def test_super_tables_get_initialized(self):
        system = build_dynamic_system()
        system.run(until=30.0)
        initialized = [
            p for p in system.group(T2) if not p.super_table.is_empty
        ]
        # Bootstrapping + piggybacking should initialize nearly everyone.
        assert len(initialized) >= 0.8 * len(system.group(T2))

    def test_super_tables_point_at_direct_super(self):
        system = build_dynamic_system()
        system.run(until=30.0)
        for process in system.group(T2):
            if not process.super_table.is_empty:
                assert process.super_table.target_topic == T1

    def test_search_skips_unpopulated_levels(self):
        # No T1 members: T2's supertopic tables must fall back to the root.
        system = DaMulticastSystem(mode="dynamic", seed=1)
        system.add_group(ROOT, 4)
        system.add_group(T2, 10)
        system.run(until=40.0)
        targeted_root = [
            p
            for p in system.group(T2)
            if p.super_table.target_topic == ROOT and len(p.super_table)
        ]
        assert len(targeted_root) >= 5

    def test_search_stops_after_direct_contact_found(self):
        system = build_dynamic_system()
        system.run(until=40.0)
        still_searching = [
            p
            for p in system.group(T2)
            if p.find_super_contact.active
            and p.super_table.targets_direct_super_of(T2)
        ]
        assert still_searching == []

    def test_root_processes_never_bootstrap(self):
        system = build_dynamic_system()
        system.run(until=10.0)
        for process in system.group(ROOT):
            assert not process.find_super_contact.active
            assert process.super_table.is_empty


class TestMembershipConvergence:
    def test_topic_tables_populate(self):
        system = build_dynamic_system()
        system.run(until=30.0)
        for process in system.group(T2):
            assert len(process.topic_table()) >= 1

    def test_no_cross_topic_pollution(self):
        system = build_dynamic_system()
        system.run(until=30.0)
        for process in system.processes:
            for descriptor in process.topic_table():
                assert descriptor.topic == process.topic


class TestDynamicDissemination:
    def test_event_reaches_own_group_and_supergroups(self):
        system = build_dynamic_system(seed=2)
        system.run(until=30.0)  # let membership converge
        event = system.publish(T2)
        system.run(until=60.0)
        assert system.delivered_fraction(event, T2) >= 0.9
        assert system.delivered_fraction(event, T1) >= 0.5
        assert system.delivered_fraction(event, ROOT) >= 0.5

    def test_no_parasite_deliveries(self):
        system = build_dynamic_system(seed=3)
        system.run(until=30.0)
        event = system.publish(T1)
        system.run(until=60.0)
        # T2 processes are not interested in T1 events; the protocol
        # invariant would raise on any parasite delivery. Check zero too:
        assert system.delivered_fraction(event, T2) == 0.0

    def test_publish_on_unsubscribed_process_autosubscribes(self):
        system = build_dynamic_system()
        process = system.add_process(T2, subscribe=False)
        assert not process.subscribed
        process.publish("late")
        assert process.subscribed


class TestMaintenance:
    def test_super_table_repaired_after_crash(self):
        # Crash every T1 process that a T2 process points at; maintenance
        # must replace the dead entries with fresh T1 members.
        schedule = ChurnSchedule()
        system = build_dynamic_system(
            seed=4,
            failure_model=schedule,
            config=DaMulticastConfig(
                default_params=TopicParams(g=50),  # probe often in tiny groups
                maintain_interval=1.0,
                ping_timeout=0.5,
            ),
        )
        system.run(until=20.0)
        victims = set()
        t2 = system.group(T2)
        target = next(p for p in t2 if len(p.super_table) > 0)
        victims.update(target.super_table.pids)
        for pid in victims:
            schedule.crash_at(pid, 21.0)
        system.run(until=120.0)
        survivors = [
            pid for pid in target.super_table.pids if pid not in victims
        ]
        # The table should now contain at least one fresh (non-victim) entry
        # or have been cleared for re-bootstrap and refilled.
        assert len(survivors) >= 1

    def test_maintenance_not_started_for_root(self):
        system = build_dynamic_system()
        system.run(until=5.0)
        for process in system.group(ROOT):
            assert not process.maintenance.running


class TestLateJoin:
    def test_late_joiner_integrates(self):
        system = build_dynamic_system(seed=5)
        system.run(until=20.0)
        late = system.add_process(T2)
        system.run(until=60.0)
        assert len(late.topic_table()) >= 1
        event = system.publish(T2)
        system.run(until=90.0)
        assert system.tracker.received_by(event.event_id, late.pid) or (
            system.delivered_fraction(event, T2) >= 0.9
        )

    def test_first_process_of_new_topic_bootstraps_upward(self):
        system = build_dynamic_system(seed=6)
        system.run(until=20.0)
        t3 = Topic.parse(".t1.t2.t3")
        newcomer = system.add_process(t3)
        system.run(until=60.0)
        assert newcomer.super_table.target_topic == T2
        assert len(newcomer.super_table) >= 1
