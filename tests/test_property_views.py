"""Property-based tests: PartialView and SuperTopicTable invariants."""

import random

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.tables import SuperTopicTable
from repro.membership import PartialView, ProcessDescriptor
from repro.topics import Topic

T1 = Topic.parse(".t1")
T2 = Topic.parse(".t1.t2")

operations = st.lists(
    st.one_of(
        st.tuples(st.just("add"), st.integers(0, 40)),
        st.tuples(st.just("remove"), st.integers(0, 40)),
    ),
    max_size=60,
)


@given(st.integers(1, 8), operations, st.integers(0, 2**32))
@settings(max_examples=150)
def test_view_never_exceeds_capacity_and_has_no_duplicates(
    capacity, ops, seed
):
    rng = random.Random(seed)
    view = PartialView(capacity)
    for op, pid in ops:
        if op == "add":
            view.add(ProcessDescriptor(pid, T2), rng)
        else:
            view.remove(pid)
        assert len(view) <= capacity
        pids = view.pids
        assert len(pids) == len(set(pids))


@given(
    st.integers(1, 8),
    st.lists(st.integers(0, 30), min_size=0, max_size=30),
    st.integers(0, 2**32),
)
def test_view_membership_reflects_adds_below_capacity(capacity, pids, seed):
    rng = random.Random(seed)
    view = PartialView(capacity)
    unique = list(dict.fromkeys(pids))
    for pid in unique:
        view.add(ProcessDescriptor(pid, T2), rng)
    if len(unique) <= capacity:
        # No eviction could have happened: everyone must be present.
        assert sorted(view.pids) == sorted(unique)


@given(
    st.lists(st.integers(0, 30), min_size=1, max_size=20, unique=True),
    st.integers(0, 10),
    st.integers(0, 2**32),
)
def test_sample_is_subset_without_excluded(pids, k, seed):
    rng = random.Random(seed)
    view = PartialView(32)
    for pid in pids:
        view.add(ProcessDescriptor(pid, T2), rng)
    exclude = set(pids[::2])
    sample = view.sample(k, rng, exclude=exclude)
    sample_pids = [d.pid for d in sample]
    assert len(sample_pids) == len(set(sample_pids))
    assert set(sample_pids) <= set(pids) - exclude
    assert len(sample) == min(k, len(set(pids) - exclude))


@given(
    st.lists(st.integers(0, 20), min_size=0, max_size=10, unique=True),
    st.lists(st.integers(21, 40), min_size=0, max_size=10, unique=True),
    st.integers(0, 2**32),
)
def test_super_table_merge_fresh_keeps_capacity_and_favorites(
    initial, fresh, seed
):
    rng = random.Random(seed)
    table = SuperTopicTable(z=3)
    table.adopt(
        T1, [ProcessDescriptor(p, T1) for p in initial], rng, own_topic=T2
    )
    survivors = table.pids[1:]  # drop the oldest as "failed"
    stale = table.pids[:1]
    table.merge_fresh(stale, [ProcessDescriptor(p, T1) for p in fresh])
    assert len(table) <= 3
    for pid in survivors:
        assert pid in table  # favorites always survive MERGE
    for pid in stale:
        assert pid not in table


@given(
    st.lists(st.integers(0, 30), min_size=1, max_size=10, unique=True),
    st.floats(0.0, 50.0),
    st.floats(0.1, 10.0),
    st.integers(0, 2**32),
)
def test_check_counts_are_consistent(pids, now, timeout, seed):
    rng = random.Random(seed)
    table = SuperTopicTable(z=len(pids))
    table.adopt(
        T1, [ProcessDescriptor(p, T1) for p in pids], rng, own_topic=T2
    )
    for pid in pids[::2]:
        table.record_proof_of_life(pid, now)
    alive = table.alive_pids(now, timeout)
    stale = table.stale_pids(now, timeout)
    assert table.check(now, timeout) == len(alive)
    assert sorted(alive + stale) == sorted(table.pids)
