"""Scenario-level fault injection: spec validation, determinism contracts,
and the graceful-degradation acceptance sweep."""

import copy

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.errors import ConfigError
from repro.workloads.presets import load_preset
from repro.workloads.spec import compile_spec, run_spec, spec_with

BASE = {
    "name": "faulty",
    "topics": {"kind": "chain", "depth": 2, "prefix": "t"},
    "subscriptions": {"kind": "per_level", "counts": [4, 10, 24]},
    "publications": {"kind": "burst", "count": 3, "spacing": 1.0, "level": -1},
    "params": {"b": 3, "c": 5, "g": 5, "a": 1, "z": 3, "fanout_log_base": 10},
    "p_success": 1.0,
}


def spec(**patches) -> dict:
    out = copy.deepcopy(BASE)
    out.update(patches)
    return out


class TestValidation:
    def test_unknown_fault_key(self):
        with pytest.raises(ConfigError, match="faults"):
            compile_spec(spec(faults={"losss": {"kind": "bernoulli", "p": 0.1}}))

    def test_unknown_loss_kind(self):
        with pytest.raises(ConfigError, match="faults.loss"):
            compile_spec(spec(faults={"loss": {"kind": "uniform", "p": 0.1}}))

    @pytest.mark.parametrize("bad", [-0.1, 1.5, float("nan"), "0.1", True])
    def test_bad_loss_probability(self, bad):
        with pytest.raises(ConfigError, match="faults.loss"):
            compile_spec(spec(faults={"loss": {"kind": "bernoulli", "p": bad}}))

    def test_gilbert_elliott_frozen_chain(self):
        with pytest.raises(ConfigError, match="p_good_bad"):
            compile_spec(
                spec(
                    faults={
                        "loss": {
                            "kind": "gilbert_elliott",
                            "p_good_bad": 0.0,
                            "p_bad_good": 0.0,
                        }
                    }
                )
            )

    def test_duplicate_max_copies_floor(self):
        with pytest.raises(ConfigError, match="max_copies"):
            compile_spec(
                spec(faults={"duplicate": {"p": 0.1, "max_copies": 1}})
            )

    def test_delay_spike_shape(self):
        with pytest.raises(ConfigError, match="exactly one"):
            compile_spec(spec(faults={"delay_spike": {"p": 0.1}}))
        with pytest.raises(ConfigError, match="exactly one"):
            compile_spec(
                spec(
                    faults={
                        "delay_spike": {"p": 0.1, "factor": 2.0, "extra": 1.0}
                    }
                )
            )

    def test_overrides_require_damulticast(self):
        bad = spec(
            protocol="broadcast",
            faults={
                "overrides": {
                    "inter": {"loss": {"kind": "bernoulli", "p": 0.5}}
                }
            },
        )
        with pytest.raises(ConfigError, match="daMulticast"):
            compile_spec(bad)

    def test_overrides_unknown_link_class(self):
        with pytest.raises(ConfigError, match="link class"):
            compile_spec(
                spec(
                    faults={
                        "overrides": {
                            "wan": {"loss": {"kind": "bernoulli", "p": 0.5}}
                        }
                    }
                )
            )

    def test_overrides_cannot_nest(self):
        with pytest.raises(ConfigError):
            compile_spec(
                spec(
                    faults={
                        "overrides": {
                            "inter": {"overrides": {"intra": {}}},
                        }
                    }
                )
            )

    def test_valid_composed_section_compiles(self):
        compile_spec(
            spec(
                faults={
                    "loss": {
                        "kind": "gilbert_elliott",
                        "p_good_bad": 0.05,
                        "p_bad_good": 0.3,
                        "loss_bad": 0.9,
                    },
                    "duplicate": {"p": 0.01},
                    "delay_spike": {"p": 0.02, "extra": 1.0},
                    "overrides": {
                        "inter": {"loss": {"kind": "bernoulli", "p": 0.2}}
                    },
                }
            )
        )


class TestDeterminismContracts:
    def test_faults_none_is_bit_identical_to_omitted(self):
        baseline = run_spec(spec(), seed=7)
        assert run_spec(spec(faults={}), seed=7) == baseline
        assert run_spec(spec(faults={"loss": {"kind": "none"}}), seed=7) == (
            baseline
        )

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=5, deadline=None)
    def test_disabled_faults_never_perturb_any_seed(self, seed):
        assert run_spec(
            spec(faults={"loss": {"kind": "none"}}), seed=seed
        ) == run_spec(spec(), seed=seed)

    def test_p_zero_stages_draw_only_from_the_fault_stream(self):
        """Configured-but-inert stages (p=0) must not change the trajectory:
        their coins come from the dedicated spec/faults stream, so every
        point of a loss sweep shares the network/latency draw sequence."""
        inert = spec(
            faults={
                "loss": {"kind": "bernoulli", "p": 0.0},
                "duplicate": {"p": 0.0},
                "delay_spike": {"p": 0.0, "extra": 5.0},
            }
        )
        assert run_spec(inert, seed=3) == run_spec(spec(), seed=3)

    def test_faulty_run_is_reproducible(self):
        lossy = spec(faults={"loss": {"kind": "bernoulli", "p": 0.3}})
        assert run_spec(lossy, seed=11) == run_spec(lossy, seed=11)

    def test_metrics_key_set_is_fault_invariant(self):
        clean = run_spec(spec(), seed=0)
        lossy = run_spec(
            spec(faults={"loss": {"kind": "bernoulli", "p": 0.3}}), seed=0
        )
        assert set(clean) == set(lossy)
        assert clean["faults_loss"] == 0.0
        assert clean["dropped_fault_loss"] == 0.0
        assert lossy["faults_loss"] > 0
        assert lossy["faults_loss"] == lossy["dropped_fault_loss"]

    def test_spec_with_reaches_fault_fields(self):
        base = spec(faults={"loss": {"kind": "bernoulli", "p": 0.0}})
        swept = spec_with(base, "faults.loss.p", 0.2)
        assert swept["faults"]["loss"]["p"] == 0.2
        assert base["faults"]["loss"]["p"] == 0.0  # original untouched
        compile_spec(swept)


class TestGracefulDegradation:
    """The PR's acceptance sweep: delivery ratio vs Bernoulli loss rate."""

    GRID = [0.0, 0.05, 0.1, 0.2]
    SEEDS = [0, 1, 2]

    @staticmethod
    def curve(base: dict) -> list[float]:
        points = []
        for p in TestGracefulDegradation.GRID:
            swept = spec_with(base, "faults.loss.p", p)
            points.append(
                sum(
                    run_spec(swept, seed=s)["mean_delivery"]
                    for s in TestGracefulDegradation.SEEDS
                )
                / len(TestGracefulDegradation.SEEDS)
            )
        return points

    def test_damulticast_degrades_gracefully(self):
        base = spec(faults={"loss": {"kind": "bernoulli", "p": 0.0}})
        curve = self.curve(base)
        assert curve[0] == 1.0  # perfect network, perfect delivery
        # graceful: monotone-ish (small seed noise allowed), never a cliff
        for prev, cur in zip(curve, curve[1:]):
            assert cur <= prev + 0.02
        assert all(point > 0.8 for point in curve)  # degrades, not collapses

    def test_broadcast_baseline_degrades_gracefully(self):
        base = spec(
            protocol="broadcast",
            faults={"loss": {"kind": "bernoulli", "p": 0.0}},
        )
        curve = self.curve(base)
        assert curve[0] == 1.0
        for prev, cur in zip(curve, curve[1:]):
            assert cur <= prev + 0.02

    def test_loss_increases_monotonically_in_fault_counters(self):
        base = spec(faults={"loss": {"kind": "bernoulli", "p": 0.0}})
        losses = [
            run_spec(spec_with(base, "faults.loss.p", p), seed=0)[
                "faults_loss"
            ]
            for p in self.GRID
        ]
        assert losses[0] == 0.0
        assert losses == sorted(losses)
        assert losses[-1] > 0

    def test_delivery_windows_and_degradation_queries(self):
        compiled = compile_spec(
            spec(faults={"loss": {"kind": "bernoulli", "p": 0.3}})
        )
        built = compiled.build(seed=4)
        built.execute()
        series = built.delivery_windows(window=1.0)
        assert series
        assert all(
            point.ratio is not None and 0.0 <= point.ratio <= 1.0
            for point in series
        )
        summary = built.degradation()
        assert summary
        for row in summary.values():
            assert row["delivered_fraction"] is not None
            assert row["delivered_fraction"] <= 1.0

    def test_clean_run_delivers_exactly_expected(self):
        built = compile_spec(spec()).build(seed=4)
        built.execute()
        for row in built.degradation().values():
            assert row["delivered_fraction"] == 1.0


class TestPresets:
    def test_lossy_wan_preset_runs_and_faults_fire(self):
        metrics = [run_spec(load_preset("lossy-wan"), seed=s) for s in (0, 1)]
        assert any(
            m["faults_loss"] + m["faults_delay_spike"] > 0 for m in metrics
        )
        assert all(m["mean_delivery"] > 0.9 for m in metrics)

    def test_loss_sweep_preset_base_point_is_clean(self):
        metrics = run_spec(load_preset("loss-sweep"), seed=0)
        assert metrics["faults_loss"] == 0.0
        assert metrics["mean_delivery"] == 1.0
