"""Tests for the declarative failure-campaign injector."""

import random

import pytest

from repro.core import DaMulticastConfig, DaMulticastSystem, TopicParams
from repro.errors import ConfigError
from repro.failures import ChurnSchedule
from repro.failures.injector import FailureCampaign
from repro.topics import ROOT, Topic

T1 = Topic.parse(".t1")
T2 = Topic.parse(".t1.t2")


def build(seed=0):
    schedule = ChurnSchedule()
    config = DaMulticastConfig(
        default_params=TopicParams(g=50, c=4, z=3),
        maintain_interval=1.0,
        ping_timeout=0.5,
    )
    system = DaMulticastSystem(
        config=config, seed=seed, mode="dynamic", failure_model=schedule
    )
    system.add_group(ROOT, 3)
    system.add_group(T1, 8)
    system.add_group(T2, 15)
    campaign = FailureCampaign(system, schedule, random.Random(seed))
    return system, schedule, campaign


class TestValidation:
    def test_mismatched_schedule_rejected(self):
        system, _, _ = build()
        with pytest.raises(ConfigError):
            FailureCampaign(system, ChurnSchedule(), random.Random(0))

    def test_invalid_fraction(self):
        system, schedule, campaign = build()
        with pytest.raises(ConfigError):
            campaign.kill_fraction(1.0, 1.5)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -1.0])
    def test_bad_action_times_rejected(self, bad):
        # Same NaN hazard as ChurnSchedule._add: an unguarded action time
        # would be scheduled at a NaN timestamp and poison the heap order.
        system, schedule, campaign = build()
        with pytest.raises(ConfigError):
            campaign.kill_fraction(bad, 0.5)
        with pytest.raises(ConfigError):
            campaign.kill_super_links(bad, T2)
        with pytest.raises(ConfigError):
            campaign.recover(bad, [1])
        with pytest.raises(ConfigError):
            campaign.recover_fraction(bad, 0.5)
        with pytest.raises(ConfigError):
            campaign.recover_all(bad)


class TestKillFraction:
    def test_kills_expected_share_of_group(self):
        system, schedule, campaign = build()
        campaign.kill_fraction(10.0, 0.5, topic=T2)
        system.run(until=11.0)
        dead = [
            pid
            for pid in system.group_pids(T2)
            if not schedule.is_alive(pid, 11.0)
        ]
        assert len(dead) == round(15 * 0.5)
        # Other groups untouched.
        assert all(schedule.is_alive(pid, 11.0) for pid in system.group_pids(T1))

    def test_kill_everyone_globally(self):
        system, schedule, campaign = build()
        campaign.kill_fraction(5.0, 1.0)
        system.run(until=6.0)
        assert all(
            not schedule.is_alive(p.pid, 6.0) for p in system.processes
        )

    def test_log_records_victims(self):
        system, schedule, campaign = build()
        campaign.kill_fraction(5.0, 0.4, topic=T1)
        system.run(until=6.0)
        assert len(campaign.log.killed_pids()) == round(8 * 0.4)


class TestKillSuperLinks:
    def test_severs_all_links(self):
        system, schedule, campaign = build()
        campaign.kill_super_links(20.0, T2)
        system.run(until=20.5)
        linked = set()
        for process in system.group(T2):
            linked.update(process.super_table.pids)
        killed = campaign.log.killed_pids()
        # Every link that existed at t=20 is dead...
        for _, kind, pids in campaign.log.actions:
            if kind == "crash_super_links":
                assert all(not schedule.is_alive(pid, 20.5) for pid in pids)

    def test_system_recovers_after_attack(self):
        system, schedule, campaign = build(seed=2)
        campaign.kill_super_links(20.0, T2)
        system.run(until=90.0)
        # Maintenance must have replaced dead links with live T1 members.
        healed = [
            p
            for p in system.group(T2)
            if any(
                schedule.is_alive(pid, system.now)
                for pid in p.super_table.pids
            )
        ]
        assert len(healed) >= len(system.group(T2)) // 2


class TestRecovery:
    def test_recover_all(self):
        system, schedule, campaign = build()
        campaign.kill_fraction(5.0, 1.0, topic=T1)
        campaign.recover_all(15.0)
        system.run(until=16.0)
        assert all(schedule.is_alive(pid, 16.0) for pid in system.group_pids(T1))

    def test_recover_fraction(self):
        system, schedule, campaign = build()
        campaign.kill_fraction(5.0, 1.0, topic=T1)
        campaign.recover_fraction(15.0, 0.5)
        system.run(until=16.0)
        alive = [
            pid
            for pid in system.group_pids(T1)
            if schedule.is_alive(pid, 16.0)
        ]
        assert len(alive) == round(8 * 0.5)
        # The log records exactly the recovered sample.
        recovered = [
            pids for _, kind, pids in campaign.log.actions if kind == "recover"
        ]
        assert len(recovered) == 1 and sorted(recovered[0]) == sorted(alive)

    def test_recover_fraction_invalid(self):
        system, schedule, campaign = build()
        with pytest.raises(ConfigError):
            campaign.recover_fraction(1.0, 1.5)

    def test_recover_specific(self):
        system, schedule, campaign = build()
        victims = system.group_pids(T1)[:3]
        for pid in victims:
            schedule.crash_at(pid, 1.0)
        campaign.recover(10.0, victims[:2])
        system.run(until=11.0)
        assert schedule.is_alive(victims[0], 11.0)
        assert schedule.is_alive(victims[1], 11.0)
        assert not schedule.is_alive(victims[2], 11.0)
