"""Columnar-vs-object equivalence for the static membership build.

The columnar backend (:mod:`repro.membership.columnar`) must be
*draw-for-draw* identical to the object backend it replaces at scale:
identical pid sequences in identical insertion order, **and** an identical
RNG end-state — the property that makes the two backends' construction
digests comparable at all. The strategies deliberately straddle
``random.Random.sample``'s internal pool-vs-selection-set branch point
(population sizes from tiny to several hundred, capacities from 1 to 64),
the same envelope test_membership_fast_equivalence.py covers for the
object-side fast paths.

The last tests are the PR's CI gate: on the existing S=500 construction
golden, the columnar system's digest must equal the object system's —
which must itself still equal the pinned constant.
"""

import random

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.columnar import ColumnarStaticSystem
from repro.core.system import DaMulticastSystem
from repro.membership.columnar import (
    ColumnarSuperBuilder,
    ColumnarTableBuilder,
    build_group_tables,
)
from repro.membership.static import GroupSampler, GroupTableBuilder
from repro.membership.view import ProcessDescriptor
from repro.topics.topic import Topic
from tests.test_golden_static import GOLDEN_LARGE_TABLE_DIGEST

T = Topic.parse(".eq")


def contiguous_group(base: int, n: int) -> list[ProcessDescriptor]:
    # The columnar backend requires contiguous pid blocks, so equivalence
    # is asserted over the contiguous case (with nonzero bases to keep
    # index and pid spaces distinct).
    return [ProcessDescriptor(base + i, T) for i in range(n)]


@given(
    base=st.integers(min_value=0, max_value=10**6),
    n=st.integers(min_value=1, max_value=400),
    capacity=st.integers(min_value=1, max_value=64),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=150, deadline=None)
def test_columnar_table_builder_matches_object(base, n, capacity, seed):
    group = contiguous_group(base, n)
    obj_rng = random.Random(seed)
    col_rng = random.Random(seed)
    obj_builder = GroupTableBuilder(group)
    col_builder = ColumnarTableBuilder(base, n, capacity)
    for index in range(n):
        obj = obj_builder.table_at(index, capacity, obj_rng)
        col_builder.draw_row(index, col_rng)
        start = index * col_builder.stride
        row = col_builder.rows[start : start + col_builder.stride].tolist()
        assert row == obj.pids
    assert col_rng.getstate() == obj_rng.getstate()


@given(
    base=st.integers(min_value=0, max_value=10**6),
    n=st.integers(min_value=1, max_value=400),
    z=st.integers(min_value=1, max_value=64),
    members=st.integers(min_value=1, max_value=20),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=150, deadline=None)
def test_columnar_super_builder_matches_object(base, n, z, members, seed):
    super_group = contiguous_group(base, n)
    obj_rng = random.Random(seed)
    col_rng = random.Random(seed)
    sampler = GroupSampler(super_group)
    builder = ColumnarSuperBuilder(base, n, z)
    for index in range(members):
        obj = sampler.table(z, obj_rng)
        builder.draw_row(col_rng)
        start = index * builder.stride
        row = builder.rows[start : start + builder.stride].tolist()
        assert row == obj.pids
    assert col_rng.getstate() == obj_rng.getstate()


@given(
    base=st.integers(min_value=0, max_value=10**4),
    n=st.integers(min_value=1, max_value=200),
    capacity=st.integers(min_value=1, max_value=48),
    super_n=st.integers(min_value=1, max_value=200),
    z=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=100, deadline=None)
def test_build_group_tables_interleaving_matches_object(
    base, n, capacity, super_n, z, seed
):
    """The whole-group build interleaves topic and super draws per member
    exactly as finalize_static_membership does over one shared stream."""
    super_base = base + n
    group = contiguous_group(base, n)
    super_group = [
        ProcessDescriptor(super_base + i, Topic.parse("."))
        for i in range(super_n)
    ]
    obj_rng = random.Random(seed)
    obj_builder = GroupTableBuilder(group)
    obj_sampler = GroupSampler(super_group)
    obj_rows, obj_super_rows = [], []
    for index in range(n):
        obj_rows.append(obj_builder.table_at(index, capacity, obj_rng).pids)
        obj_super_rows.append(obj_sampler.table(z, obj_rng).pids)

    col_rng = random.Random(seed)
    tables = build_group_tables(
        T,
        base,
        n,
        capacity,
        col_rng,
        super_topic=Topic.parse("."),
        super_base=super_base,
        super_size=super_n,
        z=z,
    )
    for index in range(n):
        assert tables.row_pids(index) == obj_rows[index]
        assert tables.super_row_pids(index) == obj_super_rows[index]
    assert col_rng.getstate() == obj_rng.getstate()


@given(
    n=st.integers(min_value=2, max_value=300),
    capacity=st.integers(min_value=1, max_value=32),
    k=st.integers(min_value=1, max_value=32),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=100, deadline=None)
def test_sample_row_is_uniform_over_the_row(n, capacity, k, seed):
    """Index-based row sampling returns distinct in-row pids and never the
    member's own pid (exclusion is built into construction)."""
    rng = random.Random(seed)
    tables = build_group_tables(T, 100, n, capacity, rng)
    index = seed % n
    drawn = tables.sample_row(index, k, rng)
    row = tables.row_pids(index)
    assert len(drawn) == min(k, len(row))
    assert len(set(drawn)) == len(drawn)
    assert set(drawn) <= set(row)
    assert (100 + index) not in drawn


def _paper_shaped_pair(seed: int):
    obj = DaMulticastSystem(mode="static", seed=seed, p_success=0.9)
    col = ColumnarStaticSystem(seed=seed, p_success=0.9)
    for system in (obj, col):
        system.add_group(".t1", 100)
        system.add_group(".t1.t2", 500)
        system.finalize_static_membership()
    return obj, col


def test_golden_s500_digest_gate():
    """CI gate: the columnar backend's construction digest equals the
    object backend's on the S=500 golden, which still equals the pinned
    pre-columnar constant — so the columnar build is bit-identical to the
    membership every golden trajectory rests on."""
    obj, col = _paper_shaped_pair(seed=123)
    obj_digest = obj.construction_digest()
    assert obj_digest == GOLDEN_LARGE_TABLE_DIGEST
    assert col.construction_digest() == obj_digest


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=10, deadline=None)
def test_system_digests_match_across_seeds(seed):
    obj, col = _paper_shaped_pair(seed)
    assert col.construction_digest() == obj.construction_digest()
