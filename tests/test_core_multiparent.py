"""Tests for the §VIII multiple-supertopics extension."""

import pytest

from repro.core.multiparent import MultiParentSystem
from repro.errors import ConfigError, UnknownTopic
from repro.topics import ROOT, Topic, TopicDag

NEWS = Topic.parse(".news")
SPORTS = Topic.parse(".sports")
FOOTBALL = Topic.parse(".sports.football")


def diamond_dag() -> TopicDag:
    """football has two supertopics: .sports (path) and .news (linked)."""
    dag = TopicDag()
    dag.add(FOOTBALL)
    dag.add(NEWS)
    dag.link(FOOTBALL, NEWS)
    return dag


def build_system(seed=0, **kwargs):
    system = MultiParentSystem(diamond_dag(), seed=seed, **kwargs)
    system.add_group(ROOT, 4)
    system.add_group(NEWS, 10)
    system.add_group(SPORTS, 10)
    system.add_group(FOOTBALL, 30)
    system.finalize_static_membership()
    return system


class TestStructure:
    def test_one_super_table_per_parent(self):
        system = build_system()
        for process in system.group(FOOTBALL):
            assert set(process.super_tables) == {SPORTS, NEWS}
        for process in system.group(SPORTS):
            assert set(process.super_tables) == {ROOT}
        for process in system.group(ROOT):
            assert process.super_tables == {}

    def test_tables_point_at_right_groups(self):
        system = build_system()
        for process in system.group(FOOTBALL):
            assert process.super_tables[SPORTS].target_topic == SPORTS
            assert process.super_tables[NEWS].target_topic == NEWS

    def test_unpopulated_parent_falls_back_upward(self):
        dag = diamond_dag()
        system = MultiParentSystem(dag, seed=1)
        system.add_group(ROOT, 4)
        system.add_group(NEWS, 10)
        system.add_group(FOOTBALL, 20)  # .sports has no subscribers
        system.finalize_static_membership()
        for process in system.group(FOOTBALL):
            # The .sports-side table walks up to the root group.
            assert process.super_tables[SPORTS].target_topic == ROOT
            assert process.super_tables[NEWS].target_topic == NEWS

    def test_unknown_topic_rejected(self):
        system = MultiParentSystem(diamond_dag())
        with pytest.raises(UnknownTopic):
            system.add_process(".unregistered")

    def test_add_group_validation(self):
        system = MultiParentSystem(diamond_dag())
        with pytest.raises(ConfigError):
            system.add_group(NEWS, 0)

    def test_publish_requires_finalize(self):
        system = MultiParentSystem(diamond_dag())
        system.add_group(FOOTBALL, 5)
        with pytest.raises(ConfigError):
            system.publish(FOOTBALL)


class TestDissemination:
    def test_event_reaches_both_parent_groups(self):
        system = build_system(seed=2)
        event = system.publish(FOOTBALL)
        system.run_until_idle()
        assert system.delivered_fraction(event, FOOTBALL) == 1.0
        assert system.delivered_fraction(event, SPORTS) == 1.0
        assert system.delivered_fraction(event, NEWS) == 1.0
        assert system.delivered_fraction(event, ROOT) == 1.0

    def test_diamond_paths_deliver_once(self):
        system = build_system(seed=3)
        event = system.publish(FOOTBALL)
        system.run_until_idle()
        # Root is reachable via both .sports and .news; dedup must keep
        # deliveries unique.
        for process in system.group(ROOT):
            count = sum(
                1 for e in process.delivered if e.event_id == event.event_id
            )
            assert count <= 1

    def test_sibling_parent_events_stay_separate(self):
        system = build_system(seed=4)
        event = system.publish(NEWS)
        system.run_until_idle()
        # .news events are NOT .sports events nor .sports.football events.
        assert system.delivered_fraction(event, SPORTS) == 0.0
        assert system.delivered_fraction(event, FOOTBALL) == 0.0
        assert system.delivered_fraction(event, ROOT) == 1.0

    def test_inter_group_edges_cover_both_parents(self):
        system = build_system(seed=5)
        system.publish(FOOTBALL)
        system.run_until_idle()
        stats = system.stats
        assert stats.events_sent_between(FOOTBALL, SPORTS) >= 1
        assert stats.events_sent_between(FOOTBALL, NEWS) >= 1

    def test_dag_interest_check(self):
        system = build_system()
        football_proc = system.group(FOOTBALL)[0]
        news_proc = system.group(NEWS)[0]
        event = football_proc.publish()
        assert news_proc.interested_in(event)  # via the extra DAG edge
        system.run_until_idle()

    def test_memory_footprint_counts_all_tables(self):
        system = build_system()
        for process in system.group(FOOTBALL):
            # topic table + two z-sized super tables
            expected_super = sum(
                len(t) for t in process.super_tables.values()
            )
            assert process.memory_footprint == len(
                process.topic_view
            ) + expected_super
            assert expected_super >= 2
