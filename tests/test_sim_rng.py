"""Unit tests for deterministic named RNG streams."""

import pytest

from repro.errors import ConfigError
from repro.sim import RngRegistry, derive_seed, spawn_seeds


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "net") == derive_seed(42, "net")

    def test_name_sensitivity(self):
        assert derive_seed(42, "net") != derive_seed(42, "membership")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "net") != derive_seed(2, "net")

    def test_64_bit_range(self):
        seed = derive_seed(123456789, "stream")
        assert 0 <= seed < 2**64


class TestSpawnSeeds:
    def test_count(self):
        assert len(spawn_seeds(7, 10)) == 10

    def test_distinct(self):
        seeds = spawn_seeds(7, 100)
        assert len(set(seeds)) == 100

    def test_deterministic(self):
        assert spawn_seeds(7, 5) == spawn_seeds(7, 5)

    def test_label_changes_seeds(self):
        assert spawn_seeds(7, 3, "a") != spawn_seeds(7, 3, "b")

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigError):
            spawn_seeds(7, -1)


class TestRngRegistry:
    def test_same_name_same_stream(self):
        rngs = RngRegistry(1)
        assert rngs.stream("x") is rngs.stream("x")

    def test_different_names_independent(self):
        rngs = RngRegistry(1)
        a = rngs.stream("a")
        b = rngs.stream("b")
        assert a is not b
        assert [a.random() for _ in range(3)] != [b.random() for _ in range(3)]

    def test_reproducible_across_registries(self):
        seq1 = [RngRegistry(5).stream("net").random() for _ in range(1)]
        seq2 = [RngRegistry(5).stream("net").random() for _ in range(1)]
        assert seq1 == seq2

    def test_component_isolation(self):
        # Creating an extra stream must not shift an existing stream's draws.
        rngs1 = RngRegistry(9)
        first_draw = rngs1.stream("net").random()

        rngs2 = RngRegistry(9)
        rngs2.stream("other").random()  # interleaved extra component
        assert rngs2.stream("net").random() == first_draw

    def test_fork_independent(self):
        parent = RngRegistry(3)
        child = parent.fork("run1")
        assert child.master_seed != parent.master_seed
        assert child.stream("net").random() != parent.stream("net").random()

    def test_streams_listing(self):
        rngs = RngRegistry(0)
        rngs.stream("b")
        rngs.stream("a")
        assert list(rngs.streams()) == ["a", "b"]
