"""Direct unit tests of the process actor's message handling."""

import pytest

from repro.core import DaMulticastConfig, DaMulticastSystem
from repro.core.events import Event, EventId
from repro.errors import ProtocolError
from repro.membership import ProcessDescriptor
from repro.net.message import (
    EventMessage,
    Message,
    Ping,
    Pong,
    Scope,
)
from repro.topics import ROOT, Topic

T1 = Topic.parse(".t1")
T2 = Topic.parse(".t1.t2")


def tiny_system(mode="static"):
    system = DaMulticastSystem(seed=0, mode=mode)
    system.add_group(ROOT, 2)
    system.add_group(T1, 4)
    system.add_group(T2, 6)
    if mode == "static":
        system.finalize_static_membership()
    return system


class TestMessageDispatch:
    def test_ping_answered_with_pong(self):
        system = tiny_system()
        a, b = system.group(T2)[0], system.group(T2)[1]
        a.handle_message(Ping(sender=b.pid, nonce=42))
        system.run_until_idle()
        assert system.stats.sent_by_kind["pong"] == 1

    def test_pong_records_proof_of_life(self):
        system = tiny_system()
        process = system.group(T2)[0]
        super_pid = process.super_table.pids[0]
        process.handle_message(Pong(sender=super_pid, nonce=1))
        assert process.super_table.check(system.now, timeout=1.0) == 1

    def test_pong_from_stranger_ignored(self):
        system = tiny_system()
        process = system.group(T2)[0]
        process.handle_message(Pong(sender=99999, nonce=1))
        assert process.super_table.check(system.now, timeout=1.0) == 0

    def test_unknown_message_type_raises(self):
        system = tiny_system()
        process = system.group(T2)[0]

        class Weird(Message):
            pass

        with pytest.raises(ProtocolError):
            process.handle_message(Weird(sender=0))

    def test_parasite_event_raises(self):
        system = tiny_system()
        t2_process = system.group(T2)[0]
        bad = Event(EventId(0, 1), T1, None, 0.0)  # supertopic event
        message = EventMessage(
            sender=1, event=bad, scope=Scope("intra", T2)
        )
        with pytest.raises(ProtocolError):
            t2_process.handle_message(message)

    def test_duplicate_event_ignored(self):
        system = tiny_system()
        process = system.group(T2)[0]
        event = Event(EventId(0, 1), T2, None, 0.0)
        message = EventMessage(
            sender=1, event=event, scope=Scope("intra", T2)
        )
        process.handle_message(message)
        first_count = len(process.delivered)
        process.handle_message(message)
        assert len(process.delivered) == first_count


class TestSubscriptionLifecycle:
    def test_subscribe_idempotent(self):
        system = tiny_system(mode="dynamic")
        process = system.group(T2)[0]
        assert process.subscribed
        process.subscribe()
        process.subscribe()
        assert process.subscribed

    def test_static_mode_starts_no_tasks(self):
        system = tiny_system(mode="static")
        for process in system.processes:
            assert not process.maintenance.running
            assert not process.find_super_contact.active

    def test_group_size_hint(self):
        system = tiny_system()
        process = system.group(T2)[0]
        assert process.group_size == 6
        process.set_group_size(100)
        assert process.group_size == 100

    def test_group_size_estimated_without_hint(self):
        system = tiny_system()
        process = system.group(T2)[0]
        process._group_size_hint = None
        assert process.group_size == len(process.topic_table()) + 1

    def test_install_static_view_rejected_in_dynamic(self):
        from repro.membership.view import PartialView

        system = tiny_system(mode="dynamic")
        process = system.group(T2)[0]
        with pytest.raises(ProtocolError):
            process.install_static_topic_table(PartialView(4))


class TestPiggybackMerge:
    def test_super_sample_adopted(self):
        system = tiny_system(mode="dynamic")
        process = system.group(T2)[0]
        t1_member = system.group(T1)[0]
        process._merge_piggybacked_super(
            (ProcessDescriptor(t1_member.pid, T1),)
        )
        assert process.super_table.target_topic == T1
        assert t1_member.pid in process.super_table

    def test_wrong_topic_samples_rejected(self):
        system = tiny_system(mode="dynamic")
        process = system.group(T2)[0]
        sibling = Topic.parse(".t1.other")
        process._merge_piggybacked_super(
            (ProcessDescriptor(12345, sibling),)
        )
        assert process.super_table.is_empty

    def test_direct_super_contact_stops_search(self):
        system = tiny_system(mode="dynamic")
        process = system.group(T2)[0]
        process.find_super_contact.start()
        assert process.find_super_contact.active
        t1_member = system.group(T1)[0]
        process._merge_piggybacked_super(
            (ProcessDescriptor(t1_member.pid, T1),)
        )
        assert not process.find_super_contact.active


class TestReportExports:
    def test_table_csv_and_json(self):
        from repro.metrics import Table

        table = Table("T", ["x", "y"])
        table.add_row(1, 2.0)
        csv_text = table.to_csv()
        assert csv_text.splitlines()[0] == "x,y"
        assert csv_text.splitlines()[1] == "1,2.0"
        import json

        payload = json.loads(table.to_json())
        assert payload["title"] == "T"
        assert payload["rows"] == [{"x": 1, "y": 2.0}]
