"""Parallel sweep engine: serial-vs-parallel equivalence and scheduling.

The contract under test: ``run_sweep(..., executor="pool:N")`` is
bit-identical to the serial path for every N, chunk size and start
method, because workers re-derive each cell's seed from ``(master_seed,
label, point, j)`` and aggregation happens in canonical (point, run)
order. Worker failures must surface with the failing (point, run, seed)
identified. The deprecated ``jobs``/``chunk_size``/``start_method``
keywords must keep working behind a DeprecationWarning.

Cross-backend equivalence (serial vs pool vs warm, arbitrary worker
counts) lives in ``test_executor.py``; this file covers the sweep
layer on top of the port.

The run functions used with parallel executors are module-level — the
pool pickles them by reference (and that requirement is itself under
test).
"""

import functools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.experiments import (
    PoolExecutor,
    SweepCell,
    SweepWorkerError,
    aggregate_runs,
    run_cells,
    run_sweep,
)
from repro.sim.rng import derive_seed


def _poly(point, seed):
    # Deterministic, seed- and point-sensitive, with several metrics so
    # dict-ordering bugs are visible.
    return {
        "m": (seed % 9973) * point,
        "b": float(seed % 7),
        "alpha": point + (seed % 3),
    }


def _fail_at_two(point, seed):
    if point == 2.0:
        raise ValueError("boom")
    return {"y": 1.0}


def _unpicklable_result(point, seed):
    return {"y": lambda: None}


def _scaled(point, seed, *, factor):
    return {"y": point * factor + (seed % 11)}


def _sweeps_equal(a, b):
    assert a.points == b.points
    assert a.runs == b.runs
    # Contents AND dict ordering, metric by metric.
    assert list(a.means) == list(b.means)
    assert list(a.stds) == list(b.stds)
    assert a.means == b.means
    assert a.stds == b.stds


class TestSerialParallelEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(
        grid=st.lists(
            st.floats(-1e6, 1e6).map(lambda x: round(x, 3)),
            min_size=1,
            max_size=5,
        ),
        runs=st.integers(1, 3),
        master_seed=st.integers(0, 2**32),
        jobs=st.integers(2, 4),
    )
    def test_hypothesis_bit_identical(self, grid, runs, master_seed, jobs):
        serial = run_sweep(
            _poly, grid, runs=runs, master_seed=master_seed, label="hyp"
        )
        parallel = run_sweep(
            _poly,
            grid,
            runs=runs,
            master_seed=master_seed,
            label="hyp",
            executor=f"pool:{jobs}",
        )
        _sweeps_equal(serial, parallel)

    def test_partial_run_fn_parallel(self):
        run = functools.partial(_scaled, factor=3.0)
        serial = run_sweep(run, [0.5, 1.5], runs=3, label="partial")
        parallel = run_sweep(
            run, [0.5, 1.5], runs=3, label="partial", executor="pool:2"
        )
        _sweeps_equal(serial, parallel)

    @pytest.mark.parametrize("chunk_size", [1, 2, 100])
    def test_chunk_size_irrelevant_to_results(self, chunk_size):
        serial = run_sweep(_poly, [1.0, 2.0, 3.0], runs=2, label="chunk")
        parallel = run_sweep(
            _poly,
            [1.0, 2.0, 3.0],
            runs=2,
            label="chunk",
            executor=PoolExecutor(3, chunk_size=chunk_size),
        )
        _sweeps_equal(serial, parallel)

    def test_spawn_start_method_identical(self):
        # Spawn-safety: workers import everything fresh and re-derive
        # seeds; nothing depends on forked parent state.
        serial = run_sweep(_poly, [1.0, 2.0], runs=2, label="spawn")
        parallel = run_sweep(
            _poly,
            [1.0, 2.0],
            runs=2,
            label="spawn",
            executor=PoolExecutor(2, start_method="spawn"),
        )
        _sweeps_equal(serial, parallel)

    def test_duplicate_grid_points_reuse_seeds(self):
        # The documented label-collision caveat, at its smallest: the
        # same point twice in one grid gets identical seeds cell-for-cell.
        result = run_sweep(
            _poly, [1.0, 1.0], runs=2, label="dup", executor="pool:2"
        )
        assert result.means["m"][0] == result.means["m"][1]


class TestWorkerErrors:
    def test_serial_error_identifies_cell(self):
        with pytest.raises(SweepWorkerError) as excinfo:
            run_sweep(_fail_at_two, [1.0, 2.0], runs=2, label="err")
        message = str(excinfo.value)
        expected_seed = derive_seed(0, "err/2.0/0")
        assert "point=2.0" in message
        assert "run=0" in message
        assert str(expected_seed) in message
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_parallel_error_identifies_cell_and_traceback(self):
        with pytest.raises(SweepWorkerError) as excinfo:
            run_sweep(
                _fail_at_two,
                [1.0, 2.0],
                runs=2,
                label="err",
                executor=PoolExecutor(2, chunk_size=1),
            )
        message = str(excinfo.value)
        assert "point=2.0" in message
        assert "run=0" in message
        assert str(derive_seed(0, "err/2.0/0")) in message
        assert "ValueError" in message
        assert "worker traceback" in message

    def test_parallel_error_is_deterministic_lowest_cell(self):
        # Both runs at point 2.0 fail; the error must always name the
        # canonically-first failing cell regardless of completion order.
        for _ in range(3):
            with pytest.raises(SweepWorkerError) as excinfo:
                run_sweep(
                    _fail_at_two,
                    [2.0, 1.0],
                    runs=2,
                    label="err",
                    executor=PoolExecutor(2, chunk_size=1),
                )
            assert "run=0" in str(excinfo.value)

    def test_unpicklable_result_surfaces_as_cell_failure(self):
        # A result that cannot cross the process boundary must name its
        # cell, not abort the pool with an opaque MaybeEncodingError.
        with pytest.raises(SweepWorkerError) as excinfo:
            run_sweep(
                _unpicklable_result,
                [1.0, 2.0],
                runs=2,
                label="pkl",
                executor="pool:2",
            )
        message = str(excinfo.value)
        assert "point=1.0" in message
        assert "run=0" in message

    def test_lambda_rejected_for_parallel(self):
        with pytest.raises(ConfigError, match="picklable"):
            run_sweep(
                lambda p, s: {"y": 0.0}, [1.0, 2.0], runs=2, executor="pool:2"
            )

    def test_single_cell_sweep_runs_in_process(self):
        # One cell never pays for a pool — parallel executors degrade to
        # the serial path, so even unpicklable run functions work.
        result = run_sweep(
            lambda p, s: {"y": p}, [1.0], runs=1, executor="pool:4"
        )
        assert result.means["y"] == [1.0]

    def test_jobs_validation(self):
        with pytest.raises(ConfigError):
            run_sweep(_poly, [1.0], runs=1, executor="pool:0")

    @pytest.mark.parametrize("bad", [0, -1])
    def test_chunk_size_validation(self, bad):
        with pytest.raises(ConfigError, match="chunk_size"):
            PoolExecutor(2, chunk_size=bad)


class TestLegacyKeywordShims:
    """The pre-executor ``jobs``/``chunk_size``/``start_method`` API."""

    def test_jobs_keyword_warns_and_matches_executor(self):
        serial = run_sweep(_poly, [1.0, 2.0], runs=2, label="shim")
        with pytest.warns(DeprecationWarning, match="deprecated"):
            legacy = run_sweep(_poly, [1.0, 2.0], runs=2, label="shim", jobs=2)
        _sweeps_equal(serial, legacy)

    def test_chunk_size_keyword_warns(self):
        with pytest.warns(DeprecationWarning):
            legacy = run_sweep(
                _poly, [1.0, 2.0], runs=2, label="shim", jobs=2, chunk_size=1
            )
        _sweeps_equal(run_sweep(_poly, [1.0, 2.0], runs=2, label="shim"), legacy)

    def test_jobs_one_warns_but_stays_serial(self):
        with pytest.warns(DeprecationWarning):
            legacy = run_sweep(
                lambda p, s: {"y": p}, [1.0, 2.0], runs=1, label="shim1", jobs=1
            )
        assert legacy.means["y"] == [1.0, 2.0]

    def test_executor_and_jobs_conflict(self):
        with pytest.raises(ConfigError, match="not both"):
            run_sweep(_poly, [1.0], runs=1, executor="serial", jobs=2)

    def test_run_cells_jobs_keyword_warns(self):
        cells = [SweepCell(arg=x, seed_name=f"shim/{x}") for x in (1.0, 2.0)]
        with pytest.warns(DeprecationWarning):
            legacy = run_cells(_poly, cells, jobs=2)
        assert legacy == run_cells(_poly, cells)

    def test_legacy_jobs_validation(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigError):
                run_sweep(_poly, [1.0], runs=1, jobs=0)


class TestProgress:
    def test_serial_progress_in_canonical_order(self):
        seen = []
        run_sweep(
            _poly,
            [1.0, 2.0, 3.0],
            runs=2,
            label="prog",
            progress=lambda point, done, total: seen.append(
                (point, done, total)
            ),
        )
        assert seen == [(1.0, 1, 3), (2.0, 2, 3), (3.0, 3, 3)]

    def test_parallel_progress_counts_every_point(self):
        seen = []
        run_sweep(
            _poly,
            [1.0, 2.0, 3.0],
            runs=2,
            label="prog",
            executor=PoolExecutor(2, chunk_size=1),
            progress=lambda point, done, total: seen.append(
                (point, done, total)
            ),
        )
        assert sorted(p for p, _, _ in seen) == [1.0, 2.0, 3.0]
        assert [done for _, done, _ in sorted(seen, key=lambda s: s[1])] == [
            1, 2, 3,
        ]
        assert all(total == 3 for _, _, total in seen)


class TestRunCells:
    def test_results_in_cell_order(self):
        cells = [
            SweepCell(arg=x, seed_name=f"cells/{x}") for x in (3.0, 1.0, 2.0)
        ]
        serial = run_cells(_poly, cells)
        parallel = run_cells(
            _poly, cells, executor=PoolExecutor(3, chunk_size=1)
        )
        assert serial == parallel
        assert [s["m"] for s in serial] == [
            (derive_seed(0, f"cells/{x}") % 9973) * x for x in (3.0, 1.0, 2.0)
        ]

    def test_worker_derives_seed_from_master(self):
        cells = [SweepCell(arg=0.0, seed_name="cells/a")]
        one = run_cells(_poly, cells, master_seed=1)
        two = run_cells(_poly, cells, master_seed=2)
        assert one != two
        assert one == run_cells(_poly, cells, master_seed=1, executor="serial")

    def test_empty_cells(self):
        assert run_cells(_poly, []) == []
        assert run_cells(_poly, [], executor="pool:4") == []


class TestGridValidation:
    def test_nan_rejected(self):
        with pytest.raises(ConfigError, match="NaN"):
            run_sweep(_poly, [1.0, float("nan")], runs=1)

    @pytest.mark.parametrize("bad", [float("inf"), float("-inf")])
    def test_infinite_point_rejected(self, bad):
        with pytest.raises(ConfigError, match="non-finite"):
            run_sweep(_poly, [1.0, bad], runs=1)

    def test_inf_minus_inf_gets_clear_error(self):
        # Regression: the old guard summed the grid, so [inf, -inf]
        # produced a misleading "contains NaN" — now each non-finite
        # point is rejected explicitly.
        with pytest.raises(ConfigError, match="non-finite"):
            run_sweep(_poly, [float("inf"), float("-inf")], runs=1)

    def test_overflowing_finite_grid_accepted(self):
        # Regression: sum([1e308, 1e308]) overflows to inf, but every
        # point is finite — the sweep must run.
        result = run_sweep(
            lambda p, s: {"y": 1.0}, [1e308, 1e308], runs=1
        )
        assert result.means["y"] == [1.0, 1.0]


class TestAggregationOrdering:
    def test_permuted_key_insertion_orders_agree(self):
        # Regression: aggregate_runs iterated a raw set, so means/stds
        # insertion order depended on PYTHONHASHSEED. Two aggregations
        # of permuted-key samples must produce identically-ordered dicts.
        forward = [{"a": 1.0, "b": 2.0, "c": 3.0}, {"a": 2.0, "b": 1.0, "c": 0.0}]
        backward = [
            {"c": 3.0, "b": 2.0, "a": 1.0},
            {"c": 0.0, "b": 1.0, "a": 2.0},
        ]
        means_f, stds_f = aggregate_runs(forward)
        means_b, stds_b = aggregate_runs(backward)
        assert list(means_f) == list(means_b) == ["a", "b", "c"]
        assert list(stds_f) == list(stds_b) == ["a", "b", "c"]
        assert means_f == means_b
        assert stds_f == stds_b

    def test_sweep_metric_dicts_sorted(self):
        result = run_sweep(_poly, [1.0], runs=2)
        assert list(result.means) == sorted(result.means)
        assert list(result.stds) == sorted(result.stds)
