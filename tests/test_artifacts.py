"""The artifact store and ``--cache``: hits, resume, staleness, atomicity.

The contract under test: per-cell results are content-addressed by
``(schema, run_key, seed_name, master_seed)``; a warmed cache re-runs a
sweep with **zero** cells executed and byte-identical output; an
interrupted sweep resumes (finished cells are already on disk because
workers persist them immediately); and any stale, corrupt or
wrongly-keyed entry is a miss that gets recomputed — never served.
"""

import json

import pytest

from repro.cli import main
from repro.errors import ConfigError
from repro.experiments.artifacts import (
    ARTIFACT_SCHEMA,
    ArtifactStore,
    CachingExecutor,
    write_json_atomic,
)
from repro.experiments.executor import (
    PoolExecutor,
    SerialExecutor,
    SweepCell,
    SweepWorkerError,
)

SPEC = {
    "name": "cache-probe",
    "topics": {"kind": "chain", "depth": 2, "prefix": "t"},
    "subscriptions": {"kind": "per_level", "counts": [3, 8, 20]},
    "publications": {"kind": "single", "level": -1},
    "failures": {"kind": "stillborn", "alive_fraction": 0.7},
    "params": {"b": 3, "c": 5, "g": 5, "a": 1, "z": 3, "fanout_log_base": 10},
    "p_success": 0.85,
}


def _metrics(point, seed):
    return {"m": float((seed % 9973) * point), "n": float(seed % 11)}


def _cells(points, label="cache"):
    return [
        SweepCell(arg=p, seed_name=f"{label}/{p}", describe=f"point={p}")
        for p in points
    ]


class TestArtifactStore:
    def test_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        result = {"latency": 1.25, "messages": 42.0}
        store.put(result, run_key="rk", seed_name="s/0", master_seed=7)
        record = store.get(run_key="rk", seed_name="s/0", master_seed=7)
        assert record["result"] == result
        assert record["schema"] == ARTIFACT_SCHEMA
        assert len(store) == 1

    def test_layout_is_sharded_by_key_prefix(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put({"x": 1.0}, run_key="rk", seed_name="s/0", master_seed=0)
        key = store.cell_key(run_key="rk", seed_name="s/0", master_seed=0)
        assert (tmp_path / key[:2] / f"{key}.json").is_file()

    def test_every_identity_field_addresses(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put({"x": 1.0}, run_key="rk", seed_name="s/0", master_seed=0)
        assert store.get(run_key="other", seed_name="s/0", master_seed=0) is None
        assert store.get(run_key="rk", seed_name="s/1", master_seed=0) is None
        assert store.get(run_key="rk", seed_name="s/0", master_seed=1) is None
        assert store.get(run_key="rk", seed_name="s/0", master_seed=0)

    def test_empty_store(self, tmp_path):
        store = ArtifactStore(tmp_path / "never-created")
        assert len(store) == 0
        assert store.get(run_key="rk", seed_name="s", master_seed=0) is None


class TestStaleEntriesAreMisses:
    def _entry_path(self, store):
        key = store.cell_key(run_key="rk", seed_name="s/0", master_seed=0)
        return store._path(key)

    def test_corrupt_json_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put({"x": 1.0}, run_key="rk", seed_name="s/0", master_seed=0)
        self._entry_path(store).write_text("{truncated", encoding="utf-8")
        assert store.get(run_key="rk", seed_name="s/0", master_seed=0) is None

    def test_digest_mismatch_is_a_miss(self, tmp_path):
        # A file copied to the wrong address: its identity fields
        # disagree with the key it is stored under — never served.
        store = ArtifactStore(tmp_path)
        store.put({"x": 1.0}, run_key="rk", seed_name="s/0", master_seed=0)
        path = self._entry_path(store)
        record = json.loads(path.read_text(encoding="utf-8"))
        record["seed_name"] = "tampered/0"
        path.write_text(json.dumps(record), encoding="utf-8")
        assert store.get(run_key="rk", seed_name="s/0", master_seed=0) is None

    def test_schema_bump_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put({"x": 1.0}, run_key="rk", seed_name="s/0", master_seed=0)
        path = self._entry_path(store)
        record = json.loads(path.read_text(encoding="utf-8"))
        record["schema"] = "repro-artifact-v0"
        path.write_text(json.dumps(record), encoding="utf-8")
        assert store.get(run_key="rk", seed_name="s/0", master_seed=0) is None

    def test_stale_entry_is_recomputed_and_restored(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put({"x": 1.0}, run_key="rk", seed_name="cache/2.0", master_seed=0)
        path = store._path(
            store.cell_key(run_key="rk", seed_name="cache/2.0", master_seed=0)
        )
        path.write_text("not json", encoding="utf-8")
        caching = CachingExecutor(SerialExecutor(), store, "rk")
        results = caching.map_cells(_metrics, _cells([2.0]))
        assert caching.hits == 0 and caching.executed == 1
        assert results == [_metrics(2.0, _seed_for("cache/2.0"))]
        # The recomputed result was written back over the stale entry.
        assert store.get(run_key="rk", seed_name="cache/2.0", master_seed=0)


def _seed_for(name, master_seed=0):
    from repro.sim.rng import derive_seed

    return derive_seed(master_seed, name)  # repro-lint: allow[DET004]: test helper echoing the cell's own label


class TestAtomicWrites:
    def test_success_leaves_no_temp_files(self, tmp_path):
        target = tmp_path / "deep" / "payload.json"
        write_json_atomic(target, {"a": 1}, indent=2)
        assert json.loads(target.read_text(encoding="utf-8")) == {"a": 1}
        assert [p.name for p in target.parent.iterdir()] == ["payload.json"]

    def test_failed_write_preserves_existing_target(self, tmp_path):
        target = tmp_path / "payload.json"
        write_json_atomic(target, {"a": 1})

        class Unserializable:
            def __str__(self):
                raise RuntimeError("cannot stringify")

        with pytest.raises(RuntimeError, match="cannot stringify"):
            write_json_atomic(target, {"bad": Unserializable()})
        # Old contents intact, no .tmp debris left behind.
        assert json.loads(target.read_text(encoding="utf-8")) == {"a": 1}
        assert [p.name for p in tmp_path.iterdir()] == ["payload.json"]


class TestCachingExecutor:
    def test_cold_then_warm(self, tmp_path):
        store = ArtifactStore(tmp_path)
        cells = _cells([1.0, 2.0, 3.0])
        uncached = SerialExecutor().map_cells(_metrics, cells, master_seed=5)

        caching = CachingExecutor(SerialExecutor(), store, "rk")
        cold = caching.map_cells(_metrics, cells, master_seed=5)
        assert (caching.hits, caching.executed) == (0, 3)
        assert cold == uncached

        warm = caching.map_cells(_metrics, cells, master_seed=5)
        assert (caching.hits, caching.executed) == (3, 0)
        assert warm == uncached

    def test_mixed_hits_keep_cell_order(self, tmp_path):
        store = ArtifactStore(tmp_path)
        cells = _cells([1.0, 2.0, 3.0, 4.0])
        uncached = SerialExecutor().map_cells(_metrics, cells)
        # Pre-populate only the middle cells, then fill via a real pool.
        for cell, result in list(zip(cells, uncached))[1:3]:
            store.put(
                result,
                run_key="rk",
                # repro-lint: allow[DET004]: test forwards the cell's own label
                seed_name=cell.seed_name,
                master_seed=0,
            )
        caching = CachingExecutor(PoolExecutor(2), store, "rk")
        results = caching.map_cells(_metrics, cells)
        assert (caching.hits, caching.executed) == (2, 2)
        assert results == uncached
        assert len(store) == 4

    def test_resume_after_interrupt(self, tmp_path):
        # Simulate an interrupted sweep: the run fn dies partway, but
        # every finished cell was already persisted. The re-run must
        # execute only the unfinished cells.
        store = ArtifactStore(tmp_path)
        cells = _cells([1.0, 2.0, 3.0, 4.0])

        def _dies_at_three(point, seed):
            if point == 3.0:
                raise RuntimeError("simulated crash")
            return _metrics(point, seed)

        caching = CachingExecutor(SerialExecutor(), store, "rk")
        with pytest.raises(SweepWorkerError, match="point=3.0"):
            caching.map_cells(_dies_at_three, cells)
        assert len(store) == 2  # cells before the crash are on disk

        evaluated = []

        def _recording(point, seed):
            evaluated.append(point)
            return _metrics(point, seed)

        results = caching.map_cells(_recording, cells)
        assert (caching.hits, caching.executed) == (2, 2)
        assert evaluated == [3.0, 4.0]
        assert results == SerialExecutor().map_cells(_metrics, cells)

    def test_on_result_announces_every_cell_once(self, tmp_path):
        store = ArtifactStore(tmp_path)
        cells = _cells([1.0, 2.0, 3.0])
        uncached = SerialExecutor().map_cells(_metrics, cells)
        store.put(
            uncached[1],
            run_key="rk",
            # repro-lint: allow[DET004]: test forwards the cell's own label
            seed_name=cells[1].seed_name,
            master_seed=0,
        )
        seen = []
        caching = CachingExecutor(SerialExecutor(), store, "rk")
        caching.map_cells(
            _metrics,
            cells,
            on_result=lambda i, done, total: seen.append((i, done, total)),
        )
        assert sorted(i for i, _, _ in seen) == [0, 1, 2]
        assert sorted(done for _, done, _ in seen) == [1, 2, 3]
        assert all(total == 3 for _, _, total in seen)

    def test_run_key_validation(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(ConfigError, match="run_key"):
            CachingExecutor(SerialExecutor(), store, "")
        with pytest.raises(ConfigError, match="run_key"):
            CachingExecutor(SerialExecutor(), store, 42)

    def test_different_run_keys_do_not_share_entries(self, tmp_path):
        store = ArtifactStore(tmp_path)
        cells = _cells([1.0])
        CachingExecutor(SerialExecutor(), store, "rk-a").map_cells(
            _metrics, cells
        )
        caching_b = CachingExecutor(SerialExecutor(), store, "rk-b")
        caching_b.map_cells(_metrics, cells)
        assert caching_b.executed == 1
        assert len(store) == 2


class TestCliCache:
    def _spec_path(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(SPEC), encoding="utf-8")
        return str(path)

    def test_sweep_cache_rerun_executes_zero_cells(self, tmp_path, capsys):
        spec = self._spec_path(tmp_path)
        out_a, out_b = tmp_path / "a.json", tmp_path / "b.json"
        base = [
            "scenario", "sweep", spec,
            "--field", "failures.alive_fraction",
            "--values", "0.5", "1.0",
            "--runs", "2", "--seed", "3",
            "--cache", str(tmp_path / "cache"),
        ]
        assert main(base + ["--out", str(out_a)]) == 0
        first = capsys.readouterr()
        assert "cache: 0 hit(s), 4 executed" in first.err

        assert main(base + ["--out", str(out_b)]) == 0
        second = capsys.readouterr()
        assert "cache: 4 hit(s), 0 executed" in second.err
        # Acceptance: re-render from cache is byte-identical.
        assert out_a.read_bytes() == out_b.read_bytes()
        assert first.out == second.out

    def test_run_cache_rerun_executes_zero_cells(self, tmp_path, capsys):
        spec = self._spec_path(tmp_path)
        base = [
            "scenario", "run", spec,
            "--runs", "3", "--seed", "1",
            "--cache", str(tmp_path / "cache"),
        ]
        assert main(base) == 0
        first = capsys.readouterr()
        assert "cache: 0 hit(s), 3 executed" in first.err
        assert main(base) == 0
        second = capsys.readouterr()
        assert "cache: 3 hit(s), 0 executed" in second.err
        assert first.out == second.out

    def test_run_and_sweep_caches_are_disjoint(self, tmp_path, capsys):
        # Same spec, same seed — but a plain run and a sweep must not
        # serve each other's cells (different run_key kinds).
        spec = self._spec_path(tmp_path)
        cache = str(tmp_path / "cache")
        assert main([
            "scenario", "run", spec, "--runs", "2", "--cache", cache,
        ]) == 0
        capsys.readouterr()
        assert main([
            "scenario", "sweep", spec,
            "--field", "failures.alive_fraction", "--values", "0.7",
            "--runs", "2", "--cache", cache,
        ]) == 0
        assert "cache: 0 hit(s), 2 executed" in capsys.readouterr().err

    def test_uncached_commands_print_no_cache_line(self, tmp_path, capsys):
        spec = self._spec_path(tmp_path)
        assert main(["scenario", "run", spec, "--runs", "1"]) == 0
        assert "cache:" not in capsys.readouterr().err

    def test_out_write_is_atomic_over_existing_file(self, tmp_path, capsys):
        # --out replaces an existing payload wholesale; a pre-existing
        # file with junk content never bleeds into the new payload.
        spec = self._spec_path(tmp_path)
        out = tmp_path / "payload.json"
        out.write_text("junk to be replaced", encoding="utf-8")
        assert main([
            "scenario", "run", spec, "--runs", "1", "--out", str(out),
        ]) == 0
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["spec"]["name"] == "cache-probe"
        assert not list(tmp_path.glob("payload.json.*"))
