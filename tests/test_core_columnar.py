"""ColumnarStaticSystem runtime: block actors, flyweight dissemination.

The columnar backend must run the *same protocol* (repro.core.dissemination
drives both backends) over per-group state. These tests exercise the
facade's lifecycle guards, the block actor's delivery semantics (dedup
bitmask, parasite refusal), and cross-check the delivery outcome against
the full tracker and the paper's expectations (100% delivery on a lossless
network, sane fractions under stillborn failure).
"""

import pytest

from repro.core.columnar import ColumnarStaticSystem
from repro.core.events import Event, EventId
from repro.errors import ConfigError, ProtocolError, UnknownTopic
from repro.failures.stillborn import StillbornFailures
from repro.metrics.delivery import delivered_fraction
from repro.net.message import EventMessage, Message, Scope
from repro.topics.topic import Topic

T1 = Topic.parse(".t1")
T2 = Topic.parse(".t1.t2")


def small_system(**kwargs) -> ColumnarStaticSystem:
    system = ColumnarStaticSystem(seed=kwargs.pop("seed", 7), **kwargs)
    system.add_group(".t1", 50)
    system.add_group(".t1.t2", 200)
    return system


class TestLifecycle:
    def test_publish_requires_finalize(self):
        system = small_system()
        with pytest.raises(ConfigError, match="finalize"):
            system.publish(".t1")

    def test_one_block_per_topic(self):
        system = small_system()
        with pytest.raises(ConfigError, match="already added"):
            system.add_group(".t1", 10)

    def test_finalize_guards(self):
        empty = ColumnarStaticSystem()
        with pytest.raises(ConfigError, match="no groups"):
            empty.finalize_static_membership()
        system = small_system()
        system.finalize_static_membership()
        with pytest.raises(ConfigError, match="already finalized"):
            system.finalize_static_membership()
        with pytest.raises(ConfigError, match="already finalized"):
            system.add_group(".t3", 10)

    def test_pid_blocks_are_contiguous_in_creation_order(self):
        system = small_system()
        assert system.group_pids(".t1") == list(range(0, 50))
        assert system.group_pids(".t1.t2") == list(range(50, 250))
        assert list(system.processes()) == list(range(250))
        assert system.topics() == [T1, T2]

    def test_unknown_topic_queries(self):
        system = small_system()
        system.finalize_static_membership()
        with pytest.raises(UnknownTopic):
            system.publish(".nope")
        with pytest.raises(UnknownTopic):
            system.group_actor(".nope")
        assert system.group_pids(".nope") == []


class TestPublish:
    def test_explicit_publisher_and_sequencing(self):
        system = small_system()
        system.finalize_static_membership()
        first = system.publish(".t1", publisher_pid=3)
        second = system.publish(".t1", publisher_pid=3)
        other = system.publish(".t1", publisher_pid=4)
        assert first.event_id == EventId(3, 1)
        assert second.event_id == EventId(3, 2)
        assert other.event_id == EventId(4, 1)
        assert first.topic == T1

    def test_publisher_must_belong_to_group(self):
        system = small_system()
        system.finalize_static_membership()
        with pytest.raises(ConfigError, match="not a member"):
            system.publish(".t1", publisher_pid=199)

    def test_lossless_network_delivers_everywhere(self):
        """p_success=1, no failures: gossip plus the publisher's forced
        super link must reach every member of the topic's group and of
        the supergroup (the paper's zero-loss sanity point)."""
        system = small_system(seed=5)
        system.finalize_static_membership()
        event = system.publish(".t1.t2")
        system.run_until_idle()
        assert system.seen_fraction(event, ".t1.t2") == 1.0
        assert system.seen_fraction(event, ".t1") == 1.0
        stats = system.tracker.topic_stats(T2)
        assert stats.published == 1
        assert stats.delivered == 250
        assert stats.mean_hops is not None and stats.mean_hops > 0

    def test_streaming_is_default_full_opt_in_matches_bitmask(self):
        """With tracker='full' the per-event records agree exactly with
        the actor's seen bitmask — the two delivery accounts can't
        drift."""
        system = small_system(tracker="full")
        assert ColumnarStaticSystem().tracker.mode == "streaming"
        system.finalize_static_membership()
        event = system.publish(".t1.t2")
        system.run_until_idle()
        for topic in (".t1", ".t1.t2"):
            fraction = delivered_fraction(
                system.tracker, event.event_id, system.group_pids(topic)
            )
            assert fraction == system.seen_fraction(event, topic)
        receivers = system.tracker.receivers(event.event_id)
        actor = system.group_actor(".t1.t2")
        assert actor.seen_count(event.event_id) == sum(
            1 for pid in system.group_pids(".t1.t2") if pid in receivers
        )

    def test_stillborn_failures_respected(self):
        """Dead members never appear in the seen bitmask (the network
        drops them), the publisher is drawn from the alive remainder, and
        the alive fraction still gets good coverage."""
        dead = set(range(60, 120))  # 60 of .t1.t2's 200 members
        system = small_system(
            seed=11, failure_model=StillbornFailures(dead)
        )
        system.finalize_static_membership()
        event = system.publish(".t1.t2")
        system.run_until_idle()
        assert event.event_id.publisher not in dead
        actor = system.group_actor(".t1.t2")
        mask = actor._seen[event.event_id]
        base = actor.tables.base
        seen_pids = {base + i for i, bit in enumerate(mask) if bit}
        assert not (seen_pids & dead)
        alive = [p for p in system.group_pids(".t1.t2") if p not in dead]
        assert len(seen_pids & set(alive)) / len(alive) > 0.8

    def test_all_dead_group_cannot_publish(self):
        system = small_system(
            failure_model=StillbornFailures(range(0, 50))  # all of .t1
        )
        system.finalize_static_membership()
        with pytest.raises(UnknownTopic, match="no alive process"):
            system.publish(".t1")


class TestBlockActor:
    def test_non_event_message_refused(self):
        system = small_system()
        system.finalize_static_membership()
        actor = system.group_actor(".t1")
        with pytest.raises(ProtocolError, match="cannot handle"):
            actor.handle_batch(0, (1,), Message(sender=0))

    def test_parasite_event_refused(self):
        """Property 4: a columnar group must never deliver an event of a
        topic its members did not subscribe to."""
        system = small_system()
        system.finalize_static_membership()
        actor = system.group_actor(".t1")
        foreign = Event(EventId(0, 1), Topic.parse(".x"), None, 0.0)
        message = EventMessage(
            sender=0,
            event=foreign,
            scope=Scope("intra", Topic.parse(".x")),
            hops=1,
        )
        with pytest.raises(ProtocolError, match="parasite"):
            actor.handle_batch(0, (1,), message)

    def test_duplicate_deliveries_ignored(self):
        system = small_system()
        system.finalize_static_membership()
        event = system.publish(".t1", publisher_pid=0)
        system.run_until_idle()
        actor = system.group_actor(".t1")
        before = system.tracker.topic_stats(T1).delivered
        message = EventMessage(
            sender=0, event=event, scope=Scope("intra", T1), hops=1
        )
        actor.handle_batch(0, tuple(range(1, 6)), message)
        system.run_until_idle()
        # every target had already seen the event: no new deliveries
        assert system.tracker.topic_stats(T1).delivered == before

    def test_event_state_release(self):
        system = small_system()
        system.finalize_static_membership()
        event = system.publish(".t1")
        system.run_until_idle()
        actor = system.group_actor(".t1")
        assert actor.seen_count(event.event_id) == 50
        actor.release_event_state(event.event_id)
        assert actor.seen_count(event.event_id) == 0
        other = system.publish(".t1")
        system.run_until_idle()
        actor.clear_event_state()
        assert actor.seen_count(other.event_id) == 0

    def test_membership_bytes_accounts_all_columns(self):
        system = small_system()
        system.finalize_static_membership()
        per_group = sum(
            system.group_actor(t).membership_bytes() for t in (".t1", ".t1.t2")
        )
        assert system.membership_bytes() == per_group > 0
