"""Unit tests for the supertopic table (MERGE/CHECK semantics)."""

import random

from repro.core.tables import SuperTopicTable
from repro.membership import ProcessDescriptor
from repro.topics import ROOT, Topic

T1 = Topic.parse(".t1")
T2 = Topic.parse(".t1.t2")


def descs(topic, pids):
    return [ProcessDescriptor(pid, topic) for pid in pids]


RNG = random.Random(0)


class TestAdopt:
    def test_adopt_sets_target(self):
        table = SuperTopicTable(z=3)
        assert table.adopt(T1, descs(T1, [1, 2]), RNG, own_topic=T2)
        assert table.target_topic == T1
        assert len(table) == 2

    def test_adopt_rejects_non_supertopic(self):
        table = SuperTopicTable(z=3)
        sibling = Topic.parse(".other")
        assert not table.adopt(sibling, descs(sibling, [1]), RNG, own_topic=T2)
        assert table.is_empty

    def test_adopt_rejects_own_topic(self):
        table = SuperTopicTable(z=3)
        assert not table.adopt(T2, descs(T2, [1]), RNG, own_topic=T2)

    def test_adopt_filters_wrong_topic_descriptors(self):
        table = SuperTopicTable(z=3)
        mixed = descs(T1, [1]) + descs(ROOT, [9])
        table.adopt(T1, mixed, RNG, own_topic=T2)
        assert table.pids == [1]

    def test_deeper_supertopic_retargets(self):
        table = SuperTopicTable(z=3)
        table.adopt(ROOT, descs(ROOT, [1, 2]), RNG, own_topic=T2)
        assert table.target_topic == ROOT
        table.adopt(T1, descs(T1, [10]), RNG, own_topic=T2)
        assert table.target_topic == T1
        assert table.pids == [10]  # root entries evicted

    def test_shallower_supertopic_ignored(self):
        table = SuperTopicTable(z=3)
        table.adopt(T1, descs(T1, [10]), RNG, own_topic=T2)
        assert not table.adopt(ROOT, descs(ROOT, [1]), RNG, own_topic=T2)
        assert table.target_topic == T1

    def test_same_topic_merges(self):
        table = SuperTopicTable(z=3)
        table.adopt(T1, descs(T1, [1]), RNG, own_topic=T2)
        table.adopt(T1, descs(T1, [2]), RNG, own_topic=T2)
        assert set(table.pids) == {1, 2}

    def test_capacity_z(self):
        table = SuperTopicTable(z=2)
        table.adopt(T1, descs(T1, [1, 2, 3, 4]), RNG, own_topic=T2)
        assert len(table) == 2


class TestMergeFresh:
    def test_replaces_failed_keeps_favorites(self):
        table = SuperTopicTable(z=3)
        table.adopt(T1, descs(T1, [1, 2, 3]), RNG, own_topic=T2)
        admitted = table.merge_fresh([1, 2], descs(T1, [10, 11, 12]))
        assert admitted == 2
        assert 3 in table  # favorite survived
        assert len(table) == 3

    def test_rejects_wrong_topic_fresh(self):
        table = SuperTopicTable(z=3)
        table.adopt(T1, descs(T1, [1]), RNG, own_topic=T2)
        admitted = table.merge_fresh([], descs(ROOT, [9]))
        assert admitted == 0

    def test_on_empty_table_with_no_target(self):
        table = SuperTopicTable(z=3)
        assert table.merge_fresh([], descs(T1, [1])) == 0


class TestCheck:
    def test_check_counts_recent_proofs(self):
        table = SuperTopicTable(z=3)
        table.adopt(T1, descs(T1, [1, 2, 3]), RNG, own_topic=T2)
        table.record_proof_of_life(1, now=10.0)
        table.record_proof_of_life(2, now=5.0)
        assert table.check(now=10.0, timeout=2.0) == 1
        assert table.check(now=10.0, timeout=6.0) == 2

    def test_never_heard_from_is_dead(self):
        table = SuperTopicTable(z=3)
        table.adopt(T1, descs(T1, [1]), RNG, own_topic=T2)
        assert table.check(now=0.0, timeout=100.0) == 0

    def test_proof_for_unknown_pid_ignored(self):
        table = SuperTopicTable(z=3)
        table.adopt(T1, descs(T1, [1]), RNG, own_topic=T2)
        table.record_proof_of_life(99, now=1.0)
        assert table.check(now=1.0, timeout=1.0) == 0

    def test_alive_and_stale_pids(self):
        table = SuperTopicTable(z=3)
        table.adopt(T1, descs(T1, [1, 2]), RNG, own_topic=T2)
        table.record_proof_of_life(1, now=1.0)
        assert table.alive_pids(now=1.0, timeout=1.0) == [1]
        assert table.stale_pids(now=1.0, timeout=1.0) == [2]

    def test_remove_clears_proofs(self):
        table = SuperTopicTable(z=3)
        table.adopt(T1, descs(T1, [1]), RNG, own_topic=T2)
        table.record_proof_of_life(1, now=1.0)
        table.remove(1)
        assert table.check(now=1.0, timeout=10.0) == 0
        assert table.is_empty


class TestQueries:
    def test_targets_direct_super(self):
        table = SuperTopicTable(z=3)
        table.adopt(T1, descs(T1, [1]), RNG, own_topic=T2)
        assert table.targets_direct_super_of(T2)
        assert not table.targets_direct_super_of(Topic.parse(".t1.t2.t3"))

    def test_clear(self):
        table = SuperTopicTable(z=3)
        table.adopt(T1, descs(T1, [1]), RNG, own_topic=T2)
        table.clear()
        assert table.is_empty
        assert table.target_topic is None

    def test_sample(self):
        table = SuperTopicTable(z=3)
        table.adopt(T1, descs(T1, [1, 2, 3]), RNG, own_topic=T2)
        assert len(table.sample(2, RNG)) == 2

    def test_iteration_and_contains(self):
        table = SuperTopicTable(z=3)
        table.adopt(T1, descs(T1, [1, 2]), RNG, own_topic=T2)
        assert {d.pid for d in table} == {1, 2}
        assert 1 in table
        assert 9 not in table
