"""Unit tests for all failure models."""

import random

import pytest

from repro.errors import ConfigError
from repro.failures import (
    AlwaysAlive,
    ChurnSchedule,
    DynamicFailures,
    StillbornFailures,
    sample_stillborn,
)


class TestAlwaysAlive:
    def test_everyone_alive(self):
        model = AlwaysAlive()
        assert model.is_alive(7, 0.0)
        assert model.is_alive(7, 1e9)

    def test_never_blocks(self):
        model = AlwaysAlive()
        assert not model.transmission_blocked(1, 2, 0.0, random.Random(0))


class TestStillborn:
    def test_failed_set(self):
        model = StillbornFailures({1, 2})
        assert not model.is_alive(1, 0.0)
        assert not model.is_alive(2, 100.0)
        assert model.is_alive(3, 0.0)

    def test_never_blocks_transmissions(self):
        model = StillbornFailures({1})
        assert not model.transmission_blocked(0, 1, 0.0, random.Random(0))

    def test_failed_property(self):
        assert StillbornFailures([5, 5, 6]).failed == frozenset({5, 6})


class TestSampleStillborn:
    def test_fraction(self):
        pids = list(range(100))
        model = sample_stillborn(pids, alive_fraction=0.7, rng=random.Random(1))
        assert len(model.failed) == 30

    def test_all_alive(self):
        model = sample_stillborn(range(50), 1.0, random.Random(0))
        assert len(model.failed) == 0

    def test_all_dead(self):
        model = sample_stillborn(range(50), 0.0, random.Random(0))
        assert len(model.failed) == 50

    def test_protected_never_chosen(self):
        pids = list(range(20))
        model = sample_stillborn(
            pids, alive_fraction=0.05, rng=random.Random(2), protected=[3]
        )
        assert 3 not in model.failed

    def test_protection_caps_failures(self):
        model = sample_stillborn(
            [1, 2], alive_fraction=0.0, rng=random.Random(0), protected=[1]
        )
        assert model.failed == frozenset({2})

    def test_deterministic(self):
        a = sample_stillborn(range(100), 0.5, random.Random(9))
        b = sample_stillborn(range(100), 0.5, random.Random(9))
        assert a.failed == b.failed

    def test_invalid_fraction(self):
        with pytest.raises(ConfigError):
            sample_stillborn(range(10), 1.5, random.Random(0))


class TestDynamicFailures:
    def test_ground_truth_always_alive(self):
        model = DynamicFailures(0.9)
        assert model.is_alive(1, 0.0)

    def test_per_attempt_rate(self):
        model = DynamicFailures(0.3, mode="per_attempt")
        rng = random.Random(4)
        blocked = sum(
            model.transmission_blocked(0, 1, 0.0, rng) for _ in range(2000)
        )
        assert 480 <= blocked <= 720  # ~600

    def test_per_attempt_varies_per_call(self):
        model = DynamicFailures(0.5, mode="per_attempt")
        rng = random.Random(0)
        outcomes = {model.transmission_blocked(0, 1, 0.0, rng) for _ in range(50)}
        assert outcomes == {True, False}

    def test_per_pair_is_deterministic(self):
        model = DynamicFailures(0.5, mode="per_pair", seed=3)
        rng = random.Random(0)
        first = model.transmission_blocked(0, 1, 0.0, rng)
        for _ in range(10):
            assert model.transmission_blocked(0, 1, 0.0, rng) == first

    def test_per_pair_differs_across_pairs(self):
        model = DynamicFailures(0.5, mode="per_pair", seed=3)
        rng = random.Random(0)
        outcomes = {
            model.transmission_blocked(s, t, 0.0, rng)
            for s in range(10)
            for t in range(10)
            if s != t
        }
        assert outcomes == {True, False}

    def test_per_pair_rate(self):
        model = DynamicFailures(0.4, mode="per_pair", seed=11)
        rng = random.Random(0)
        blocked = sum(
            model.transmission_blocked(s, t, 0.0, rng)
            for s in range(50)
            for t in range(50)
            if s != t
        )
        total = 50 * 49
        assert 0.3 * total <= blocked <= 0.5 * total

    def test_zero_probability_never_blocks(self):
        model = DynamicFailures(0.0)
        rng = random.Random(0)
        assert not any(
            model.transmission_blocked(0, 1, 0.0, rng) for _ in range(100)
        )

    def test_invalid_probability(self):
        with pytest.raises(ConfigError):
            DynamicFailures(-0.1)

    def test_invalid_mode(self):
        with pytest.raises(ConfigError):
            DynamicFailures(0.5, mode="weird")  # type: ignore[arg-type]


class TestChurnSchedule:
    def test_alive_by_default(self):
        schedule = ChurnSchedule()
        assert schedule.is_alive(1, 0.0)

    def test_crash(self):
        schedule = ChurnSchedule().crash_at(1, 5.0)
        assert schedule.is_alive(1, 4.9)
        assert not schedule.is_alive(1, 5.0)
        assert not schedule.is_alive(1, 100.0)

    def test_crash_and_recover(self):
        schedule = ChurnSchedule().crash_at(1, 5.0).recover_at(1, 10.0)
        assert schedule.is_alive(1, 4.0)
        assert not schedule.is_alive(1, 7.0)
        assert schedule.is_alive(1, 10.0)

    def test_out_of_order_insertion(self):
        schedule = ChurnSchedule().recover_at(1, 10.0).crash_at(1, 5.0)
        assert not schedule.is_alive(1, 7.0)
        assert schedule.is_alive(1, 12.0)

    def test_other_processes_unaffected(self):
        schedule = ChurnSchedule().crash_at(1, 0.0)
        assert schedule.is_alive(2, 0.0)

    def test_crash_at_zero(self):
        schedule = ChurnSchedule().crash_at(1, 0.0)
        assert not schedule.is_alive(1, 0.0)

    def test_never_blocks_transmissions(self):
        schedule = ChurnSchedule().crash_at(1, 0.0)
        assert not schedule.transmission_blocked(0, 1, 0.0, random.Random(0))

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigError):
            ChurnSchedule().crash_at(1, -1.0)

    def test_non_finite_time_rejected(self):
        # A NaN passes `time < 0` and would corrupt the binary-searched
        # timeline (sorting and bisect comparisons on NaN are arbitrary).
        with pytest.raises(ConfigError, match="finite"):
            ChurnSchedule().crash_at(1, float("nan"))
        with pytest.raises(ConfigError, match="finite"):
            ChurnSchedule().recover_at(1, float("inf"))

    def test_random_churn_non_finite_horizon_rejected(self):
        rng = random.Random(0)
        with pytest.raises(ConfigError, match="finite"):
            ChurnSchedule.random_churn(
                range(5), rng, crash_probability=0.5, horizon=float("nan")
            )

    def test_random_churn_bounds(self):
        rng = random.Random(5)
        schedule = ChurnSchedule.random_churn(
            range(100), rng, crash_probability=0.5, horizon=100.0
        )
        crashed_at_end = sum(
            0 if schedule.is_alive(pid, 1000.0) else 1 for pid in range(100)
        )
        # Roughly half crash, and about half of those recover.
        assert 5 <= crashed_at_end <= 50

    def test_random_churn_validation(self):
        rng = random.Random(0)
        with pytest.raises(ConfigError):
            ChurnSchedule.random_churn(range(5), rng, crash_probability=2.0, horizon=10)
        with pytest.raises(ConfigError):
            ChurnSchedule.random_churn(range(5), rng, crash_probability=0.5, horizon=0)
