"""Unit tests for TopicHierarchy and the TopicDag extension."""

import pytest

from repro.errors import HierarchyError, UnknownTopic
from repro.topics import ROOT, Topic, TopicDag, TopicHierarchy


def topic(name: str) -> Topic:
    return Topic.parse(name)


class TestTopicHierarchy:
    def test_empty_hierarchy_contains_root(self):
        h = TopicHierarchy()
        assert ROOT in h
        assert len(h) == 1
        assert h.depth == 0

    def test_add_registers_ancestors(self):
        h = TopicHierarchy()
        h.add(".a.b.c")
        assert topic(".a") in h
        assert topic(".a.b") in h
        assert topic(".a.b.c") in h
        assert len(h) == 4  # root + 3

    def test_add_is_idempotent(self):
        h = TopicHierarchy()
        h.add(".a.b")
        h.add(".a.b")
        assert len(h) == 3

    def test_add_accepts_topic_objects(self):
        h = TopicHierarchy()
        returned = h.add(topic(".x"))
        assert returned == topic(".x")

    def test_from_topics(self):
        h = TopicHierarchy.from_topics([".a.x", ".a.y", topic(".b")])
        assert len(h) == 5  # root, .a, .a.x, .a.y, .b

    def test_children_sorted(self):
        h = TopicHierarchy.from_topics([".a.y", ".a.x"])
        assert h.children(topic(".a")) == [topic(".a.x"), topic(".a.y")]

    def test_children_of_unknown_raises(self):
        h = TopicHierarchy()
        with pytest.raises(UnknownTopic):
            h.children(topic(".missing"))

    def test_super_of(self):
        h = TopicHierarchy.from_topics([".a.b"])
        assert h.super_of(topic(".a.b")) == topic(".a")
        assert h.super_of(ROOT) is None

    def test_subtree(self):
        h = TopicHierarchy.from_topics([".a.x", ".a.y.z", ".b"])
        subtree = h.subtree(topic(".a"))
        assert topic(".a") in subtree
        assert topic(".a.y.z") in subtree
        assert topic(".b") not in subtree

    def test_leaves(self):
        h = TopicHierarchy.from_topics([".a.x", ".a.y", ".b"])
        assert h.leaves() == [topic(".a.x"), topic(".a.y"), topic(".b")]

    def test_level(self):
        h = TopicHierarchy.from_topics([".a.x", ".b"])
        assert h.level(0) == [ROOT]
        assert h.level(1) == [topic(".a"), topic(".b")]
        assert h.level(2) == [topic(".a.x")]

    def test_depth(self):
        h = TopicHierarchy.from_topics([".a.b.c", ".x"])
        assert h.depth == 3

    def test_chain_to_root(self):
        h = TopicHierarchy.from_topics([".a.b"])
        assert h.chain_to_root(topic(".a.b")) == [topic(".a.b"), topic(".a"), ROOT]
        assert h.chain_to_root(ROOT) == [ROOT]

    def test_parents_of(self):
        h = TopicHierarchy.from_topics([".a.b"])
        assert h.parents_of(topic(".a.b")) == [topic(".a")]
        assert h.parents_of(ROOT) == []

    def test_next_including_with(self):
        h = TopicHierarchy.from_topics([".a.b.c"])
        populated = {topic(".a")}
        found = h.next_including_with(topic(".a.b.c"), lambda t: t in populated)
        assert found == topic(".a")

    def test_next_including_with_none_found(self):
        h = TopicHierarchy.from_topics([".a.b"])
        assert h.next_including_with(topic(".a.b"), lambda t: False) is None

    def test_iteration_sorted_root_first(self):
        h = TopicHierarchy.from_topics([".b", ".a"])
        assert list(h)[0] == ROOT

    def test_validate_passes_for_built_tree(self):
        h = TopicHierarchy.from_topics([".a.b.c", ".a.d"])
        h.validate()  # no raise

    def test_validate_detects_corruption(self):
        h = TopicHierarchy.from_topics([".a.b"])
        # Corrupt internals deliberately (white-box).
        del h._children[topic(".a")]
        with pytest.raises(HierarchyError):
            h.validate()

    def test_repr(self):
        h = TopicHierarchy.from_topics([".a"])
        assert "2 topics" in repr(h)


class TestTopicDag:
    def test_add_builds_implicit_chain(self):
        dag = TopicDag()
        dag.add(".a.b")
        assert dag.parents_of(topic(".a.b")) == [topic(".a")]
        assert dag.parents_of(topic(".a")) == [ROOT]

    def test_link_adds_second_parent(self):
        dag = TopicDag()
        dag.add(".sports.football")
        dag.add(".news")
        dag.link(topic(".sports.football"), topic(".news"))
        assert dag.parents_of(topic(".sports.football")) == [
            topic(".news"),
            topic(".sports"),
        ]

    def test_link_unknown_raises(self):
        dag = TopicDag()
        dag.add(".a")
        with pytest.raises(UnknownTopic):
            dag.link(topic(".a"), topic(".missing"))

    def test_link_rejects_cycle(self):
        dag = TopicDag()
        dag.add(".a.b")
        with pytest.raises(HierarchyError):
            dag.link(topic(".a"), topic(".a.b"))  # child above parent

    def test_link_rejects_self(self):
        dag = TopicDag()
        dag.add(".a")
        with pytest.raises(HierarchyError):
            dag.link(topic(".a"), topic(".a"))

    def test_ancestors_follow_all_parents(self):
        dag = TopicDag()
        dag.add(".sports.football")
        dag.add(".news")
        dag.link(topic(".sports.football"), topic(".news"))
        ancestors = dag.ancestors(topic(".sports.football"))
        assert topic(".news") in ancestors
        assert topic(".sports") in ancestors
        assert ROOT in ancestors

    def test_is_ancestor_strict(self):
        dag = TopicDag()
        dag.add(".a.b")
        assert dag.is_ancestor(topic(".a"), topic(".a.b"))
        assert dag.is_ancestor(ROOT, topic(".a.b"))
        assert not dag.is_ancestor(topic(".a.b"), topic(".a.b"))
        assert not dag.is_ancestor(topic(".a.b"), topic(".a"))

    def test_children(self):
        dag = TopicDag()
        dag.add(".a.b")
        dag.add(".a.c")
        assert dag.children(topic(".a")) == [topic(".a.b"), topic(".a.c")]

    def test_from_hierarchy(self):
        h = TopicHierarchy.from_topics([".a.b", ".c"])
        dag = TopicDag.from_hierarchy(h)
        assert len(dag) == len(h)
        assert dag.parents_of(topic(".a.b")) == [topic(".a")]

    def test_unknown_queries_raise(self):
        dag = TopicDag()
        with pytest.raises(UnknownTopic):
            dag.parents_of(topic(".missing"))
        with pytest.raises(UnknownTopic):
            dag.children(topic(".missing"))
        with pytest.raises(UnknownTopic):
            dag.ancestors(topic(".missing"))
