"""Unit tests for the synchronous round scheduler."""

import pytest

from repro.errors import ConfigError
from repro.sim import Engine
from repro.sim.rounds import RoundScheduler


class TestRounds:
    def test_callbacks_fire_per_round(self):
        engine = Engine()
        scheduler = RoundScheduler(engine)
        seen = []
        scheduler.on_round(seen.append)
        scheduler.run_rounds(4)
        assert seen == [1, 2, 3, 4]
        assert scheduler.current_round == 4

    def test_run_rounds_is_incremental(self):
        engine = Engine()
        scheduler = RoundScheduler(engine)
        scheduler.run_rounds(2)
        scheduler.run_rounds(3)
        assert scheduler.current_round == 5

    def test_round_length_scales_time(self):
        engine = Engine()
        scheduler = RoundScheduler(engine, round_length=2.0)
        scheduler.run_rounds(3)
        assert engine.now == pytest.approx(7.0)  # (3 + 0.5) * 2

    def test_max_rounds_stops(self):
        engine = Engine()
        scheduler = RoundScheduler(engine, max_rounds=3)
        seen = []
        scheduler.on_round(seen.append)
        scheduler.start()
        engine.run(until=100.0)
        assert seen == [1, 2, 3]

    def test_stop_halts(self):
        engine = Engine()
        scheduler = RoundScheduler(engine)
        seen = []
        scheduler.on_round(seen.append)
        scheduler.run_rounds(2)
        scheduler.stop()
        engine.run(until=20.0)
        assert seen == [1, 2]

    def test_events_within_round_drain_before_next(self):
        engine = Engine()
        scheduler = RoundScheduler(engine)
        order = []

        def work(round_number):
            order.append(("round", round_number))
            # Zero-latency "message" scheduled within the round.
            engine.schedule(0.0, lambda: order.append(("msg", round_number)))

        scheduler.on_round(work)
        scheduler.run_rounds(2)
        assert order == [
            ("round", 1), ("msg", 1), ("round", 2), ("msg", 2),
        ]

    def test_multiple_callbacks_in_registration_order(self):
        engine = Engine()
        scheduler = RoundScheduler(engine)
        order = []
        scheduler.on_round(lambda r: order.append("a"))
        scheduler.on_round(lambda r: order.append("b"))
        scheduler.run_rounds(1)
        assert order == ["a", "b"]

    def test_start_idempotent(self):
        engine = Engine()
        scheduler = RoundScheduler(engine)
        seen = []
        scheduler.on_round(seen.append)
        scheduler.start()
        scheduler.start()
        engine.run(until=2.5)
        assert seen == [1, 2]

    def test_validation(self):
        engine = Engine()
        with pytest.raises(ConfigError):
            RoundScheduler(engine, round_length=0)
        with pytest.raises(ConfigError):
            RoundScheduler(engine, max_rounds=0)
        with pytest.raises(ConfigError):
            RoundScheduler(engine).run_rounds(-1)
