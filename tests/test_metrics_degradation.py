"""Graceful-degradation metrics on both tracker flavours."""

import pytest

from repro.core.events import Event, EventId
from repro.errors import MetricsError
from repro.metrics import (
    DeliveryTracker,
    StreamingDeliveryTracker,
    WindowPoint,
    degradation_summary,
    delivery_ratio_series,
    time_to_repair,
)
from repro.topics import Topic

T1 = Topic.parse(".t1")
T2 = Topic.parse(".t1.t2")


def event(eid, topic=T2, at=0.0):
    return Event(EventId(0, eid), topic, None, at)


def populate(tracker):
    """Three windows of width 2: healthy, degraded, recovered."""
    # window [0, 2): 2 events, expected 3 each, all delivered
    for eid, at in ((1, 0.0), (2, 1.5)):
        e = event(eid, at=at)
        tracker.record_publish(e, publisher=0, expected=3)
        for pid in (1, 2, 3):
            tracker.record_delivery(pid, e, at + 0.5)
    # window [2, 4): 1 event, expected 3, only 1 delivered (faulted)
    e = event(3, at=2.5)
    tracker.record_publish(e, publisher=0, expected=3)
    tracker.record_delivery(1, e, 3.0)
    # window [4, 6): 1 event on the parent topic, fully delivered — and
    # its delivery arrives *late* (t=9), to pin publish-time attribution
    e = event(4, topic=T1, at=4.0)
    tracker.record_publish(e, publisher=0, expected=2)
    for pid in (1, 2):
        tracker.record_delivery(pid, e, 9.0)
    return tracker


@pytest.fixture(params=["full", "streaming"])
def tracker(request):
    if request.param == "full":
        return populate(DeliveryTracker())
    return populate(StreamingDeliveryTracker(window=2.0))


class TestDeliveryRatioSeries:
    def test_series_shape_and_ratios(self, tracker):
        series = delivery_ratio_series(tracker, window=2.0)
        assert [p.ratio for p in series] == [1.0, pytest.approx(1 / 3), 1.0]
        assert [(p.start, p.end) for p in series] == [
            (0.0, 2.0),
            (2.0, 4.0),
            (4.0, 6.0),
        ]
        assert [p.published for p in series] == [2, 1, 1]
        assert [p.expected for p in series] == [6, 3, 2]
        assert [p.delivered for p in series] == [6, 1, 2]

    def test_full_and_streaming_series_agree(self):
        full = delivery_ratio_series(populate(DeliveryTracker()), window=2.0)
        streaming = delivery_ratio_series(
            populate(StreamingDeliveryTracker(window=2.0))
        )
        assert full == streaming

    def test_late_delivery_attributed_to_publish_window(self, tracker):
        # event 4 published at t=4 but delivered at t=9: still window [4,6)
        series = delivery_ratio_series(tracker, window=2.0)
        assert series[-1].start == 4.0
        assert series[-1].ratio == 1.0

    def test_empty_windows_are_skipped(self):
        t = DeliveryTracker()
        for eid, at in ((1, 0.0), (2, 10.0)):
            t.record_publish(event(eid, at=at), publisher=0, expected=1)
        series = delivery_ratio_series(t, window=1.0)
        assert [p.start for p in series] == [0.0, 10.0]

    def test_events_without_expected_yield_none_ratio(self):
        t = DeliveryTracker()
        e = event(1)
        t.record_publish(e, publisher=0)  # no expected recorded
        t.record_delivery(1, e, 0.5)
        (point,) = delivery_ratio_series(t, window=1.0)
        assert point.ratio is None
        assert point.delivered == 1

    def test_full_tracker_requires_window(self):
        with pytest.raises(MetricsError):
            delivery_ratio_series(DeliveryTracker())

    @pytest.mark.parametrize("bad", [0, -1.0, float("nan"), float("inf"), True])
    def test_window_validation(self, bad):
        with pytest.raises(MetricsError):
            delivery_ratio_series(DeliveryTracker(), window=bad)

    def test_streaming_refuses_to_rebucket(self):
        t = populate(StreamingDeliveryTracker(window=2.0))
        with pytest.raises(MetricsError, match="re-bucket"):
            delivery_ratio_series(t, window=1.0)
        # matching width is fine
        assert delivery_ratio_series(t, window=2.0)

    def test_streaming_without_window_has_no_series(self):
        t = StreamingDeliveryTracker()
        t.record_publish(event(1), publisher=0, expected=1)
        with pytest.raises(MetricsError):
            delivery_ratio_series(t)


class TestTimeToRepair:
    def test_repair_time_is_gap_to_first_healthy_window(self, tracker):
        series = delivery_ratio_series(tracker, window=2.0)
        # fault window [2, 4) closes at 4.0; window starting at 4.0 is
        # healthy again → repair time 0 measured from 4.0, 1.0 from 3.0
        assert time_to_repair(series, after=4.0) == 0.0
        assert time_to_repair(series, after=3.0) == 1.0

    def test_windows_straddling_after_are_skipped(self, tracker):
        series = delivery_ratio_series(tracker, window=2.0)
        # after=1.0 sits inside the healthy [0,2) window, which must be
        # skipped: first eligible window [2,4) is degraded, repair at 4.0
        assert time_to_repair(series, after=1.0) == 3.0

    def test_never_recovers_returns_none(self):
        series = [
            WindowPoint(0.0, 2.0, 1, 3, 1, 1 / 3),
            WindowPoint(2.0, 4.0, 1, 3, 2, 2 / 3),
        ]
        assert time_to_repair(series, after=0.0) is None
        assert time_to_repair(series, after=99.0) is None

    def test_threshold_is_inclusive_and_tunable(self):
        series = [WindowPoint(0.0, 1.0, 1, 4, 3, 0.75)]
        assert time_to_repair(series, after=0.0, threshold=0.75) == 0.0
        assert time_to_repair(series, after=0.0, threshold=0.76) is None

    def test_none_ratio_windows_do_not_count_as_repaired(self):
        series = [WindowPoint(0.0, 1.0, 1, 0, 0, None)]
        assert time_to_repair(series, after=0.0) is None

    @pytest.mark.parametrize("bad", [-0.1, 1.1, float("nan"), True, "0.9"])
    def test_threshold_validation(self, bad):
        with pytest.raises(MetricsError):
            time_to_repair([], after=0.0, threshold=bad)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), None, "3"])
    def test_after_validation(self, bad):
        with pytest.raises(MetricsError):
            time_to_repair([], after=bad)


class TestDegradationSummary:
    def test_per_topic_fractions(self, tracker):
        summary = degradation_summary(tracker)
        assert set(summary) == {T1.name, T2.name}
        assert summary[T2.name] == {
            "published": 3,
            "expected": 9,
            "delivered": 7,
            "delivered_fraction": pytest.approx(7 / 9),
        }
        assert summary[T1.name]["delivered_fraction"] == 1.0

    def test_full_and_streaming_summaries_agree(self):
        full = degradation_summary(populate(DeliveryTracker()))
        streaming = degradation_summary(
            populate(StreamingDeliveryTracker(window=2.0))
        )
        for name in full:
            assert full[name] == pytest.approx(streaming[name])

    def test_no_expected_counts_yield_none_fraction(self):
        t = DeliveryTracker()
        e = event(1)
        t.record_publish(e, publisher=0)
        t.record_delivery(1, e, 0.5)
        summary = degradation_summary(t)
        assert summary[T2.name]["delivered_fraction"] is None

    def test_empty_tracker_gives_empty_summary(self):
        assert degradation_summary(DeliveryTracker()) == {}
        assert degradation_summary(StreamingDeliveryTracker()) == {}
