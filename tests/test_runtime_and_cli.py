"""Tests for the SimulationHarness bundle and the CLI entry points."""

import pytest

from repro.cli import main
from repro.runtime import SimulationHarness


class TestHarness:
    def test_pid_allocation_sequential(self):
        harness = SimulationHarness(seed=0)
        assert [harness.next_pid() for _ in range(3)] == [0, 1, 2]

    def test_run_and_now(self):
        harness = SimulationHarness(seed=0)
        harness.engine.schedule(5.0, lambda: None)
        harness.run_until_idle()
        assert harness.now == 5.0

    def test_is_alive_default(self):
        harness = SimulationHarness(seed=0)
        assert harness.is_alive(0)

    def test_same_seed_same_network_randomness(self):
        a = SimulationHarness(seed=5).rngs.stream("network").random()
        b = SimulationHarness(seed=5).rngs.stream("network").random()
        assert a == b

    def test_trace_disabled_by_default(self):
        harness = SimulationHarness(seed=0)
        assert not harness.trace.enabled
        assert SimulationHarness(seed=0, trace=True).trace.enabled


class TestCli:
    def test_analysis_command(self, capsys):
        assert main(["analysis"]) == 0
        out = capsys.readouterr().out
        assert "Message complexity" in out
        assert "daMulticast" in out
        assert "hierarchical (c)" in out

    def test_tuning_command(self, capsys):
        assert main(["tuning", "--c", "1.0", "--pit", "0.999"]) == 0
        out = capsys.readouterr().out
        assert "multicast" in out
        assert "z_bound" in out

    def test_fig9_small(self, capsys):
        code = main([
            "fig9",
            "--runs", "1",
            "--grid", "1.0",
            "--sizes", "3", "8", "20",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 9" in out
        assert "T2->T1" in out

    def test_fig10_small(self, capsys):
        code = main([
            "fig10",
            "--runs", "1",
            "--grid", "0.5", "1.0",
            "--sizes", "3", "8", "20",
        ])
        assert code == 0
        assert "recv_T2" in capsys.readouterr().out

    def test_compare_small(self, capsys):
        code = main(["compare", "--runs", "1", "--sizes", "3", "8", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "broadcast (a)" in out
        assert "parasites" in out

    def test_ablate_g_small(self, capsys):
        code = main(["ablate-g", "--runs", "1", "--values", "1", "5"])
        assert code == 0
        assert "recv_root" in capsys.readouterr().out

    def test_scale_s_small(self, capsys):
        code = main(["scale-s", "--runs", "1", "--values", "30", "60"])
        assert code == 0
        assert "normalized" in capsys.readouterr().out

    def test_scale_t_small(self, capsys):
        code = main(
            ["scale-t", "--runs", "1", "--values", "1", "2", "--level-size", "20"]
        )
        assert code == 0
        assert "per_level" in capsys.readouterr().out

    def test_stream_small(self, capsys):
        code = main(["stream", "--runs", "1", "--rates", "0.1"])
        assert code == 0
        assert "messages_per_event" in capsys.readouterr().out

    def test_jobs_flag_top_level_identical_output(self, capsys):
        args = ["fig10", "--runs", "2", "--grid", "0.5", "1.0",
                "--sizes", "3", "8", "20"]
        assert main(args) == 0
        serial = capsys.readouterr().out
        assert main(["--jobs", "2", *args]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_jobs_flag_subcommand_position(self, capsys):
        code = main([
            "fig9", "--jobs", "2",
            "--runs", "2", "--grid", "0.5", "1.0",
            "--sizes", "3", "8", "20",
        ])
        assert code == 0
        assert "T2->T1" in capsys.readouterr().out

    def test_progress_flag_reports_points(self, capsys):
        code = main([
            "--progress", "fig10",
            "--runs", "1", "--grid", "1.0", "--sizes", "3", "8", "20",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "[1/1]" in captured.err
        assert "recv_T2" in captured.out

    def test_progress_flag_subcommand_position(self, capsys):
        code = main([
            "fig10", "--runs", "1", "--grid", "1.0",
            "--sizes", "3", "8", "20", "--progress",
        ])
        assert code == 0
        assert "[1/1]" in capsys.readouterr().err

    def test_progress_flag_non_figure_commands(self, capsys):
        # --progress must report on every sweep subcommand, not just
        # the figure ones.
        assert main(["--progress", "stream", "--runs", "1",
                     "--rates", "0.1", "0.3"]) == 0
        assert "[2/2]" in capsys.readouterr().err
        assert main(["--progress", "compare", "--runs", "2",
                     "--sizes", "3", "8", "20"]) == 0
        assert "[2/2]" in capsys.readouterr().err
        assert main(["--progress", "ablate-c", "--runs", "1",
                     "--values", "0", "5"]) == 0
        assert "[2/2]" in capsys.readouterr().err

    def test_stream_jobs_identical_output(self, capsys):
        args = ["stream", "--runs", "2", "--rates", "0.1", "0.3"]
        assert main(args) == 0
        serial = capsys.readouterr().out
        assert main([*args, "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_compare_jobs_identical_output(self, capsys):
        args = ["compare", "--runs", "2", "--sizes", "3", "8", "20"]
        assert main(args) == 0
        serial = capsys.readouterr().out
        assert main(["--jobs", "2", *args]) == 0
        assert capsys.readouterr().out == serial

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["not-a-command"])

    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])
