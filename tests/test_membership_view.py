"""Unit tests for PartialView and ProcessDescriptor."""

import random

import pytest

from repro.errors import ConfigError, MembershipError
from repro.membership import PartialView, ProcessDescriptor
from repro.topics import Topic

T = Topic.parse(".t")


def desc(pid: int) -> ProcessDescriptor:
    return ProcessDescriptor(pid, T)


class TestAdd:
    def test_add_and_contains(self):
        view = PartialView(4)
        assert view.add(desc(1))
        assert 1 in view
        assert len(view) == 1

    def test_duplicate_add_is_noop(self):
        view = PartialView(4)
        view.add(desc(1))
        view.add(desc(1))
        assert len(view) == 1

    def test_overflow_evicts_uniformly(self):
        rng = random.Random(0)
        view = PartialView(3)
        for pid in range(10):
            view.add(desc(pid), rng)
        assert len(view) == 3

    def test_overflow_without_rng_raises(self):
        view = PartialView(1)
        view.add(desc(1))
        with pytest.raises(MembershipError):
            view.add(desc(2))

    def test_add_returns_false_if_self_evicted(self):
        # With capacity 1, adding repeatedly: sometimes the newcomer itself
        # is evicted. Exercise both outcomes over many trials.
        rng = random.Random(1)
        outcomes = set()
        for trial in range(50):
            view = PartialView(1)
            view.add(desc(0), rng)
            outcomes.add(view.add(desc(trial + 1), rng))
        assert outcomes == {True, False}

    def test_capacity_validation(self):
        with pytest.raises(ConfigError):
            PartialView(0)


class TestMergeRemove:
    def test_merge_counts_new(self):
        view = PartialView(10)
        view.add(desc(1))
        added = view.merge([desc(1), desc(2), desc(3)])
        assert added == 2
        assert len(view) == 3

    def test_remove(self):
        view = PartialView(4)
        view.add(desc(1))
        assert view.remove(1)
        assert not view.remove(1)
        assert 1 not in view

    def test_replace_drops_stale_and_fills(self):
        view = PartialView(3)
        for pid in (1, 2, 3):
            view.add(desc(pid))
        admitted = view.replace([1, 2], [desc(10), desc(11), desc(12)])
        assert admitted == 2  # only freed capacity is filled
        assert 3 in view  # favorite kept
        assert len(view) == 3

    def test_replace_does_not_duplicate(self):
        view = PartialView(3)
        view.add(desc(1))
        admitted = view.replace([], [desc(1), desc(2)])
        assert admitted == 1

    def test_clear(self):
        view = PartialView(3)
        view.add(desc(1))
        view.clear()
        assert len(view) == 0

    def test_set_capacity_grow_keeps_entries(self):
        view = PartialView(2)
        view.add(desc(1))
        view.add(desc(2))
        view.set_capacity(5)
        assert view.capacity == 5
        assert sorted(view.pids) == [1, 2]

    def test_set_capacity_shrink_evicts(self):
        rng = random.Random(0)
        view = PartialView(5)
        for pid in range(5):
            view.add(desc(pid))
        view.set_capacity(2, rng)
        assert view.capacity == 2
        assert len(view) == 2

    def test_set_capacity_shrink_without_rng_raises(self):
        view = PartialView(3)
        for pid in range(3):
            view.add(desc(pid))
        with pytest.raises(MembershipError):
            view.set_capacity(1)

    def test_set_capacity_validation(self):
        with pytest.raises(ConfigError):
            PartialView(2).set_capacity(0)


class TestQueries:
    def test_insertion_order_preserved(self):
        view = PartialView(5)
        for pid in (3, 1, 2):
            view.add(desc(pid))
        assert view.pids == [3, 1, 2]
        assert [d.pid for d in view.descriptors()] == [3, 1, 2]

    def test_is_full(self):
        view = PartialView(2)
        view.add(desc(1))
        assert not view.is_full
        view.add(desc(2))
        assert view.is_full

    def test_sample_size_and_exclusion(self):
        rng = random.Random(0)
        view = PartialView(10)
        for pid in range(10):
            view.add(desc(pid))
        sample = view.sample(4, rng, exclude=[0, 1])
        assert len(sample) == 4
        assert all(d.pid not in (0, 1) for d in sample)

    def test_sample_more_than_available(self):
        rng = random.Random(0)
        view = PartialView(10)
        view.add(desc(1))
        assert len(view.sample(5, rng)) == 1

    def test_sample_negative_raises(self):
        with pytest.raises(ConfigError):
            PartialView(2).sample(-1, random.Random(0))

    def test_sample_distinct(self):
        rng = random.Random(0)
        view = PartialView(10)
        for pid in range(10):
            view.add(desc(pid))
        sample = view.sample(10, rng)
        assert len({d.pid for d in sample}) == 10

    def test_iteration_snapshot_safe(self):
        view = PartialView(5)
        for pid in range(3):
            view.add(desc(pid))
        for descriptor in view:
            view.remove(descriptor.pid)  # must not blow up mid-iteration
        assert len(view) == 0


class TestInstall:
    def test_install_replaces_content(self):
        view = PartialView(5)
        view.add(desc(99))
        view.install([desc(1), desc(2), desc(3)])
        assert view.pids == [1, 2, 3]
        assert 99 not in view

    def test_install_preserves_order(self):
        view = PartialView(5)
        view.install([desc(3), desc(1), desc(2)])
        assert view.pids == [3, 1, 2]
        assert [d.pid for d in view.descriptors()] == [3, 1, 2]

    def test_install_at_exact_capacity(self):
        view = PartialView(3)
        view.install([desc(1), desc(2), desc(3)])
        assert view.is_full

    def test_install_over_capacity_raises(self):
        view = PartialView(2)
        with pytest.raises(MembershipError):
            view.install([desc(1), desc(2), desc(3)])

    def test_mutation_after_install_keeps_eviction_uniform(self):
        # install leaves the pid list lazy; a later overflow must still
        # evict with a single uniform draw over the *current* entries.
        rng = random.Random(0)
        view = PartialView(3)
        view.install([desc(1), desc(2), desc(3)])
        view.add(desc(4), rng)
        assert len(view) == 3
        view.remove(view.pids[0])
        assert len(view) == 2

    def test_install_matches_incremental_adds(self):
        incremental = PartialView(4)
        for pid in (5, 6, 7):
            incremental.add(desc(pid))
        bulk = PartialView(4)
        bulk.install([desc(5), desc(6), desc(7)])
        assert bulk.pids == incremental.pids
        assert bulk.descriptors() == incremental.descriptors()


class TestDescriptorCache:
    def test_descriptors_cached_between_calls(self):
        view = PartialView(5)
        view.add(desc(1))
        view.add(desc(2))
        first = view.descriptors()
        assert view.descriptors() is first  # served from cache

    def test_cache_invalidated_by_each_mutator(self):
        rng = random.Random(0)
        mutations = [
            lambda v: v.add(desc(50), rng),
            lambda v: v.remove(2),
            lambda v: v.merge([desc(60), desc(61)], rng),
            lambda v: v.replace([1], [desc(70)], rng),
            lambda v: v.install([desc(80), desc(81)]),
            lambda v: v.clear(),
        ]
        for mutate in mutations:
            view = PartialView(10)
            for pid in (1, 2, 3):
                view.add(desc(pid))
            before = view.descriptors()
            mutate(view)
            after = view.descriptors()
            assert after == tuple(view._entries.values())
            assert after != before

    def test_eviction_invalidates_cache(self):
        rng = random.Random(3)
        view = PartialView(2)
        view.add(desc(1), rng)
        view.add(desc(2), rng)
        view.descriptors()
        view.add(desc(3), rng)  # overflow -> eviction
        assert len(view.descriptors()) == 2
        assert view.descriptors() == tuple(view._entries.values())

    def test_shrink_invalidates_cache(self):
        rng = random.Random(3)
        view = PartialView(4)
        for pid in range(4):
            view.add(desc(pid))
        view.descriptors()
        view.set_capacity(2, rng)
        assert len(view.descriptors()) == 2
        assert view.descriptors() == tuple(view._entries.values())

    def test_sample_fast_path_when_excluded_absent(self):
        # exclude=(own pid,) with the pid not in the view must not disturb
        # the sampled outcome vs an explicit candidates list.
        view = PartialView(10)
        for pid in range(10):
            view.add(desc(pid))
        r1, r2 = random.Random(7), random.Random(7)
        fast = view.sample(4, r1, exclude=(999,))
        explicit = r2.sample(list(view.descriptors()), 4)
        assert fast == explicit
        assert r1.getstate() == r2.getstate()

    def test_sample_returns_fresh_list(self):
        view = PartialView(5)
        view.add(desc(1))
        got = view.sample(5, random.Random(0), exclude=(42,))
        got.append(desc(2))  # caller may mutate the result freely
        assert len(view) == 1
        assert view.sample(5, random.Random(0)) == [desc(1)]

    def test_sample_with_generator_exclude(self):
        view = PartialView(5)
        for pid in range(5):
            view.add(desc(pid))
        got = view.sample(5, random.Random(0), exclude=(p for p in (0, 1)))
        assert sorted(d.pid for d in got) == [2, 3, 4]


class TestDescriptor:
    def test_ordering(self):
        a = ProcessDescriptor(1, T)
        b = ProcessDescriptor(2, T)
        assert a < b

    def test_equality_and_hash(self):
        assert desc(1) == desc(1)
        assert len({desc(1), desc(1)}) == 1
