"""Unit tests for PartialView and ProcessDescriptor."""

import random

import pytest

from repro.errors import ConfigError, MembershipError
from repro.membership import PartialView, ProcessDescriptor
from repro.topics import Topic

T = Topic.parse(".t")


def desc(pid: int) -> ProcessDescriptor:
    return ProcessDescriptor(pid, T)


class TestAdd:
    def test_add_and_contains(self):
        view = PartialView(4)
        assert view.add(desc(1))
        assert 1 in view
        assert len(view) == 1

    def test_duplicate_add_is_noop(self):
        view = PartialView(4)
        view.add(desc(1))
        view.add(desc(1))
        assert len(view) == 1

    def test_overflow_evicts_uniformly(self):
        rng = random.Random(0)
        view = PartialView(3)
        for pid in range(10):
            view.add(desc(pid), rng)
        assert len(view) == 3

    def test_overflow_without_rng_raises(self):
        view = PartialView(1)
        view.add(desc(1))
        with pytest.raises(MembershipError):
            view.add(desc(2))

    def test_add_returns_false_if_self_evicted(self):
        # With capacity 1, adding repeatedly: sometimes the newcomer itself
        # is evicted. Exercise both outcomes over many trials.
        rng = random.Random(1)
        outcomes = set()
        for trial in range(50):
            view = PartialView(1)
            view.add(desc(0), rng)
            outcomes.add(view.add(desc(trial + 1), rng))
        assert outcomes == {True, False}

    def test_capacity_validation(self):
        with pytest.raises(ConfigError):
            PartialView(0)


class TestMergeRemove:
    def test_merge_counts_new(self):
        view = PartialView(10)
        view.add(desc(1))
        added = view.merge([desc(1), desc(2), desc(3)])
        assert added == 2
        assert len(view) == 3

    def test_remove(self):
        view = PartialView(4)
        view.add(desc(1))
        assert view.remove(1)
        assert not view.remove(1)
        assert 1 not in view

    def test_replace_drops_stale_and_fills(self):
        view = PartialView(3)
        for pid in (1, 2, 3):
            view.add(desc(pid))
        admitted = view.replace([1, 2], [desc(10), desc(11), desc(12)])
        assert admitted == 2  # only freed capacity is filled
        assert 3 in view  # favorite kept
        assert len(view) == 3

    def test_replace_does_not_duplicate(self):
        view = PartialView(3)
        view.add(desc(1))
        admitted = view.replace([], [desc(1), desc(2)])
        assert admitted == 1

    def test_clear(self):
        view = PartialView(3)
        view.add(desc(1))
        view.clear()
        assert len(view) == 0

    def test_set_capacity_grow_keeps_entries(self):
        view = PartialView(2)
        view.add(desc(1))
        view.add(desc(2))
        view.set_capacity(5)
        assert view.capacity == 5
        assert sorted(view.pids) == [1, 2]

    def test_set_capacity_shrink_evicts(self):
        rng = random.Random(0)
        view = PartialView(5)
        for pid in range(5):
            view.add(desc(pid))
        view.set_capacity(2, rng)
        assert view.capacity == 2
        assert len(view) == 2

    def test_set_capacity_shrink_without_rng_raises(self):
        view = PartialView(3)
        for pid in range(3):
            view.add(desc(pid))
        with pytest.raises(MembershipError):
            view.set_capacity(1)

    def test_set_capacity_validation(self):
        with pytest.raises(ConfigError):
            PartialView(2).set_capacity(0)


class TestQueries:
    def test_insertion_order_preserved(self):
        view = PartialView(5)
        for pid in (3, 1, 2):
            view.add(desc(pid))
        assert view.pids == [3, 1, 2]
        assert [d.pid for d in view.descriptors()] == [3, 1, 2]

    def test_is_full(self):
        view = PartialView(2)
        view.add(desc(1))
        assert not view.is_full
        view.add(desc(2))
        assert view.is_full

    def test_sample_size_and_exclusion(self):
        rng = random.Random(0)
        view = PartialView(10)
        for pid in range(10):
            view.add(desc(pid))
        sample = view.sample(4, rng, exclude=[0, 1])
        assert len(sample) == 4
        assert all(d.pid not in (0, 1) for d in sample)

    def test_sample_more_than_available(self):
        rng = random.Random(0)
        view = PartialView(10)
        view.add(desc(1))
        assert len(view.sample(5, rng)) == 1

    def test_sample_negative_raises(self):
        with pytest.raises(ConfigError):
            PartialView(2).sample(-1, random.Random(0))

    def test_sample_distinct(self):
        rng = random.Random(0)
        view = PartialView(10)
        for pid in range(10):
            view.add(desc(pid))
        sample = view.sample(10, rng)
        assert len({d.pid for d in sample}) == 10

    def test_iteration_snapshot_safe(self):
        view = PartialView(5)
        for pid in range(3):
            view.add(desc(pid))
        for descriptor in view:
            view.remove(descriptor.pid)  # must not blow up mid-iteration
        assert len(view) == 0


class TestDescriptor:
    def test_ordering(self):
        a = ProcessDescriptor(1, T)
        b = ProcessDescriptor(2, T)
        assert a < b

    def test_equality_and_hash(self):
        assert desc(1) == desc(1)
        assert len({desc(1), desc(1)}) == 1
