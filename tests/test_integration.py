"""Cross-module integration tests.

Scenarios the unit tests don't reach: latency interacting with the
protocol, partitions healing, deep chains, branching hierarchies,
multi-event workload replay, and long dynamic runs under churn.
"""

import random

import pytest

from repro.core import DaMulticastConfig, DaMulticastSystem, TopicParams
from repro.failures import ChurnSchedule
from repro.net import StaticPartition, UniformLatency
from repro.topics import ROOT, Topic
from repro.topics.builders import balanced_tree, chain
from repro.workloads import PoissonSchedule, burst_schedule, replay_on

T1 = Topic.parse(".t1")
T2 = Topic.parse(".t1.t2")


class TestLatency:
    def test_dissemination_takes_time_under_latency(self):
        system = DaMulticastSystem(
            seed=0, mode="static", latency=UniformLatency(0.5, 1.5)
        )
        system.add_group(ROOT, 3)
        system.add_group(T1, 10)
        system.add_group(T2, 30)
        system.finalize_static_membership()
        event = system.publish(T2)
        # Immediately after publishing, only direct recipients can have it.
        system.run(until=0.4)
        early = system.tracker.delivery_count(event.event_id)
        system.run_until_idle()
        final = system.tracker.delivery_count(event.event_id)
        assert early < final
        assert final >= 40  # nearly everyone

    def test_delivery_times_reflect_hop_latency(self):
        system = DaMulticastSystem(
            seed=1, mode="static", latency=UniformLatency(1.0, 1.0)
        )
        system.add_group(T2, 30)
        system.finalize_static_membership()
        event = system.publish(T2)
        system.run_until_idle()
        times = system.tracker.delivery_times(event.event_id)
        # First-hop recipients at t=1, deeper ones strictly later.
        assert min(t for t in times if t > 0) == pytest.approx(1.0)
        assert max(times) > 1.0


class TestPartitions:
    def test_partition_blocks_then_heals(self):
        system = DaMulticastSystem(seed=2, mode="static")
        system.add_group(T2, 20)
        system.finalize_static_membership()
        pids = system.group_pids(T2)
        island_a = pids[:10]
        island_b = pids[10:]
        system.network.partition_model = StaticPartition(
            [island_a, island_b], heals_at=50.0
        )
        publisher = system.process(island_a[0])
        event = system.publish(T2, publisher=publisher)
        system.run_until_idle()
        # Nothing crossed the partition.
        for pid in island_b:
            assert not system.tracker.received_by(event.event_id, pid)
        # After healing, a new publication reaches everyone.
        system.engine.schedule_at(60.0, lambda: None)
        system.run(until=60.0)
        second = system.publish(T2, publisher=publisher)
        system.run_until_idle()
        assert system.delivered_fraction(second, T2) == 1.0


class TestDeepChains:
    def test_event_climbs_six_levels(self):
        topics = chain(5, prefix="deep")
        system = DaMulticastSystem(
            seed=3,
            mode="static",
            config=DaMulticastConfig(
                default_params=TopicParams(g=10, a=2, z=2, c=4)
            ),
        )
        for topic in topics:
            system.add_group(topic, 12)
        system.finalize_static_membership()
        event = system.publish(topics[-1])
        system.run_until_idle()
        for topic in topics:
            assert system.delivered_fraction(event, topic) >= 0.9
        # Exactly 5 inter-group edges were used, one per level.
        assert len(system.stats.inter_group_sent) == 5


class TestBranchingHierarchies:
    def test_sibling_branches_isolated(self):
        hierarchy = balanced_tree(arity=2, depth=2)
        system = DaMulticastSystem(seed=4, mode="static")
        for topic in hierarchy.topics:
            system.add_group(topic, 8)
        system.finalize_static_membership()
        leaves = hierarchy.leaves()
        event = system.publish(leaves[0])
        system.run_until_idle()
        # The publication branch and its ancestors receive...
        assert system.delivered_fraction(event, leaves[0]) == 1.0
        assert (
            system.delivered_fraction(event, leaves[0].super_topic) == 1.0
        )
        assert system.delivered_fraction(event, ROOT) == 1.0
        # ...while every other leaf's branch stays silent.
        for other in leaves[1:]:
            assert system.delivered_fraction(event, other) == 0.0

    def test_supertopic_with_many_children_serves_all(self):
        hierarchy = balanced_tree(arity=3, depth=1)
        system = DaMulticastSystem(seed=5, mode="static")
        system.add_group(ROOT, 6)
        for leaf in hierarchy.leaves():
            system.add_group(leaf, 10)
        system.finalize_static_membership()
        for leaf in hierarchy.leaves():
            event = system.publish(leaf)
            system.run_until_idle()
            assert system.delivered_fraction(event, ROOT) == 1.0


class TestWorkloadReplay:
    def test_burst_replay_delivers_every_event(self):
        system = DaMulticastSystem(seed=6, mode="static")
        system.add_group(T2, 25)
        system.finalize_static_membership()
        schedule = burst_schedule(T2, count=5, start=1.0, spacing=2.0)
        published = replay_on(system, schedule)
        system.run_until_idle()
        assert len(published) == 5
        for event in published:
            assert system.delivered_fraction(event, T2) == 1.0

    def test_poisson_replay_on_multiple_topics(self):
        system = DaMulticastSystem(seed=7, mode="static")
        system.add_group(ROOT, 3)
        system.add_group(T1, 10)
        system.add_group(T2, 20)
        system.finalize_static_membership()
        schedule = PoissonSchedule([T1, T2], rate=0.5, horizon=20.0)
        publications = schedule.generate(random.Random(7))
        published = replay_on(system, publications)
        system.run_until_idle()
        assert len(published) == len(publications)
        # Events were deduplicated per process: deliveries per event are
        # bounded by the interested population.
        for event in published:
            interested = [
                p
                for p in system.processes
                if p.topic.includes(event.topic)
            ]
            assert system.tracker.delivery_count(event.event_id) <= len(
                interested
            )


class TestLongRunChurn:
    def test_dynamic_system_survives_continuous_churn(self):
        churn = ChurnSchedule.random_churn(
            range(40),
            random.Random(8),
            crash_probability=0.4,
            horizon=80.0,
            recover_probability=0.7,
        )
        system = DaMulticastSystem(
            seed=8,
            mode="dynamic",
            failure_model=churn,
            config=DaMulticastConfig(
                default_params=TopicParams(g=20, c=4),
                maintain_interval=1.0,
                ping_timeout=0.5,
            ),
        )
        system.add_group(ROOT, 5)
        system.add_group(T1, 12)
        system.add_group(T2, 23)
        system.run(until=100.0)
        # After churn settles, an alive T2 member can still publish and
        # reach a majority of alive subscribers.
        alive_t2 = [
            p for p in system.group(T2) if system.harness.is_alive(p.pid)
        ]
        assert alive_t2
        event = system.publish(T2, publisher=alive_t2[0])
        system.run(until=140.0)
        assert system.delivered_fraction(event, T2) >= 0.5
