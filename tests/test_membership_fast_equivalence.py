"""Reference-vs-fast equivalence for the static membership build context.

The fast paths (:class:`~repro.membership.static.GroupTableBuilder`,
:class:`~repro.membership.static.GroupSampler`) must be *draw-for-draw*
identical to the historical per-member implementations kept as
``_reference_draw_topic_table`` / ``_reference_draw_super_table``:
identical view contents in identical insertion order, **and** an identical
RNG end-state (so everything drawn afterwards in a simulation is unchanged
— the property the golden trajectory tests rely on).

The equivalence rests on ``random.Random.sample`` being purely positional
(its draws depend only on ``(len(population), k)``) and on the fast paths
mirroring its internal pool-vs-selection-set branch point; the strategies
below deliberately straddle that threshold (population sizes from tiny to
several hundred, capacities from 1 to 64).
"""

import random

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.membership.static import (
    GroupSampler,
    GroupTableBuilder,
    _reference_draw_super_table,
    _reference_draw_topic_table,
    draw_super_table,
    draw_topic_table,
)
from repro.membership.view import ProcessDescriptor
from repro.topics.topic import Topic

T = Topic.parse(".eq")


def group_of(n: int) -> list[ProcessDescriptor]:
    # Non-contiguous pids so positional and pid-based indexing can't be
    # accidentally conflated.
    return [ProcessDescriptor(3 * i + 7, T) for i in range(n)]


@given(
    n=st.integers(min_value=1, max_value=400),
    capacity=st.integers(min_value=1, max_value=64),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=150, deadline=None)
def test_topic_table_builder_matches_reference(n, capacity, seed):
    group = group_of(n)
    ref_rng = random.Random(seed)
    fast_rng = random.Random(seed)
    builder = GroupTableBuilder(group)
    for index, member in enumerate(group):
        ref = _reference_draw_topic_table(member, group, capacity, ref_rng)
        fast = builder.table_at(index, capacity, fast_rng)
        assert fast.pids == ref.pids
        assert fast.descriptors() == ref.descriptors()
        assert fast.capacity == ref.capacity
    assert fast_rng.getstate() == ref_rng.getstate()


@given(
    n=st.integers(min_value=1, max_value=400),
    capacity=st.integers(min_value=1, max_value=64),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    indices=st.lists(st.integers(min_value=0, max_value=10**6), max_size=8),
)
@settings(max_examples=100, deadline=None)
def test_builder_out_of_order_access_matches_reference(n, capacity, seed, indices):
    """table_at need not be called in ascending order to stay identical."""
    group = group_of(n)
    visit = [i % n for i in indices]
    ref_rng = random.Random(seed)
    fast_rng = random.Random(seed)
    builder = GroupTableBuilder(group)
    for index in visit:
        ref = _reference_draw_topic_table(group[index], group, capacity, ref_rng)
        fast = builder.table_at(index, capacity, fast_rng)
        assert fast.pids == ref.pids
    assert fast_rng.getstate() == ref_rng.getstate()


@given(
    n=st.integers(min_value=1, max_value=400),
    z=st.integers(min_value=0, max_value=64),
    members=st.integers(min_value=1, max_value=20),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=150, deadline=None)
def test_group_sampler_matches_reference(n, z, members, seed):
    """Repeated z-draws from one shared supergroup list match the
    historical copy-the-population-per-member code, draw for draw."""
    super_group = group_of(n)
    ref_rng = random.Random(seed)
    fast_rng = random.Random(seed)
    sampler = GroupSampler(super_group)
    for _ in range(members):
        ref = _reference_draw_super_table(super_group, z, ref_rng)
        fast = sampler.table(z, fast_rng)
        assert fast.pids == ref.pids
        assert fast.capacity == ref.capacity
    assert fast_rng.getstate() == ref_rng.getstate()


@given(
    n=st.integers(min_value=1, max_value=200),
    capacity=st.integers(min_value=1, max_value=48),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=100, deadline=None)
def test_public_wrappers_match_reference(n, capacity, seed):
    group = group_of(n)
    member = group[n // 2]
    r1, r2 = random.Random(seed), random.Random(seed)
    assert (
        draw_topic_table(member, group, capacity, r1).pids
        == _reference_draw_topic_table(member, group, capacity, r2).pids
    )
    assert r1.getstate() == r2.getstate()
    r1, r2 = random.Random(seed ^ 1), random.Random(seed ^ 1)
    assert (
        draw_super_table(group, capacity, r1).pids
        == _reference_draw_super_table(group, capacity, r2).pids
    )
    assert r1.getstate() == r2.getstate()


@given(
    pids=st.lists(
        st.integers(min_value=0, max_value=30), min_size=2, max_size=60
    ),
    capacity=st.integers(min_value=1, max_value=16),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=100, deadline=None)
def test_duplicate_pids_match_reference(pids, capacity, seed):
    """A group repeating a pid keeps the historical every-occurrence
    exclusion semantics (the builder falls back to the reference filter)."""
    group = [ProcessDescriptor(pid, T) for pid in pids]
    member = group[len(group) // 2]
    r1, r2 = random.Random(seed), random.Random(seed)
    ref = _reference_draw_topic_table(member, group, capacity, r1)
    fast = GroupTableBuilder(group).table_for(member, capacity, r2)
    assert fast.pids == ref.pids
    assert r1.getstate() == r2.getstate()


@given(
    n=st.integers(min_value=2, max_value=200),
    capacity=st.integers(min_value=1, max_value=48),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=100, deadline=None)
def test_outsider_member_matches_reference(n, capacity, seed):
    """A member whose pid is not in the group (the naive-publisher
    supergroup-table case) samples the full population identically."""
    group = group_of(n)
    outsider = ProcessDescriptor(10**9, T)
    r1, r2 = random.Random(seed), random.Random(seed)
    ref = _reference_draw_topic_table(outsider, group, capacity, r1)
    fast = GroupTableBuilder(group).table_for(outsider, capacity, r2)
    assert fast.pids == ref.pids
    assert r1.getstate() == r2.getstate()
