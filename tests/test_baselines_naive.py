"""Tests for the §IV-A naive pattern-(2) comparator."""

import pytest

from repro.baselines import NaivePublisherSystem
from repro.errors import ConfigError
from repro.topics import ROOT, Topic

T1 = Topic.parse(".t1")
T2 = Topic.parse(".t1.t2")
SIZES = {ROOT: 4, T1: 12, T2: 40}


def populate(system):
    for topic, count in SIZES.items():
        system.add_group(topic, count)
    system.finalize_membership()
    return system


class TestStructure:
    def test_publisher_holds_table_per_level(self):
        system = populate(NaivePublisherSystem(seed=0))
        t2_process = system.subscribers_of(T2)[0]
        assert t2_process.table_count == 3  # own + T1 + root
        root_process = system.subscribers_of(ROOT)[0]
        assert root_process.table_count == 1

    def test_groups_hold_direct_subscribers_only(self):
        system = populate(NaivePublisherSystem(seed=0))
        # A root subscriber never appears in a T2 subscriber's T2 table.
        root_pids = {p.pid for p in system.subscribers_of(ROOT)}
        for process in system.subscribers_of(T2):
            t2_view = process.groups[T2].view
            assert root_pids.isdisjoint(set(t2_view.pids))

    def test_empty_supertopic_skipped(self):
        system = NaivePublisherSystem(seed=0)
        system.add_group(ROOT, 3)
        system.add_group(T2, 10)  # T1 unpopulated
        system.finalize_membership()
        process = system.subscribers_of(T2)[0]
        assert T1 not in process.groups
        assert ROOT in process.groups


class TestDissemination:
    def test_event_reaches_all_interested(self):
        system = populate(NaivePublisherSystem(seed=1))
        event = system.publish(T2)
        system.run_until_idle()
        interested = {p.pid for p in system.interested_in(T2)}
        receivers = set(system.tracker.receivers(event.event_id))
        assert receivers == interested

    def test_no_parasites(self):
        system = populate(NaivePublisherSystem(seed=1))
        system.publish(T2)
        system.publish(T1)
        system.run_until_idle()
        assert system.parasite_count() == 0

    def test_publisher_carries_all_levels(self):
        system = populate(NaivePublisherSystem(seed=2, p_success=1.0))
        publisher = system.subscribers_of(T2)[0]
        system.publish(T2, publisher=publisher)
        system.run_until_idle()
        load = system.stats.sender_load(publisher.pid)
        # The publisher alone pays >= one fan-out per populated level.
        per_level = [
            min(system.fanout(SIZES[t]), system.table_capacity(SIZES[t]))
            for t in (ROOT, T1, T2)
        ]
        assert load >= sum(per_level) - 3  # small-table slack

    def test_non_publishers_stay_cheap(self):
        system = populate(NaivePublisherSystem(seed=3, p_success=1.0))
        publisher = system.subscribers_of(T2)[0]
        system.publish(T2, publisher=publisher)
        system.run_until_idle()
        publisher_load = system.stats.sender_load(publisher.pid)
        other_loads = [
            system.stats.sender_load(p.pid)
            for p in system.processes
            if p.pid != publisher.pid
        ]
        assert max(other_loads) < publisher_load

    def test_publish_requires_finalize(self):
        system = NaivePublisherSystem(seed=0)
        system.add_group(T2, 5)
        with pytest.raises(ConfigError):
            system.publish(T2)
