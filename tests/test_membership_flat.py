"""Integration tests for the flat gossip membership ([10])."""

import random

import pytest

from repro.errors import ConfigError
from repro.membership import FlatMembership, FlatMembershipConfig, ProcessDescriptor
from repro.net import Network
from repro.net.message import Message
from repro.failures import ChurnSchedule
from repro.sim import Engine
from repro.topics import Topic

GROUP = Topic.parse(".group")


class MemberActor:
    """Thin actor wrapping one FlatMembership instance for tests."""

    def __init__(self, pid, engine, network, rng, config):
        self.pid = pid
        self.descriptor = ProcessDescriptor(pid, GROUP)
        self.membership = FlatMembership(
            self.descriptor,
            GROUP,
            config,
            engine,
            rng,
            send=lambda target, msg: network.send(self.pid, target, msg),
        )

    def handle_message(self, message: Message) -> None:
        self.membership.handle_message(message)


def build_group(n, *, seed=0, capacity=8, failure_model=None):
    engine = Engine()
    network = Network(engine, random.Random(seed), failure_model=failure_model)
    config = FlatMembershipConfig(capacity=capacity)
    members = []
    for pid in range(n):
        actor = MemberActor(pid, engine, network, random.Random(seed * 1000 + pid), config)
        network.register(actor)
        members.append(actor)
    return engine, network, members


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            FlatMembershipConfig(capacity=0)
        with pytest.raises(ConfigError):
            FlatMembershipConfig(capacity=4, shuffle_interval=0)
        with pytest.raises(ConfigError):
            FlatMembershipConfig(capacity=4, shuffle_length=0)
        with pytest.raises(ConfigError):
            FlatMembershipConfig(capacity=4, join_ttl=-1)


class TestJoin:
    def test_join_fills_joiner_view(self):
        engine, _, members = build_group(10)
        # Bootstrap: first member alone, others join via member 0.
        members[0].membership.start()
        for actor in members[1:]:
            actor.membership.start(members[0].descriptor)
        engine.run(until=10.0)
        for actor in members[1:]:
            assert len(actor.membership.view) >= 1

    def test_join_spreads_joiner_id(self):
        engine, _, members = build_group(12)
        members[0].membership.start()
        for actor in members[1:]:
            actor.membership.start(members[0].descriptor)
        engine.run(until=20.0)
        last = members[-1].pid
        knowers = sum(
            1
            for actor in members
            if actor.pid != last and last in actor.membership.view
        )
        assert knowers >= 1

    def test_start_is_idempotent(self):
        engine, _, members = build_group(2)
        members[0].membership.start()
        members[0].membership.start()
        engine.run(until=2.0)  # no crash from double task


class TestShuffle:
    def test_views_converge_to_connected_overlay(self):
        engine, _, members = build_group(20, capacity=6)
        members[0].membership.start()
        for actor in members[1:]:
            actor.membership.start(members[0].descriptor)
        engine.run(until=50.0)

        # Union of view edges must connect the group (reachability from 0).
        adjacency = {
            actor.pid: set(actor.membership.view.pids) for actor in members
        }
        reached = {0}
        frontier = [0]
        while frontier:
            node = frontier.pop()
            for peer in adjacency[node]:
                if peer not in reached:
                    reached.add(peer)
                    frontier.append(peer)
        assert len(reached) == 20

    def test_view_capacity_never_exceeded(self):
        engine, _, members = build_group(20, capacity=5)
        members[0].membership.start()
        for actor in members[1:]:
            actor.membership.start(members[0].descriptor)
        engine.run(until=30.0)
        for actor in members:
            assert len(actor.membership.view) <= 5

    def test_no_self_entries(self):
        engine, _, members = build_group(10, capacity=6)
        members[0].membership.start()
        for actor in members[1:]:
            actor.membership.start(members[0].descriptor)
        engine.run(until=30.0)
        for actor in members:
            assert actor.pid not in actor.membership.view

    def test_stop_halts_gossip(self):
        engine, network, members = build_group(5)
        members[0].membership.start()
        for actor in members[1:]:
            actor.membership.start(members[0].descriptor)
        engine.run(until=10.0)
        for actor in members:
            actor.membership.stop()
        sent_before = network.stats.total_sent
        engine.run(until=30.0)
        assert network.stats.total_sent == sent_before


class TestFailureExpiry:
    def test_dead_partner_eventually_evicted(self):
        schedule = ChurnSchedule().crash_at(0, 10.0)
        engine, _, members = build_group(6, failure_model=schedule, capacity=6)
        members[0].membership.start()
        for actor in members[1:]:
            actor.membership.start(members[0].descriptor)
        engine.run(until=200.0)
        holders = sum(1 for a in members[1:] if 0 in a.membership.view)
        # Everyone who shuffles with the corpse evicts it; a few views may
        # still hold it if they never picked it as a partner, but most drop.
        assert holders <= 2


class TestPiggybacking:
    def test_super_samples_travel_with_gossip(self):
        engine = Engine()
        network = Network(engine, random.Random(0))
        config = FlatMembershipConfig(capacity=6)
        super_desc = ProcessDescriptor(99, Topic.parse("."))
        received: list[ProcessDescriptor] = []

        providers = {
            0: lambda: (super_desc,),
            1: lambda: (),
        }

        class PiggyActor(MemberActor):
            def __init__(self, pid, rng):
                self.pid = pid
                self.descriptor = ProcessDescriptor(pid, GROUP)
                self.membership = FlatMembership(
                    self.descriptor,
                    GROUP,
                    config,
                    engine,
                    rng,
                    send=lambda target, msg: network.send(self.pid, target, msg),
                    super_sample_provider=providers[pid],
                    super_sample_consumer=lambda descs: received.extend(descs),
                )

        a = PiggyActor(0, random.Random(1))
        b = PiggyActor(1, random.Random(2))
        network.register(a)
        network.register(b)
        a.membership.start()
        b.membership.start(a.descriptor)
        engine.run(until=10.0)
        assert super_desc in received
