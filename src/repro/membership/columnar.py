"""Columnar static membership — contiguous pid arrays for huge groups.

The object backend materialises one :class:`~repro.membership.view.
PartialView` (a dict of :class:`~repro.membership.view.ProcessDescriptor`)
per process — fine at S=10³, a memory wall at S=10⁵–10⁶. This module
stores a whole group's membership in two flat ``array('l')`` columns:

* **topic rows** — member ``i``'s topic table occupies the fixed-stride
  slice ``[i·stride, (i+1)·stride)`` of one contiguous pid array, where
  ``stride = min(capacity, S-1)``;
* **super rows** — likewise for the ``sTable`` draws against the nearest
  populated supergroup, stride ``min(z, S_super)``.

Bit-identity with the object backend
------------------------------------

The builders replay :class:`~repro.membership.static.GroupTableBuilder` /
:class:`~repro.membership.static.GroupSampler` draw for draw, resting on
the same positional-sampling property (``random.Random.sample`` consumes
the RNG as a function of ``(len(population), k)`` only — see
membership/static.py). Positions come from the shared
:func:`~repro.membership.static._sample_positions_inline` loop (or
``rng.sample(range(n), k)`` on the small-population branch, which draws
identically to sampling the descriptor list itself) and are mapped to pids
with the exclusion arithmetic ``j = r if r < i else r+1`` instead of a
working exclusion list. The construction therefore produces the *same pid
sequences in the same order from the same RNG stream* as the object
backend — pinned by the S=500 construction-digest golden and the
hypothesis suite in tests/test_membership_columnar_equivalence.py.

Group pids must be contiguous (``base .. base+size``): the columnar
backend allocates each group one pid block, so descriptors reduce to bare
integers and sampling to index arithmetic.
"""

from __future__ import annotations

import random
from array import array
from typing import Iterator

from repro.errors import ConfigError
from repro.membership.static import _sample_positions_inline, _sample_setsize
from repro.topics.topic import Topic


class ColumnarGroupTables:
    """One group's frozen membership tables in flat pid columns.

    Built by :func:`build_group_tables` (which owns the draw order);
    afterwards the tables are immutable — exactly the paper's §VII setting
    ("these tables are initialized at the beginning of the simulation and
    do not change").
    """

    __slots__ = (
        "topic", "base", "size", "capacity", "stride", "rows",
        "super_topic", "super_stride", "super_rows",
    )

    def __init__(
        self,
        topic: Topic,
        base: int,
        size: int,
        capacity: int,
        stride: int,
        rows: array,
        super_topic: Topic | None,
        super_stride: int,
        super_rows: array,
    ):
        self.topic = topic
        self.base = base
        self.size = size
        self.capacity = capacity
        self.stride = stride
        self.rows = rows
        self.super_topic = super_topic
        self.super_stride = super_stride
        self.super_rows = super_rows

    # ------------------------------------------------------------------
    # Row access (pids, in draw order — the digest/golden order)
    # ------------------------------------------------------------------
    def row_pids(self, index: int) -> list[int]:
        """Member ``index``'s topic-table pids, in insertion order."""
        start = index * self.stride
        return self.rows[start : start + self.stride].tolist()

    def super_row_pids(self, index: int) -> list[int]:
        """Member ``index``'s supertopic-table pids, in insertion order."""
        start = index * self.super_stride
        return self.super_rows[start : start + self.super_stride].tolist()

    def sample_row(
        self, index: int, k: int, rng: random.Random
    ) -> list[int]:
        """Up to ``k`` distinct topic-table pids of member ``index``,
        uniformly, straight off the column (index-based sampling — no
        descriptor objects, no candidate list).

        The member's own pid is never in its row (exclusion is built into
        construction), so no per-call filtering is needed — the columnar
        equivalent of ``PartialView.sample(k, rng, exclude=(self.pid,))``.
        """
        stride = self.stride
        start = index * stride
        rows = self.rows
        if k >= stride:
            return rows[start : start + stride].tolist()
        return [
            rows[start + r] for r in rng.sample(range(stride), k)
        ]

    def nbytes(self) -> int:
        """Bytes held by the pid columns (the backend's membership state)."""
        return (
            self.rows.itemsize * len(self.rows)
            + self.super_rows.itemsize * len(self.super_rows)
        )

    def pids(self) -> Iterator[int]:
        """The group's member pids (the contiguous block)."""
        return iter(range(self.base, self.base + self.size))

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return (
            f"ColumnarGroupTables({self.topic.name}, S={self.size}, "
            f"stride={self.stride}, super_stride={self.super_stride})"
        )


class ColumnarTableBuilder:
    """Per-group topic-row builder, draw-identical to
    :meth:`GroupTableBuilder.table_at` over the group's descriptor list.

    ``draw_row`` must be called for members in index order (the build
    interleaves topic and super draws per member, so the caller owns the
    loop)."""

    def __init__(self, base: int, size: int, capacity: int):
        if size < 1:
            raise ConfigError(f"group size must be >= 1, got {size}")
        if capacity < 1:
            raise ConfigError(f"table capacity must be >= 1, got {capacity}")
        self.base = base
        self.size = size
        self.capacity = capacity
        n = size - 1  # the exclusion list length: everyone but the member
        self.stride = min(capacity, n)
        self._n = n
        self._nbits = n.bit_length()
        self._take_all = capacity >= n
        self._inline = (not self._take_all) and n > _sample_setsize(capacity)
        self.rows = array("l")

    def draw_row(self, index: int, rng: random.Random) -> None:
        """Append member ``index``'s topic row (consuming exactly the RNG
        draws the object backend's ``table_at`` would)."""
        n = self._n
        base = self.base
        append = self.rows.append
        if self._take_all:
            # capacity >= S-1: the table is everyone else, no draws.
            for j in range(n + 1):
                if j != index:
                    append(base + j)
            return
        if self._inline:
            positions = _sample_positions_inline(
                n, self.capacity, self._nbits, rng
            )
        else:
            positions = rng.sample(range(n), self.capacity)
        # Exclusion arithmetic: position r in the member-i-removed list is
        # group index r below i, r+1 at or above it.
        for r in positions:
            append(base + (r if r < index else r + 1))


class ColumnarSuperBuilder:
    """Per-group ``sTable``-row builder, draw-identical to
    :meth:`GroupSampler.sample` over the supergroup's descriptor list."""

    def __init__(self, super_base: int, super_size: int, z: int):
        if super_size < 1:
            raise ConfigError(
                f"supergroup size must be >= 1, got {super_size}"
            )
        self.super_base = super_base
        self.super_size = super_size
        self.z = z
        self.stride = min(z, super_size)
        self._nbits = super_size.bit_length()
        self._take_all = z >= super_size
        self._inline = (not self._take_all) and super_size > _sample_setsize(z)
        self.rows = array("l")

    def draw_row(self, rng: random.Random) -> None:
        """Append one member's super row (one ``z``-draw)."""
        n = self.super_size
        base = self.super_base
        append = self.rows.append
        if self._take_all:
            for r in range(n):
                append(base + r)
            return
        if self._inline:
            positions = _sample_positions_inline(n, self.z, self._nbits, rng)
        else:
            positions = rng.sample(range(n), self.z)
        for r in positions:
            append(base + r)


def build_group_tables(
    topic: Topic,
    base: int,
    size: int,
    capacity: int,
    rng: random.Random,
    *,
    super_topic: Topic | None = None,
    super_base: int = 0,
    super_size: int = 0,
    z: int = 0,
) -> ColumnarGroupTables:
    """Draw one group's full membership columns.

    Replays the object backend's per-member interleaving exactly: member
    ``i``'s topic-table draw, then its super-table draw (when a populated
    supergroup exists), both from the single shared ``rng`` — the same
    consumption order as ``DaMulticastSystem.finalize_static_membership``.
    """
    table_builder = ColumnarTableBuilder(base, size, capacity)
    super_builder = (
        ColumnarSuperBuilder(super_base, super_size, z)
        if super_topic is not None and super_size > 0
        else None
    )
    for index in range(size):
        table_builder.draw_row(index, rng)
        if super_builder is not None:
            super_builder.draw_row(rng)
    if super_builder is not None:
        super_stride, super_rows = super_builder.stride, super_builder.rows
    else:
        super_topic, super_stride, super_rows = None, 0, array("l")
    return ColumnarGroupTables(
        topic,
        base,
        size,
        capacity,
        table_builder.stride,
        table_builder.rows,
        super_topic,
        super_stride,
        super_rows,
    )
