"""Process descriptors and bounded partial views (membership tables).

A :class:`PartialView` is the data structure behind both of the paper's
tables: the topic table ``Table_Ti`` (capacity ``(b+1)·log(S)``, maintained
by the underlying membership algorithm) and the supertopic table
``sTable_Ti`` (constant capacity ``z``). It stores
:class:`ProcessDescriptor` entries, evicts uniformly at random on overflow
(which keeps views close to uniform samples of the group — the property the
gossip analysis of [10] needs), and supports the paper's MERGE semantics.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import ConfigError, MembershipError
from repro.topics.topic import Topic


@dataclass(frozen=True, slots=True, order=True)
class ProcessDescriptor:
    """Identity of a process as stored in membership tables.

    ``topic`` is the topic the process is interested in (§III-A assumes one
    topic of interest per process); tables never need more than this pair.
    """

    pid: int
    topic: Topic


class PartialView:
    """A bounded, duplicate-free table of :class:`ProcessDescriptor`.

    Insertion order is preserved (oldest first), which gives the supertopic
    table a natural notion of "favorite" entries (footnote 5: MERGE keeps
    the favorite superprocesses): the longest-held live entries survive.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ConfigError(f"view capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: dict[int, ProcessDescriptor] = {}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(
        self, descriptor: ProcessDescriptor, rng: random.Random | None = None
    ) -> bool:
        """Insert ``descriptor``; evict a uniform random entry on overflow.

        Returns True when the descriptor is present after the call (it may
        itself be the eviction victim, in which case False is returned).
        Re-adding a known pid refreshes nothing and returns True.
        """
        if descriptor.pid in self._entries:
            return True
        self._entries[descriptor.pid] = descriptor
        if len(self._entries) > self.capacity:
            if rng is None:
                raise MembershipError(
                    "view overflow requires an rng for uniform eviction"
                )
            victim = rng.choice(list(self._entries))
            del self._entries[victim]
            return victim != descriptor.pid
        return True

    def merge(
        self,
        descriptors: Iterable[ProcessDescriptor],
        rng: random.Random | None = None,
    ) -> int:
        """Add many descriptors; returns how many were new before eviction."""
        added = 0
        for descriptor in descriptors:
            if descriptor.pid not in self._entries:
                added += 1
            self.add(descriptor, rng)
        return added

    def remove(self, pid: int) -> bool:
        """Drop ``pid`` from the view; returns whether it was present."""
        return self._entries.pop(pid, None) is not None

    def replace(
        self,
        stale_pids: Iterable[int],
        fresh: Iterable[ProcessDescriptor],
        rng: random.Random | None = None,
    ) -> int:
        """The paper's MERGE (footnote 5): drop failed entries, then fill
        the freed capacity with fresh descriptors (favorites — existing live
        entries — are kept). Returns the number of fresh entries admitted."""
        for pid in stale_pids:
            self.remove(pid)
        admitted = 0
        for descriptor in fresh:
            if len(self._entries) >= self.capacity:
                break
            if descriptor.pid not in self._entries:
                self._entries[descriptor.pid] = descriptor
                admitted += 1
        # rng kept in the signature for symmetry with merge(); no eviction
        # happens here because insertion stops at capacity.
        del rng
        return admitted

    def clear(self) -> None:
        """Empty the view."""
        self._entries.clear()

    def set_capacity(
        self, capacity: int, rng: random.Random | None = None
    ) -> None:
        """Resize the view (the table size tracks ``(b+1)·log S`` as the
        group grows). Shrinking evicts uniform random entries and needs an
        ``rng``; growing never drops anything."""
        if capacity < 1:
            raise ConfigError(f"view capacity must be >= 1, got {capacity}")
        while len(self._entries) > capacity:
            if rng is None:
                raise MembershipError(
                    "shrinking below current size requires an rng"
                )
            victim = rng.choice(list(self._entries))
            del self._entries[victim]
        self.capacity = capacity

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ProcessDescriptor]:
        return iter(list(self._entries.values()))

    def __contains__(self, pid: int) -> bool:
        return pid in self._entries

    @property
    def is_full(self) -> bool:
        """Whether the view is at capacity."""
        return len(self._entries) >= self.capacity

    @property
    def pids(self) -> list[int]:
        """All member pids in insertion order (oldest first)."""
        return list(self._entries)

    def descriptors(self) -> tuple[ProcessDescriptor, ...]:
        """All entries in insertion order (oldest first)."""
        return tuple(self._entries.values())

    def sample(
        self,
        k: int,
        rng: random.Random,
        exclude: Iterable[int] = (),
    ) -> list[ProcessDescriptor]:
        """Up to ``k`` distinct entries chosen uniformly, skipping ``exclude``.

        Fewer than ``k`` are returned when the view is too small — gossip
        fan-out degrades gracefully in small groups (Fig. 7 samples from
        ``Table - Ω``).
        """
        if k < 0:
            raise ConfigError(f"sample size must be >= 0, got {k}")
        excluded = set(exclude)
        candidates = [d for d in self._entries.values() if d.pid not in excluded]
        if k >= len(candidates):
            return candidates
        return rng.sample(candidates, k)

    def __repr__(self) -> str:
        return f"PartialView({len(self._entries)}/{self.capacity})"
