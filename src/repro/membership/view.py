"""Process descriptors and bounded partial views (membership tables).

A :class:`PartialView` is the data structure behind both of the paper's
tables: the topic table ``Table_Ti`` (capacity ``(b+1)·log(S)``, maintained
by the underlying membership algorithm) and the supertopic table
``sTable_Ti`` (constant capacity ``z``). It stores
:class:`ProcessDescriptor` entries, evicts uniformly at random on overflow
(which keeps views close to uniform samples of the group — the property the
gossip analysis of [10] needs), and supports the paper's MERGE semantics.

Hot-path design (the gossip fast path calls :meth:`PartialView.sample`
once per event reception, and static construction calls
:meth:`PartialView.install` once per process):

* **Cached descriptor tuple.** ``sample`` and ``descriptors`` serve from a
  tuple snapshot of the entries, rebuilt lazily after any mutation (every
  mutator resets the cache to ``None``). The ubiquitous
  ``exclude=(self.pid,)`` call — where the caller's own pid is never in its
  table — then samples straight from the cached tuple with no per-call
  filtering or allocation. ``random.Random.sample`` draws identically from
  a tuple and a list of the same ordering, so the fast path is draw-for-draw
  identical to the historical build-a-candidates-list code.
* **Eviction pid list.** Uniform eviction needs "the i-th key of the entry
  dict" for a freshly drawn ``i``. Instead of materialising
  ``list(self._entries)`` per eviction, a parallel pid list mirrors the
  dict's insertion order (invariant: ``_pid_list is None`` or
  ``_pid_list == list(_entries)``; ``install`` leaves it ``None`` and it is
  rebuilt on first eviction). The victim is picked with one
  ``rng._randbelow(len)`` draw — exactly the single draw
  ``rng.choice(list(entries))`` used to make, so eviction trajectories are
  bit-identical.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import ConfigError, MembershipError
from repro.topics.topic import Topic


@dataclass(frozen=True, slots=True, order=True)
class ProcessDescriptor:
    """Identity of a process as stored in membership tables.

    ``topic`` is the topic the process is interested in (§III-A assumes one
    topic of interest per process); tables never need more than this pair.
    """

    pid: int
    topic: Topic


class PartialView:
    """A bounded, duplicate-free table of :class:`ProcessDescriptor`.

    Insertion order is preserved (oldest first), which gives the supertopic
    table a natural notion of "favorite" entries (footnote 5: MERGE keeps
    the favorite superprocesses): the longest-held live entries survive.
    """

    __slots__ = ("capacity", "_entries", "_pid_list", "_cache")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ConfigError(f"view capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: dict[int, ProcessDescriptor] = {}
        #: insertion-order mirror of ``_entries`` keys; ``None`` = rebuild
        #: lazily on first eviction (bulk ``install`` skips building it).
        self._pid_list: list[int] | None = []
        #: tuple snapshot served by ``descriptors``/``sample``; ``None``
        #: after any mutation.
        self._cache: tuple[ProcessDescriptor, ...] | None = None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _evict_uniform(self, rng: random.Random | None, what: str) -> int:
        """Remove and return one uniformly chosen pid (one rng draw)."""
        if rng is None:
            raise MembershipError(what)
        pids = self._pid_list
        if pids is None:
            pids = self._pid_list = list(self._entries)
        # One _randbelow draw — the same single draw that
        # rng.choice(list(self._entries)) used to consume, but without
        # materialising the key list per eviction.
        index = rng._randbelow(len(pids))
        victim = pids[index]
        del pids[index]
        del self._entries[victim]
        self._cache = None
        return victim

    def add(
        self, descriptor: ProcessDescriptor, rng: random.Random | None = None
    ) -> bool:
        """Insert ``descriptor``; evict a uniform random entry on overflow.

        Returns True when the descriptor is present after the call (it may
        itself be the eviction victim, in which case False is returned).
        Re-adding a known pid refreshes nothing and returns True.
        """
        if descriptor.pid in self._entries:
            return True
        self._entries[descriptor.pid] = descriptor
        if self._pid_list is not None:
            self._pid_list.append(descriptor.pid)
        self._cache = None
        if len(self._entries) > self.capacity:
            victim = self._evict_uniform(
                rng, "view overflow requires an rng for uniform eviction"
            )
            return victim != descriptor.pid
        return True

    def merge(
        self,
        descriptors: Iterable[ProcessDescriptor],
        rng: random.Random | None = None,
    ) -> int:
        """Add many descriptors; returns how many were new before eviction."""
        added = 0
        for descriptor in descriptors:
            if descriptor.pid not in self._entries:
                added += 1
            self.add(descriptor, rng)
        return added

    def install(self, descriptors: Iterable[ProcessDescriptor]) -> None:
        """Replace the whole content with ``descriptors`` (bulk, no rng).

        The static build context uses this to bypass per-add bookkeeping:
        the caller guarantees at most ``capacity`` distinct pids, so no
        overflow check (and no eviction draw) is needed. Raises
        :class:`MembershipError` when more entries than capacity are given.
        """
        entries = {d.pid: d for d in descriptors}
        if len(entries) > self.capacity:
            raise MembershipError(
                f"install of {len(entries)} entries exceeds view capacity "
                f"{self.capacity}"
            )
        self._entries = entries
        self._pid_list = None
        self._cache = None

    def remove(self, pid: int) -> bool:
        """Drop ``pid`` from the view; returns whether it was present."""
        if self._entries.pop(pid, None) is None:
            return False
        if self._pid_list is not None:
            self._pid_list.remove(pid)
        self._cache = None
        return True

    def replace(
        self,
        stale_pids: Iterable[int],
        fresh: Iterable[ProcessDescriptor],
        rng: random.Random | None = None,
    ) -> int:
        """The paper's MERGE (footnote 5): drop failed entries, then fill
        the freed capacity with fresh descriptors (favorites — existing live
        entries — are kept). Returns the number of fresh entries admitted."""
        for pid in stale_pids:
            self.remove(pid)
        admitted = 0
        for descriptor in fresh:
            if len(self._entries) >= self.capacity:
                break
            if descriptor.pid not in self._entries:
                self._entries[descriptor.pid] = descriptor
                if self._pid_list is not None:
                    self._pid_list.append(descriptor.pid)
                self._cache = None
                admitted += 1
        # rng kept in the signature for symmetry with merge(); no eviction
        # happens here because insertion stops at capacity.
        del rng
        return admitted

    def clear(self) -> None:
        """Empty the view."""
        self._entries.clear()
        self._pid_list = []
        self._cache = None

    def set_capacity(
        self, capacity: int, rng: random.Random | None = None
    ) -> None:
        """Resize the view (the table size tracks ``(b+1)·log S`` as the
        group grows). Shrinking evicts uniform random entries and needs an
        ``rng``; growing never drops anything."""
        if capacity < 1:
            raise ConfigError(f"view capacity must be >= 1, got {capacity}")
        while len(self._entries) > capacity:
            self._evict_uniform(
                rng, "shrinking below current size requires an rng"
            )
        self.capacity = capacity

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ProcessDescriptor]:
        return iter(self.descriptors())

    def __contains__(self, pid: int) -> bool:
        return pid in self._entries

    @property
    def is_full(self) -> bool:
        """Whether the view is at capacity."""
        return len(self._entries) >= self.capacity

    @property
    def pids(self) -> list[int]:
        """All member pids in insertion order (oldest first)."""
        return list(self._entries)

    def descriptors(self) -> tuple[ProcessDescriptor, ...]:
        """All entries in insertion order (oldest first), cached."""
        cache = self._cache
        if cache is None:
            cache = self._cache = tuple(self._entries.values())
        return cache

    def sample(
        self,
        k: int,
        rng: random.Random,
        exclude: Iterable[int] = (),
    ) -> list[ProcessDescriptor]:
        """Up to ``k`` distinct entries chosen uniformly, skipping ``exclude``.

        Fewer than ``k`` are returned when the view is too small — gossip
        fan-out degrades gracefully in small groups (Fig. 7 samples from
        ``Table - Ω``).

        Allocation-light: when no excluded pid is actually present in the
        view (the ubiquitous ``exclude=(self.pid,)`` case — a process never
        holds itself in its own table), sampling runs directly over the
        cached descriptor tuple without building a candidates list.
        """
        if k < 0:
            raise ConfigError(f"sample size must be >= 0, got {k}")
        entries = self._entries
        candidates: tuple[ProcessDescriptor, ...] | list[ProcessDescriptor]
        candidates = self.descriptors()
        if exclude:
            if not isinstance(exclude, (tuple, list, set, frozenset)):
                exclude = tuple(exclude)
            for pid in exclude:
                if pid in entries:
                    excluded = set(exclude)
                    candidates = [
                        d for d in candidates if d.pid not in excluded
                    ]
                    break
        if k >= len(candidates):
            return list(candidates)
        return rng.sample(candidates, k)

    def __repr__(self) -> str:
        return f"PartialView({len(self._entries)}/{self.capacity})"
