"""The "flat" gossip membership algorithm of [10] (Kermarrec et al.).

daMulticast delegates topic-table maintenance to this protocol (§V-A.1:
"we rely on an underlying gossip-based membership algorithm to populate and
maintain the consistency of this table. This underlying algorithm is the
'flat' membership algorithm presented in [10] which uses tables of size
``(b+1)·ln(S)``").

The implementation follows the standard decentralized partial-view design:

* **Join** — the joiner announces itself to a contact; the contact answers
  with a view sample (filling the joiner's table) and forwards the
  announcement with a TTL so the joiner lands in several views.
* **Shuffle** — periodically, each member exchanges uniform view samples
  with one random partner; both merge, evicting uniformly at random when
  over capacity. This keeps views converging to uniform samples of the
  group, the property [10]'s reliability analysis requires.
* **Expiry** — a partner that never answers a shuffle within
  ``shuffle_timeout`` is removed from the view ("replacing the failed ones
  with the fresh ones", footnote 5).
* **Piggybacking** — every gossip message can carry supertopic-table
  entries supplied by the owner (§V-A.2's optimization); received entries
  are handed to the owner's consumer callback.

The class is transport-agnostic: the owner injects ``send`` and the engine,
so the same code runs under any network/failure configuration.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigError
from repro.membership.view import PartialView, ProcessDescriptor
from repro.net.message import JoinRequest, MembershipGossip, Message
from repro.sim.clock import Clock, PeriodicTask
from repro.topics.topic import Topic

SendFn = Callable[[int, Message], None]
MulticastFn = Callable[[list[int], Message], None]
SuperSampleFn = Callable[[], tuple[ProcessDescriptor, ...]]
SuperMergeFn = Callable[[tuple[ProcessDescriptor, ...]], None]


@dataclass(frozen=True, slots=True)
class FlatMembershipConfig:
    """Tuning knobs of the flat membership protocol.

    ``capacity`` is the table size — use
    :func:`repro.membership.static.static_table_capacity` for the paper's
    ``(b+1)·log(S)``. ``shuffle_length`` entries are exchanged per shuffle;
    ``join_ttl`` bounds join-announcement forwarding; ``join_fanout`` is
    how many view members each hop forwards a join to.
    """

    capacity: int
    shuffle_interval: float = 1.0
    shuffle_length: int = 3
    shuffle_timeout: float = 3.0
    join_ttl: int = 3
    join_fanout: int = 2
    suspicion_duration: float | None = None

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ConfigError(f"capacity must be >= 1, got {self.capacity}")
        if self.shuffle_interval <= 0:
            raise ConfigError("shuffle_interval must be > 0")
        if self.shuffle_length < 1:
            raise ConfigError("shuffle_length must be >= 1")
        if self.shuffle_timeout <= 0:
            raise ConfigError("shuffle_timeout must be > 0")
        if self.join_ttl < 0:
            raise ConfigError("join_ttl must be >= 0")
        if self.join_fanout < 0:
            raise ConfigError("join_fanout must be >= 0")
        if self.suspicion_duration is not None and self.suspicion_duration <= 0:
            raise ConfigError("suspicion_duration must be > 0 when set")

    @property
    def effective_suspicion_duration(self) -> float:
        """How long a failed shuffle partner stays barred from the view.

        Without suspicion, a dead member's descriptor circulates forever in
        gossip samples (hearsay resurrects it right after eviction). The
        default bar of ``10 × shuffle_interval`` lets every live member
        detect and tombstone a corpse before anyone re-admits it, so dead
        entries wash out of the group's views — the "replacing the failed
        ones with the fresh ones" behaviour of the paper's MERGE.
        """
        if self.suspicion_duration is not None:
            return self.suspicion_duration
        return 10.0 * self.shuffle_interval


class FlatMembership:
    """One process's participation in its group's membership protocol."""

    # Fixed attribute set: large dynamic-mode populations instantiate one
    # of these per process, and the per-instance __dict__ was measurable
    # against the view it wraps.
    __slots__ = (
        "owner", "group", "config", "_engine", "_rng", "_send",
        "_multicast", "_super_sample_provider", "_super_sample_consumer",
        "view", "_pending_shuffles", "_tombstones", "_task", "started",
    )

    #: class-level so nonces stay unique across every instance
    _nonce_counter = itertools.count(1)

    def __init__(
        self,
        owner: ProcessDescriptor,
        group: Topic,
        config: FlatMembershipConfig,
        engine: Clock,
        rng: random.Random,
        send: SendFn,
        *,
        multicast: MulticastFn | None = None,
        super_sample_provider: SuperSampleFn | None = None,
        super_sample_consumer: SuperMergeFn | None = None,
    ):
        self.owner = owner
        self.group = group
        self.config = config
        self._engine = engine
        self._rng = rng
        self._send = send
        # Batched fan-out when the owner provides one (the network fast
        # path); otherwise fall back to one send per target.
        if multicast is None:
            def multicast(targets: list[int], message: Message) -> None:
                for target in targets:
                    send(target, message)
        self._multicast = multicast
        self._super_sample_provider = super_sample_provider
        self._super_sample_consumer = super_sample_consumer
        self.view = PartialView(config.capacity)
        self._pending_shuffles: dict[int, int] = {}  # nonce -> partner pid
        self._tombstones: dict[int, float] = {}  # pid -> suspicion expiry
        self._task: PeriodicTask | None = None
        self.started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, contact: ProcessDescriptor | None = None) -> None:
        """Start shuffling; optionally announce ourselves via ``contact``."""
        if self.started:
            return
        self.started = True
        if contact is not None and contact.pid != self.owner.pid:
            self.view.add(contact, self._rng)
            self._send(
                contact.pid,
                JoinRequest(
                    sender=self.owner.pid,
                    joiner=self.owner,
                    ttl=self.config.join_ttl,
                ),
            )
        self._task = self._engine.every(
            self.config.shuffle_interval,
            self._shuffle_once,
            initial_delay=self.config.shuffle_interval
            * (0.5 + 0.5 * self._rng.random()),  # desynchronize members
        )

    def stop(self) -> None:
        """Stop periodic shuffling (e.g. on unsubscribe or crash)."""
        self.started = False
        if self._task is not None:
            self._task.stop()
            self._task = None

    # ------------------------------------------------------------------
    # Periodic shuffle
    # ------------------------------------------------------------------
    def _shuffle_once(self) -> None:
        partner = self.view.sample(1, self._rng, exclude=(self.owner.pid,))
        if not partner:
            return
        target = partner[0]
        nonce = next(self._nonce_counter)
        self._pending_shuffles[nonce] = target.pid
        self._engine.schedule(
            self.config.shuffle_timeout, lambda: self._expire_shuffle(nonce)
        )
        self._send(target.pid, self._gossip_message(nonce, reply_expected=True))

    def _expire_shuffle(self, nonce: int) -> None:
        partner = self._pending_shuffles.pop(nonce, None)
        if partner is not None:
            # No reply within the timeout: treat the partner as failed,
            # free its slot, and bar hearsay re-admission for a while so
            # the corpse's descriptor washes out of circulation.
            self.view.remove(partner)
            self._tombstones[partner] = (
                self._engine.now + self.config.effective_suspicion_duration
            )

    def _gossip_message(self, nonce: int, reply_expected: bool) -> MembershipGossip:
        sample = self.view.sample(
            self.config.shuffle_length, self._rng, exclude=()
        )
        # Always advertise ourselves so partners learn live members.
        entries = tuple(sample) + (self.owner,)
        super_sample: tuple[ProcessDescriptor, ...] = ()
        if self._super_sample_provider is not None:
            super_sample = tuple(self._super_sample_provider())
        return MembershipGossip(
            sender=self.owner.pid,
            group=self.group,
            view_sample=entries,
            super_sample=super_sample,
            reply_expected=reply_expected,
            nonce=nonce,
        )

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def handle_message(self, message: Message) -> bool:
        """Consume membership traffic; returns False for foreign messages."""
        if isinstance(message, JoinRequest):
            # A direct message is proof of life: lift any suspicion.
            self._tombstones.pop(message.sender, None)
            self._tombstones.pop(message.joiner.pid, None)
            self._on_join(message)
            return True
        if isinstance(message, MembershipGossip) and message.group == self.group:
            self._tombstones.pop(message.sender, None)
            self._on_gossip(message)
            return True
        return False

    def _on_join(self, message: JoinRequest) -> None:
        joiner = message.joiner
        if joiner.pid != self.owner.pid:
            self.view.add(joiner, self._rng)
        # Answer with a view sample so the joiner fills its table quickly.
        self._send(joiner.pid, self._gossip_message(nonce=0, reply_expected=False))
        if message.ttl > 0 and self.config.join_fanout > 0:
            targets = self.view.sample(
                self.config.join_fanout,
                self._rng,
                exclude=(self.owner.pid, joiner.pid, message.sender),
            )
            if targets:
                self._multicast(
                    [target.pid for target in targets],
                    JoinRequest(
                        sender=self.owner.pid, joiner=joiner, ttl=message.ttl - 1
                    ),
                )

    def _on_gossip(self, message: MembershipGossip) -> None:
        self._merge_entries(message.view_sample)
        if message.super_sample and self._super_sample_consumer is not None:
            self._super_sample_consumer(message.super_sample)
        if message.reply_expected:
            self._send(
                message.sender,
                self._gossip_message(nonce=message.nonce, reply_expected=False),
            )
        elif message.nonce:
            self._pending_shuffles.pop(message.nonce, None)

    def _merge_entries(
        self, descriptors: tuple[ProcessDescriptor, ...]
    ) -> None:
        now = self._engine.now
        # Lazily purge expired tombstones.
        self._tombstones = {
            pid: expiry for pid, expiry in self._tombstones.items() if expiry > now
        }
        for descriptor in descriptors:
            if descriptor.pid == self.owner.pid:
                continue
            if descriptor.pid in self._tombstones:
                continue  # suspected failed: reject hearsay re-admission
            self.view.add(descriptor, self._rng)

    # ------------------------------------------------------------------
    # Accessors used by the dissemination layer
    # ------------------------------------------------------------------
    def table(self) -> PartialView:
        """The topic table ``Table_Ti`` this protocol maintains."""
        return self.view

    def __repr__(self) -> str:
        return (
            f"FlatMembership(pid={self.owner.pid}, group={self.group.name}, "
            f"view={len(self.view)}/{self.config.capacity})"
        )
