"""Static membership initialization — the paper's §VII simulation mode.

"In the simulation, the membership tables (topic table and supertopic
table) of a process are determined statically. These tables are initialized
at the beginning of the simulation and do not change." This module draws
those frozen tables from global knowledge:

* the topic table of a process in group ``Ti`` is a uniform sample of
  ``(b+1)·log(S_Ti)`` other group members (the [10] table size),
* the supertopic table is a uniform sample of ``z`` members of the nearest
  non-empty supergroup (§III-B: if nobody is interested in ``super(Ti)``,
  the table points at the first supertopic, by hierarchy level, that
  induces ``Ti``).

The same helpers serve the baselines, which use identically-drawn tables
for their own group structures (the paper's comparison holds "for fairness,
all approaches use the same underlying membership algorithm").
"""

from __future__ import annotations

import math
import random
from typing import Mapping, Sequence

from repro.errors import ConfigError
from repro.membership.view import PartialView, ProcessDescriptor
from repro.topics.topic import Topic


def static_table_capacity(
    group_size: int, b: float, log_base: float = math.e
) -> int:
    """The [10] topic-table size ``(b+1)·log(S)``, at least 1.

    ``log_base`` follows the owning protocol's fan-out base (see DESIGN.md
    note 2); the ceiling keeps tiny groups functional.
    """
    if group_size < 1:
        raise ConfigError(f"group size must be >= 1, got {group_size}")
    if group_size == 1:
        return 1
    return max(1, math.ceil((b + 1) * math.log(group_size, log_base)))


def draw_topic_table(
    member: ProcessDescriptor,
    group: Sequence[ProcessDescriptor],
    capacity: int,
    rng: random.Random,
) -> PartialView:
    """A uniform sample of ``capacity`` group members, excluding ``member``."""
    view = PartialView(capacity)
    others = [d for d in group if d.pid != member.pid]
    chosen = others if capacity >= len(others) else rng.sample(others, capacity)
    for descriptor in chosen:
        view.add(descriptor, rng)
    return view


def draw_super_table(
    super_group: Sequence[ProcessDescriptor],
    z: int,
    rng: random.Random,
) -> PartialView:
    """A uniform sample of ``z`` supergroup members (the ``sTable``)."""
    view = PartialView(max(1, z))
    chosen = (
        list(super_group) if z >= len(super_group) else rng.sample(list(super_group), z)
    )
    for descriptor in chosen:
        view.add(descriptor, rng)
    return view


def nearest_populated_super(
    topic: Topic,
    population: Mapping[Topic, Sequence[ProcessDescriptor]],
) -> Topic | None:
    """The first supertopic (walking up) that has interested processes.

    Implements §III-B's ``sTable`` target selection: the direct supertopic
    if populated, otherwise "the next immediate supertopic ... that induces
    Ti"; ``None`` when every supertopic up to the root is empty.
    """
    for ancestor in topic.ancestors(include_self=False):
        members = population.get(ancestor)
        if members:
            return ancestor
    return None
