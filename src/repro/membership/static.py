"""Static membership initialization — the paper's §VII simulation mode.

"In the simulation, the membership tables (topic table and supertopic
table) of a process are determined statically. These tables are initialized
at the beginning of the simulation and do not change." This module draws
those frozen tables from global knowledge:

* the topic table of a process in group ``Ti`` is a uniform sample of
  ``(b+1)·log(S_Ti)`` other group members (the [10] table size),
* the supertopic table is a uniform sample of ``z`` members of the nearest
  non-empty supergroup (§III-B: if nobody is interested in ``super(Ti)``,
  the table points at the first supertopic, by hierarchy level, that
  induces ``Ti``).

The same helpers serve the baselines, which use identically-drawn tables
for their own group structures (the paper's comparison holds "for fairness,
all approaches use the same underlying membership algorithm").

Fast build context — the index-sampling equivalence trick
---------------------------------------------------------

The historical implementation rebuilt, for every member, the exclusion
list ``others = [d for d in group if d.pid != member.pid]`` and sampled
descriptors from it — O(S) list construction per member, O(S²) per group.
:class:`GroupTableBuilder` (topic tables, one exclusion per member) and
:class:`GroupSampler` (supertopic tables, no exclusion) replace that with
one shared descriptor list per group and per-member **index** samples,
O(S·k) per group, while remaining draw-for-draw identical:

* ``random.Random.sample(population, k)`` is purely positional: its RNG
  consumption and the *positions* it selects depend only on ``(len(
  population), k)``, never on the elements. Hence
  ``rng.sample(pop, k) == [pop[i] for i in rng.sample(range(len(pop)), k)]``
  with an identical RNG end-state — sampling index sets and mapping them
  through a shared list reproduces the old draws exactly.
* the per-member exclusion list ``others_i`` (member ``i`` removed, order
  preserved) differs from ``others_{i-1}`` at exactly one position:
  ``others_i[j] = group[j]`` for ``j < i`` and ``group[j+1]`` otherwise, so
  a single working copy is advanced from member to member with one O(1)
  write (``work[i-1] = group[i-1]``) instead of an O(S) rebuild.
* for large populations ``random.sample`` uses its selection-set branch
  (draw ``_randbelow(n)``, reject repeats); the builder inlines that exact
  loop with the per-group constants (``n.bit_length()``, the branch
  threshold) hoisted out, consuming the same ``getrandbits`` stream. Small
  populations delegate to ``random.sample`` itself.

Because the per-member draw never exceeds the view capacity, tables are
materialised with the bulk :meth:`~repro.membership.view.PartialView.
install` (no per-add overflow checks, no eviction draws). The historical
bodies are kept as :func:`_reference_draw_topic_table` /
:func:`_reference_draw_super_table`; a property test asserts fast and
reference paths produce identical views *and* identical RNG end-states.
"""

from __future__ import annotations

import math
import random
from typing import Mapping, Sequence

from repro.errors import ConfigError
from repro.membership.view import PartialView, ProcessDescriptor
from repro.topics.topic import Topic


def static_table_capacity(
    group_size: int, b: float, log_base: float = math.e
) -> int:
    """The [10] topic-table size ``(b+1)·log(S)``, at least 1.

    ``log_base`` follows the owning protocol's fan-out base (see DESIGN.md
    note 2); the ceiling keeps tiny groups functional.
    """
    if group_size < 1:
        raise ConfigError(f"group size must be >= 1, got {group_size}")
    if group_size == 1:
        return 1
    return max(1, math.ceil((b + 1) * math.log(group_size, log_base)))


def _sample_setsize(k: int) -> int:
    """``random.Random.sample``'s branch threshold for a draw of ``k``.

    Mirrors CPython's heuristic (stable since 2.x): populations larger than
    this use the selection-set branch (``_randbelow(n)`` with rejection of
    repeats), smaller ones the partial-shuffle pool branch. The fast paths
    below must take the same branch ``random.sample`` would, because the
    two branches consume the RNG differently; the reference-vs-fast
    property test pins this equivalence on the running interpreter.
    """
    setsize = 21  # size of a small set minus size of an empty list
    if k > 5:
        setsize += 4 ** math.ceil(math.log(k * 3, 4))  # table size for big sets
    return setsize


def _sample_positions_inline(
    n: int,
    k: int,
    nbits: int,
    rng: random.Random,
) -> list[int]:
    """``rng.sample(range(n), k)`` via the inlined selection-set loop.

    Caller guarantees ``n > _sample_setsize(k)`` (the branch
    ``random.sample`` itself would take) and ``nbits == n.bit_length()``.
    Draw-for-draw identical to the stdlib: each selection draws
    ``getrandbits(nbits)`` rejecting values ``>= n``, then redraws while the
    index was already selected. Returning bare *positions* lets the
    columnar backend map them straight into pid arrays, while
    :func:`_sample_inline` maps them through a descriptor list — both
    consume the identical ``getrandbits`` stream.
    """
    getrandbits = rng.getrandbits
    selected: set[int] = set()
    selected_add = selected.add
    chosen: list[int] = [0] * k
    for t in range(k):
        r = getrandbits(nbits)
        while r >= n:
            r = getrandbits(nbits)
        while r in selected:
            r = getrandbits(nbits)
            while r >= n:
                r = getrandbits(nbits)
        selected_add(r)
        chosen[t] = r
    return chosen


def _sample_inline(
    population: Sequence[ProcessDescriptor],
    n: int,
    k: int,
    nbits: int,
    rng: random.Random,
) -> list[ProcessDescriptor]:
    """``rng.sample(population[:n], k)`` via the inlined selection-set loop
    (see :func:`_sample_positions_inline` for the contract)."""
    return [
        population[r] for r in _sample_positions_inline(n, k, nbits, rng)
    ]


class GroupTableBuilder:
    """Shared per-group context drawing every member's topic table.

    Materialises the group's descriptor list **once** and serves each
    member an O(k) draw (see the module docstring for why the draws are
    bit-identical to the historical per-member exclusion lists). Intended
    use is one builder per group, members visited by index::

        builder = GroupTableBuilder(descriptors)
        for i, process in enumerate(members):
            view = builder.table_at(i, capacity, rng)

    Visiting members in ascending index order is the O(1)-per-member fast
    path; arbitrary order stays correct (the working copy is rebuilt).
    """

    def __init__(self, group: Sequence[ProcessDescriptor]):
        self._descriptors = list(group)
        self._pid_index = {
            descriptor.pid: index
            for index, descriptor in enumerate(self._descriptors)
        }
        # A pid occurring more than once makes positional exclusion (drop
        # one entry) diverge from pid exclusion (drop every occurrence);
        # table_for falls back to the reference filter in that case.
        self._has_duplicate_pids = len(self._pid_index) != len(
            self._descriptors
        )
        # Working exclusion list: equals ``others_cursor`` (the group with
        # the member at ``_cursor`` removed, order preserved).
        self._work = self._descriptors[1:]
        self._cursor = 0
        self._nbits = (
            (len(self._descriptors) - 1).bit_length()
            if len(self._descriptors) > 1
            else 0
        )
        #: capacity -> whether the selection-set branch applies (the
        #: ``_sample_setsize`` comparison, hoisted out of the per-member loop)
        self._inline_mode: dict[int, bool] = {}

    def _use_inline(self, n: int, capacity: int) -> bool:
        mode = self._inline_mode.get(capacity)
        if mode is None:
            mode = self._inline_mode[capacity] = n > _sample_setsize(capacity)
        return mode

    def __len__(self) -> int:
        return len(self._descriptors)

    def _others_for(self, index: int) -> list[ProcessDescriptor]:
        """The exclusion list for member ``index`` (shared working copy)."""
        descriptors = self._descriptors
        cursor = self._cursor
        if index < cursor:
            # Rare out-of-order access: rebuild the working copy.
            self._work = descriptors[:index] + descriptors[index + 1 :]
        else:
            work = self._work
            while cursor < index:
                work[cursor] = descriptors[cursor]
                cursor += 1
        self._cursor = index
        return self._work

    def table_at(
        self, index: int, capacity: int, rng: random.Random
    ) -> PartialView:
        """The topic table of the member at ``index`` in the group list."""
        view = PartialView(capacity)
        n = len(self._descriptors) - 1  # excluding the member itself
        others = self._others_for(index)
        if capacity >= n:
            chosen: Sequence[ProcessDescriptor] = others
        elif self._use_inline(n, capacity):
            chosen = _sample_inline(others, n, capacity, self._nbits, rng)
        else:
            chosen = rng.sample(others, capacity)
        view.install(chosen)
        return view

    def table_for(
        self, member: ProcessDescriptor, capacity: int, rng: random.Random
    ) -> PartialView:
        """The topic table of ``member`` (located by pid).

        A member whose pid is not in the group samples from the full list
        (matching the historical filter-by-pid semantics, which removed
        nothing in that case) — the naive-publisher baseline draws
        publisher-side supergroup tables this way. A group holding the
        same pid more than once keeps the historical every-occurrence
        exclusion (positional index sampling would drop only one entry).
        """
        if self._has_duplicate_pids:
            return _reference_draw_topic_table(
                member, self._descriptors, capacity, rng
            )
        index = self._pid_index.get(member.pid)
        if index is not None:
            return self.table_at(index, capacity, rng)
        view = PartialView(capacity)
        n = len(self._descriptors)
        if capacity >= n:
            chosen: Sequence[ProcessDescriptor] = self._descriptors
        elif n > _sample_setsize(capacity):
            chosen = _sample_inline(
                self._descriptors, n, capacity, n.bit_length(), rng
            )
        else:
            chosen = rng.sample(self._descriptors, capacity)
        view.install(chosen)
        return view


class GroupSampler:
    """Shared no-exclusion sampler over one group's descriptor list.

    Serves the supertopic-table draws (every member of a subgroup samples
    ``z`` descriptors from the *same* supergroup) and the baselines'
    outsider tables without copying the population per member. Draws are
    bit-identical to ``rng.sample(list(group), k)``.
    """

    def __init__(self, group: Sequence[ProcessDescriptor]):
        self._descriptors = list(group)
        self._nbits = len(self._descriptors).bit_length()
        self._inline_mode: dict[int, bool] = {}

    def __len__(self) -> int:
        return len(self._descriptors)

    def sample(self, k: int, rng: random.Random) -> list[ProcessDescriptor]:
        """Uniform draw of ``k`` descriptors (all of them when ``k >= n``)."""
        n = len(self._descriptors)
        if k >= n:
            return list(self._descriptors)
        mode = self._inline_mode.get(k)
        if mode is None:
            mode = self._inline_mode[k] = n > _sample_setsize(k)
        if mode:
            return _sample_inline(self._descriptors, n, k, self._nbits, rng)
        return rng.sample(self._descriptors, k)

    def table(self, z: int, rng: random.Random) -> PartialView:
        """A fresh ``sTable`` view holding a uniform ``z``-draw."""
        view = PartialView(max(1, z))
        view.install(self.sample(z, rng))
        return view


def draw_topic_table(
    member: ProcessDescriptor,
    group: Sequence[ProcessDescriptor],
    capacity: int,
    rng: random.Random,
) -> PartialView:
    """A uniform sample of ``capacity`` group members, excluding ``member``.

    One-shot convenience over :class:`GroupTableBuilder`; loops drawing a
    table per member should build the builder once instead.
    """
    return GroupTableBuilder(group).table_for(member, capacity, rng)


def draw_super_table(
    super_group: Sequence[ProcessDescriptor],
    z: int,
    rng: random.Random,
) -> PartialView:
    """A uniform sample of ``z`` supergroup members (the ``sTable``).

    One-shot convenience over :class:`GroupSampler`; loops sampling the
    same supergroup per member should build the sampler once instead.
    """
    return GroupSampler(super_group).table(z, rng)


def _reference_draw_topic_table(
    member: ProcessDescriptor,
    group: Sequence[ProcessDescriptor],
    capacity: int,
    rng: random.Random,
) -> PartialView:
    """Historical O(S)-per-member body of :func:`draw_topic_table`.

    Kept verbatim as the equivalence oracle: the fast build context must
    produce identical views *and* an identical RNG end-state.
    """
    view = PartialView(capacity)
    others = [d for d in group if d.pid != member.pid]
    chosen = others if capacity >= len(others) else rng.sample(others, capacity)
    for descriptor in chosen:
        view.add(descriptor, rng)
    return view


def _reference_draw_super_table(
    super_group: Sequence[ProcessDescriptor],
    z: int,
    rng: random.Random,
) -> PartialView:
    """Historical copy-per-call body of :func:`draw_super_table` (oracle)."""
    view = PartialView(max(1, z))
    chosen = (
        list(super_group) if z >= len(super_group) else rng.sample(list(super_group), z)
    )
    for descriptor in chosen:
        view.add(descriptor, rng)
    return view


def nearest_populated_super(
    topic: Topic,
    population: Mapping[Topic, Sequence[ProcessDescriptor]],
) -> Topic | None:
    """The first supertopic (walking up) that has interested processes.

    Implements §III-B's ``sTable`` target selection: the direct supertopic
    if populated, otherwise "the next immediate supertopic ... that induces
    Ti"; ``None`` when every supertopic up to the root is empty.
    """
    for ancestor in topic.ancestors(include_self=False):
        members = population.get(ancestor)
        if members:
            return ancestor
    return None
