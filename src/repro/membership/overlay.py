"""Weakly-consistent global bootstrap overlay.

Fig. 4's FIND_SUPER_CONTACT floods ``REQCONTACT`` messages over
``neighborhood(p)`` — "the nearest set of reachable processes from a
process" — provided by a *weakly consistent global membership* (§V-A.2.a:
"this bootstrapping technique and algorithm relies here only on a weakly
consistent global membership"). This module implements that substrate: each
process holds ``degree`` uniformly random global contacts, drawn once and
never repaired, so entries may point at dead processes (exactly the
weak-consistency the paper tolerates).
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.errors import ConfigError, UnknownActor
from repro.membership.view import ProcessDescriptor


class BootstrapOverlay:
    """A static random contact graph over all processes in the system."""

    def __init__(self, degree: int = 5):
        if degree < 1:
            raise ConfigError(f"overlay degree must be >= 1, got {degree}")
        self.degree = degree
        self._contacts: dict[int, list[ProcessDescriptor]] = {}
        self._descriptors: dict[int, ProcessDescriptor] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def populate(
        self, descriptors: Iterable[ProcessDescriptor], rng: random.Random
    ) -> None:
        """(Re)build the contact graph over ``descriptors``.

        Every process receives ``min(degree, n-1)`` distinct uniform
        contacts. Contacts are directed (the graph is not symmetrized),
        matching a gossip-built overlay.
        """
        population = list(descriptors)
        self._descriptors = {d.pid: d for d in population}
        self._contacts.clear()
        n = len(population)
        if len(self._descriptors) == n:
            # Unique pids (the normal case): draw *positions* in the
            # member-removed list and map them back with index arithmetic
            # (r below the member's index, r+1 at or above it). Same
            # draws as sampling an explicit exclusion list — sample() is
            # purely positional — without materialising an O(n) list per
            # member, which made this build O(n²).
            k = min(self.degree, n - 1)
            for index, descriptor in enumerate(population):
                self._contacts[descriptor.pid] = [
                    population[r if r < index else r + 1]
                    for r in rng.sample(range(n - 1), k)
                ] if k else []
        else:
            # Duplicate pids: keep the historical every-occurrence
            # exclusion semantics.
            for descriptor in population:
                others = [d for d in population if d.pid != descriptor.pid]
                k = min(self.degree, len(others))
                self._contacts[descriptor.pid] = (
                    rng.sample(others, k) if k else []
                )

    def add_process(
        self, descriptor: ProcessDescriptor, rng: random.Random
    ) -> None:
        """Insert one late-joining process with fresh contacts.

        The joiner gets ``degree`` contacts; ``degree`` random existing
        processes learn about the joiner (so it is reachable by floods).
        """
        existing = list(self._descriptors.values())
        self._descriptors[descriptor.pid] = descriptor
        k = min(self.degree, len(existing))
        self._contacts[descriptor.pid] = rng.sample(existing, k) if k else []
        for other in rng.sample(existing, k) if k else []:
            contacts = self._contacts.setdefault(other.pid, [])
            contacts.append(descriptor)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def neighborhood(self, pid: int) -> list[ProcessDescriptor]:
        """The paper's ``neighborhood(p)``: this process's global contacts."""
        try:
            return list(self._contacts[pid])
        except KeyError:
            raise UnknownActor(f"pid {pid} is not in the overlay") from None

    def descriptor(self, pid: int) -> ProcessDescriptor:
        """The descriptor registered for ``pid``."""
        try:
            return self._descriptors[pid]
        except KeyError:
            raise UnknownActor(f"pid {pid} is not in the overlay") from None

    def __contains__(self, pid: int) -> bool:
        return pid in self._contacts

    def __len__(self) -> int:
        return len(self._contacts)

    def __repr__(self) -> str:
        return f"BootstrapOverlay({len(self)} processes, degree={self.degree})"
