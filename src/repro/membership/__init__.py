"""Gossip-based membership: the substrate daMulticast builds on.

The paper relies on "the 'flat' membership algorithm presented in [10]"
(Kermarrec, Massoulié, Ganesh — *Probabilistic Reliable Dissemination in
Large-Scale Systems*) "which uses tables of size ``(b+1)·ln(S)``". This
package implements:

* :class:`~repro.membership.view.ProcessDescriptor` /
  :class:`~repro.membership.view.PartialView` — bounded membership tables
  with uniform random eviction and sampling,
* :class:`~repro.membership.flat.FlatMembership` — the dynamic gossip
  membership (join dissemination, periodic view shuffles, failure expiry,
  and the §V-A.2 piggybacking hook for supertopic-table entries),
* :mod:`~repro.membership.static` — the paper's §VII simulation mode where
  all tables are drawn once at time zero and frozen,
* :mod:`~repro.membership.columnar` — the same frozen tables stored as
  contiguous pid arrays (one block per group, bit-identical construction
  draws) for 10⁵–10⁶-process runs,
* :class:`~repro.membership.overlay.BootstrapOverlay` — the weakly
  consistent global overlay providing ``neighborhood(p)`` for the Fig. 4
  bootstrap search.
"""

from repro.membership.view import PartialView, ProcessDescriptor
from repro.membership.columnar import (
    ColumnarGroupTables,
    ColumnarSuperBuilder,
    ColumnarTableBuilder,
    build_group_tables,
)
from repro.membership.flat import FlatMembership, FlatMembershipConfig
from repro.membership.overlay import BootstrapOverlay
from repro.membership.static import (
    GroupSampler,
    GroupTableBuilder,
    draw_super_table,
    draw_topic_table,
    static_table_capacity,
)

__all__ = [
    "ProcessDescriptor",
    "PartialView",
    "ColumnarGroupTables",
    "ColumnarTableBuilder",
    "ColumnarSuperBuilder",
    "build_group_tables",
    "FlatMembership",
    "FlatMembershipConfig",
    "BootstrapOverlay",
    "GroupTableBuilder",
    "GroupSampler",
    "draw_topic_table",
    "draw_super_table",
    "static_table_capacity",
]
