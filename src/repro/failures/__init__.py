"""Failure models: who is alive, and who *looks* alive to whom.

The paper evaluates two regimes:

* **Stillborn failures** (Figs. 8–10): a fraction of processes "fail at the
  very beginning" and the frozen membership tables keep pointing at them.
  → :class:`~repro.failures.stillborn.StillbornFailures`.
* **Dynamic failures** (Fig. 11): "a process can appear to be failed for a
  process while appearing alive for another one (to simulate a weakly
  consistent membership algorithm)".
  → :class:`~repro.failures.dynamic.DynamicFailures` with ``per_attempt``
  (transient, re-sampled per transmission) and ``per_pair`` (each observer
  holds a fixed wrong opinion) interpretations.

Beyond the paper's figures, :class:`~repro.failures.churn.ChurnSchedule`
models crash/recover timelines (§III-A allows crash-recovery), used by the
dynamic-protocol tests and the failure-injection example.
"""

from repro.failures.model import AlwaysAlive, FailureModel
from repro.failures.stillborn import StillbornFailures, sample_stillborn
from repro.failures.dynamic import DynamicFailures
from repro.failures.churn import ChurnSchedule
from repro.failures.injector import FailureCampaign

__all__ = [
    "FailureModel",
    "AlwaysAlive",
    "StillbornFailures",
    "sample_stillborn",
    "DynamicFailures",
    "ChurnSchedule",
    "FailureCampaign",
]
