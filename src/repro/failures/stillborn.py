"""Stillborn failures: a fixed set of processes dead from time zero.

This reproduces the §VII setting of Figs. 8–10: "these [processes] fail at
the very beginning" and "the membership algorithm does not replace a failed
process" — the static tables keep pointing at corpses, so gossip fan-out is
effectively reduced by the failure fraction.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from repro.errors import ConfigError


class StillbornFailures:
    """Processes in ``failed`` are dead for the whole run; others never fail."""

    def __init__(self, failed: Iterable[int]):
        self._failed = frozenset(failed)

    @property
    def failed(self) -> frozenset[int]:
        """The set of stillborn process ids."""
        return self._failed

    def is_alive(self, pid: int, now: float) -> bool:
        return pid not in self._failed

    def transmission_blocked(
        self, sender: int, target: int, now: float, rng: random.Random
    ) -> bool:
        # Perception matches ground truth: dead targets are handled by the
        # network's is_alive check, nothing extra to block here.
        return False

    def __repr__(self) -> str:
        return f"StillbornFailures({len(self._failed)} failed)"


def sample_stillborn(
    pids: Sequence[int],
    alive_fraction: float,
    rng: random.Random,
    protected: Iterable[int] = (),
) -> StillbornFailures:
    """Kill a uniform random ``1 - alive_fraction`` of ``pids`` at t=0.

    ``protected`` processes (e.g. the publisher — the paper publishes from
    an alive process) are never selected. This is the x-axis generator of
    Figs. 8–11: each figure sweeps ``alive_fraction`` over [0, 1].
    """
    if not 0.0 <= alive_fraction <= 1.0:
        raise ConfigError(f"alive_fraction must be in [0,1], got {alive_fraction}")
    protected_set = set(protected)
    candidates = [pid for pid in pids if pid not in protected_set]
    n_failed = round(len(pids) * (1.0 - alive_fraction))
    n_failed = min(n_failed, len(candidates))
    failed = rng.sample(candidates, n_failed)
    return StillbornFailures(failed)
