"""The failure-model interface consulted by the network.

A failure model answers two distinct questions:

* :meth:`FailureModel.is_alive` — ground truth: is the process actually up
  at time ``now``? (Dead targets drop incoming messages; dead senders
  should not be sending, and the network guards against it.)
* :meth:`FailureModel.transmission_blocked` — perception: does *this
  particular transmission* fail because the target looks failed from the
  sender's side? This is the hook used by Fig. 11's weakly-consistent
  failures, where the ground truth says "alive" but individual views
  disagree.
"""

from __future__ import annotations

import random
from typing import Protocol, runtime_checkable


@runtime_checkable
class FailureModel(Protocol):
    """Oracle for process liveness and per-transmission perception."""

    def is_alive(self, pid: int, now: float) -> bool:
        """Ground-truth liveness of ``pid`` at time ``now``."""
        ...  # pragma: no cover - protocol

    def transmission_blocked(
        self, sender: int, target: int, now: float, rng: random.Random
    ) -> bool:
        """Whether this transmission is lost to a perceived failure."""
        ...  # pragma: no cover - protocol


class AlwaysAlive:
    """The failure-free model (default)."""

    def is_alive(self, pid: int, now: float) -> bool:
        return True

    def transmission_blocked(
        self, sender: int, target: int, now: float, rng: random.Random
    ) -> bool:
        return False

    def __repr__(self) -> str:
        return "AlwaysAlive()"
