"""Declarative failure campaigns against a running system.

The figure experiments sample failures up-front; the dynamic-protocol
tests and examples need *orchestrated* faults: "kill 30 % of group X at
t=50", "kill every superprocess group Y points at, at t=40". A
:class:`FailureCampaign` collects such actions against a
:class:`~repro.failures.churn.ChurnSchedule` (which the system's network
must use as its failure model) and schedules them on the engine, so
campaigns compose with everything else deterministic in a run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.failures.churn import ChurnSchedule
from repro.validation import check_non_negative


def _validate_action_time(at: float) -> None:
    """Campaign action times must be finite and non-negative.

    The same NaN hazard as :meth:`ChurnSchedule._add`: ``nan < 0`` is
    False, so an unguarded action time would be scheduled at a NaN
    timestamp, poisoning the engine's heap ordering and every crash/recover
    transition the action records.
    """
    check_non_negative(at, "action time")


@dataclass
class CampaignLog:
    """What a campaign actually did (for assertions and reports)."""

    actions: list[tuple[float, str, tuple[int, ...]]] = field(
        default_factory=list
    )

    def killed_pids(self) -> set[int]:
        """Every pid crashed by any action."""
        result: set[int] = set()
        for _, kind, pids in self.actions:
            if kind.startswith("crash"):
                result.update(pids)
        return result


class FailureCampaign:
    """Schedules crash/recover actions against a daMulticast-style system.

    ``system`` must expose ``engine``, ``group_pids(topic)``, ``group(topic)``
    and its network's failure model must be ``schedule`` (the campaign
    validates this, because faults applied to a different model would
    silently do nothing).
    """

    def __init__(self, system, schedule: ChurnSchedule, rng: random.Random):
        if system.network.failure_model is not schedule:
            raise ConfigError(
                "the system's network must use this campaign's ChurnSchedule "
                "as its failure model"
            )
        self._system = system
        self._schedule = schedule
        self._rng = rng
        self.log = CampaignLog()

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------
    def kill_fraction(
        self, at: float, fraction: float, topic=None
    ) -> "FailureCampaign":
        """Crash a uniform ``fraction`` of a group (or of everyone) at ``at``."""
        _validate_action_time(at)
        if not 0.0 <= fraction <= 1.0:
            raise ConfigError(f"fraction must be in [0,1], got {fraction}")

        def action() -> None:
            if topic is None:
                pids = [p.pid for p in self._system.processes]
            else:
                pids = self._system.group_pids(topic)
            alive = [
                pid for pid in pids if self._schedule.is_alive(pid, at)
            ]
            count = round(len(alive) * fraction)
            victims = tuple(self._rng.sample(alive, count)) if count else ()
            for pid in victims:
                self._schedule.crash_at(pid, at)
            self.log.actions.append((at, "crash_fraction", victims))

        self._system.engine.schedule_at(at, action)
        return self

    def kill_super_links(self, at: float, topic) -> "FailureCampaign":
        """Crash every process referenced by ``topic``'s supertopic tables.

        This is the adversarial fault for daMulticast: it severs every
        existing inter-group link of a group at once, forcing the
        maintenance/bootstrap machinery to rebuild from scratch.
        """
        _validate_action_time(at)

        def action() -> None:
            victims: set[int] = set()
            for process in self._system.group(topic):
                victims.update(process.super_table.pids)
            # repro-lint: allow[DET003]: victims holds int pids; int hashes are unsalted, so set order is PYTHONHASHSEED-independent
            live = tuple(
                pid for pid in victims if self._schedule.is_alive(pid, at)
            )
            for pid in live:
                self._schedule.crash_at(pid, at)
            self.log.actions.append((at, "crash_super_links", live))

        self._system.engine.schedule_at(at, action)
        return self

    def recover(self, at: float, pids) -> "FailureCampaign":
        """Bring the listed pids back at ``at``."""
        _validate_action_time(at)
        frozen = tuple(pids)

        def action() -> None:
            for pid in frozen:
                self._schedule.recover_at(pid, at)
            self.log.actions.append((at, "recover", frozen))

        self._system.engine.schedule_at(at, action)
        return self

    def recover_fraction(self, at: float, fraction: float) -> "FailureCampaign":
        """Bring back a uniform ``fraction`` of the currently-dead victims.

        Victims are the pids this campaign crashed that are still dead at
        ``at``; the sample is drawn from the campaign's RNG, so recoveries
        are as deterministic as the kills.
        """
        _validate_action_time(at)
        if not 0.0 <= fraction <= 1.0:
            raise ConfigError(f"fraction must be in [0,1], got {fraction}")

        def action() -> None:
            dead = sorted(
                pid
                for pid in self.log.killed_pids()
                if not self._schedule.is_alive(pid, at)
            )
            count = round(len(dead) * fraction)
            chosen = tuple(self._rng.sample(dead, count)) if count else ()
            for pid in chosen:
                self._schedule.recover_at(pid, at)
            self.log.actions.append((at, "recover", chosen))

        self._system.engine.schedule_at(at, action)
        return self

    def recover_all(self, at: float) -> "FailureCampaign":
        """Bring every previously crashed process back at ``at``."""
        _validate_action_time(at)

        def action() -> None:
            victims = tuple(self.log.killed_pids())
            for pid in victims:
                self._schedule.recover_at(pid, at)
            self.log.actions.append((at, "recover", victims))

        self._system.engine.schedule_at(at, action)
        return self
