"""Crash/recover timelines (churn).

The paper's model (§III-A) allows processes to crash *and recover*. The
figure experiments only need stillborn failures, but the dynamic protocol
(bootstrap + table maintenance) is exercised under churn by the tests and
the failure-injection example. A :class:`ChurnSchedule` is a per-process
sorted list of state transitions; liveness queries binary-search it.
"""

from __future__ import annotations

import bisect
import random
from typing import Sequence

from repro.errors import ConfigError
from repro.validation import check_non_negative, check_positive


class ChurnSchedule:
    """Per-process crash/recover transition timelines.

    Processes are alive initially unless :meth:`crash_at` is scheduled at
    time 0. Transitions must be added in any order; queries sort lazily.
    """

    def __init__(self) -> None:
        # pid -> sorted list of (time, alive_after) transitions
        self._transitions: dict[int, list[tuple[float, bool]]] = {}
        self._dirty: set[int] = set()

    def crash_at(self, pid: int, time: float) -> "ChurnSchedule":
        """Schedule ``pid`` to crash at ``time`` (chainable)."""
        return self._add(pid, time, alive_after=False)

    def recover_at(self, pid: int, time: float) -> "ChurnSchedule":
        """Schedule ``pid`` to recover at ``time`` (chainable)."""
        return self._add(pid, time, alive_after=True)

    def _add(self, pid: int, time: float, alive_after: bool) -> "ChurnSchedule":
        # A NaN passes `time < 0` (all ordered comparisons on NaN are
        # False) and would silently corrupt the binary-searched timeline:
        # sorting puts NaN entries in an arbitrary position and
        # bisect_right's comparisons against them are meaningless.
        check_non_negative(time, "transition time")
        self._transitions.setdefault(pid, []).append((time, alive_after))
        self._dirty.add(pid)
        return self

    def _timeline(self, pid: int) -> list[tuple[float, bool]]:
        timeline = self._transitions.get(pid)
        if timeline is None:
            return []
        if pid in self._dirty:
            timeline.sort(key=lambda entry: entry[0])
            self._dirty.discard(pid)
        return timeline

    # ------------------------------------------------------------------
    # FailureModel interface
    # ------------------------------------------------------------------
    def is_alive(self, pid: int, now: float) -> bool:
        timeline = self._timeline(pid)
        if not timeline:
            return True
        # Find the last transition at or before `now`.
        index = bisect.bisect_right(timeline, now, key=lambda entry: entry[0])
        if index == 0:
            return True
        return timeline[index - 1][1]

    def transmission_blocked(
        self, sender: int, target: int, now: float, rng: random.Random
    ) -> bool:
        return False

    # ------------------------------------------------------------------
    # Generators
    # ------------------------------------------------------------------
    @classmethod
    def random_churn(
        cls,
        pids: Sequence[int],
        rng: random.Random,
        *,
        crash_probability: float,
        horizon: float,
        recover_probability: float = 0.5,
    ) -> "ChurnSchedule":
        """Each pid crashes once with ``crash_probability`` at a uniform time
        in ``[0, horizon]``, then recovers with ``recover_probability`` at a
        uniform later time."""
        if not 0.0 <= crash_probability <= 1.0:
            raise ConfigError("crash_probability must be in [0,1]")
        if not 0.0 <= recover_probability <= 1.0:
            raise ConfigError("recover_probability must be in [0,1]")
        check_positive(horizon, "horizon")
        schedule = cls()
        for pid in pids:
            if rng.random() >= crash_probability:
                continue
            crash_time = rng.uniform(0.0, horizon)
            schedule.crash_at(pid, crash_time)
            if rng.random() < recover_probability:
                schedule.recover_at(pid, rng.uniform(crash_time, horizon))
        return schedule

    def __repr__(self) -> str:
        return f"ChurnSchedule({len(self._transitions)} processes with transitions)"
