"""Dynamic, weakly-consistent failures (Fig. 11).

Fig. 11 re-runs the reliability experiment with failures that are *not*
globally agreed upon: "a process can appear to be failed for a process
while appearing alive for another one (to simulate a weakly consistent
membership algorithm)". The paper reports much better reliability than the
stillborn case, because each transmission has an independent chance to get
through instead of a fixed subset of targets being permanently dead.

Two interpretations are provided (both keep every process ground-truth
alive and block *transmissions*):

* ``per_attempt`` (default): every transmission independently finds the
  target "failed" with probability ``fail_probability``. Failures are fully
  transient — the most optimistic reading, and the one that reproduces the
  figure's strong improvement over Fig. 10.
* ``per_pair``: each (sender, target) pair deterministically perceives the
  target as failed with probability ``fail_probability`` — observers hold
  fixed, mutually inconsistent opinions. Stronger than ``per_attempt``
  (a wrong opinion never heals) but still weaker than stillborn failures
  (other observers can still reach the target).
"""

from __future__ import annotations

import random
from typing import Literal

from repro.errors import ConfigError
from repro.sim.rng import derive_seed

Mode = Literal["per_attempt", "per_pair"]


class DynamicFailures:
    """Weakly-consistent failure perception; everyone is really alive."""

    def __init__(
        self,
        fail_probability: float,
        mode: Mode = "per_attempt",
        seed: int = 0,
    ):
        if not 0.0 <= fail_probability <= 1.0:
            raise ConfigError(
                f"fail_probability must be in [0,1], got {fail_probability}"
            )
        if mode not in ("per_attempt", "per_pair"):
            raise ConfigError(f"unknown mode {mode!r}")
        self.fail_probability = fail_probability
        self.mode = mode
        self._seed = seed

    def is_alive(self, pid: int, now: float) -> bool:
        return True

    def transmission_blocked(
        self, sender: int, target: int, now: float, rng: random.Random
    ) -> bool:
        if self.fail_probability == 0.0:
            return False
        if self.mode == "per_attempt":
            return rng.random() < self.fail_probability
        # per_pair: a deterministic coin per (sender, target) pair, so one
        # observer's opinion of a target never changes during the run.
        pair_seed = derive_seed(self._seed, f"pair/{sender}/{target}")
        return random.Random(pair_seed).random() < self.fail_probability

    def __repr__(self) -> str:
        return (
            f"DynamicFailures(p={self.fail_probability}, mode={self.mode!r})"
        )
