"""Baseline (b): gossip-based multicast (one group per topic).

This is §IV-A's pattern (1): "a group is created for the publishers of a
topic ... a subscriber of topic Ta becomes a member of the group Ta and
member of all the groups of the subtopics of Ta. When an event of topic Tb
is published, this event is only disseminated in the group Tb."

So the *members* of group ``Tb`` are every process whose subscription
includes ``Tb`` — its own subscribers plus the subscribers of each
supertopic. Each process therefore maintains one membership table per
registered subtopic of its interest (up to ``t`` tables on a chain,
``Σ(log S_Ti + c_Ti)`` memory — §VI-E.2), but receives no parasite events.
"""

from __future__ import annotations

from typing import Any

from repro.baselines.common import BaselineProcess, BaselineSystem
from repro.core.events import Event
from repro.membership.static import GroupTableBuilder
from repro.membership.view import ProcessDescriptor
from repro.topics.hierarchy import TopicHierarchy
from repro.topics.topic import Topic


class GossipMulticastSystem(BaselineSystem):
    """Per-topic gossip groups; subscribers join every subtopic group."""

    def __init__(self, **kwargs: Any):
        super().__init__(**kwargs)
        self.hierarchy = TopicHierarchy()

    def add_process(self, interest: Topic | str) -> BaselineProcess:
        process = super().add_process(interest)
        self.hierarchy.add(process.interest)
        return process

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def group_members(self, topic: Topic) -> list[BaselineProcess]:
        """Everyone who must be in group ``topic``: processes whose
        subscription includes it (subscribers of ``topic`` or a supertopic)."""
        return [
            p for p in self.processes if p.interest.includes(topic)
        ]

    def finalize_membership(self) -> None:
        """Draw one table per (process, relevant topic group).

        A process subscribed to ``Ta`` joins the group of every registered
        topic that ``Ta`` includes — ``Ta`` itself and all its subtopics.
        """
        rng = self.harness.rngs.stream("static-membership")
        for topic in self.hierarchy.topics:
            members = self.group_members(topic)
            if not members:
                continue
            size = len(members)
            capacity = self.table_capacity(size)
            fanout = self.fanout(size)
            descriptors = [ProcessDescriptor(p.pid, topic) for p in members]
            builder = GroupTableBuilder(descriptors)
            for index, process in enumerate(members):
                view = builder.table_at(index, capacity, rng)
                process.join_group(topic, view, fanout)
        self._finalized = True

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish(
        self,
        topic: Topic | str,
        payload: Any = None,
        *,
        publisher: BaselineProcess | None = None,
    ) -> Event:
        """Disseminate an event *only* in its own topic's group (pattern 1)."""
        self._require_finalized()
        resolved = Topic.parse(topic) if isinstance(topic, str) else topic
        self.hierarchy.require(resolved)
        chosen = self._pick_publisher(resolved, publisher)
        event = chosen.make_event(resolved, payload)
        # The topic's group holds its subscribers plus every supertopic
        # subscriber (they joined each subtopic group): the intended
        # receivers are exactly the interested set.
        self.tracker.record_publish(
            event, chosen.pid, expected=len(self.interested_in(resolved))
        )
        chosen.publish_in_groups(event, [resolved])
        return event

    def tables_per_process(self) -> dict[int, int]:
        """pid → number of membership tables (the §VI-E.2 overhead)."""
        return {p.pid: p.table_count for p in self.processes}
