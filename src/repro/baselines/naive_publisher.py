"""The naive pattern-(2) strawman: the publisher fans into every supergroup.

§IV-A considers two straightforward topic/group mappings before settling
on daMulticast. Pattern (2) — "a group is created for the subscribers of a
topic ... when an event of topic Tb is published, this event is
disseminated in the group Tb *and to all the groups of all the supertopics
of Tb*" — has the stated disadvantage that it "overload[s] the publishers
(they must publish in several groups)" and "makes of these single points
of failures". daMulticast is "an optimized variant of the second pattern
to achieve a better load distribution".

This comparator implements the naive pattern faithfully:

* one gossip group per topic, containing only its direct subscribers;
* the *publisher* holds a membership table for its own group and for
  every supertopic group (``t`` tables — the memory price), and injects
  each event into all of them itself (the load price);
* inside each group, normal infect-and-die gossip.

The load-distribution benchmark measures exactly the claim: here the
publisher transmits ``Σᵢ fanout(Sᵢ)`` copies per event and is a single
point of failure for the upward flow, whereas in daMulticast the
publisher's burden is one group's fan-out plus at most ``z`` hand-offs,
and any group member can carry the event upward.
"""

from __future__ import annotations

from typing import Any

from repro.baselines.common import BaselineProcess, BaselineSystem
from repro.core.events import Event
from repro.membership.static import GroupTableBuilder
from repro.membership.view import ProcessDescriptor
from repro.topics.hierarchy import TopicHierarchy
from repro.topics.topic import Topic


class NaivePublisherSystem(BaselineSystem):
    """Pattern (2) of §IV-A, without daMulticast's optimization."""

    def __init__(self, **kwargs: Any):
        super().__init__(**kwargs)
        self.hierarchy = TopicHierarchy()

    def add_process(self, interest: Topic | str) -> BaselineProcess:
        process = super().add_process(interest)
        self.hierarchy.add(process.interest)
        return process

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def finalize_membership(self) -> None:
        """Every subscriber joins only its own topic's group; every
        process additionally receives tables for all its supertopic
        groups so it can publish into them (the pattern-2 requirement)."""
        rng = self.harness.rngs.stream("static-membership")
        builders: dict[Topic, GroupTableBuilder] = {}
        for topic in self.hierarchy.topics:
            members = self.subscribers_of(topic)
            if members:
                builders[topic] = GroupTableBuilder(
                    [ProcessDescriptor(p.pid, topic) for p in members]
                )
        for topic, builder in builders.items():
            size = len(builder)
            capacity = self.table_capacity(size)
            fanout = self.fanout(size)
            for index, process in enumerate(self.subscribers_of(topic)):
                view = builder.table_at(index, capacity, rng)
                process.join_group(topic, view, fanout)
        # Publisher-side supergroup tables: every process gets one table
        # per *populated* supertopic of its interest. The publisher is
        # never a member of its supertopic's group, so the draw runs over
        # the full population (table_for finds no pid to exclude).
        for process in self.processes:
            for ancestor in process.interest.ancestors():
                builder = builders.get(ancestor)
                if builder is None:
                    continue
                size = len(builder)
                capacity = self.table_capacity(size)
                fanout = self.fanout(size)
                me = ProcessDescriptor(process.pid, ancestor)
                view = builder.table_for(me, capacity, rng)
                process.join_group(ancestor, view, fanout)
        self._finalized = True

    # ------------------------------------------------------------------
    # Publishing: the publisher fans into every group itself
    # ------------------------------------------------------------------
    def publish(
        self,
        topic: Topic | str,
        payload: Any = None,
        *,
        publisher: BaselineProcess | None = None,
    ) -> Event:
        """Inject the event into the topic's group and every supergroup —
        all transmissions paid by the publisher (§IV-A's plain arrows)."""
        self._require_finalized()
        resolved = Topic.parse(topic) if isinstance(topic, str) else topic
        self.hierarchy.require(resolved)
        chosen = self._pick_publisher(resolved, publisher)
        event = chosen.make_event(resolved, payload)
        # The publisher injects into the topic group and every supergroup:
        # intended receivers are the interested set.
        self.tracker.record_publish(
            event, chosen.pid, expected=len(self.interested_in(resolved))
        )
        groups = [
            group
            for group in chosen.groups
            if group.includes(resolved) or group == resolved
        ]
        chosen.publish_in_groups(event, groups)
        return event
