"""Shared machinery for the baseline systems.

Each baseline is an infect-and-die gossip over one or more *groups*: on the
first reception of an event in group ``G``, a process forwards it to
``log(|G|)+c`` members sampled from its ``G``-table. The baselines differ
only in how groups are formed (one global group / one per topic / arbitrary
clusters) and in which groups an event is injected.

Group identity reuses :class:`repro.topics.Topic` so the existing
per-group message accounting (Figs. 8/9 counters) applies unchanged;
cluster groups of the hierarchical baseline use synthetic topics under
``.cluster``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.core.events import Event, EventFactory, EventId
from repro.errors import ConfigError, UnknownTopic
from repro.failures.model import FailureModel
from repro.membership.view import PartialView, ProcessDescriptor
from repro.net.latency import LatencyModel, ZERO_LATENCY
from repro.net.message import EventMessage, Message, Scope
from repro.runtime import SimulationHarness
from repro.topics.topic import Topic
from repro.validation import check_finite, check_positive


@dataclass
class GroupState:
    """One process's participation in one gossip group."""

    group: Topic
    view: PartialView
    fanout: int


class BaselineProcess:
    """A process participating in one or more infect-and-die gossip groups.

    ``interest`` is what the process actually subscribed to — used only for
    parasite accounting; the gossip layer forwards everything it receives,
    which is precisely why broadcast-style baselines pay parasite messages.
    """

    def __init__(
        self,
        pid: int,
        interest: Topic,
        harness: SimulationHarness,
    ):
        self.pid = pid
        self.interest = interest
        self._harness = harness
        self.rng = harness.rngs.stream(f"baseline-process/{pid}")
        self.groups: dict[Topic, GroupState] = {}
        self.seen: set[EventId] = set()
        self.delivered: list[Event] = []
        self._event_factory = EventFactory(pid)

    @property
    def descriptor(self) -> ProcessDescriptor:
        """This process as stored in membership tables (keyed by interest)."""
        return ProcessDescriptor(self.pid, self.interest)

    # ------------------------------------------------------------------
    # Group membership
    # ------------------------------------------------------------------
    def join_group(self, group: Topic, view: PartialView, fanout: int) -> None:
        """Install a statically drawn table for ``group``."""
        self.groups[group] = GroupState(group, view, fanout)

    @property
    def memory_footprint(self) -> int:
        """Total membership entries across all groups (§VI-E.2 measured)."""
        return sum(len(state.view) for state in self.groups.values())

    @property
    def table_count(self) -> int:
        """Number of membership tables this process maintains."""
        return len(self.groups)

    # ------------------------------------------------------------------
    # Gossip
    # ------------------------------------------------------------------
    def publish_in_groups(
        self, event: Event, groups: list[Topic]
    ) -> None:
        """Inject ``event`` into each listed group (publisher side)."""
        self.seen.add(event.event_id)
        self._deliver(event)
        for group in groups:
            self._forward(event, group)

    def handle_message(self, message: Message) -> None:
        """First reception: deliver and forward within the same group."""
        if not isinstance(message, EventMessage):
            raise ConfigError(
                f"baseline process {self.pid} got unexpected "
                f"{type(message).__name__}"
            )
        event = message.event
        if event.event_id in self.seen:
            return
        self.seen.add(event.event_id)
        self._deliver(event)
        self._on_first_reception(event, message.scope)

    def _on_first_reception(self, event: Event, scope: Scope) -> None:
        """Default: forward in the group the event arrived in. The
        hierarchical baseline overrides this to add cross-cluster gossip."""
        self._forward(event, scope.group)

    def _forward(self, event: Event, group: Topic) -> None:
        state = self.groups.get(group)
        if state is None:
            return  # not a member (stale table entry pointed at us)
        targets = state.view.sample(state.fanout, self.rng, exclude=(self.pid,))
        if not targets:
            return
        self.multicast(
            [descriptor.pid for descriptor in targets],
            EventMessage(
                sender=self.pid, event=event, scope=Scope("intra", group)
            ),
        )

    def _deliver(self, event: Event) -> None:
        self.delivered.append(event)
        self._harness.tracker.record_delivery(
            self.pid, event, self._harness.now
        )

    def send(self, target: int, message: Message) -> None:
        """Send via the shared unreliable network."""
        self._harness.network.send(self.pid, target, message)

    def multicast(self, targets: list[int], message: Message) -> None:
        """Send one message to many targets via the batched fast path."""
        self._harness.network.multicast(self.pid, targets, message)

    def make_event(self, topic: Topic, payload: Any) -> Event:
        """Mint a new event from this process."""
        return self._event_factory.create(topic, payload, self._harness.now)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(pid={self.pid}, "
            f"interest={self.interest.name}, groups={len(self.groups)})"
        )


class BaselineSystem:
    """Common facade: process management, publishing, reliability queries.

    Subclasses implement :meth:`_groups_of` (which groups a process joins),
    :meth:`_publish_groups` (where an event is injected) and
    :meth:`finalize_membership` parameters.
    """

    #: gossip constants shared by the baselines (paper defaults)
    def __init__(
        self,
        *,
        seed: int = 0,
        p_success: float = 1.0,
        latency: LatencyModel = ZERO_LATENCY,
        failure_model: FailureModel | None = None,
        b: float = 3.0,
        c: float = 5.0,
        log_base: float = math.e,
        trace: bool = False,
    ):
        self.harness = SimulationHarness(
            seed=seed,
            p_success=p_success,
            latency=latency,
            failure_model=failure_model,
            trace=trace,
        )
        check_finite(b, "b")
        check_finite(c, "c")
        check_positive(log_base, "log_base")
        self.b = b
        self.c = c
        self.log_base = log_base
        self._processes: dict[int, BaselineProcess] = {}
        self._interest_groups: dict[Topic, list[BaselineProcess]] = {}
        self._finalized = False

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @property
    def engine(self):
        """The discrete-event engine."""
        return self.harness.engine

    @property
    def stats(self):
        """Network statistics."""
        return self.harness.stats

    @property
    def tracker(self):
        """The delivery tracker."""
        return self.harness.tracker

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Run the simulation to quiescence."""
        return self.harness.run_until_idle(max_events=max_events)

    def fanout(self, group_size: int) -> int:
        """Infect-and-die fan-out ``log(S)+c`` (≥1)."""
        log_term = (
            math.log(group_size, self.log_base) if group_size > 1 else 0.0
        )
        return max(1, math.ceil(log_term + self.c))

    def table_capacity(self, group_size: int) -> int:
        """Membership table size ``(b+1)·log(S)`` (≥1)."""
        if group_size <= 1:
            return 1
        return max(1, math.ceil((self.b + 1) * math.log(group_size, self.log_base)))

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def _make_process(self, interest: Topic) -> BaselineProcess:
        return BaselineProcess(self.harness.next_pid(), interest, self.harness)

    def add_process(self, interest: Topic | str) -> BaselineProcess:
        """Create one process subscribed to ``interest``."""
        resolved = (
            Topic.parse(interest) if isinstance(interest, str) else interest
        )
        process = self._make_process(resolved)
        self.harness.network.register(process)
        self._processes[process.pid] = process
        self._interest_groups.setdefault(resolved, []).append(process)
        return process

    def add_group(self, interest: Topic | str, count: int) -> list[BaselineProcess]:
        """Create ``count`` processes subscribed to ``interest``."""
        if count < 1:
            raise ConfigError(f"count must be >= 1, got {count}")
        return [self.add_process(interest) for _ in range(count)]

    # ------------------------------------------------------------------
    # Queries shared by all baselines
    # ------------------------------------------------------------------
    @property
    def processes(self) -> list[BaselineProcess]:
        """All processes, in creation order."""
        return [self._processes[pid] for pid in sorted(self._processes)]

    def interested_in(self, topic: Topic | str) -> list[BaselineProcess]:
        """Processes whose subscription *includes* events of ``topic``.

        A subscriber of ``Ta`` is interested in events of every subtopic,
        so this returns subscribers of ``topic`` and of its supertopics.
        """
        resolved = Topic.parse(topic) if isinstance(topic, str) else topic
        return [
            p for p in self.processes if p.interest.includes(resolved)
        ]

    def subscribers_of(self, topic: Topic | str) -> list[BaselineProcess]:
        """Processes subscribed to exactly ``topic``."""
        resolved = Topic.parse(topic) if isinstance(topic, str) else topic
        return list(self._interest_groups.get(resolved, []))

    def interests(self) -> dict[int, Topic]:
        """pid → subscription, for parasite accounting."""
        return {pid: p.interest for pid, p in self._processes.items()}

    def delivered_fraction(
        self, event: Event, topic: Topic | str, *, alive_only: bool = True
    ) -> float:
        """Fraction of processes subscribed to exactly ``topic`` that got
        ``event`` (comparable to DaMulticastSystem.delivered_fraction)."""
        from repro.metrics.delivery import delivered_fraction

        pids = [p.pid for p in self.subscribers_of(topic)]
        is_alive = (
            self.harness.is_alive if alive_only else (lambda pid: True)
        )
        return delivered_fraction(self.tracker, event.event_id, pids, is_alive)

    def parasite_count(self) -> int:
        """Total parasite deliveries so far (§I's efficiency criterion)."""
        from repro.metrics.delivery import parasite_deliveries

        return parasite_deliveries(self.tracker, self.interests())

    def memory_footprints(self) -> list[int]:
        """Measured membership entries per process."""
        return [p.memory_footprint for p in self.processes]

    # ------------------------------------------------------------------
    # To be provided by each baseline
    # ------------------------------------------------------------------
    def finalize_membership(self) -> None:
        """Draw all static tables (baseline-specific)."""
        raise NotImplementedError

    def publish(
        self,
        topic: Topic | str,
        payload: Any = None,
        *,
        publisher: BaselineProcess | None = None,
    ) -> Event:
        """Publish an event on ``topic`` (baseline-specific injection)."""
        raise NotImplementedError

    def _pick_publisher(
        self, topic: Topic, publisher: BaselineProcess | None
    ) -> BaselineProcess:
        if publisher is not None:
            return publisher
        candidates = [
            p
            for p in self.subscribers_of(topic)
            if self.harness.is_alive(p.pid)
        ]
        if not candidates:
            raise UnknownTopic(
                f"no alive process subscribed to {topic.name} to publish from"
            )
        return self.harness.rngs.stream("publish").choice(candidates)

    def _require_finalized(self) -> None:
        if not self._finalized:
            raise ConfigError(
                "call finalize_membership() before publishing"
            )
