"""Baseline (c): hierarchical gossip-based broadcast (two-level, per [10]).

"The basic idea is to create small subgroups (that do not depend on the
interests of the processes in each group) and connect these groups to
reduce the overall memory complexity. The system is split in two levels.
The first level contains groups of processes that exchange events between
them (intra group events). The second level is responsible for propagating
the events between the groups." (§VI-E)

Concretely: all processes are partitioned into ``N`` interest-oblivious
clusters of roughly ``m = n/N`` processes. Each process keeps two tables —
an in-cluster table of size ``(b+1)·log(m)`` (fan-out ``log(m)+c1``) and a
cross-cluster table of size ``(b+1)·log(N)`` holding processes of *other*
clusters (fan-out ``log(N)+c2``). On the first reception of an event, a
process forwards it both inside its cluster and across clusters. Memory is
``log(N)+log(m)+c1+c2``; every process still receives every event, so
parasite deliveries remain maximal.
"""

from __future__ import annotations

import math
from itertools import groupby
from typing import Any

from repro.baselines.common import BaselineProcess, BaselineSystem
from repro.core.events import Event
from repro.errors import ConfigError
from repro.membership.static import GroupSampler, GroupTableBuilder
from repro.membership.view import ProcessDescriptor
from repro.net.message import EventMessage, Scope
from repro.topics.topic import Topic
from repro.validation import check_finite

#: Synthetic parent topic for cluster group identities.
CLUSTERS_ROOT = Topic.parse(".cluster")


def cluster_topic(index: int) -> Topic:
    """The synthetic group identity of cluster ``index``."""
    return CLUSTERS_ROOT.child(f"c{index}")


class HierarchicalProcess(BaselineProcess):
    """A process with an in-cluster and a cross-cluster table."""

    def __init__(self, pid: int, interest: Topic, harness) -> None:
        super().__init__(pid, interest, harness)
        self.cluster: Topic | None = None

    def _on_first_reception(self, event: Event, scope: Scope) -> None:
        # Two-level forwarding: inside our own cluster, and across clusters
        # — regardless of which level the event arrived on.
        assert self.cluster is not None
        self._forward(event, self.cluster)
        self._forward_cross_cluster(event)

    def _forward_cross_cluster(self, event: Event) -> None:
        state = self.groups.get(CLUSTERS_ROOT)
        if state is None:
            return
        targets = state.view.sample(state.fanout, self.rng, exclude=(self.pid,))
        assert self.cluster is not None
        # One batched multicast per destination cluster (consecutive runs
        # preserve the sampled target order, and with it the RNG draws).
        for destination, run in groupby(targets, key=lambda d: d.topic):
            self.multicast(
                [descriptor.pid for descriptor in run],
                EventMessage(
                    sender=self.pid,
                    event=event,
                    scope=Scope("inter", self.cluster, destination),
                ),
            )


class HierarchicalGossipSystem(BaselineSystem):
    """Two-level interest-oblivious gossip broadcast."""

    def __init__(
        self,
        *,
        n_clusters: int = 10,
        c2: float | None = None,
        **kwargs: Any,
    ):
        super().__init__(**kwargs)
        if n_clusters < 1:
            raise ConfigError(f"n_clusters must be >= 1, got {n_clusters}")
        self.n_clusters = n_clusters
        if c2 is not None:
            check_finite(c2, "c2")
        #: cross-cluster fan-out constant c2 (defaults to c1 = self.c)
        self.c2 = self.c if c2 is None else c2
        self._clusters: dict[Topic, list[HierarchicalProcess]] = {}

    def _make_process(self, interest: Topic) -> HierarchicalProcess:
        return HierarchicalProcess(
            self.harness.next_pid(), interest, self.harness
        )

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def finalize_membership(self) -> None:
        """Partition processes into clusters and draw both tables each."""
        rng = self.harness.rngs.stream("static-membership")
        processes = list(self.processes)
        if len(processes) < self.n_clusters:
            raise ConfigError(
                f"{len(processes)} processes cannot fill "
                f"{self.n_clusters} clusters"
            )
        shuffled = processes[:]
        rng.shuffle(shuffled)
        self._clusters = {
            cluster_topic(i): [] for i in range(self.n_clusters)
        }
        cluster_keys = list(self._clusters)
        for index, process in enumerate(shuffled):
            key = cluster_keys[index % self.n_clusters]
            self._clusters[key].append(process)  # type: ignore[arg-type]
            process.cluster = key  # type: ignore[attr-defined]

        # In-cluster tables: (b+1)·log(m), fan-out log(m)+c1. One shared
        # build context per cluster (draw-identical to the former
        # per-member exclusion lists).
        for key, members in self._clusters.items():
            size = len(members)
            capacity = self.table_capacity(size)
            fanout = self.fanout(size)
            descriptors = [ProcessDescriptor(p.pid, key) for p in members]
            builder = GroupTableBuilder(descriptors)
            for index, process in enumerate(members):
                view = builder.table_at(index, capacity, rng)
                process.join_group(key, view, fanout)

        # Cross-cluster tables: (b+1)·log(N) random processes of *other*
        # clusters, fan-out log(N)+c2; one shared sampler per cluster's
        # outsider population.
        n = self.n_clusters
        cross_capacity = self.table_capacity(n)
        log_term = math.log(n, self.log_base) if n > 1 else 0.0
        cross_fanout = max(1, math.ceil(log_term + self.c2))
        for key, members in self._clusters.items():
            outsiders = GroupSampler(
                [
                    ProcessDescriptor(p.pid, other_key)
                    for other_key, others in self._clusters.items()
                    if other_key != key
                    for p in others
                ]
            )
            for process in members:
                view = outsiders.table(cross_capacity, rng)
                process.join_group(CLUSTERS_ROOT, view, cross_fanout)
        self._finalized = True

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish(
        self,
        topic: Topic | str,
        payload: Any = None,
        *,
        publisher: BaselineProcess | None = None,
    ) -> Event:
        """Inject an event at its publisher's cluster (both levels)."""
        self._require_finalized()
        resolved = Topic.parse(topic) if isinstance(topic, str) else topic
        chosen = self._pick_publisher(resolved, publisher)
        assert isinstance(chosen, HierarchicalProcess)
        event = chosen.make_event(resolved, payload)
        # Interest-oblivious clusters flood every process (§VI-E): all of
        # them are intended receivers.
        self.tracker.record_publish(
            event, chosen.pid, expected=len(self.processes)
        )
        assert chosen.cluster is not None
        chosen.seen.add(event.event_id)
        chosen.delivered.append(event)
        self.tracker.record_delivery(chosen.pid, event, self.harness.now)
        chosen._forward(event, chosen.cluster)
        chosen._forward_cross_cluster(event)
        return event

    def clusters(self) -> dict[Topic, list[HierarchicalProcess]]:
        """The cluster partition (after finalization)."""
        return {key: list(members) for key, members in self._clusters.items()}
