"""The paper's three comparison algorithms (§VI-E).

All baselines run on the same substrate as daMulticast — same engine,
network, failure models and statically drawn membership tables ("for
fairness, all approaches use the same underlying membership algorithm") —
and are measured by the same metrics layer:

* :class:`~repro.baselines.broadcast.GossipBroadcastSystem` — approach
  (a): every event is gossiped through one system-wide group; every
  process receives everything (maximal parasite messages), tables of size
  ``(b+1)·log(n)``.
* :class:`~repro.baselines.multicast.GossipMulticastSystem` — approach
  (b): one gossip group per topic; a subscriber of ``Ta`` joins the groups
  of ``Ta`` *and every subtopic* (§IV-A pattern 1), paying up to ``t``
  membership tables but receiving no parasite events.
* :class:`~repro.baselines.hierarchical.HierarchicalGossipSystem` —
  approach (c): the two-level hierarchical scheme of [10]; processes are
  partitioned into ``N`` interest-oblivious clusters of size ``m``, events
  gossip inside the cluster and across clusters, giving
  ``log(N)+log(m)+c1+c2`` memory but, again, parasite messages everywhere.
"""

from repro.baselines.broadcast import GossipBroadcastSystem
from repro.baselines.common import BaselineProcess, BaselineSystem
from repro.baselines.hierarchical import HierarchicalGossipSystem
from repro.baselines.multicast import GossipMulticastSystem
from repro.baselines.naive_publisher import NaivePublisherSystem

__all__ = [
    "BaselineProcess",
    "BaselineSystem",
    "GossipBroadcastSystem",
    "GossipMulticastSystem",
    "HierarchicalGossipSystem",
    "NaivePublisherSystem",
]
