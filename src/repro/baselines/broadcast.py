"""Baseline (a): gossip-based broadcast.

"Each time an event must be sent, it is broadcast in the entire system"
(§VI-E). One global gossip group contains every process regardless of
interest; tables have size ``(b+1)·log(n)`` and fan-out is ``log(n)+c``
with ``n`` the total system size.

Consequences measured by the benchmarks: message complexity
``O(n·log n)`` instead of ``O(S_Tmax·log S_Tmax)``, reliability
``e^{-e^{-c}}`` over the *whole* system, and maximal parasite deliveries —
every process receives every event, interested or not.
"""

from __future__ import annotations

from typing import Any

from repro.baselines.common import BaselineProcess, BaselineSystem
from repro.core.events import Event
from repro.membership.static import GroupTableBuilder
from repro.membership.view import ProcessDescriptor
from repro.topics.topic import Topic

#: Synthetic group identity for "the entire system".
GLOBAL_GROUP = Topic.parse(".broadcast-all")


class GossipBroadcastSystem(BaselineSystem):
    """One global infect-and-die gossip group over all processes."""

    def finalize_membership(self) -> None:
        """Draw each process's single global table of size ``(b+1)·log(n)``."""
        rng = self.harness.rngs.stream("static-membership")
        everyone = [
            ProcessDescriptor(p.pid, GLOBAL_GROUP) for p in self.processes
        ]
        n = len(everyone)
        capacity = self.table_capacity(n)
        fanout = self.fanout(n)
        builder = GroupTableBuilder(everyone)
        for index, process in enumerate(self.processes):
            view = builder.table_at(index, capacity, rng)
            process.join_group(GLOBAL_GROUP, view, fanout)
        self._finalized = True

    def publish(
        self,
        topic: Topic | str,
        payload: Any = None,
        *,
        publisher: BaselineProcess | None = None,
    ) -> Event:
        """Broadcast an event of ``topic`` through the global group."""
        self._require_finalized()
        resolved = Topic.parse(topic) if isinstance(topic, str) else topic
        chosen = self._pick_publisher(resolved, publisher)
        event = chosen.make_event(resolved, payload)
        # Broadcast floods the global group: every process is an intended
        # receiver (interested or not) — the parasite cost made measurable.
        self.tracker.record_publish(
            event, chosen.pid, expected=len(self.processes)
        )
        chosen.publish_in_groups(event, [GLOBAL_GROUP])
        return event
