"""Shared simulation harness: one bundle of clock/network/rng/metrics.

Both :class:`repro.core.system.DaMulticastSystem` and the baseline systems
need the same substrate wiring — a deterministic clock, named RNG streams,
an unreliable network with statistics, a delivery tracker and optional
tracing. Centralizing it keeps every protocol measured under identical
conditions, which the paper's comparison explicitly requires ("for
fairness, all approaches use the same underlying membership algorithm" —
and, here, the same network and failure substrate too).

The harness is time-source-agnostic: by default it builds a discrete-event
:class:`~repro.sim.engine.Engine` (the virtual-time oracle every golden
test replays against), but any :class:`~repro.sim.clock.Clock` — e.g. the
live runtime's wall-clock :class:`~repro.service.clock.AsyncClock` — can
be injected together with a matching delivery
:class:`~repro.net.transport.Transport`. The protocol core above never
notices the difference.
"""

from __future__ import annotations

import itertools

from repro.errors import ConfigError
from repro.failures.model import FailureModel
from repro.metrics.collector import DeliveryTracker
from repro.metrics.streaming import StreamingDeliveryTracker
from repro.net.latency import LatencyModel, ZERO_LATENCY
from repro.net.network import Network
from repro.net.stats import NetworkStats
from repro.net.transport import Transport
from repro.sim.clock import Clock
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceLog


class SimulationHarness:
    """Clock + RNG registry + network + metrics, wired deterministically."""

    def __init__(
        self,
        *,
        seed: int = 0,
        p_success: float = 1.0,
        latency: LatencyModel = ZERO_LATENCY,
        failure_model: FailureModel | None = None,
        trace: bool = False,
        tracker: str | DeliveryTracker | StreamingDeliveryTracker = "full",
        clock: Clock | None = None,
        transport: Transport | None = None,
    ):
        if isinstance(tracker, str) and tracker not in ("full", "streaming"):
            raise ConfigError(
                f"tracker must be 'full' or 'streaming', got {tracker!r}"
            )
        #: the time source; a fresh discrete-event Engine unless injected
        self.clock: Clock = Engine() if clock is None else clock
        #: historical name for the clock — every existing call site reads
        #: ``harness.engine``, and when the clock *is* an Engine the name
        #: is also accurate
        self.engine = self.clock
        self.rngs = RngRegistry(seed)
        self.trace = TraceLog(enabled=trace)
        self.stats = NetworkStats()
        self.network = Network(
            self.clock,
            self.rngs.stream("network"),
            p_success=p_success,
            latency=latency,
            failure_model=failure_model,
            stats=self.stats,
            trace=self.trace,
            transport=transport,
        )
        #: ``tracker="full"`` keeps per-(event, pid) records (the figures'
        #: raw material); ``"streaming"`` folds deliveries into O(topics)
        #: per-topic aggregates for 10⁵–10⁶-process runs. A pre-built
        #: tracker instance is adopted as-is — how the scenario layer
        #: installs a windowed ``StreamingDeliveryTracker(window=...)``
        #: for the graceful-degradation series.
        if isinstance(tracker, str):
            self.tracker = (
                StreamingDeliveryTracker() if tracker == "streaming"
                else DeliveryTracker()
            )
        else:
            self.tracker = tracker
        self._pid_counter = itertools.count(0)

    def next_pid(self) -> int:
        """Allocate the next process id."""
        return next(self._pid_counter)

    def reserve_pid_block(self, count: int) -> range:
        """Allocate ``count`` consecutive process ids, returned as a range.

        The columnar backend gives each group one contiguous pid block so
        membership reduces to index arithmetic; reservation goes through
        the same counter as :meth:`next_pid`, so block and per-process
        allocation can be mixed without collisions.
        """
        if count < 1:
            raise ConfigError(f"count must be >= 1, got {count}")
        base = next(self._pid_counter)
        for _ in range(count - 1):
            next(self._pid_counter)
        return range(base, base + count)

    @property
    def now(self) -> float:
        """Current time (virtual or wall-clock, depending on the clock)."""
        return self.clock.now

    def _drivable(self) -> Engine:
        """The clock as a drivable engine (virtual time only).

        A wall-clock :class:`~repro.service.clock.AsyncClock` advances by
        itself — ``run()`` is meaningless there and the live runtime's
        pump loop takes its place.
        """
        runner = self.clock
        if not hasattr(runner, "run"):
            raise ConfigError(
                f"{type(runner).__name__} cannot be driven with run(); "
                "only a discrete-event Engine clock supports it"
            )
        return runner

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Drive the engine (see :meth:`repro.sim.engine.Engine.run`)."""
        return self._drivable().run(until=until, max_events=max_events)

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Run to quiescence."""
        return self._drivable().run_until_idle(max_events=max_events)

    def is_alive(self, pid: int) -> bool:
        """Ground-truth liveness of ``pid`` now."""
        return self.network.is_alive(pid)

    def __repr__(self) -> str:
        return (
            f"SimulationHarness(seed={self.rngs.master_seed}, "
            f"actors={len(self.network)}, now={self.now})"
        )
