"""The unreliable best-effort network connecting simulated processes.

Transport pipeline
------------------

Every transmission runs the following six-stage pipeline (each stage may
drop the message, and every outcome is counted in
:class:`~repro.net.stats.NetworkStats`):

1. the send attempt is recorded (this is what the paper's message-complexity
   figures count — a lost message still costs its transmission);
2. a dead sender cannot transmit (guards protocol bugs under churn);
3. the failure model may block the transmission (Fig. 11's
   weakly-consistent perceived failures);
4. the partition model may block the pair;
5. the channel loses the message with probability ``1 - p_success``
   (the paper's ``p_succ = 0.85`` in §VII);
6. a latency is sampled and delivery is scheduled; if the target is dead
   *at delivery time* the message is dropped (stillborn targets, churn).

When a link-fault model is installed (:meth:`Network.install_faults`,
:mod:`repro.net.faults`) an extra stage runs between 5 and 6: the model
may *lose* the message (drop reason ``fault_loss``), *duplicate* it
(``copies`` identical deliveries, absorbed by protocol-level dedup) or
*spike* its latency — each effect counted in
``NetworkStats.faults_by_reason``. Fault draws use a dedicated RNG, so
uninstalled (or :class:`~repro.net.faults.NoFaults`) runs are
bit-identical to pre-fault-layer trajectories — the hook is skipped and
consumes nothing.

Batched fast path
-----------------

Every gossip step of the protocols is a *fan-out* — Fig. 7's DISSEMINATE
alone sends to ``log(S)+c`` topic-table members plus up to ``z`` supergroup
contacts — so :meth:`Network.multicast` runs the same six stages as one
vectorized pass over a target list:

* the sender-side stages (2–5) execute per target *in target order*, with
  exactly the RNG draws :meth:`Network.send` would make, so a multicast is
  bit-identical to the equivalent loop of sends under the same seed;
* statistics are recorded in bulk (``record_sent_many`` /
  ``record_dropped_many`` / ``record_delivered_many``), once per outcome
  class instead of once per destination;
* surviving deliveries that share a latency share **one** engine entry —
  an applied ``(fn, args)`` array-batch entry per latency class
  (:meth:`repro.sim.engine.Engine.schedule_apply`) instead of one closure
  and one heap push per destination; with zero latency (the paper's
  synchronous rounds, the dominant case) an entire fan-out is one entry in
  the engine's FIFO bucket. The entry carries ``count=len(batch)``, so
  ``Engine.processed``/``pending`` account per destination exactly like a
  loop of sends;
* stage-known no-op models (``AlwaysAlive``, ``FullyConnected``, constant
  latency) are detected once per multicast and skipped per target — they
  consume no randomness, so skipping them cannot change a trajectory.

Ordering caveats (documented, not observable by well-behaved actors): the
trace log groups a multicast's ``net.sent`` records before its drop
records, and batched deliveries evaluate target liveness at the shared
delivery timestamp — identical outcomes unless an actor's
``handle_message`` changes ground-truth liveness of a co-delivered target
at that same instant, which no in-repo model does.

Actors are any objects with a ``pid`` attribute and a
``handle_message(message)`` method. At columnar scale one Python object
per process is itself the memory wall, so :meth:`Network.register_block`
registers a single *block actor* for a contiguous pid range ``[start,
stop)``; it receives whole delivery batches through
``handle_batch(sender, targets, message)`` instead of one
``handle_message`` call per pid.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from typing import Iterable, Protocol, runtime_checkable

from repro.errors import ConfigError, UnknownActor
from repro.failures.model import AlwaysAlive, FailureModel
from repro.net.faults import LinkFaultModel, NoFaults
from repro.net.latency import ConstantLatency, LatencyModel, ZERO_LATENCY
from repro.net.message import Message
from repro.net.partitions import FullyConnected, PartitionModel
from repro.net.stats import (
    DROP_CHANNEL_LOSS,
    DROP_DEAD_SENDER,
    DROP_DEAD_TARGET,
    DROP_FAULT_LOSS,
    DROP_PARTITIONED,
    DROP_PERCEIVED_FAILED,
    FAULT_DELAY_SPIKE,
    FAULT_DUPLICATE,
    FAULT_LOSS,
    NetworkStats,
)
from repro.net.transport import EngineTransport, Transport
from repro.sim.clock import Clock
from repro.sim.trace import TraceLog


@runtime_checkable
class Actor(Protocol):
    """Anything that can be registered on the network."""

    pid: int

    def handle_message(self, message: Message) -> None:
        """Process one delivered message."""
        ...  # pragma: no cover - protocol


@runtime_checkable
class BlockActor(Protocol):
    """One actor standing in for a contiguous pid range.

    The columnar backend registers a single object per *group* rather than
    one per process; the network hands it delivery batches with the
    resolved target pids so the actor can index straight into its arrays.
    """

    def handle_batch(
        self, sender: int, targets: "tuple[int, ...]", message: Message
    ) -> None:
        """Process one message delivered to every pid in ``targets``."""
        ...  # pragma: no cover - protocol


class Network:
    """Best-effort message transport over a clock and delivery transport.

    ``clock`` supplies timestamps for the sender-side pipeline;
    ``transport`` executes the surviving deliveries. The default
    transport dispatches onto the clock's own ``schedule_apply`` (the
    discrete-event heap) — the historical behavior, bit-for-bit; the live
    runtime passes a :class:`~repro.net.transport.QueueTransport` instead.
    """

    def __init__(
        self,
        clock: Clock,
        rng: random.Random,
        *,
        p_success: float = 1.0,
        latency: LatencyModel = ZERO_LATENCY,
        failure_model: FailureModel | None = None,
        partition_model: PartitionModel | None = None,
        stats: NetworkStats | None = None,
        trace: TraceLog | None = None,
        faults: LinkFaultModel | None = None,
        fault_rng: random.Random | None = None,
        transport: Transport | None = None,
    ):
        if not 0.0 <= p_success <= 1.0:
            raise ConfigError(f"p_success must be in [0,1], got {p_success}")
        self._clock = clock
        self._transport: Transport = (
            EngineTransport(clock) if transport is None else transport
        )
        self._rng = rng
        self.p_success = p_success
        self.latency = latency  # property: also caches the sample_link hook
        self.install_faults(faults, fault_rng)
        self.failure_model: FailureModel = failure_model or AlwaysAlive()
        self.partition_model: PartitionModel = partition_model or FullyConnected()
        self.stats = stats if stats is not None else NetworkStats()
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        self._actors: dict[int, Actor] = {}
        #: block actors: sorted, non-overlapping (start, stop, actor) ranges
        self._blocks: list[tuple[int, int, BlockActor]] = []
        self._block_starts: list[int] = []
        #: last resolved block — fan-outs target one group, so this hits
        self._block_cache: tuple[int, int, BlockActor] | None = None
        #: sorted pid tuple, rebuilt lazily after registrations
        self._pids_cache: tuple[int, ...] | None = None

    @property
    def clock(self) -> Clock:
        """The time source timestamps are read from."""
        return self._clock

    @property
    def transport(self) -> Transport:
        """The delivery transport surviving messages dispatch through."""
        return self._transport

    # ------------------------------------------------------------------
    # Latency (the per-link hook is resolved once per model, not per send)
    # ------------------------------------------------------------------
    @property
    def latency(self) -> LatencyModel:
        """The installed latency model."""
        return self._latency

    @latency.setter
    def latency(self, model: LatencyModel) -> None:
        self._latency = model
        # Link-class models sample per (sender, target) pair; resolving the
        # optional hook here keeps the per-message send() path free of a
        # getattr on dynamic mode's one-at-a-time control traffic.
        self._sample_link = getattr(model, "sample_link", None)

    # ------------------------------------------------------------------
    # Link faults (resolved once per model, not per send)
    # ------------------------------------------------------------------
    @property
    def faults(self) -> LinkFaultModel | None:
        """The installed link-fault model (None when faults are off)."""
        return self._faults

    def install_faults(
        self,
        model: LinkFaultModel | None,
        rng: random.Random | None = None,
    ) -> None:
        """Install a link-fault model drawing from its own dedicated ``rng``.

        ``None`` or :class:`~repro.net.faults.NoFaults` uninstalls the
        hook entirely: the transmission paths make **zero** fault-related
        RNG draws, so fault-free runs stay bit-identical to pre-fault-layer
        trajectories. An active model requires ``rng`` — a stream separate
        from the network's own, so enabling faults never shifts the
        channel-loss or latency draws (the scenario layer derives it from
        ``derive_seed(seed, "spec/faults")``).
        """
        if model is None or type(model) is NoFaults:
            self._faults = None
            self._fault_rng = None
            self._fault_hook = None
            return
        if not callable(getattr(model, "transmit", None)):
            raise ConfigError(
                f"faults must be a link-fault model, got {model!r}"
            )
        if rng is None:
            raise ConfigError(
                "an active fault model needs a dedicated fault rng "
                "(pass rng=...; it must not be the network's own stream)"
            )
        self._faults = model
        self._fault_rng = rng
        self._fault_hook = model.transmit

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, actor: Actor) -> None:
        """Attach an actor; its ``pid`` must be unique on this network."""
        pid = actor.pid
        if pid in self._actors or self._block_for(pid) is not None:
            raise ConfigError(f"process id {pid} is already registered")
        self._actors[pid] = actor
        self._pids_cache = None

    def register_block(self, actor: BlockActor, start: int, stop: int) -> None:
        """Attach one block actor covering the pid range ``[start, stop)``.

        The range must be non-empty and must not overlap any registered
        pid — per-pid or block. Deliveries to any pid in the range reach
        ``actor.handle_batch(sender, targets, message)``.
        """
        if stop <= start:
            raise ConfigError(f"empty pid block [{start}, {stop})")
        for b_start, b_stop, _ in self._blocks:
            if start < b_stop and b_start < stop:
                raise ConfigError(
                    f"pid block [{start}, {stop}) overlaps [{b_start}, {b_stop})"
                )
        for pid in self._actors:
            if start <= pid < stop:
                raise ConfigError(
                    f"pid block [{start}, {stop}) overlaps registered pid {pid}"
                )
        self._blocks.append((start, stop, actor))
        self._blocks.sort(key=lambda block: block[0])
        self._block_starts = [block[0] for block in self._blocks]
        self._block_cache = None
        self._pids_cache = None

    def _block_for(self, pid: int) -> BlockActor | None:
        """The block actor owning ``pid``, or None."""
        cached = self._block_cache
        if cached is not None and cached[0] <= pid < cached[1]:
            return cached[2]
        starts = self._block_starts
        if not starts:
            return None
        index = bisect_right(starts, pid) - 1
        if index >= 0:
            block = self._blocks[index]
            if pid < block[1]:
                self._block_cache = block
                return block[2]
        return None

    def actor(self, pid: int) -> Actor | BlockActor:
        """Look an actor up by process id (a block pid resolves to its
        block actor)."""
        actor = self._actors.get(pid)
        if actor is not None:
            return actor
        block = self._block_for(pid)
        if block is not None:
            return block
        raise UnknownActor(f"no actor registered with pid {pid}")

    def __contains__(self, pid: int) -> bool:
        return pid in self._actors or self._block_for(pid) is not None

    def __len__(self) -> int:
        return len(self._actors) + sum(
            stop - start for start, stop, _ in self._blocks
        )

    def pid_view(self) -> tuple[int, ...]:
        """All registered process ids, sorted, as a shared immutable view.

        The tuple is built once per registration epoch and reused until the
        next ``register``/``register_block`` invalidates it — callers that
        only iterate (membership refresh, alive-set scans, metrics sweeps)
        skip the per-call list rebuild entirely. Iteration order is the
        same sorted order :attr:`pids` always produced, so RNG draw order
        at every call site is unchanged.
        """
        cached = self._pids_cache
        if cached is None:
            pids = list(self._actors)
            for start, stop, _ in self._blocks:
                pids.extend(range(start, stop))
            pids.sort()
            cached = self._pids_cache = tuple(pids)
        return cached

    @property
    def pids(self) -> list[int]:
        """All registered process ids, sorted (a fresh mutable copy; use
        :meth:`pid_view` to iterate without the copy)."""
        return list(self.pid_view())

    # ------------------------------------------------------------------
    # Liveness (convenience passthroughs used by protocols & metrics)
    # ------------------------------------------------------------------
    def is_alive(self, pid: int) -> bool:
        """Ground-truth liveness of ``pid`` right now."""
        return self.failure_model.is_alive(pid, self._clock.now)

    def alive_pids(self) -> list[int]:
        """All currently alive registered pids, sorted.

        Iterates the cached :meth:`pid_view` — same pids, same sorted
        order, same per-pid liveness queries as the historical
        list-rebuilding version, so trajectories are bit-identical.
        """
        failure_model = self.failure_model
        now = self._clock.now
        return [
            pid for pid in self.pid_view()
            if failure_model.is_alive(pid, now)
        ]

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def send(self, sender: int, target: int, message: Message) -> bool:
        """Attempt to transmit ``message``; returns whether delivery was scheduled.

        The return value exists for tests and diagnostics only — protocols
        must not branch on it (channels are best-effort and real senders
        cannot observe losses).
        """
        if target not in self:
            raise UnknownActor(f"no actor registered with pid {target}")
        now = self._clock.now
        self.stats.record_sent(message)
        self.trace.record(now, "net.sent", sender, target, message_kind=message.kind)

        if not self.failure_model.is_alive(sender, now):
            self._drop(message, sender, target, DROP_DEAD_SENDER)
            return False
        if self.failure_model.transmission_blocked(sender, target, now, self._rng):
            self._drop(message, sender, target, DROP_PERCEIVED_FAILED)
            return False
        if not self.partition_model.connected(sender, target, now):
            self._drop(message, sender, target, DROP_PARTITIONED)
            return False
        if self._rng.random() >= self.p_success:
            self._drop(message, sender, target, DROP_CHANNEL_LOSS)
            return False

        sample_link = self._sample_link
        delay = (
            sample_link(sender, target, self._rng)
            if sample_link is not None
            else self._latency.sample(self._rng)
        )
        fault_hook = self._fault_hook
        if fault_hook is not None:
            copies, faulted_delay = fault_hook(
                sender, target, delay, self._fault_rng
            )
            if copies == 0:
                self.stats.record_fault(FAULT_LOSS)
                self._drop(message, sender, target, DROP_FAULT_LOSS)
                return False
            if faulted_delay != delay:
                self.stats.record_fault(FAULT_DELAY_SPIKE)
                if self.trace.enabled:
                    self.trace.record(
                        now, "net.fault", sender, target,
                        message_kind=message.kind, reason=FAULT_DELAY_SPIKE,
                    )
                delay = faulted_delay
            if copies > 1:
                self.stats.record_fault(FAULT_DUPLICATE, copies - 1)
                if self.trace.enabled:
                    self.trace.record(
                        now, "net.fault", sender, target,
                        message_kind=message.kind, reason=FAULT_DUPLICATE,
                    )
                self._transport.dispatch(
                    delay,
                    self._deliver_batch,
                    (sender, (target,) * copies, message),
                    count=copies,
                )
                return True
        self._transport.dispatch(delay, self._deliver, (sender, target, message))
        return True

    def multicast(
        self, sender: int, targets: Iterable[int], message: Message
    ) -> int:
        """Transmit one ``message`` to every pid in ``targets`` (the batched
        fast path — see the module docstring).

        Semantically identical to ``for t in targets: send(sender, t,
        message)`` under the same seed: per-target RNG draws happen in
        target order, every attempt is individually counted and the same
        drop reasons apply. Returns how many deliveries were scheduled
        (diagnostics only — protocols must not branch on it).
        """
        targets = list(targets)
        if not targets:
            return 0
        actors = self._actors
        if self._blocks:
            for target in targets:
                if target not in self:
                    raise UnknownActor(f"no actor registered with pid {target}")
        else:
            for target in targets:
                if target not in actors:
                    raise UnknownActor(
                        f"no actor registered with pid {target}"
                    )
        now = self._clock.now
        stats = self.stats
        trace = self.trace
        tracing = trace.enabled
        count = len(targets)
        stats.record_sent_many(message, count)
        kind = message.kind
        if tracing:
            for target in targets:
                trace.record(now, "net.sent", sender, target, message_kind=kind)

        failure_model = self.failure_model
        if not failure_model.is_alive(sender, now):
            stats.record_dropped_many(message, DROP_DEAD_SENDER, count)
            if tracing:
                for target in targets:
                    trace.record(
                        now, "net.dropped", sender, target,
                        message_kind=kind, reason=DROP_DEAD_SENDER,
                    )
            return 0

        # Vectorized sender-side pass. The no-op built-ins are skipped per
        # target (they draw no randomness, so the trajectory is unchanged);
        # any other model is consulted per target exactly like send().
        rng = self._rng
        random_draw = rng.random
        p_success = self.p_success
        check_perceived = type(failure_model) is not AlwaysAlive
        partition_model = self.partition_model
        check_partition = type(partition_model) is not FullyConnected
        latency = self._latency
        fixed_delay = latency.delay if type(latency) is ConstantLatency else None
        sample_link = self._sample_link

        # The fault hook draws from its own dedicated rng (never the
        # network stream), so a fault-free multicast makes exactly the
        # draws it always did. A fault-lost target joins the shared drop
        # bookkeeping; a delay-spiked target simply lands in a different
        # latency-class batch (it "splits out" of its class); a
        # duplicated target appears ``copies`` times in its batch, so
        # survivors still share one engine entry per latency class.
        fault_hook = self._fault_hook
        fault_rng = self._fault_rng
        fault_loss = fault_dup = fault_spike = 0

        drop_counts: dict[str, int] = {}
        batches: dict[float, list[int]] = {}
        for target in targets:
            if check_perceived and failure_model.transmission_blocked(
                sender, target, now, rng
            ):
                reason = DROP_PERCEIVED_FAILED
            elif check_partition and not partition_model.connected(
                sender, target, now
            ):
                reason = DROP_PARTITIONED
            elif random_draw() >= p_success:
                reason = DROP_CHANNEL_LOSS
            else:
                if fixed_delay is not None:
                    delay = fixed_delay
                elif sample_link is not None:
                    delay = sample_link(sender, target, rng)
                else:
                    delay = latency.sample(rng)
                copies = 1
                if fault_hook is not None:
                    copies, faulted_delay = fault_hook(
                        sender, target, delay, fault_rng
                    )
                    if copies:
                        if faulted_delay != delay:
                            fault_spike += 1
                            if tracing:
                                trace.record(
                                    now, "net.fault", sender, target,
                                    message_kind=kind,
                                    reason=FAULT_DELAY_SPIKE,
                                )
                            delay = faulted_delay
                        if copies > 1:
                            fault_dup += copies - 1
                            if tracing:
                                trace.record(
                                    now, "net.fault", sender, target,
                                    message_kind=kind,
                                    reason=FAULT_DUPLICATE,
                                )
                if copies:
                    batch = batches.get(delay)
                    if batch is None:
                        batches[delay] = (
                            [target] if copies == 1 else [target] * copies
                        )
                    elif copies == 1:
                        batch.append(target)
                    else:
                        batch.extend((target,) * copies)
                    continue
                fault_loss += 1
                reason = DROP_FAULT_LOSS
            drop_counts[reason] = drop_counts.get(reason, 0) + 1
            if tracing:
                trace.record(
                    now, "net.dropped", sender, target,
                    message_kind=kind, reason=reason,
                )
        for reason, dropped in drop_counts.items():
            stats.record_dropped_many(message, reason, dropped)
        if fault_hook is not None:
            stats.record_fault(FAULT_LOSS, fault_loss)
            stats.record_fault(FAULT_DUPLICATE, fault_dup)
            stats.record_fault(FAULT_DELAY_SPIKE, fault_spike)

        # Each latency class becomes one applied array-batch entry — no
        # per-destination closures, and pending/processed still count every
        # destination (with zero latency — the dominant case — the whole
        # fan-out lands in the engine's FIFO bucket).
        scheduled = 0
        dispatch = self._transport.dispatch
        deliver_batch = self._deliver_batch
        # repro-lint: allow[DET003]: batches is keyed by latency class in first-occurrence order; sorting would reorder same-time deliveries and break bit-identity
        for delay, batch in batches.items():
            scheduled += len(batch)
            dispatch(
                delay,
                deliver_batch,
                (sender, tuple(batch), message),
                count=len(batch),
            )
        return scheduled

    def _deliver(self, sender: int, target: int, message: Message) -> None:
        now = self._clock.now
        if not self.failure_model.is_alive(target, now):
            self._drop(message, sender, target, DROP_DEAD_TARGET)
            return
        self.stats.record_delivered(message)
        self.trace.record(now, "net.delivered", sender, target, message_kind=message.kind)
        actor = self._actors.get(target)
        if actor is not None:
            actor.handle_message(message)
        else:
            self._block_for(target).handle_batch(sender, (target,), message)

    def _deliver_batch(
        self, sender: int, targets: tuple[int, ...], message: Message
    ) -> None:
        """Deliver one message to every surviving target of a batch.

        Target liveness is evaluated for the whole batch at the shared
        delivery timestamp, then live targets receive the message in
        order; statistics are recorded in bulk.
        """
        now = self._clock.now
        failure_model = self.failure_model
        stats = self.stats
        trace = self.trace
        tracing = trace.enabled
        kind = message.kind
        if type(failure_model) is AlwaysAlive:
            alive = targets
        else:
            alive = []
            dead = 0
            for target in targets:
                if failure_model.is_alive(target, now):
                    alive.append(target)
                else:
                    dead += 1
                    if tracing:
                        trace.record(
                            now, "net.dropped", sender, target,
                            message_kind=kind, reason=DROP_DEAD_TARGET,
                        )
            stats.record_dropped_many(message, DROP_DEAD_TARGET, dead)
        stats.record_delivered_many(message, len(alive))
        actors = self._actors
        if tracing:
            for target in alive:
                trace.record(
                    now, "net.delivered", sender, target, message_kind=kind
                )
        if not self._blocks:
            for target in alive:
                actors[target].handle_message(message)
        else:
            self._dispatch_mixed(sender, alive, message)

    def _dispatch_mixed(
        self, sender: int, alive: Iterable[int], message: Message
    ) -> None:
        """Dispatch a delivered batch when block actors are registered.

        Consecutive targets owned by the same block actor are flushed as
        one ``handle_batch`` call (fan-outs target one group, so a whole
        batch usually lands in a single call); per-pid actors still get
        ``handle_message`` individually, in order.
        """
        actors = self._actors
        run_actor: BlockActor | None = None
        run: list[int] = []
        for target in alive:
            actor = actors.get(target)
            if actor is not None:
                if run:
                    run_actor.handle_batch(sender, tuple(run), message)
                    run_actor, run = None, []
                actor.handle_message(message)
                continue
            block = self._block_for(target)
            if block is run_actor:
                run.append(target)
            else:
                if run:
                    run_actor.handle_batch(sender, tuple(run), message)
                run_actor, run = block, [target]
        if run:
            run_actor.handle_batch(sender, tuple(run), message)

    def _drop(self, message: Message, sender: int, target: int, reason: str) -> None:
        self.stats.record_dropped(message, reason)
        self.trace.record(
            self._clock.now, "net.dropped", sender, target,
            message_kind=message.kind, reason=reason,
        )

    def __repr__(self) -> str:
        return (
            f"Network({len(self)} actors, p_success={self.p_success}, "
            f"{self.failure_model!r})"
        )
