"""The unreliable best-effort network connecting simulated processes.

Every transmission runs the following pipeline (each stage may drop the
message, and every outcome is counted in :class:`~repro.net.stats.NetworkStats`):

1. the send attempt is recorded (this is what the paper's message-complexity
   figures count — a lost message still costs its transmission);
2. a dead sender cannot transmit (guards protocol bugs under churn);
3. the failure model may block the transmission (Fig. 11's
   weakly-consistent perceived failures);
4. the partition model may block the pair;
5. the channel loses the message with probability ``1 - p_success``
   (the paper's ``p_succ = 0.85`` in §VII);
6. a latency is sampled and delivery is scheduled; if the target is dead
   *at delivery time* the message is dropped (stillborn targets, churn).

Actors are any objects with a ``pid`` attribute and a
``handle_message(message)`` method.
"""

from __future__ import annotations

import random
from typing import Protocol, runtime_checkable

from repro.errors import ConfigError, UnknownActor
from repro.failures.model import AlwaysAlive, FailureModel
from repro.net.latency import LatencyModel, ZERO_LATENCY
from repro.net.message import Message
from repro.net.partitions import FullyConnected, PartitionModel
from repro.net.stats import (
    DROP_CHANNEL_LOSS,
    DROP_DEAD_SENDER,
    DROP_DEAD_TARGET,
    DROP_PARTITIONED,
    DROP_PERCEIVED_FAILED,
    NetworkStats,
)
from repro.sim.engine import Engine
from repro.sim.trace import TraceLog


@runtime_checkable
class Actor(Protocol):
    """Anything that can be registered on the network."""

    pid: int

    def handle_message(self, message: Message) -> None:
        """Process one delivered message."""
        ...  # pragma: no cover - protocol


class Network:
    """Best-effort message transport over the simulation engine."""

    def __init__(
        self,
        engine: Engine,
        rng: random.Random,
        *,
        p_success: float = 1.0,
        latency: LatencyModel = ZERO_LATENCY,
        failure_model: FailureModel | None = None,
        partition_model: PartitionModel | None = None,
        stats: NetworkStats | None = None,
        trace: TraceLog | None = None,
    ):
        if not 0.0 <= p_success <= 1.0:
            raise ConfigError(f"p_success must be in [0,1], got {p_success}")
        self._engine = engine
        self._rng = rng
        self.p_success = p_success
        self.latency = latency
        self.failure_model: FailureModel = failure_model or AlwaysAlive()
        self.partition_model: PartitionModel = partition_model or FullyConnected()
        self.stats = stats if stats is not None else NetworkStats()
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        self._actors: dict[int, Actor] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, actor: Actor) -> None:
        """Attach an actor; its ``pid`` must be unique on this network."""
        pid = actor.pid
        if pid in self._actors:
            raise ConfigError(f"process id {pid} is already registered")
        self._actors[pid] = actor

    def actor(self, pid: int) -> Actor:
        """Look an actor up by process id."""
        try:
            return self._actors[pid]
        except KeyError:
            raise UnknownActor(f"no actor registered with pid {pid}") from None

    def __contains__(self, pid: int) -> bool:
        return pid in self._actors

    def __len__(self) -> int:
        return len(self._actors)

    @property
    def pids(self) -> list[int]:
        """All registered process ids, sorted."""
        return sorted(self._actors)

    # ------------------------------------------------------------------
    # Liveness (convenience passthroughs used by protocols & metrics)
    # ------------------------------------------------------------------
    def is_alive(self, pid: int) -> bool:
        """Ground-truth liveness of ``pid`` right now."""
        return self.failure_model.is_alive(pid, self._engine.now)

    def alive_pids(self) -> list[int]:
        """All currently alive registered pids, sorted."""
        return [pid for pid in self.pids if self.is_alive(pid)]

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def send(self, sender: int, target: int, message: Message) -> bool:
        """Attempt to transmit ``message``; returns whether delivery was scheduled.

        The return value exists for tests and diagnostics only — protocols
        must not branch on it (channels are best-effort and real senders
        cannot observe losses).
        """
        if target not in self._actors:
            raise UnknownActor(f"no actor registered with pid {target}")
        now = self._engine.now
        self.stats.record_sent(message)
        self.trace.record(now, "net.sent", sender, target, message_kind=message.kind)

        if not self.failure_model.is_alive(sender, now):
            self._drop(message, sender, target, DROP_DEAD_SENDER)
            return False
        if self.failure_model.transmission_blocked(sender, target, now, self._rng):
            self._drop(message, sender, target, DROP_PERCEIVED_FAILED)
            return False
        if not self.partition_model.connected(sender, target, now):
            self._drop(message, sender, target, DROP_PARTITIONED)
            return False
        if self._rng.random() >= self.p_success:
            self._drop(message, sender, target, DROP_CHANNEL_LOSS)
            return False

        delay = self.latency.sample(self._rng)
        self._engine.schedule(delay, lambda: self._deliver(sender, target, message))
        return True

    def _deliver(self, sender: int, target: int, message: Message) -> None:
        now = self._engine.now
        if not self.failure_model.is_alive(target, now):
            self._drop(message, sender, target, DROP_DEAD_TARGET)
            return
        self.stats.record_delivered(message)
        self.trace.record(now, "net.delivered", sender, target, message_kind=message.kind)
        self._actors[target].handle_message(message)

    def _drop(self, message: Message, sender: int, target: int, reason: str) -> None:
        self.stats.record_dropped(message, reason)
        self.trace.record(
            self._engine.now, "net.dropped", sender, target,
            message_kind=message.kind, reason=reason,
        )

    def __repr__(self) -> str:
        return (
            f"Network({len(self._actors)} actors, p_success={self.p_success}, "
            f"{self.failure_model!r})"
        )
