"""Deterministic link-fault injection: loss, duplication, delay spikes.

The base :class:`~repro.net.network.Network` models crashes, churn and
partitions, but every message that leaves a live sender for a connected
live target arrives exactly once. Gossip's whole claim is probabilistic
reliability on networks that *lose*, *duplicate* and *delay* traffic, so
this module adds a message-level fault layer at the network seam:

* :class:`BernoulliLoss` — i.i.d. loss with probability ``p``;
* :class:`GilbertElliott` — the classic two-state (good/bad) burst-loss
  Markov chain, one chain per link;
* :class:`DuplicateModel` — with probability ``p`` the message is
  delivered as several identical copies (the protocol layer's dedup is
  what keeps this harmless);
* :class:`DelaySpike` — with probability ``p`` the sampled latency is
  inflated (multiplied by ``factor`` or increased by ``extra``);
* :class:`FaultPipeline` — stage composition (loss, then duplication,
  then delay);
* :class:`LinkClassFaults` — per-link-class dispatch mirroring
  :class:`~repro.net.latency.LinkClassLatency` (``intra``/``inter``).

Fault models implement one method::

    transmit(sender, target, delay, rng) -> (copies, delay)

``copies == 0`` means the message is lost; ``copies > 1`` means that many
identical copies are scheduled (all at the returned ``delay``); a changed
``delay`` is a delay spike. The network records each effect in
:class:`~repro.net.stats.NetworkStats` by reason (``loss`` /
``duplicate`` / ``delay_spike``).

Determinism
-----------
Fault draws come from a **dedicated RNG** handed to
:meth:`~repro.net.network.Network.install_faults` (the scenario layer
derives it from the ``spec/faults`` stream), never from the network's own
stream. Consequences:

* with no fault model installed the hook is skipped entirely — zero
  draws, bit-identical to pre-fault-layer trajectories;
* an installed-but-lossless model (``BernoulliLoss(0.0)``) still draws
  from the faults stream, but since that stream is independent of every
  other stream, the rest of the trajectory is unchanged — sweeping a loss
  grid from 0 gives a true no-fault baseline at ``p = 0``;
* per-target draws happen in target order inside a multicast, exactly as
  the equivalent loop of sends would.

:class:`GilbertElliott` keeps one chain state per ``(sender, target)``
link actually consulted — memory is O(distinct faulted links), which is
why the bundled ``lossy-wan`` preset scopes it to the (few) ``inter``
links rather than the whole gossip mesh.
"""

from __future__ import annotations

import random
from typing import Mapping, Protocol, Sequence, runtime_checkable

from repro.errors import ConfigError
from repro.net.latency import LinkClassifier
from repro.validation import check_finite, check_probability

#: A fault outcome: (number of copies to deliver, delay to deliver at).
FaultOutcome = "tuple[int, float]"


@runtime_checkable
class LinkFaultModel(Protocol):
    """Decides the fate of one transmission that passed every other stage."""

    def transmit(
        self, sender: int, target: int, delay: float, rng: random.Random
    ) -> tuple[int, float]:
        """Return ``(copies, delay)`` for this transmission.

        ``copies == 0`` loses the message, ``copies == 1`` delivers it
        normally, ``copies > 1`` delivers that many identical copies; the
        returned ``delay`` replaces the sampled latency.
        """
        ...  # pragma: no cover - protocol


class NoFaults:
    """The explicit no-op model: never consulted, never draws.

    :meth:`Network.install_faults` treats ``NoFaults`` exactly like
    ``None`` — the per-message hook stays uninstalled, so a run with
    ``NoFaults`` is provably draw-free and bit-identical to a run built
    before the fault layer existed.
    """

    def transmit(
        self, sender: int, target: int, delay: float, rng: random.Random
    ) -> tuple[int, float]:
        return (1, delay)

    def __repr__(self) -> str:
        return "NoFaults()"


class BernoulliLoss:
    """Independent loss: each transmission is lost with probability ``p``."""

    def __init__(self, p: float):
        self.p = check_probability(p, "loss probability")

    def transmit(
        self, sender: int, target: int, delay: float, rng: random.Random
    ) -> tuple[int, float]:
        if rng.random() < self.p:
            return (0, delay)
        return (1, delay)

    def __repr__(self) -> str:
        return f"BernoulliLoss({self.p})"


class GilbertElliott:
    """Two-state Markov burst loss (the Gilbert-Elliott channel).

    Each link is a chain over states *good* and *bad*; a transmission is
    lost with ``loss_good`` / ``loss_bad`` depending on the link's current
    state, then the state transitions (good→bad with ``p_good_bad``,
    bad→good with ``p_bad_good``). State is kept per ``(sender, target)``
    pair, created lazily on first consultation and drawn from the chain's
    *stationary distribution* — not pinned to good. Gossip consults most
    links only a handful of times (often once: super-link hand-offs pick
    fresh targets per round), and an always-good initial state would make
    single-consult links effectively lossless regardless of parameters;
    stationary initialization gives every consultation the stationary
    loss rate while repeated consultations of one link stay bursty.

    The stationary bad-state occupancy is
    ``p_good_bad / (p_good_bad + p_bad_good)`` and the stationary loss
    rate follows as ``π_good·loss_good + π_bad·loss_bad``
    (:meth:`stationary_loss_rate`), which is what the statistical test
    pins.

    Every consultation makes exactly two draws (loss, transition) plus
    one extra initialization draw the first time a link is seen,
    regardless of outcomes, so trajectories never depend on float edge
    cases.
    """

    def __init__(
        self,
        p_good_bad: float,
        p_bad_good: float,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
    ):
        self.p_good_bad = check_probability(p_good_bad, "p_good_bad")
        self.p_bad_good = check_probability(p_bad_good, "p_bad_good")
        self.loss_good = check_probability(loss_good, "loss_good")
        self.loss_bad = check_probability(loss_bad, "loss_bad")
        if self.p_good_bad + self.p_bad_good <= 0.0:
            raise ConfigError(
                "Gilbert-Elliott chain needs p_good_bad + p_bad_good > 0 "
                "(both zero means the chain never moves; use BernoulliLoss)"
            )
        #: (sender, target) → True when the link is in the bad state
        self._bad: dict[tuple[int, int], bool] = {}

    def stationary_loss_rate(self) -> float:
        """The long-run loss probability of one link."""
        pi_bad = self.p_good_bad / (self.p_good_bad + self.p_bad_good)
        return (1.0 - pi_bad) * self.loss_good + pi_bad * self.loss_bad

    def transmit(
        self, sender: int, target: int, delay: float, rng: random.Random
    ) -> tuple[int, float]:
        link = (sender, target)
        bad = self._bad.get(link)
        if bad is None:
            bad = rng.random() < self.p_good_bad / (
                self.p_good_bad + self.p_bad_good
            )
        lost = rng.random() < (self.loss_bad if bad else self.loss_good)
        flip = rng.random()
        if bad:
            if flip < self.p_bad_good:
                bad = False
        elif flip < self.p_good_bad:
            bad = True
        self._bad[link] = bad
        return ((0, delay) if lost else (1, delay))

    def __repr__(self) -> str:
        return (
            f"GilbertElliott({self.p_good_bad}, {self.p_bad_good}, "
            f"loss_good={self.loss_good}, loss_bad={self.loss_bad})"
        )


class DuplicateModel:
    """Duplication: with probability ``p`` deliver 2..``max_copies`` copies.

    The copy count is drawn uniformly from ``[2, max_copies]``; all copies
    share one delay, so inside a multicast they stay in the same
    latency-class batch entry (the duplicated pid simply appears more than
    once in the batch). Receiver-side dedup — the protocol ``seen`` sets,
    or the columnar per-event bitmasks — absorbs the extras.
    """

    def __init__(self, p: float, max_copies: int = 2):
        self.p = check_probability(p, "duplication probability")
        if isinstance(max_copies, bool) or not isinstance(max_copies, int):
            raise ConfigError(
                f"max_copies must be an integer, got {max_copies!r}"
            )
        if max_copies < 2:
            raise ConfigError(f"max_copies must be >= 2, got {max_copies}")
        self.max_copies = max_copies

    def transmit(
        self, sender: int, target: int, delay: float, rng: random.Random
    ) -> tuple[int, float]:
        if rng.random() < self.p:
            return (rng.randint(2, self.max_copies), delay)
        return (1, delay)

    def __repr__(self) -> str:
        return f"DuplicateModel({self.p}, max_copies={self.max_copies})"


class DelaySpike:
    """Latency spikes: with probability ``p`` the delay is inflated.

    Exactly one of ``factor`` (multiply the sampled delay; >= 1) or
    ``extra`` (add a constant; >= 0) must be given. Under the paper's
    zero-latency synchronous rounds a ``factor`` has nothing to multiply —
    use ``extra`` there (the bundled ``lossy-wan`` preset does).
    """

    def __init__(
        self,
        p: float,
        factor: float | None = None,
        extra: float | None = None,
    ):
        self.p = check_probability(p, "delay-spike probability")
        if (factor is None) == (extra is None):
            raise ConfigError(
                "DelaySpike needs exactly one of 'factor' or 'extra', "
                f"got factor={factor!r}, extra={extra!r}"
            )
        if factor is not None:
            factor = check_finite(factor, "delay-spike factor")
            if factor < 1.0:
                raise ConfigError(
                    f"delay-spike factor must be >= 1, got {factor}"
                )
        if extra is not None:
            extra = check_finite(extra, "delay-spike extra")
            if extra < 0.0:
                raise ConfigError(
                    f"delay-spike extra must be >= 0, got {extra}"
                )
        self.factor = factor
        self.extra = extra

    def transmit(
        self, sender: int, target: int, delay: float, rng: random.Random
    ) -> tuple[int, float]:
        if rng.random() < self.p:
            if self.factor is not None:
                return (1, delay * self.factor)
            return (1, delay + self.extra)
        return (1, delay)

    def __repr__(self) -> str:
        knob = (
            f"factor={self.factor}" if self.factor is not None
            else f"extra={self.extra}"
        )
        return f"DelaySpike({self.p}, {knob})"


class FaultPipeline:
    """Compose fault stages in order (canonically loss → dup → delay).

    Stages are consulted left to right; a stage that loses the message
    short-circuits the rest (later stages make no draws for that
    transmission — documented pipeline semantics, deterministic either
    way). Copy counts from multiple duplicating stages multiply; the
    delay threads through every stage.
    """

    def __init__(self, stages: Sequence[LinkFaultModel]):
        stages = tuple(stages)
        if not stages:
            raise ConfigError("FaultPipeline needs at least one stage")
        for stage in stages:
            if not callable(getattr(stage, "transmit", None)):
                raise ConfigError(
                    f"fault pipeline stage must be a fault model, got {stage!r}"
                )
        self.stages = stages

    def transmit(
        self, sender: int, target: int, delay: float, rng: random.Random
    ) -> tuple[int, float]:
        copies = 1
        for stage in self.stages:
            stage_copies, delay = stage.transmit(sender, target, delay, rng)
            if stage_copies == 0:
                return (0, delay)
            copies *= stage_copies
        return (copies, delay)

    def __repr__(self) -> str:
        return f"FaultPipeline({list(self.stages)!r})"


class LinkClassFaults:
    """Per-link-class faults: a default model plus named-class overrides.

    Mirrors :class:`~repro.net.latency.LinkClassLatency`: the classifier
    usually needs the built system (pid → topic), which does not exist at
    construction — create the model, then :meth:`bind` the classifier.
    Unbound or unclassifiable links use the default model. A class mapped
    to :class:`NoFaults` (or a default of ``NoFaults``) makes no draws
    for its links, so scoping faults to ``inter`` links leaves the intra
    gossip stream untouched.
    """

    def __init__(
        self,
        default: LinkFaultModel,
        overrides: Mapping[str, LinkFaultModel] | None = None,
    ):
        if not callable(getattr(default, "transmit", None)):
            raise ConfigError(
                f"default must be a fault model, got {default!r}"
            )
        self.default = default
        self.overrides = dict(overrides or {})
        for name, model in self.overrides.items():
            if not isinstance(name, str) or not name:
                raise ConfigError(
                    f"link class names must be non-empty strings, got {name!r}"
                )
            if not callable(getattr(model, "transmit", None)):
                raise ConfigError(
                    f"override {name!r} must be a fault model, got {model!r}"
                )
        self._classify: LinkClassifier | None = None

    def bind(self, classifier: LinkClassifier) -> None:
        """Install the link classifier (called once the system exists)."""
        self._classify = classifier

    def transmit(
        self, sender: int, target: int, delay: float, rng: random.Random
    ) -> tuple[int, float]:
        if self._classify is None:
            model = self.default
        else:
            model = self.overrides.get(
                self._classify(sender, target), self.default
            )
        return model.transmit(sender, target, delay, rng)

    def __repr__(self) -> str:
        classes = ", ".join(
            f"{name}={model!r}" for name, model in sorted(self.overrides.items())
        )
        return f"LinkClassFaults(default={self.default!r}, {{{classes}}})"


#: Shared no-op instance (semantically identical to installing nothing).
NO_FAULTS = NoFaults()
