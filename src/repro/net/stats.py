"""Network accounting: the counters behind every figure of the paper.

The evaluation counts *sent* messages (Fig. 8: events sent inside each
group, Fig. 9: events crossing group boundaries) and the metrics layer
derives reliability from application deliveries. :class:`NetworkStats`
therefore tracks, per message kind: sent / delivered / dropped-with-reason,
plus the topic-scoped counters for event messages.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.net.message import EventMessage, Message
from repro.topics.topic import Topic

#: Drop reasons used by :class:`repro.net.network.Network`.
DROP_CHANNEL_LOSS = "channel_loss"
DROP_DEAD_TARGET = "dead_target"
DROP_DEAD_SENDER = "dead_sender"
DROP_PERCEIVED_FAILED = "perceived_failed"
DROP_PARTITIONED = "partitioned"
DROP_FAULT_LOSS = "fault_loss"

#: Every drop reason, in a stable order (scenario metrics emit one
#: fixed-key counter per reason so repeated runs always aggregate).
DROP_REASONS = (
    DROP_CHANNEL_LOSS,
    DROP_DEAD_TARGET,
    DROP_DEAD_SENDER,
    DROP_PERCEIVED_FAILED,
    DROP_PARTITIONED,
    DROP_FAULT_LOSS,
)

#: Injected-fault reasons recorded by the link-fault layer
#: (:mod:`repro.net.faults`): a ``loss`` is additionally a drop with
#: reason :data:`DROP_FAULT_LOSS`; duplicates count the *extra* copies;
#: delay spikes count inflated-latency transmissions.
FAULT_LOSS = "loss"
FAULT_DUPLICATE = "duplicate"
FAULT_DELAY_SPIKE = "delay_spike"

FAULT_REASONS = (FAULT_LOSS, FAULT_DUPLICATE, FAULT_DELAY_SPIKE)


@dataclass
class NetworkStats:
    """Counters over everything the network transported or dropped."""

    sent_by_kind: Counter = field(default_factory=Counter)
    delivered_by_kind: Counter = field(default_factory=Counter)
    dropped_by_reason: Counter = field(default_factory=Counter)
    dropped_by_kind: Counter = field(default_factory=Counter)
    #: Fig. 8 — events *sent* while gossiping inside each group.
    intra_group_sent: Counter = field(default_factory=Counter)
    #: Fig. 9 — events *sent* from a group to its supergroup, per edge.
    inter_group_sent: Counter = field(default_factory=Counter)
    #: Deliveries of the above (after loss/failures), same keys.
    intra_group_delivered: Counter = field(default_factory=Counter)
    inter_group_delivered: Counter = field(default_factory=Counter)
    #: §IV-A load distribution — event messages sent per process.
    events_sent_by_sender: Counter = field(default_factory=Counter)
    #: Injected link faults by reason (loss / duplicate / delay_spike).
    faults_by_reason: Counter = field(default_factory=Counter)

    # ------------------------------------------------------------------
    # Recording (called by the network)
    # ------------------------------------------------------------------
    def record_sent(self, message: Message) -> None:
        """Count a send attempt."""
        self.sent_by_kind[message.kind] += 1
        if isinstance(message, EventMessage):
            self.events_sent_by_sender[message.sender] += 1
            scope = message.scope
            if scope.kind == "intra":
                self.intra_group_sent[scope.group] += 1
            else:
                self.inter_group_sent[(scope.group, scope.super_group)] += 1

    def record_delivered(self, message: Message) -> None:
        """Count a successful delivery."""
        self.delivered_by_kind[message.kind] += 1
        if isinstance(message, EventMessage):
            scope = message.scope
            if scope.kind == "intra":
                self.intra_group_delivered[scope.group] += 1
            else:
                self.inter_group_delivered[(scope.group, scope.super_group)] += 1

    def record_dropped(self, message: Message, reason: str) -> None:
        """Count a drop with its cause."""
        self.dropped_by_reason[reason] += 1
        self.dropped_by_kind[message.kind] += 1

    def record_fault(self, reason: str, count: int = 1) -> None:
        """Count ``count`` injected link faults of one reason.

        A fault loss is *also* recorded as a drop (reason
        :data:`DROP_FAULT_LOSS`) by the network, so the drop ledger stays
        complete; duplicates and delay spikes only appear here.
        """
        if count <= 0:
            return
        self.faults_by_reason[reason] += count

    # ------------------------------------------------------------------
    # Bulk recording (the multicast fast path — one call per fan-out)
    # ------------------------------------------------------------------
    def record_sent_many(self, message: Message, count: int) -> None:
        """Count ``count`` send attempts of one message in a single pass.

        Equivalent to ``count`` calls to :meth:`record_sent` (a multicast
        pays one transmission per destination in the paper's accounting),
        but classifies the message once instead of per destination.
        """
        if count <= 0:
            return
        self.sent_by_kind[message.kind] += count
        if isinstance(message, EventMessage):
            self.events_sent_by_sender[message.sender] += count
            scope = message.scope
            if scope.kind == "intra":
                self.intra_group_sent[scope.group] += count
            else:
                self.inter_group_sent[(scope.group, scope.super_group)] += count

    def record_delivered_many(self, message: Message, count: int) -> None:
        """Count ``count`` deliveries of one message in a single pass."""
        if count <= 0:
            return
        self.delivered_by_kind[message.kind] += count
        if isinstance(message, EventMessage):
            scope = message.scope
            if scope.kind == "intra":
                self.intra_group_delivered[scope.group] += count
            else:
                self.inter_group_delivered[
                    (scope.group, scope.super_group)
                ] += count

    def record_dropped_many(self, message: Message, reason: str, count: int) -> None:
        """Count ``count`` same-reason drops of one message in a single pass."""
        if count <= 0:
            return
        self.dropped_by_reason[reason] += count
        self.dropped_by_kind[message.kind] += count

    # ------------------------------------------------------------------
    # Queries (used by metrics/experiments)
    # ------------------------------------------------------------------
    @property
    def total_sent(self) -> int:
        """All send attempts, any kind."""
        return sum(self.sent_by_kind.values())

    @property
    def total_delivered(self) -> int:
        """All successful deliveries, any kind."""
        return sum(self.delivered_by_kind.values())

    @property
    def total_dropped(self) -> int:
        """All drops, any kind."""
        return sum(self.dropped_by_kind.values())

    def events_sent_in_group(self, group: Topic) -> int:
        """Fig. 8 quantity: event messages sent while gossiping in ``group``."""
        return self.intra_group_sent[group]

    def events_sent_between(self, group: Topic, super_group: Topic) -> int:
        """Fig. 9 quantity: event messages sent from ``group`` to its supergroup."""
        return self.inter_group_sent[(group, super_group)]

    def event_messages_sent(self) -> int:
        """All event messages sent (intra + inter), the §VI-B quantity."""
        return self.sent_by_kind["event"]

    def overhead_messages_sent(self) -> int:
        """Non-event traffic (membership, bootstrap, probes)."""
        return self.total_sent - self.sent_by_kind["event"]

    def sender_load(self, pid: int) -> int:
        """Event messages this process has transmitted (§IV-A load)."""
        return self.events_sent_by_sender[pid]

    def max_sender_load(self) -> int:
        """The busiest process's event transmissions (0 when none)."""
        return max(self.events_sent_by_sender.values(), default=0)

    def delivery_ratio(self, kind: str | None = None) -> float:
        """Delivered / sent for one kind (or overall); 1.0 when nothing sent."""
        if kind is None:
            sent, delivered = self.total_sent, self.total_delivered
        else:
            sent = self.sent_by_kind[kind]
            delivered = self.delivered_by_kind[kind]
        return delivered / sent if sent else 1.0

    def as_dict(self) -> dict[str, dict]:
        """Plain-dict snapshot (stable keys) for reports and tests."""
        return {
            "sent_by_kind": dict(self.sent_by_kind),
            "delivered_by_kind": dict(self.delivered_by_kind),
            "dropped_by_reason": dict(self.dropped_by_reason),
            "faults_by_reason": dict(self.faults_by_reason),
            "intra_group_sent": {
                topic.name: count for topic, count in self.intra_group_sent.items()
            },
            "inter_group_sent": {
                f"{src.name}->{dst.name}": count
                for (src, dst), count in self.inter_group_sent.items()
            },
        }

    def reset(self) -> None:
        """Zero every counter (e.g. between warm-up and measurement)."""
        self.sent_by_kind.clear()
        self.delivered_by_kind.clear()
        self.dropped_by_reason.clear()
        self.dropped_by_kind.clear()
        self.intra_group_sent.clear()
        self.inter_group_sent.clear()
        self.intra_group_delivered.clear()
        self.inter_group_delivered.clear()
        self.events_sent_by_sender.clear()
        self.faults_by_reason.clear()
