"""Network partition models.

Not used by the paper's own figures, but required to exercise the protocol's
claimed resilience (no spanning-tree interior nodes to lose) and the
bootstrap search under partial connectivity. A partition model decides, per
(source, destination, time), whether the pair is currently connected.
"""

from __future__ import annotations

from typing import Iterable, Protocol

from repro.errors import ConfigError
from repro.validation import check_finite


class PartitionModel(Protocol):
    """Connectivity oracle consulted by the network for every send."""

    def connected(self, source: int, destination: int, now: float) -> bool:
        """Whether a message from ``source`` can currently reach ``destination``."""
        ...  # pragma: no cover - protocol


class FullyConnected:
    """The default: every pair of processes is always connected."""

    def connected(self, source: int, destination: int, now: float) -> bool:
        return True

    def __repr__(self) -> str:
        return "FullyConnected()"


class StaticPartition:
    """A set of disjoint islands, optionally healing at a fixed time.

    Processes not mentioned in any island form one implicit extra island.

    >>> p = StaticPartition([[1, 2], [3]], heals_at=100.0)
    >>> p.connected(1, 3, now=0.0)
    False
    >>> p.connected(1, 3, now=100.0)
    True
    """

    def __init__(
        self,
        islands: Iterable[Iterable[int]],
        heals_at: float | None = None,
    ):
        self._island_of: dict[int, int] = {}
        for index, island in enumerate(islands):
            for pid in island:
                if pid in self._island_of:
                    raise ConfigError(f"process {pid} appears in two islands")
                self._island_of[pid] = index
        if heals_at is not None:
            check_finite(heals_at, "heals_at")
        self.heals_at = heals_at

    def connected(self, source: int, destination: int, now: float) -> bool:
        if self.heals_at is not None and now >= self.heals_at:
            return True
        # Unmentioned processes share the implicit island -1.
        return self._island_of.get(source, -1) == self._island_of.get(destination, -1)

    def __repr__(self) -> str:
        islands = len(set(self._island_of.values()))
        return f"StaticPartition({islands} islands, heals_at={self.heals_at})"
