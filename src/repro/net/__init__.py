"""Network substrate: unreliable best-effort channels between processes.

The paper's model (§III-A) is processes communicating over *unreliable,
best-effort channels* that may lose messages, with crash-recovery failures.
:class:`~repro.net.network.Network` implements exactly that on top of the
simulation engine: a message is counted as *sent*, then survives (in order)
the failure model, the partition model and the channel-loss coin
(``p_success``, the paper's ``p_succ`` — 0.85 in §VII), and finally gets
delivered after a latency sampled from a :mod:`~repro.net.latency` model.

All accounting needed by the evaluation (per-kind counters, per-group
intra/inter-group event counts for Figs. 8–9) lives in
:class:`~repro.net.stats.NetworkStats`.
"""

from repro.net.faults import (
    BernoulliLoss,
    DelaySpike,
    DuplicateModel,
    FaultPipeline,
    GilbertElliott,
    LinkClassFaults,
    LinkFaultModel,
    NO_FAULTS,
    NoFaults,
)
from repro.net.latency import (
    ConstantLatency,
    ExponentialLatency,
    LatencyModel,
    LinkClassLatency,
    UniformLatency,
    ZERO_LATENCY,
)
from repro.net.message import (
    AnsContact,
    EventMessage,
    JoinRequest,
    MembershipGossip,
    Message,
    NewProcessReply,
    NewProcessRequest,
    Ping,
    Pong,
    ReqContact,
)
from repro.net.network import Network
from repro.net.partitions import PartitionModel, StaticPartition
from repro.net.stats import NetworkStats

__all__ = [
    "Network",
    "NetworkStats",
    "Message",
    "EventMessage",
    "JoinRequest",
    "ReqContact",
    "AnsContact",
    "NewProcessRequest",
    "NewProcessReply",
    "MembershipGossip",
    "Ping",
    "Pong",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "ExponentialLatency",
    "LinkClassLatency",
    "ZERO_LATENCY",
    "PartitionModel",
    "StaticPartition",
    "LinkFaultModel",
    "NoFaults",
    "NO_FAULTS",
    "BernoulliLoss",
    "GilbertElliott",
    "DuplicateModel",
    "DelaySpike",
    "FaultPipeline",
    "LinkClassFaults",
]
