"""Wire messages exchanged by the protocols.

Each message class corresponds to a message of the paper's pseudo-code:

* :class:`EventMessage` — an event ``e_Ti`` being gossiped (Figs. 5, 7).
  Its ``scope`` records whether the transmission is *intra-group* (gossip
  inside a topic group) or *inter-group* (a hand-off to the supergroup),
  which is what Figs. 8 and 9 count respectively.
* :class:`ReqContact` / :class:`AnsContact` — the bootstrap search of
  Fig. 4 (``REQCONTACT``/``ANSCONTACT``).
* :class:`NewProcessRequest` / :class:`NewProcessReply` — the supertopic
  table refresh of Fig. 6 (``NEWPROCESS`` in both directions).
* :class:`Ping` / :class:`Pong` — the liveness probes behind Fig. 6's
  ``CHECK`` function ("the detection of alive processes is done via
  timeouts").
* :class:`MembershipGossip` — the underlying membership algorithm's view
  updates ([10]), onto which daMulticast piggybacks supertopic-table
  entries (§V-A.2's initialization-message optimization).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, ClassVar, Literal

from repro.topics.topic import Topic

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.events import Event
    from repro.membership.view import ProcessDescriptor


@dataclass(frozen=True, slots=True)
class Scope:
    """Where an event transmission happens, for Figs. 8/9 accounting.

    ``kind="intra"``: gossip inside ``group`` (Fig. 8 counts these per
    group). ``kind="inter"``: hand-off from ``group`` up to ``super_group``
    (Fig. 9 counts these per edge).
    """

    kind: Literal["intra", "inter"]
    group: Topic
    super_group: Topic | None = None

    def __post_init__(self) -> None:
        if self.kind == "inter" and self.super_group is None:
            raise ValueError("inter-group scope requires a super_group")


@dataclass(frozen=True, slots=True)
class Message:
    """Base class for all wire messages. ``sender`` is the process id."""

    kind: ClassVar[str] = "message"
    sender: int


@dataclass(frozen=True, slots=True)
class EventMessage(Message):
    """An application event in flight (the paper's ``SEND(e_Ti)``).

    ``hops`` counts gossip transmissions since publication (the publisher's
    own sends carry 1); it feeds the dissemination-depth metrics of
    :mod:`repro.metrics.paths` and costs nothing on the protocol path.
    """

    kind: ClassVar[str] = "event"
    event: "Event"
    scope: Scope
    hops: int = 1


@dataclass(frozen=True, slots=True)
class ReqContact(Message):
    """Fig. 4's ``REQCONTACT``: find processes interested in ``topics``.

    ``requester`` is the process running FIND_SUPER_CONTACT (answers go
    straight back to it, not along the flooding path). ``topics`` is the
    paper's ``initMsg`` — the widening list of acceptable supertopics.
    ``ttl`` bounds the flood ("if initMsg has not expired"); it decreases at
    every re-forwarding hop. ``request_id`` deduplicates the flood.
    """

    kind: ClassVar[str] = "req_contact"
    requester: int
    topics: tuple[Topic, ...]
    request_id: int
    ttl: int


@dataclass(frozen=True, slots=True)
class AnsContact(Message):
    """Fig. 4's ``ANSCONTACT``: contacts interested in ``answered_topic``."""

    kind: ClassVar[str] = "ans_contact"
    answered_topic: Topic
    contacts: tuple["ProcessDescriptor", ...]
    request_id: int


@dataclass(frozen=True, slots=True)
class NewProcessRequest(Message):
    """Fig. 6 lines 19–21: ask a live superprocess for fresh supergroup ids."""

    kind: ClassVar[str] = "new_process_request"
    wanted: int


@dataclass(frozen=True, slots=True)
class NewProcessReply(Message):
    """Fig. 6 lines 2–5: a superprocess answers with known supergroup members."""

    kind: ClassVar[str] = "new_process_reply"
    contacts: tuple["ProcessDescriptor", ...]


@dataclass(frozen=True, slots=True)
class Ping(Message):
    """Liveness probe used by CHECK (Fig. 6, footnote 7)."""

    kind: ClassVar[str] = "ping"
    nonce: int


@dataclass(frozen=True, slots=True)
class Pong(Message):
    """Answer to a :class:`Ping`."""

    kind: ClassVar[str] = "pong"
    nonce: int


@dataclass(frozen=True, slots=True)
class MembershipGossip(Message):
    """A membership view exchange of the underlying algorithm ([10]).

    ``view_sample`` carries topic-table entries; ``super_sample`` piggybacks
    supertopic-table entries (§V-A.2: "once a process has an initialized
    supertopic table, this information is disseminated, using the updates of
    the underlying membership algorithm"). ``nonce`` pairs a shuffle request
    with its reply so unanswered shuffles can expire failed partners.
    """

    kind: ClassVar[str] = "membership_gossip"
    group: Topic
    view_sample: tuple["ProcessDescriptor", ...]
    super_sample: tuple["ProcessDescriptor", ...] = field(default=())
    reply_expected: bool = False
    nonce: int = 0


@dataclass(frozen=True, slots=True)
class JoinRequest(Message):
    """A new member announcing itself to a group's membership ([10] join).

    The direct contact answers with a view sample (so the joiner can fill
    its table) and forwards the announcement with a bounded ``ttl`` so the
    joiner's id spreads through the group's views.
    """

    kind: ClassVar[str] = "join_request"
    joiner: "ProcessDescriptor"
    ttl: int
