"""Message latency models.

The paper's simulator runs synchronous rounds, which corresponds to
:data:`ZERO_LATENCY` (deliveries happen "within the round", i.e. at the same
simulation time but causally after the send). The other models support the
dynamic-protocol experiments where timeouts and staleness matter.
"""

from __future__ import annotations

import random
from typing import Callable, Mapping, Protocol

from repro.errors import ConfigError
from repro.validation import check_finite


class LatencyModel(Protocol):
    """Samples a one-way message delay."""

    def sample(self, rng: random.Random) -> float:
        """Return a non-negative delay."""
        ...  # pragma: no cover - protocol


class ConstantLatency:
    """Every message takes exactly ``delay`` time units."""

    def __init__(self, delay: float):
        check_finite(delay, "latency")
        if delay < 0:
            raise ConfigError(f"latency must be >= 0, got {delay}")
        self.delay = delay

    def sample(self, rng: random.Random) -> float:
        return self.delay

    def __repr__(self) -> str:
        return f"ConstantLatency({self.delay})"


class UniformLatency:
    """Delay drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float, high: float):
        check_finite(low, "latency low")
        check_finite(high, "latency high")
        if low < 0 or high < low:
            raise ConfigError(f"need 0 <= low <= high, got [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def __repr__(self) -> str:
        return f"UniformLatency({self.low}, {self.high})"


class ExponentialLatency:
    """Exponentially distributed delay with the given ``mean``.

    A heavier tail than :class:`UniformLatency`; useful for stressing the
    bootstrap timeouts (stragglers arrive after FIND_SUPER_CONTACT widened
    its search).
    """

    def __init__(self, mean: float):
        check_finite(mean, "mean latency")
        if mean <= 0:
            raise ConfigError(f"mean latency must be > 0, got {mean}")
        self.mean = mean

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self.mean)

    def __repr__(self) -> str:
        return f"ExponentialLatency({self.mean})"


#: Classifies one (sender, target) link into a class name, or None when the
#: link cannot be classified yet (e.g. a process that has not joined).
LinkClassifier = Callable[[int, int], "str | None"]


class LinkClassLatency:
    """Per-link-class latency: a default model plus named-class overrides.

    The dynamic-protocol experiments want different delay regimes per link
    class — e.g. cheap intra-group gossip but slow inter-group links (the
    scenario specs classify links as ``"intra"``/``"inter"`` by the
    endpoints' topics). The network consults :meth:`sample_link` when the
    installed latency model provides it; models without it keep the plain
    ``sample`` path, so existing trajectories are untouched.

    The classifier usually needs the built system (pid → topic), which does
    not exist when the network is constructed — create the model first,
    then :meth:`bind` the classifier. Unbound (or unclassifiable) links
    fall back to the default model.
    """

    def __init__(
        self,
        default: LatencyModel,
        overrides: Mapping[str, LatencyModel] | None = None,
    ):
        if not callable(getattr(default, "sample", None)):
            raise ConfigError(
                f"default must be a latency model, got {default!r}"
            )
        self.default = default
        self.overrides = dict(overrides or {})
        for name, model in self.overrides.items():
            if not isinstance(name, str) or not name:
                raise ConfigError(
                    f"link class names must be non-empty strings, got {name!r}"
                )
            if not callable(getattr(model, "sample", None)):
                raise ConfigError(
                    f"override {name!r} must be a latency model, got {model!r}"
                )
        self._classify: LinkClassifier | None = None

    def bind(self, classifier: LinkClassifier) -> None:
        """Install the link classifier (called once the system exists)."""
        self._classify = classifier

    def sample(self, rng: random.Random) -> float:
        return self.default.sample(rng)

    def sample_link(self, sender: int, target: int, rng: random.Random) -> float:
        """Delay for one specific link (the network's preferred entry)."""
        if self._classify is None:
            return self.default.sample(rng)
        link_class = self._classify(sender, target)
        model = self.overrides.get(link_class, self.default)
        return model.sample(rng)

    def __repr__(self) -> str:
        classes = ", ".join(
            f"{name}={model!r}" for name, model in sorted(self.overrides.items())
        )
        return f"LinkClassLatency(default={self.default!r}, {{{classes}}})"


#: Shared zero-delay model (the paper's synchronous-round semantics).
ZERO_LATENCY = ConstantLatency(0.0)
