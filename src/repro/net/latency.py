"""Message latency models.

The paper's simulator runs synchronous rounds, which corresponds to
:data:`ZERO_LATENCY` (deliveries happen "within the round", i.e. at the same
simulation time but causally after the send). The other models support the
dynamic-protocol experiments where timeouts and staleness matter.
"""

from __future__ import annotations

import random
from typing import Protocol

from repro.errors import ConfigError


class LatencyModel(Protocol):
    """Samples a one-way message delay."""

    def sample(self, rng: random.Random) -> float:
        """Return a non-negative delay."""
        ...  # pragma: no cover - protocol


class ConstantLatency:
    """Every message takes exactly ``delay`` time units."""

    def __init__(self, delay: float):
        if delay < 0:
            raise ConfigError(f"latency must be >= 0, got {delay}")
        self.delay = delay

    def sample(self, rng: random.Random) -> float:
        return self.delay

    def __repr__(self) -> str:
        return f"ConstantLatency({self.delay})"


class UniformLatency:
    """Delay drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float, high: float):
        if low < 0 or high < low:
            raise ConfigError(f"need 0 <= low <= high, got [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def __repr__(self) -> str:
        return f"UniformLatency({self.low}, {self.high})"


class ExponentialLatency:
    """Exponentially distributed delay with the given ``mean``.

    A heavier tail than :class:`UniformLatency`; useful for stressing the
    bootstrap timeouts (stragglers arrive after FIND_SUPER_CONTACT widened
    its search).
    """

    def __init__(self, mean: float):
        if mean <= 0:
            raise ConfigError(f"mean latency must be > 0, got {mean}")
        self.mean = mean

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self.mean)

    def __repr__(self) -> str:
        return f"ExponentialLatency({self.mean})"


#: Shared zero-delay model (the paper's synchronous-round semantics).
ZERO_LATENCY = ConstantLatency(0.0)
