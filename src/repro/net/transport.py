"""The delivery-transport seam behind :class:`repro.net.network.Network`.

The network's six-stage sender-side pipeline (attempt accounting, liveness,
perceived failures, partitions, channel loss, latency/fault sampling) is
transport-independent — it runs identically whether deliveries land on the
discrete-event heap or in a live in-process queue. Only the *last* step —
"execute this delivery callback after ``delay``" — differs, and that step
is this module's :class:`Transport` protocol:

* :class:`EngineTransport` — the historical in-heap path: deliveries become
  applied ``(fn, args)`` entries on a discrete-event
  :class:`~repro.sim.engine.Engine` (or any scheduler exposing
  ``schedule_apply``), preserving per-destination ``pending``/``processed``
  accounting and zero-latency FIFO-bucket batching bit-for-bit.
* :class:`QueueTransport` — an in-process delivery queue for the live
  runtime: deliveries are enqueued with their due time and executed by an
  explicit :meth:`~QueueTransport.pump` (the asyncio pump task, or a test
  draining synchronously). Ordering is ``(due, enqueue order)`` — exactly
  the engine's ``(time, seq)`` rule — so a zero-latency cascade pumps in
  the same order the engine's FIFO bucket would run it, which is what
  makes a live trace replayable on the virtual-time oracle.

Because the latency and fault hooks run *before* dispatch, both transports
consult them identically by construction.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Protocol, runtime_checkable

from repro.errors import SchedulingError
from repro.sim.clock import Clock


@runtime_checkable
class Transport(Protocol):
    """Executes delivery callbacks after a sampled latency."""

    def dispatch(
        self,
        delay: float,
        fn: Callable[..., Any],
        args: tuple,
        *,
        count: int = 1,
    ):
        """Run ``fn(*args)`` after ``delay``; ``count`` is the number of
        logical deliveries the single call stands for (a batched fan-out
        passes the whole target tuple as one call). Returns a cancellable
        handle."""
        ...  # pragma: no cover - protocol


class EngineTransport:
    """In-heap delivery: dispatches onto a scheduler's ``schedule_apply``.

    The default transport — with an :class:`~repro.sim.engine.Engine`
    clock this is byte-for-byte the scheduling path the network always
    used (one applied array-batch entry per latency class, per-delivery
    event accounting).
    """

    def __init__(self, scheduler):
        apply = getattr(scheduler, "schedule_apply", None)
        if not callable(apply):
            raise SchedulingError(
                f"{type(scheduler).__name__} has no schedule_apply; "
                "EngineTransport needs an Engine-style scheduler "
                "(use QueueTransport for plain clocks)"
            )
        self._scheduler = scheduler
        self._apply = apply

    @property
    def scheduler(self):
        """The scheduler deliveries land on."""
        return self._scheduler

    def dispatch(
        self,
        delay: float,
        fn: Callable[..., Any],
        args: tuple,
        *,
        count: int = 1,
    ):
        return self._apply(delay, fn, args, count=count)

    def __repr__(self) -> str:
        return f"EngineTransport({type(self._scheduler).__name__})"


class QueuedDelivery:
    """Handle to one queued delivery (satisfies the clock Handle protocol)."""

    __slots__ = ("due", "_fn", "_args", "_count", "_cancelled", "_fired")

    def __init__(self, due: float, fn, args: tuple, count: int):
        if due != due:  # NaN due time would corrupt heap ordering
            raise SchedulingError("delivery due time must not be NaN")
        self.due = due
        self._fn = fn
        self._args = args
        self._count = count
        self._cancelled = False
        self._fired = False

    def cancel(self) -> None:
        """Drop the delivery (no-op once executed); releases the callback."""
        if self._cancelled or self._fired:
            return
        self._cancelled = True
        self._fn = None
        self._args = None

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def pending(self) -> bool:
        return not self._cancelled and not self._fired


class QueueTransport:
    """In-process delivery queue, pumped explicitly.

    ``dispatch`` enqueues; :meth:`pump` executes every entry due at or
    before the clock's current time, in ``(due, enqueue order)`` order.
    Entries enqueued *while pumping* (a gossip cascade) join the same pump
    when they are already due — mirroring the engine's zero-latency FIFO
    bucket, where a cascade drains completely before time advances.

    ``on_enqueue`` (optional) fires synchronously on every dispatch — the
    live runtime passes its pump-waker so an idle asyncio loop learns
    there is work without polling.
    """

    def __init__(
        self,
        clock: Clock,
        *,
        on_enqueue: Callable[[], None] | None = None,
    ):
        self._clock = clock
        self._heap: list[tuple[float, int, QueuedDelivery]] = []
        self._seq = itertools.count()
        self._on_enqueue = on_enqueue
        #: logical deliveries enqueued / executed so far (per-destination,
        #: mirroring Engine.pending/processed accounting)
        self.dispatched = 0
        self.executed = 0

    @property
    def pending(self) -> int:
        """Logical deliveries still queued (cancelled ones excluded)."""
        return sum(
            entry._count
            for _, _, entry in self._heap
            if not entry._cancelled
        )

    def next_due(self) -> float | None:
        """Due time of the earliest live entry, or None when idle."""
        heap = self._heap
        while heap and heap[0][2]._cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def dispatch(
        self,
        delay: float,
        fn: Callable[..., Any],
        args: tuple,
        *,
        count: int = 1,
    ) -> QueuedDelivery:
        if delay != delay:  # NaN would corrupt the heap invariant
            raise SchedulingError("delivery delay must not be NaN")
        if delay < 0:
            raise SchedulingError(f"cannot deliver in the past (delay={delay})")
        entry = QueuedDelivery(self._clock.now + delay, fn, tuple(args), count)
        heapq.heappush(self._heap, (entry.due, next(self._seq), entry))
        self.dispatched += count
        if self._on_enqueue is not None:
            self._on_enqueue()
        return entry

    def pump(self, now: float | None = None) -> int:
        """Execute every delivery due at or before ``now`` (default: the
        clock's current time, re-read as the cascade enqueues more work).
        Returns the number of logical deliveries executed."""
        heap = self._heap
        executed = 0
        follow_clock = now is None
        horizon = self._clock.now if follow_clock else now
        while heap and heap[0][0] <= horizon:
            _, _, entry = heapq.heappop(heap)
            if entry._cancelled:
                continue
            entry._fired = True
            fn, args = entry._fn, entry._args
            entry._fn = None  # a fired closure is garbage too
            entry._args = None
            executed += entry._count
            fn(*args)
            if follow_clock:
                horizon = self._clock.now
        self.executed += executed
        return executed

    def __repr__(self) -> str:
        return (
            f"QueueTransport(pending={self.pending}, "
            f"executed={self.executed})"
        )
