"""Named, reproducible random-number streams.

Experiments must be reproducible bit-for-bit from a single master seed, and
adding a new component must not shift the random sequence observed by
existing components. Both properties follow from deriving an independent
:class:`random.Random` per *named stream* via SHA-256 of
``(master_seed, name)``.
"""

from __future__ import annotations

import hashlib
import random
import re
from typing import Iterator, Mapping

from repro.errors import ConfigError

#: Canonical registry of every named RNG stream in the tree, grouped by
#: *scope*. A scope is one seed-derivation level: two labels can only
#: collide when they are hashed with the same master seed, and a child
#: seed produced by ``derive_seed`` opens a fresh namespace — so sweep-cell
#: labels (hashed with the sweep's master seed) can never collide with
#: run-level streams (hashed with the per-cell seed the sweep derived).
#:
#: Entries are either static labels (``"network"``) or patterns whose
#: ``{placeholder}`` segments stand for one runtime-formatted ``/``-free
#: segment (``"process/{pid}"``). The determinism lint (rule DET004)
#: harvests every ``derive_seed``/``RngRegistry.stream`` label it can see
#: statically and checks it against this registry;
#: :func:`validate_stream_registry` checks the registry itself for
#: duplicate and colliding entries. Adding a stream to the code without
#: declaring it here fails ``repro lint src/``.
STREAM_REGISTRY: Mapping[str, tuple[str, ...]] = {
    # hashed with one simulation run's seed (SimulationHarness streams,
    # spec realization, experiment per-run streams)
    "run": (
        "network",
        "overlay",
        "contacts",
        "publish",
        # live-service publisher choice: a dedicated stream so the live
        # runtime's only extra decision never shifts the shared streams
        # (replay pins publishers instead of re-drawing)
        "live/publish",
        "static-membership",
        "process/{pid}",
        "mp-process/{pid}",
        "baseline-process/{pid}",
        "group/{topic}",
        "pair/{sender}/{target}",
        "scenario",
        "stream",
        "repair-victims",
        "a",
        "b",
        "c",
        "spec/subscriptions",
        "spec/publications",
        # mixed publication parts recurse as spec/publications/<i>/<j>/...;
        # only the first level is statically harvestable
        "spec/publications/{index}",
        "spec/scenario",
        "spec/faults",
        "spec/churn",
        "spec/campaign",
    ),
    # hashed with a sweep's master seed (experiments/runner.py cells and
    # spawn_seeds repetitions)
    "sweep": (
        "{label}/{index}",
        "{label}/{point}/{j}",
    ),
    # hashed with an RngRegistry's own master seed
    "registry": ("fork/{name}",),
}

_PLACEHOLDER_RE = re.compile(r"\{[^{}]*\}")


def normalize_stream_label(entry: str) -> str:
    """Collapse every ``{placeholder}`` to ``{}`` for pattern comparison."""
    return _PLACEHOLDER_RE.sub("{}", entry)


def stream_pattern_regex(entry: str) -> re.Pattern[str]:
    """A regex matching the labels a registry entry can realize.

    Placeholders match exactly one non-empty ``/``-free segment.
    """
    parts = _PLACEHOLDER_RE.split(entry)
    return re.compile("[^/]+".join(re.escape(part) for part in parts))


def _segments_compatible(left: str, right: str) -> bool:
    """Can two pattern entries realize the same concrete label?"""
    left_parts = left.split("/")
    right_parts = right.split("/")
    if len(left_parts) != len(right_parts):
        return False
    for a, b in zip(left_parts, right_parts):
        if "{" in a or "{" in b:
            continue
        if a != b:
            return False
    return True


def validate_stream_registry(
    registry: Mapping[str, tuple[str, ...]] | None = None,
) -> list[str]:
    """Problems with the registry itself (empty list when it is sound).

    Within one scope: no duplicate entries, no static label that a
    pattern entry can also realize, and no two pattern entries that can
    realize the same concrete label (prefix/segment collisions).
    """
    if registry is None:
        registry = STREAM_REGISTRY
    problems: list[str] = []
    for scope, entries in sorted(registry.items()):
        seen: set[str] = set()
        for entry in entries:
            if entry in seen:
                problems.append(f"{scope}: duplicate entry {entry!r}")
            seen.add(entry)
        patterns = [entry for entry in entries if "{" in entry]
        statics = [entry for entry in entries if "{" not in entry]
        for static in statics:
            for pattern in patterns:
                if stream_pattern_regex(pattern).fullmatch(static):
                    problems.append(
                        f"{scope}: static label {static!r} collides with "
                        f"pattern {pattern!r}"
                    )
        for index, left in enumerate(patterns):
            for right in patterns[index + 1 :]:
                if _segments_compatible(left, right):
                    problems.append(
                        f"{scope}: patterns {left!r} and {right!r} can "
                        "realize the same label"
                    )
    return problems


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a stream name.

    The derivation is stable across Python versions and platforms (unlike
    ``hash()``) because it uses SHA-256 of the canonical byte encoding.
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def spawn_seeds(master_seed: int, count: int, label: str = "run") -> list[int]:
    """Fan a master seed out into ``count`` independent per-run seeds.

    Used by the experiment runner: run *i* of a sweep gets
    ``derive_seed(master_seed, f"{label}/{i}")``.
    """
    if count < 0:
        raise ConfigError(f"count must be >= 0, got {count}")
    return [derive_seed(master_seed, f"{label}/{index}") for index in range(count)]


class RngRegistry:
    """A registry of named :class:`random.Random` streams.

    >>> rngs = RngRegistry(master_seed=42)
    >>> rngs.stream("network") is rngs.stream("network")
    True
    >>> rngs.stream("network") is not rngs.stream("membership")
    True
    """

    def __init__(self, master_seed: int):
        self._master_seed = master_seed
        self._streams: dict[str, random.Random] = {}

    @property
    def master_seed(self) -> int:
        """The master seed this registry was created with."""
        return self._master_seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            # repro-lint: allow[DET004]: registry implementation — the caller's stream name is linted at each call site
            stream = random.Random(derive_seed(self._master_seed, name))
            self._streams[name] = stream
        return stream

    def streams(self) -> Iterator[str]:
        """Names of all streams created so far."""
        return iter(sorted(self._streams))

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of this one's.

        Useful for nesting (e.g. one registry per simulated run inside a
        sweep that itself draws from a registry).
        """
        return RngRegistry(derive_seed(self._master_seed, f"fork/{name}"))

    def __repr__(self) -> str:
        return (
            f"RngRegistry(master_seed={self._master_seed}, "
            f"streams={len(self._streams)})"
        )
