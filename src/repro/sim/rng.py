"""Named, reproducible random-number streams.

Experiments must be reproducible bit-for-bit from a single master seed, and
adding a new component must not shift the random sequence observed by
existing components. Both properties follow from deriving an independent
:class:`random.Random` per *named stream* via SHA-256 of
``(master_seed, name)``.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator

from repro.errors import ConfigError


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a stream name.

    The derivation is stable across Python versions and platforms (unlike
    ``hash()``) because it uses SHA-256 of the canonical byte encoding.
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def spawn_seeds(master_seed: int, count: int, label: str = "run") -> list[int]:
    """Fan a master seed out into ``count`` independent per-run seeds.

    Used by the experiment runner: run *i* of a sweep gets
    ``derive_seed(master_seed, f"{label}/{i}")``.
    """
    if count < 0:
        raise ConfigError(f"count must be >= 0, got {count}")
    return [derive_seed(master_seed, f"{label}/{index}") for index in range(count)]


class RngRegistry:
    """A registry of named :class:`random.Random` streams.

    >>> rngs = RngRegistry(master_seed=42)
    >>> rngs.stream("network") is rngs.stream("network")
    True
    >>> rngs.stream("network") is not rngs.stream("membership")
    True
    """

    def __init__(self, master_seed: int):
        self._master_seed = master_seed
        self._streams: dict[str, random.Random] = {}

    @property
    def master_seed(self) -> int:
        """The master seed this registry was created with."""
        return self._master_seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self._master_seed, name))
            self._streams[name] = stream
        return stream

    def streams(self) -> Iterator[str]:
        """Names of all streams created so far."""
        return iter(sorted(self._streams))

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of this one's.

        Useful for nesting (e.g. one registry per simulated run inside a
        sweep that itself draws from a registry).
        """
        return RngRegistry(derive_seed(self._master_seed, f"fork/{name}"))

    def __repr__(self) -> str:
        return (
            f"RngRegistry(master_seed={self._master_seed}, "
            f"streams={len(self._streams)})"
        )
