"""Synchronous gossip rounds on top of the event engine.

The paper's simulator "simulates synchronous gossip rounds among
processes" (§VII-A). The event-driven engine subsumes that model (zero
latency + FIFO ties == everything within a round happens "at once"), but
round-structured experiments — measure state after round r, stop after R
rounds, per-round callbacks — are clearer with an explicit scheduler.

:class:`RoundScheduler` fires registered callbacks once per round at times
``round_length, 2·round_length, ...`` and exposes the current round
number. Message deliveries scheduled during round *r* with zero latency
still execute at the same timestamp, i.e. within round *r* — matching the
paper's lock-step semantics.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigError
from repro.sim.clock import Clock, PeriodicTask
from repro.validation import check_positive

RoundCallback = Callable[[int], None]


class RoundScheduler:
    """Fires per-round callbacks and tracks the round counter.

    Ticking works on any :class:`~repro.sim.clock.Clock`;
    :meth:`run_rounds` additionally drives the clock and therefore needs
    a discrete-event :class:`~repro.sim.engine.Engine`.
    """

    def __init__(
        self,
        engine: Clock,
        *,
        round_length: float = 1.0,
        max_rounds: int | None = None,
    ):
        check_positive(round_length, "round_length")
        if max_rounds is not None and max_rounds < 1:
            raise ConfigError(f"max_rounds must be >= 1, got {max_rounds}")
        self._engine = engine
        self.round_length = round_length
        self.max_rounds = max_rounds
        self.current_round = 0
        self._callbacks: list[RoundCallback] = []
        self._task: PeriodicTask | None = None
        self._started = False

    def on_round(self, callback: RoundCallback) -> None:
        """Register ``callback(round_number)`` to fire every round."""
        self._callbacks.append(callback)

    def start(self) -> None:
        """Begin ticking (idempotent)."""
        if self._started:
            return
        self._started = True
        self._task = self._engine.every(
            self.round_length, self._tick, initial_delay=self.round_length
        )

    def stop(self) -> None:
        """Stop ticking."""
        self._started = False
        if self._task is not None:
            self._task.stop()
            self._task = None

    def _tick(self) -> bool:
        self.current_round += 1
        for callback in list(self._callbacks):
            callback(self.current_round)
        if self.max_rounds is not None and self.current_round >= self.max_rounds:
            self.stop()
            return False
        return True

    def run_rounds(self, count: int) -> int:
        """Start (if needed) and run exactly ``count`` more rounds.

        Returns the round number reached. Events scheduled within each
        round (zero-latency deliveries) are drained before the next round
        fires because they share the round's timestamp and FIFO order.
        """
        if count < 0:
            raise ConfigError(f"count must be >= 0, got {count}")
        self.start()
        target = self.current_round + count
        horizon = (target + 0.5) * self.round_length
        runner = getattr(self._engine, "run", None)
        if runner is None:
            raise ConfigError(
                f"{type(self._engine).__name__} cannot be driven with "
                "run_rounds(); only a discrete-event Engine clock supports it"
            )
        runner(until=horizon)
        return self.current_round

    def __repr__(self) -> str:
        return (
            f"RoundScheduler(round={self.current_round}, "
            f"length={self.round_length}, started={self._started})"
        )
