"""The clock/scheduler seam: one time-source protocol, two oracles.

The protocol core (dissemination, maintenance, bootstrap, the baselines)
never needs to know *what kind of time* it runs on — it only reads ``now``,
schedules callbacks, and runs periodic tasks. This module names that
contract:

* :class:`Clock` — the scheduling surface (``now`` / ``schedule`` /
  ``schedule_at`` / ``every``; cancellation lives on the returned
  :class:`Handle`). :class:`repro.sim.engine.Engine` implements it as the
  **virtual-time oracle**: deterministic discrete-event time, the thing
  golden tests replay against. :class:`repro.service.clock.AsyncClock`
  implements it as the **wall-clock runtime**: the same protocol core
  serving live traffic on an asyncio loop.
* :class:`PeriodicTask` — the paper's repeatedly-executed tasks
  (KEEP_TABLE_UPDATED, FIND_SUPER_CONTACT), written against :class:`Clock`
  only, so one implementation drives both oracles.

Code that needs engine-only capabilities (``run``, ``schedule_batch``,
event accounting) keeps importing :class:`~repro.sim.engine.Engine`;
everything that merely *tells time* takes a :class:`Clock`.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, runtime_checkable

from repro.errors import SchedulingError
from repro.validation import check_positive


@runtime_checkable
class Handle(Protocol):
    """A scheduled callback that can be cancelled.

    Returned by :meth:`Clock.schedule` / :meth:`Clock.schedule_at`.
    :class:`repro.sim.engine.EventHandle` and
    :class:`repro.service.clock.AsyncHandle` both satisfy it.
    """

    def cancel(self) -> None:
        """Prevent the callback from running (no-op once fired)."""
        ...  # pragma: no cover - protocol

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` won the race against firing."""
        ...  # pragma: no cover - protocol

    @property
    def fired(self) -> bool:
        """Whether the callback has already run."""
        ...  # pragma: no cover - protocol

    @property
    def pending(self) -> bool:
        """Whether the callback is still waiting to run."""
        ...  # pragma: no cover - protocol


@runtime_checkable
class Clock(Protocol):
    """Time source + callback scheduler (the engine/runtime seam).

    Implementations must execute same-time callbacks in scheduling (FIFO)
    order — the property the protocol core's determinism rests on, and
    what makes a live trace replayable on the discrete-event oracle.
    """

    @property
    def now(self) -> float:
        """Current time (virtual for the engine, wall-clock for the
        live runtime; unitless either way)."""
        ...  # pragma: no cover - protocol

    def schedule(self, delay: float, callback: Callable[[], Any]) -> Handle:
        """Run ``callback`` after ``delay`` time units (``delay >= 0``)."""
        ...  # pragma: no cover - protocol

    def schedule_at(self, time: float, callback: Callable[[], Any]) -> Handle:
        """Run ``callback`` at absolute ``time`` (``time >= now``)."""
        ...  # pragma: no cover - protocol

    def every(
        self,
        interval: float,
        callback: Callable[[], Any],
        *,
        initial_delay: float | None = None,
        max_firings: int | None = None,
    ) -> "PeriodicTask":
        """Schedule a :class:`PeriodicTask` firing every ``interval``."""
        ...  # pragma: no cover - protocol


class PeriodicTask:
    """A callback re-scheduled every ``interval`` time units.

    Models the paper's repeatedly-executed tasks (Fig. 6's
    KEEP_TABLE_UPDATED, Fig. 4's FIND_SUPER_CONTACT timeout loop). The task
    stops when :meth:`stop` is called or when the callback returns
    ``False``. Written against :class:`Clock` only, so the same task class
    drives virtual time (:class:`~repro.sim.engine.Engine`) and wall-clock
    time (:class:`~repro.service.clock.AsyncClock`).
    """

    def __init__(
        self,
        clock: Clock,
        interval: float,
        callback: Callable[[], Any],
        *,
        initial_delay: float | None = None,
        max_firings: int | None = None,
    ):
        check_positive(interval, "interval", error=SchedulingError)
        self._clock = clock
        self._interval = interval
        self._callback = callback
        self._max_firings = max_firings
        self._firings = 0
        self._stopped = False
        delay = interval if initial_delay is None else initial_delay
        self._handle = clock.schedule(delay, self._fire)

    @property
    def firings(self) -> int:
        """How many times the callback has run."""
        return self._firings

    @property
    def running(self) -> bool:
        """Whether the task is still scheduled."""
        return not self._stopped

    def stop(self) -> None:
        """Cancel future firings."""
        self._stopped = True
        self._handle.cancel()

    def _fire(self) -> None:
        if self._stopped:
            return
        self._firings += 1
        result = self._callback()
        reached_limit = (
            self._max_firings is not None and self._firings >= self._max_firings
        )
        if result is False or reached_limit or self._stopped:
            self._stopped = True
            return
        self._handle = self._clock.schedule(self._interval, self._fire)
