"""Deterministic discrete-event simulation kernel.

The paper's evaluation ran on a custom C# simulator executing synchronous
gossip rounds. This package provides the Python substitute: a deterministic
event-driven engine (:class:`~repro.sim.engine.Engine`) on which gossip
rounds, periodic protocol tasks and message deliveries are all scheduled
events. Determinism is guaranteed by :class:`~repro.sim.rng.RngRegistry`:
every component draws from its own named stream derived from one master
seed, so runs are reproducible bit-for-bit and independent components do not
perturb each other's random sequences.
"""

from repro.sim.engine import Engine, EventHandle, PeriodicTask
from repro.sim.rng import RngRegistry, derive_seed, spawn_seeds
from repro.sim.rounds import RoundScheduler
from repro.sim.trace import TraceLog, TraceRecord

__all__ = [
    "Engine",
    "EventHandle",
    "PeriodicTask",
    "RoundScheduler",
    "RngRegistry",
    "derive_seed",
    "spawn_seeds",
    "TraceLog",
    "TraceRecord",
]
