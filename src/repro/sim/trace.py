"""Structured trace log for simulations.

Metrics in this reproduction are derived from *observable* behaviour
(messages on the wire, deliveries to the application) rather than from
protocol internals, so daMulticast and the baselines are measured the same
way. The :class:`TraceLog` is the shared sink: components append typed
:class:`TraceRecord` entries and analysis code filters them afterwards.

Tracing can be disabled (``TraceLog(enabled=False)``) for large parameter
sweeps where only aggregate counters are needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One traced occurrence.

    ``kind`` is a dotted event name (``"net.sent"``, ``"net.delivered"``,
    ``"net.dropped"``, ``"app.delivered"``, ``"membership.merge"``, ...);
    ``detail`` carries kind-specific fields.
    """

    time: float
    kind: str
    source: Any = None
    target: Any = None
    detail: dict[str, Any] = field(default_factory=dict)


class TraceLog:
    """Append-only log of :class:`TraceRecord` entries with query helpers."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._records: list[TraceRecord] = []

    def record(
        self,
        time: float,
        kind: str,
        source: Any = None,
        target: Any = None,
        **detail: Any,
    ) -> None:
        """Append a record (no-op when tracing is disabled)."""
        if not self.enabled:
            return
        self._records.append(TraceRecord(time, kind, source, target, detail))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def records(self) -> list[TraceRecord]:
        """All records in append order (the live list; do not mutate)."""
        return self._records

    def filter(
        self,
        kind: str | None = None,
        predicate: Callable[[TraceRecord], bool] | None = None,
    ) -> list[TraceRecord]:
        """Records matching ``kind`` (prefix match on dots) and ``predicate``.

        ``kind="net"`` matches ``"net.sent"`` and ``"net.delivered"``;
        ``kind="net.sent"`` matches exactly.
        """
        result = []
        for record in self._records:
            if kind is not None:
                if record.kind != kind and not record.kind.startswith(kind + "."):
                    continue
            if predicate is not None and not predicate(record):
                continue
            result.append(record)
        return result

    def count(
        self,
        kind: str | None = None,
        predicate: Callable[[TraceRecord], bool] | None = None,
    ) -> int:
        """Number of records matching the filter (see :meth:`filter`)."""
        return len(self.filter(kind, predicate))

    def kinds(self) -> dict[str, int]:
        """Histogram of record kinds."""
        histogram: dict[str, int] = {}
        for record in self._records:
            histogram[record.kind] = histogram.get(record.kind, 0) + 1
        return histogram

    def clear(self) -> None:
        """Drop all records."""
        self._records.clear()

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"TraceLog({len(self._records)} records, {state})"
