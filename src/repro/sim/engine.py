"""Event-driven simulation engine.

A minimal, fast discrete-event scheduler: callbacks are executed in
timestamp order, ties broken by scheduling order (FIFO), which keeps runs
deterministic. Periodic protocol tasks (the paper's KEEP_TABLE_UPDATED and
FIND_SUPER_CONTACT timers) are built on top via :class:`PeriodicTask`.

Time is a unitless float; the paper's synchronous gossip rounds map to
events at integer times with zero-latency message delivery in between.

Two fast paths keep large fan-outs cheap:

* **Zero-latency FIFO bucket** — an event scheduled at exactly the current
  time goes into a plain deque instead of the heap. Because simulation time
  only advances once every same-time event has run, the bucket drains
  before any later heap entry fires, so FIFO tie-breaking is preserved
  while the dominant zero-latency case (the paper's synchronous rounds)
  skips the ``O(log n)`` heap entirely.
* **Batched events** — :meth:`Engine.schedule_batch` stores many callbacks
  behind a single queue entry, so N same-timestamp events cost one
  scheduling operation instead of N while keeping per-event accounting.
* **Applied calls** — :meth:`Engine.schedule_apply` stores a bare
  ``(fn, args)`` pair on the queue entry instead of a closure.  One entry
  can stand for ``count`` logical events (the network's vectorized
  delivery batches): :attr:`Engine.pending` and :attr:`Engine.processed`
  account for all of them, so a fan-out folded into a single array-batch
  entry is indistinguishable, counter-wise, from the historical
  one-closure-per-destination loop.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Iterable

from repro.errors import SchedulingError, SimulationError
from repro.sim.clock import Clock, Handle, PeriodicTask

__all__ = ["Clock", "Engine", "EventHandle", "Handle", "PeriodicTask"]


class EventHandle:
    """Handle to a scheduled callback (or callback batch), allowing
    cancellation.

    The callback reference lives on the handle, not in the queue entry, so
    :meth:`cancel` can release the closure (and everything it captures)
    immediately instead of pinning it until the queue entry is popped.
    """

    __slots__ = (
        "time", "_seq", "_count", "_cancelled", "_fired", "_callback",
        "_args", "_engine",
    )

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Any,
        engine: "Engine | None" = None,
        count: int = 1,
        args: tuple | None = None,
    ):
        if time != time:  # NaN passes `time < now` and corrupts the heap
            raise SchedulingError("event time must not be NaN")
        self.time = time
        self._seq = seq
        self._count = count
        self._callback = callback
        self._args = args
        self._engine = engine
        self._cancelled = False
        self._fired = False

    def cancel(self) -> None:
        """Prevent the callback(s) from running (no-op if already fired).

        Cancelling releases the callback reference immediately and
        decrements the engine's live-event count; the dead queue entry is
        discarded lazily when it reaches the front.
        """
        if self._cancelled or self._fired:
            return
        self._cancelled = True
        self._callback = None  # release the closure(s) right away
        self._args = None
        engine = self._engine
        if engine is not None:
            engine._live -= self._count
            self._engine = None

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called before the event fired."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """Whether the callback has already been executed."""
        return self._fired

    @property
    def pending(self) -> bool:
        """Whether the event is still waiting to fire."""
        return not self._cancelled and not self._fired


class Engine:
    """Deterministic discrete-event scheduler — the virtual-time oracle.

    Implements the :class:`repro.sim.clock.Clock` protocol (plus the
    engine-only batch/apply scheduling and event accounting below), so the
    protocol core written against :class:`Clock` runs here deterministically
    and on the live wall-clock runtime unchanged.

    >>> engine = Engine()
    >>> seen = []
    >>> _ = engine.schedule(2.0, lambda: seen.append(engine.now))
    >>> _ = engine.schedule(1.0, lambda: seen.append(engine.now))
    >>> engine.run()
    2
    >>> seen
    [1.0, 2.0]
    """

    def __init__(self) -> None:
        #: future events: (time, seq, handle) — the callback lives on the handle
        self._queue: list[tuple[float, int, EventHandle]] = []
        #: events at exactly the current time, FIFO (seq still assigned so
        #: ordering against same-time heap entries stays exact)
        self._bucket: deque[EventHandle] = deque()
        self._sequence = itertools.count()
        self._now = 0.0
        self._processed = 0
        self._live = 0
        self._running = False

    # ------------------------------------------------------------------
    # Clock & introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of callbacks still scheduled to run.

        Exact: cancelled events are subtracted the moment they are
        cancelled, and each callback of a batch counts individually.
        """
        return self._live

    @property
    def processed(self) -> int:
        """Number of callbacks executed so far."""
        return self._processed

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], Any]) -> EventHandle:
        """Run ``callback`` after ``delay`` time units (``delay >= 0``)."""
        if delay < 0:
            raise SchedulingError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], Any]) -> EventHandle:
        """Run ``callback`` at absolute ``time`` (``time >= now``)."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        handle = EventHandle(time, next(self._sequence), callback, self)
        self._live += 1
        if time == self._now:
            self._bucket.append(handle)
        else:
            heapq.heappush(self._queue, (time, handle._seq, handle))
        return handle

    def schedule_batch(
        self, delay: float, callbacks: Iterable[Callable[[], Any]]
    ) -> EventHandle:
        """Run every callback of ``callbacks`` after ``delay``, in order,
        behind a *single* queue entry.

        The batch fires atomically at one timestamp: its callbacks run
        FIFO, back to back, exactly where one event with the batch's
        scheduling order would have run. Cancelling the returned handle
        cancels the whole batch (individual members cannot be cancelled).
        Each callback counts separately in :attr:`pending` and
        :attr:`processed`: N same-timestamp events cost one heap/bucket
        entry without losing per-event accounting (used by
        :func:`repro.workloads.publications.replay_on` for zero-spacing
        bursts; the network's multicast goes further and folds a whole
        fan-out into a single vectorized callback).
        """
        if delay < 0:
            raise SchedulingError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_batch_at(self._now + delay, callbacks)

    def schedule_batch_at(
        self, time: float, callbacks: Iterable[Callable[[], Any]]
    ) -> EventHandle:
        """Absolute-time variant of :meth:`schedule_batch` (``time >= now``)."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        batch = tuple(callbacks)
        if not batch:
            raise SchedulingError("schedule_batch needs at least one callback")
        handle = EventHandle(time, next(self._sequence), batch, self, count=len(batch))
        self._live += len(batch)
        if time == self._now:
            self._bucket.append(handle)
        else:
            heapq.heappush(self._queue, (time, handle._seq, handle))
        return handle

    def schedule_apply(
        self,
        delay: float,
        fn: Callable[..., Any],
        args: tuple = (),
        *,
        count: int = 1,
    ) -> EventHandle:
        """Run ``fn(*args)`` after ``delay``, storing the bare ``(fn, args)``
        pair on the queue entry instead of a closure.

        ``count`` is the number of logical events the single call stands
        for: the network's vectorized delivery batches pass the whole
        fan-out as one ``fn(sender, targets, message)`` call with
        ``count=len(targets)``, and :attr:`pending` / :attr:`processed`
        account for every one of them. Cancelling the handle cancels the
        whole batch.
        """
        if delay < 0:
            raise SchedulingError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_apply_at(self._now + delay, fn, args, count=count)

    def schedule_apply_at(
        self,
        time: float,
        fn: Callable[..., Any],
        args: tuple = (),
        *,
        count: int = 1,
    ) -> EventHandle:
        """Absolute-time variant of :meth:`schedule_apply` (``time >= now``)."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        if count < 1:
            raise SchedulingError(f"count must be >= 1, got {count}")
        handle = EventHandle(
            time, next(self._sequence), fn, self, count=count, args=tuple(args)
        )
        self._live += count
        if time == self._now:
            self._bucket.append(handle)
        else:
            heapq.heappush(self._queue, (time, handle._seq, handle))
        return handle

    def every(
        self,
        interval: float,
        callback: Callable[[], Any],
        *,
        initial_delay: float | None = None,
        max_firings: int | None = None,
    ) -> PeriodicTask:
        """Schedule a :class:`PeriodicTask` firing every ``interval``."""
        return PeriodicTask(
            self,
            interval,
            callback,
            initial_delay=initial_delay,
            max_firings=max_firings,
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _pop_next(self) -> EventHandle | None:
        """Remove and return the next live handle (discarding cancelled
        entries), or None when nothing is left."""
        bucket = self._bucket
        queue = self._queue
        while bucket and bucket[0]._cancelled:
            bucket.popleft()
        while queue and queue[0][2]._cancelled:
            heapq.heappop(queue)
        if bucket:
            # Bucket entries sit at the current time; a heap entry can only
            # precede them if it shares that time with a smaller sequence.
            if queue:
                time, seq, handle = queue[0]
                head = bucket[0]
                if time < head.time or (time == head.time and seq < head._seq):
                    heapq.heappop(queue)
                    return handle
            return bucket.popleft()
        if queue:
            return heapq.heappop(queue)[2]
        return None

    def _peek_time(self) -> float | None:
        """Timestamp of the next live event, or None when idle."""
        bucket = self._bucket
        queue = self._queue
        while bucket and bucket[0]._cancelled:
            bucket.popleft()
        while queue and queue[0][2]._cancelled:
            heapq.heappop(queue)
        if bucket:
            head_time = bucket[0].time
            if queue and queue[0][0] < head_time:
                return queue[0][0]
            return head_time
        if queue:
            return queue[0][0]
        return None

    def step(self) -> bool:
        """Execute the single next event (a whole batch counts as one
        step but ``len(batch)`` processed callbacks). Returns False when
        the queue is empty."""
        handle = self._pop_next()
        if handle is None:
            return False
        self._now = handle.time
        handle._fired = True
        handle._engine = None
        self._live -= handle._count
        callback = handle._callback
        args = handle._args
        handle._callback = None  # a fired closure is garbage too
        handle._args = None
        if type(callback) is tuple:
            for member in callback:
                self._processed += 1
                member()
        elif args is not None:
            self._processed += handle._count
            callback(*args)
        else:
            self._processed += 1
            callback()
        return True

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
    ) -> int:
        """Drain the event queue.

        Stops when the queue is empty, when simulation time would exceed
        ``until``, or after ``max_events`` callbacks — whichever happens
        first. Returns the number of callbacks executed by this call.
        ``max_events`` guards against accidental live-lock from
        self-rescheduling tasks: exceeding it with events still pending and
        no ``until`` horizon raises :class:`SimulationError`. (A batch runs
        atomically, so a stop boundary can overshoot by at most one batch.)
        """
        if self._running:
            raise SimulationError("Engine.run() is not reentrant")
        self._running = True
        start = self._processed
        try:
            while True:
                next_time = self._peek_time()
                if next_time is None:
                    break
                if (
                    max_events is not None
                    and self._processed - start >= max_events
                ):
                    if until is None:
                        raise SimulationError(
                            f"exceeded max_events={max_events} with "
                            f"{self.pending} events still pending"
                        )
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                self.step()
        finally:
            self._running = False
        if until is not None and self._peek_time() is None and self._now < until:
            self._now = until
        return self._processed - start

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Run until no events remain (bounded by ``max_events``)."""
        return self.run(max_events=max_events)

    def __repr__(self) -> str:
        return (
            f"Engine(now={self._now}, pending={self.pending}, "
            f"processed={self._processed})"
        )
