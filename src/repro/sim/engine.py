"""Event-driven simulation engine.

A minimal, fast discrete-event scheduler: callbacks are executed in
timestamp order, ties broken by scheduling order (FIFO), which keeps runs
deterministic. Periodic protocol tasks (the paper's KEEP_TABLE_UPDATED and
FIND_SUPER_CONTACT timers) are built on top via :class:`PeriodicTask`.

Time is a unitless float; the paper's synchronous gossip rounds map to
events at integer times with zero-latency message delivery in between.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

from repro.errors import SchedulingError, SimulationError


class EventHandle:
    """Handle to a scheduled callback, allowing cancellation."""

    __slots__ = ("time", "_cancelled", "_fired")

    def __init__(self, time: float):
        self.time = time
        self._cancelled = False
        self._fired = False

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if it already ran)."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called before the event fired."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """Whether the callback has already been executed."""
        return self._fired

    @property
    def pending(self) -> bool:
        """Whether the event is still waiting to fire."""
        return not self._cancelled and not self._fired


class PeriodicTask:
    """A callback re-scheduled every ``interval`` time units.

    Models the paper's repeatedly-executed tasks (Fig. 6's
    KEEP_TABLE_UPDATED, Fig. 4's FIND_SUPER_CONTACT timeout loop). The task
    stops when :meth:`stop` is called or when the callback returns ``False``.
    """

    def __init__(
        self,
        engine: "Engine",
        interval: float,
        callback: Callable[[], Any],
        *,
        initial_delay: float | None = None,
        max_firings: int | None = None,
    ):
        if interval <= 0:
            raise SchedulingError(f"interval must be > 0, got {interval}")
        self._engine = engine
        self._interval = interval
        self._callback = callback
        self._max_firings = max_firings
        self._firings = 0
        self._stopped = False
        delay = interval if initial_delay is None else initial_delay
        self._handle = engine.schedule(delay, self._fire)

    @property
    def firings(self) -> int:
        """How many times the callback has run."""
        return self._firings

    @property
    def running(self) -> bool:
        """Whether the task is still scheduled."""
        return not self._stopped

    def stop(self) -> None:
        """Cancel future firings."""
        self._stopped = True
        self._handle.cancel()

    def _fire(self) -> None:
        if self._stopped:
            return
        self._firings += 1
        result = self._callback()
        reached_limit = (
            self._max_firings is not None and self._firings >= self._max_firings
        )
        if result is False or reached_limit or self._stopped:
            self._stopped = True
            return
        self._handle = self._engine.schedule(self._interval, self._fire)


class Engine:
    """Deterministic discrete-event scheduler.

    >>> engine = Engine()
    >>> seen = []
    >>> _ = engine.schedule(2.0, lambda: seen.append(engine.now))
    >>> _ = engine.schedule(1.0, lambda: seen.append(engine.now))
    >>> engine.run()
    >>> seen
    [1.0, 2.0]
    """

    def __init__(self) -> None:
        self._queue: list[tuple[float, int, EventHandle, Callable[[], Any]]] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._processed = 0
        self._running = False

    # ------------------------------------------------------------------
    # Clock & introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    @property
    def processed(self) -> int:
        """Number of callbacks executed so far."""
        return self._processed

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], Any]) -> EventHandle:
        """Run ``callback`` after ``delay`` time units (``delay >= 0``)."""
        if delay < 0:
            raise SchedulingError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], Any]) -> EventHandle:
        """Run ``callback`` at absolute ``time`` (``time >= now``)."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        handle = EventHandle(time)
        heapq.heappush(self._queue, (time, next(self._sequence), handle, callback))
        return handle

    def every(
        self,
        interval: float,
        callback: Callable[[], Any],
        *,
        initial_delay: float | None = None,
        max_firings: int | None = None,
    ) -> PeriodicTask:
        """Schedule a :class:`PeriodicTask` firing every ``interval``."""
        return PeriodicTask(
            self,
            interval,
            callback,
            initial_delay=initial_delay,
            max_firings=max_firings,
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the single next event. Returns False when queue is empty."""
        while self._queue:
            time, _, handle, callback = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self._now = time
            handle._fired = True
            self._processed += 1
            callback()
            return True
        return False

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
    ) -> int:
        """Drain the event queue.

        Stops when the queue is empty, when simulation time would exceed
        ``until``, or after ``max_events`` callbacks — whichever happens
        first. Returns the number of callbacks executed by this call.
        ``max_events`` guards against accidental live-lock from
        self-rescheduling tasks: exceeding it with events still pending and
        no ``until`` horizon raises :class:`SimulationError`.
        """
        if self._running:
            raise SimulationError("Engine.run() is not reentrant")
        self._running = True
        executed = 0
        try:
            while self._queue:
                if max_events is not None and executed >= max_events:
                    if until is None:
                        raise SimulationError(
                            f"exceeded max_events={max_events} with "
                            f"{self.pending} events still pending"
                        )
                    break
                next_time = self._queue[0][0]
                if until is not None and next_time > until:
                    self._now = until
                    break
                if self.step():
                    executed += 1
        finally:
            self._running = False
        if until is not None and not self._queue and self._now < until:
            self._now = until
        return executed

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Run until no events remain (bounded by ``max_events``)."""
        return self.run(max_events=max_events)

    def __repr__(self) -> str:
        return (
            f"Engine(now={self._now}, pending={self.pending}, "
            f"processed={self._processed})"
        )
