"""Appendix tuning results: matching each baseline's reliability.

For each baseline the Appendix derives (assuming the average case — all
levels share ``c``, ``S_T``, ``z`` and ``pit``):

* the window of baseline constants ``c`` for which daMulticast *can* be
  tuned to the same reliability (otherwise no supertopic-table size helps),
* the daMulticast constant ``c1`` achieving equality (eqs. 16, 23, 28),
* the bound on the supertopic-table size ``z`` under which daMulticast's
  memory complexity still beats the baseline's (eqs. 19, 25, 30).

All logarithms here are natural — these are the paper's analytical results,
where ``e^{-e^{-c}}`` fixes the base.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True, slots=True)
class TuningResult:
    """Outcome of matching daMulticast against one baseline.

    ``feasible`` — whether equality is achievable for this ``c``;
    ``c_window`` — the (low, high) feasibility window on ``c``;
    ``c1`` — the daMulticast gossip constant achieving equal reliability
    (None when infeasible);
    ``z_bound`` — the largest supertopic-table size for which daMulticast's
    memory stays at or below the baseline's (None when infeasible).
    """

    baseline: str
    feasible: bool
    c_window: tuple[float, float]
    c1: float | None
    z_bound: float | None


def _check_pit(pit: float) -> None:
    if not 0.0 < pit <= 1.0:
        raise ConfigError(f"pit must be in (0,1], got {pit}")


def match_multicast(
    c: float, pit: float, *, t: int = 3, s_t: float = 1000.0
) -> TuningResult:
    """Appendix (a): equality with the gossip-multicast baseline.

    Feasible iff ``0 ≤ c ≤ −ln(−ln(pit))`` (eq. 16's condition ①②); then
    ``c1 = c − ln(1 + e^c·ln(pit))`` and daMulticast wins on memory iff
    ``z ≤ (t−1)(ln S_T + c) + ln(1 + e^c·ln(pit))`` (eq. 19).
    """
    _check_pit(pit)
    if t < 1:
        raise ConfigError(f"t must be >= 1, got {t}")
    if pit == 1.0:
        # Condition ③: c1 == c works for any c ≥ 0, and the z bound
        # degenerates to (t-1)(ln S_T + c).
        window_high = math.inf
    else:
        window_high = -math.log(-math.log(pit))
    feasible = 0.0 <= c <= window_high
    if not feasible:
        return TuningResult("multicast", False, (0.0, window_high), None, None)
    inner = 1.0 + math.exp(c) * math.log(pit)
    c1 = c - math.log(inner) if pit < 1.0 else c
    z_bound = (t - 1) * (math.log(s_t) + c) + (
        math.log(inner) if pit < 1.0 else 0.0
    )
    return TuningResult("multicast", True, (0.0, window_high), c1, z_bound)


def match_broadcast(
    c: float,
    pit: float,
    *,
    t: int = 3,
    n: float = 1110.0,
    s_t: float = 1000.0,
) -> TuningResult:
    """Appendix (b): equality with the gossip-broadcast baseline.

    Feasible iff ``0 ≤ c ≤ −ln(−t·ln(pit))`` (eq. 23's conditions); then
    ``c1 = c − ln(1 + t·e^c·ln(pit)) + ln(t)`` and the memory win requires
    ``z ≤ ln(n) + ln(1 + t·e^c·ln(pit)) − ln(S_T) − ln(t)`` (eq. 25).
    """
    _check_pit(pit)
    if t < 1:
        raise ConfigError(f"t must be >= 1, got {t}")
    if n < 1 or s_t < 1:
        raise ConfigError("n and s_t must be >= 1")
    if pit == 1.0:
        window_high = math.inf
    else:
        window_high = -math.log(-t * math.log(pit))
    feasible = 0.0 <= c <= window_high
    if not feasible:
        return TuningResult("broadcast", False, (0.0, window_high), None, None)
    inner = 1.0 + t * math.exp(c) * math.log(pit)
    if pit < 1.0:
        c1 = c - math.log(inner) + math.log(t)
        log_inner = math.log(inner)
    else:
        c1 = c + math.log(t)
        log_inner = 0.0
    z_bound = math.log(n) + log_inner - math.log(s_t) - math.log(t)
    return TuningResult("broadcast", True, (0.0, window_high), c1, z_bound)


def match_hierarchical(
    c: float,
    pit: float,
    *,
    t: int = 3,
    n_clusters: int = 10,
) -> TuningResult:
    """Appendix (c): equality with the hierarchical baseline.

    Feasible iff ``−ln(t(1−ln pit)/(N+1)) ≤ c ≤ −ln(−t·ln(pit)/(N+1))``
    (eq. 28's conditions); then
    ``cT = ln(t) + c − ln(t·e^c·ln(pit) + N + 1)`` and the memory win
    requires ``z ≤ c + ln(N) + ln(N + 1 + t·e^c·ln(pit)) − ln(t)``
    (eq. 30).
    """
    _check_pit(pit)
    if t < 1:
        raise ConfigError(f"t must be >= 1, got {t}")
    if n_clusters < 1:
        raise ConfigError(f"n_clusters must be >= 1, got {n_clusters}")
    n_plus = n_clusters + 1
    log_pit = math.log(pit)
    window_low = -math.log(t * (1.0 - log_pit) / n_plus)
    if pit == 1.0:
        window_high = math.inf
    else:
        window_high = -math.log(-t * log_pit / n_plus)
    feasible = window_low <= c <= window_high
    if not feasible:
        return TuningResult(
            "hierarchical", False, (window_low, window_high), None, None
        )
    inner = t * math.exp(c) * log_pit + n_plus
    c_t = math.log(t) + c - math.log(inner)
    z_bound = c + math.log(n_clusters) + math.log(inner) - math.log(t)
    return TuningResult(
        "hierarchical", True, (window_low, window_high), c_t, z_bound
    )
