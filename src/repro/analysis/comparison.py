"""§VI-E side-by-side comparison tables (closed forms).

Builds the three comparison "tables" of §VI-E — message complexity, memory
complexity and reliability — for a chain scenario, in the same rows the
paper discusses. The benchmark harness prints these next to simulated
measurements so who-wins orderings can be checked mechanically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis import complexity, reliability
from repro.errors import ConfigError
from repro.metrics.report import Table


@dataclass(frozen=True)
class ChainScenario:
    """A §VI-A chain: group sizes from publication level up to the root.

    The default is the paper's §VII setting (``[1000, 100, 10]``). ``n``
    (total system size) and the hierarchical baseline's cluster layout
    derive from it unless overridden.
    """

    sizes: Sequence[int] = (1000, 100, 10)
    c: float = 5.0
    g: float = 5.0
    a: float = 1.0
    z: int = 3
    p_succ: float = 1.0
    pi: float = 1.0
    n_clusters: int = 10
    log_base: float = math.e

    def __post_init__(self) -> None:
        if not self.sizes:
            raise ConfigError("scenario needs at least one group size")

    @property
    def n(self) -> int:
        """Total processes in the system."""
        return sum(self.sizes)

    @property
    def t(self) -> int:
        """Number of levels in the chain."""
        return len(self.sizes)

    @property
    def cluster_size(self) -> int:
        """Baseline (c) cluster size ``m = n/N`` (at least 1)."""
        return max(1, round(self.n / self.n_clusters))


def comparison_table(scenario: ChainScenario | None = None) -> dict[str, Table]:
    """The three §VI-E tables for ``scenario`` (closed-form values)."""
    s = scenario or ChainScenario()
    common = dict(log_base=s.log_base)

    messages = Table(
        "§VI-E.1 Message complexity (events per publication, closed form)",
        ["algorithm", "messages", "asymptotic"],
    )
    messages.add_row(
        "daMulticast",
        complexity.damulticast_messages(
            s.sizes, c=s.c, g=s.g, a=s.a, z=s.z, p_succ=s.p_succ, **common
        ),
        "O(S_max log S_max)",
    )
    messages.add_row(
        "gossip broadcast (a)",
        complexity.broadcast_messages(s.n, c=s.c, **common),
        "O(n log n)",
    )
    messages.add_row(
        "gossip multicast (b)",
        complexity.multicast_messages(s.sizes, c=s.c, **common),
        "O(S_max log S_max)",
    )
    messages.add_row(
        "hierarchical (c)",
        complexity.hierarchical_messages(
            s.n_clusters, s.cluster_size, c1=s.c, c2=s.c, **common
        ),
        "O(S_max log S_max)",
    )

    memory = Table(
        "§VI-E.2 Memory complexity (entries per process, closed form)",
        ["algorithm", "memory", "tables"],
    )
    memory.add_row(
        "daMulticast",
        complexity.damulticast_memory(
            max(s.sizes), c=s.c, z=s.z, **common
        ),
        2,
    )
    memory.add_row(
        "gossip broadcast (a)",
        complexity.broadcast_memory(s.n, c=s.c, **common),
        1,
    )
    memory.add_row(
        "gossip multicast (b)",
        complexity.multicast_memory(s.sizes, c=s.c, **common),
        s.t,
    )
    memory.add_row(
        "hierarchical (c)",
        complexity.hierarchical_memory(
            s.n_clusters, s.cluster_size, c1=s.c, c2=s.c, **common
        ),
        2,
    )

    rel = Table(
        "§VI-E.3 Reliability (P(all interested receive), closed form)",
        ["algorithm", "reliability"],
    )
    rel.add_row(
        "daMulticast (hop-exact eq. 1)",
        reliability.damulticast_reliability(
            s.sizes, c=s.c, g=s.g, a=s.a, z=s.z, p_succ=s.p_succ, pi=s.pi
        ),
    )
    rel.add_row(
        "daMulticast (paper eq. 1)",
        reliability.damulticast_reliability_paper(
            s.sizes, c=s.c, g=s.g, a=s.a, z=s.z, p_succ=s.p_succ, pi=s.pi
        ),
    )
    rel.add_row(
        "gossip broadcast (a)", reliability.broadcast_reliability(s.c)
    )
    rel.add_row(
        "gossip multicast (b)",
        reliability.multicast_reliability(s.t, s.c),
    )
    rel.add_row(
        "hierarchical (c)",
        reliability.hierarchical_reliability(s.n_clusters, s.c, s.c),
    )

    return {"messages": messages, "memory": memory, "reliability": rel}
