"""Message and memory complexity — §VI-B, §VI-C and Appendix eqs. 2–13.

All functions take explicit per-level group sizes ``sizes`` ordered from
the publication level up to the root (``sizes[0] = S_Tt`` ... ``sizes[-1]
= S_T0``), matching the paper's chain assumption (§VI-A). Logarithms are
natural by default (``log_base=math.e``), overridable for the base-10
variant the paper's own simulator used (DESIGN.md note 2).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import ConfigError


def _log(x: float, base: float) -> float:
    if x <= 1:
        return 0.0
    return math.log(x, base)


def _check_sizes(sizes: Sequence[int]) -> None:
    if not sizes:
        raise ConfigError("need at least one group size")
    for size in sizes:
        if size < 1:
            raise ConfigError(f"group sizes must be >= 1, got {size}")


# ----------------------------------------------------------------------
# daMulticast (§VI-B)
# ----------------------------------------------------------------------
def damulticast_messages(
    sizes: Sequence[int],
    *,
    c: float = 5.0,
    g: float = 5.0,
    a: float = 1.0,
    z: int = 3,
    p_succ: float = 1.0,
    log_base: float = math.e,
) -> float:
    """Expected total events for one publication climbing the whole chain.

    §VI-B: ``Σ_i S_i(log S_i + c_i) + Σ_{i<t} S_i·p_sel·p_a·p_succ·z``.
    The second sum is the inter-group traffic; with ``p_sel = g/S`` and
    ``p_a = a/z`` it simplifies to ``g·a·p_succ`` per crossed edge.
    """
    _check_sizes(sizes)
    intra = sum(s * (_log(s, log_base) + c) for s in sizes)
    # One inter-group hand-off per level except the root group.
    inter = sum(
        min(1.0, g / s) * s * (a / z) * z * p_succ for s in sizes[:-1]
    )
    return intra + inter


def damulticast_message_bound(
    sizes: Sequence[int],
    *,
    c: float = 5.0,
    z: int = 3,
    log_base: float = math.e,
) -> float:
    """§VI-B's worst-case upper bound ``t·S_max·log(S_max)·(1+c+z)``."""
    _check_sizes(sizes)
    t = len(sizes)
    s_max = max(sizes)
    return t * s_max * max(1.0, _log(s_max, log_base)) * (1 + c + z)


def damulticast_memory(
    group_size: int,
    *,
    c: float = 5.0,
    z: int = 3,
    has_super: bool = True,
    log_base: float = math.e,
) -> float:
    """§VI-C: per-process membership knowledge ``log(S)+c (+z)``.

    Root-group processes have no supertopic table (``has_super=False``),
    giving the paper's range ``log(S)+c ≤ totalMbInfo ≤ log(S)+c+z``.
    """
    if group_size < 1:
        raise ConfigError(f"group size must be >= 1, got {group_size}")
    footprint = _log(group_size, log_base) + c
    return footprint + (z if has_super else 0)


# ----------------------------------------------------------------------
# Baseline (a): gossip broadcast (Appendix eqs. 6-8)
# ----------------------------------------------------------------------
def broadcast_messages(
    n: int, *, c: float = 5.0, log_base: float = math.e
) -> float:
    """Eq. (7): ``n·(log n + c)`` events per publication."""
    if n < 1:
        raise ConfigError(f"n must be >= 1, got {n}")
    return n * (_log(n, log_base) + c)


def broadcast_memory(n: int, *, c: float = 5.0, log_base: float = math.e) -> float:
    """Eq. (6): ``log(n) + c`` per process (n = whole system)."""
    if n < 1:
        raise ConfigError(f"n must be >= 1, got {n}")
    return _log(n, log_base) + c


# ----------------------------------------------------------------------
# Baseline (b): gossip multicast (Appendix eqs. 2-5)
# ----------------------------------------------------------------------
def multicast_messages(
    sizes: Sequence[int], *, c: float = 5.0, log_base: float = math.e
) -> float:
    """Eq. (3): ``Σ_i S_i(log S_i + c_i)`` (event gossiped per level group)."""
    _check_sizes(sizes)
    return sum(s * (_log(s, log_base) + c) for s in sizes)


def multicast_memory(
    sizes: Sequence[int], *, c: float = 5.0, log_base: float = math.e
) -> float:
    """Eq. (2): ``Σ_i (log S_i + c_i)`` for a top-topic subscriber, which
    joins its own group and every subtopic group."""
    _check_sizes(sizes)
    return sum(_log(s, log_base) + c for s in sizes)


# ----------------------------------------------------------------------
# Baseline (c): hierarchical gossip broadcast (Appendix eqs. 9-13)
# ----------------------------------------------------------------------
def hierarchical_messages(
    n_clusters: int,
    cluster_size: int,
    *,
    c1: float = 5.0,
    c2: float = 5.0,
    log_base: float = math.e,
) -> float:
    """Eq. (10): ``N·m·(log N + log m + c1 + c2)``."""
    if n_clusters < 1 or cluster_size < 1:
        raise ConfigError("n_clusters and cluster_size must be >= 1")
    return (
        n_clusters
        * cluster_size
        * (_log(n_clusters, log_base) + _log(cluster_size, log_base) + c1 + c2)
    )


def hierarchical_memory(
    n_clusters: int,
    cluster_size: int,
    *,
    c1: float = 5.0,
    c2: float = 5.0,
    log_base: float = math.e,
) -> float:
    """Eq. (9): ``log(N) + c1 + log(m) + c2`` per process."""
    if n_clusters < 1 or cluster_size < 1:
        raise ConfigError("n_clusters and cluster_size must be >= 1")
    return _log(n_clusters, log_base) + c1 + _log(cluster_size, log_base) + c2
