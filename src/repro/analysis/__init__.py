"""Closed-form analysis of §VI and the Appendix.

Three modules map one-to-one onto the paper's analysis:

* :mod:`~repro.analysis.complexity` — message complexity (§VI-B, Appendix
  eqs. 2–13) and memory complexity (§VI-C, §VI-E.2) for daMulticast and
  the three baselines;
* :mod:`~repro.analysis.reliability` — the Erdős–Rényi gossip reliability
  ``e^{-e^{-c}}``, the inter-group propagation probability ``pit`` and the
  end-to-end reliability product of eq. (1), plus the baselines'
  reliabilities (§VI-E.3);
* :mod:`~repro.analysis.tuning` — the Appendix equivalence results: the
  ``c1`` daMulticast must use to match each baseline's reliability
  (eqs. 16, 23, 28), the feasibility windows on ``c``, and the supertopic-
  table size bounds under which daMulticast still wins on memory
  (eqs. 19, 25, 30).

:mod:`~repro.analysis.comparison` assembles the §VI-E side-by-side tables.
"""

from repro.analysis.complexity import (
    broadcast_memory,
    broadcast_messages,
    damulticast_memory,
    damulticast_messages,
    hierarchical_memory,
    hierarchical_messages,
    multicast_memory,
    multicast_messages,
)
from repro.analysis.reliability import (
    atomic_gossip_reliability,
    broadcast_reliability,
    damulticast_reliability,
    damulticast_reliability_paper,
    effective_fanout_constant,
    effective_gossip_reliability,
    hierarchical_reliability,
    intergroup_propagation_probability,
    multicast_reliability,
)
from repro.analysis.tuning import (
    TuningResult,
    match_broadcast,
    match_hierarchical,
    match_multicast,
)
from repro.analysis.comparison import comparison_table

__all__ = [
    "damulticast_messages",
    "broadcast_messages",
    "multicast_messages",
    "hierarchical_messages",
    "damulticast_memory",
    "broadcast_memory",
    "multicast_memory",
    "hierarchical_memory",
    "atomic_gossip_reliability",
    "effective_fanout_constant",
    "effective_gossip_reliability",
    "intergroup_propagation_probability",
    "damulticast_reliability",
    "damulticast_reliability_paper",
    "broadcast_reliability",
    "multicast_reliability",
    "hierarchical_reliability",
    "TuningResult",
    "match_broadcast",
    "match_multicast",
    "match_hierarchical",
    "comparison_table",
]
