"""Reliability analysis — §VI-D and §VI-E.3.

The building blocks:

* ``e^{-e^{-c}}`` — the Erdős–Rényi threshold [3]: if every member of a
  group of ``S`` gossips a fresh event to ``log(S)+c`` uniformly random
  members, the probability that *everyone* receives it tends to
  ``exp(-exp(-c))``.
* ``pit`` — the probability that at least one copy of the event crosses
  from a group to its supergroup: ``nbSuscProc = S·p_sel·π`` processes are
  able and willing to act as links, each sending to each of the ``z``
  supertable entries with probability ``p_a``, each transmission arriving
  with ``p_succ``; so ``pit = 1 − (1 − p_succ)^{S·p_sel·π·p_a·z}``
  (§VI-D). With ``p_sel = g/S`` and ``p_a = a/z`` the exponent is simply
  ``g·a·π``.
* eq. (1) — the end-to-end product over the levels between the publication
  topic and the observer's topic.

Two variants of eq. (1) are provided (DESIGN.md note 5):
:func:`damulticast_reliability_paper` multiplies one ``pit`` per *level*
(t−j+1 factors, the paper's literal formula), while
:func:`damulticast_reliability` multiplies one ``pit`` per *inter-group
hop* (t−j factors — what the mechanism actually performs, and what the
simulation reproduces).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import ConfigError


def atomic_gossip_reliability(c: float) -> float:
    """Erdős–Rényi limit ``e^{-e^{-c}}``: P(everyone in one group gets it)."""
    return math.exp(-math.exp(-c))


def effective_fanout_constant(
    group_size: int,
    *,
    c: float,
    p_succ: float = 1.0,
    log_base: float = math.e,
) -> float:
    """The ``c`` the Erdős–Rényi threshold actually sees, after loss.

    The protocol sends to ``F = ceil(log_b(S)+c)`` members but only
    ``F·p_succ`` transmissions arrive on average, and the ER result is
    stated in natural-log units: ``F·p_succ = ln(S) + c_eff``. Benchmarks
    compare measured all-receive probabilities against
    ``e^{-e^{-c_eff}}``, which accounts for both the paper's base-10
    simulator fan-out and the lossy channels.
    """
    if group_size < 1:
        raise ConfigError(f"group size must be >= 1, got {group_size}")
    if not 0.0 <= p_succ <= 1.0:
        raise ConfigError(f"p_succ must be in [0,1], got {p_succ}")
    log_term = math.log(group_size, log_base) if group_size > 1 else 0.0
    fanout = max(1, math.ceil(log_term + c))
    fanout = min(fanout, group_size - 1) if group_size > 1 else fanout
    natural_log = math.log(group_size) if group_size > 1 else 0.0
    return fanout * p_succ - natural_log


def effective_gossip_reliability(
    group_size: int,
    *,
    c: float,
    p_succ: float = 1.0,
    log_base: float = math.e,
) -> float:
    """``e^{-e^{-c_eff}}`` with :func:`effective_fanout_constant`'s c_eff."""
    c_eff = effective_fanout_constant(
        group_size, c=c, p_succ=p_succ, log_base=log_base
    )
    return atomic_gossip_reliability(c_eff)


def susceptible_processes(
    group_size: int, g: float = 5.0, pi: float = 1.0
) -> float:
    """§VI-D's ``nbSuscProc = S·p_sel·π``: expected link candidates.

    ``pi`` is the fraction of the group actually infected by the intra-
    group gossip (cf. [4]); with ``p_sel = g/S`` this is just ``g·π``.
    """
    if group_size < 1:
        raise ConfigError(f"group size must be >= 1, got {group_size}")
    if not 0.0 <= pi <= 1.0:
        raise ConfigError(f"pi must be in [0,1], got {pi}")
    return group_size * min(1.0, g / group_size) * pi


def intergroup_propagation_probability(
    group_size: int,
    *,
    g: float = 5.0,
    a: float = 1.0,
    z: int = 3,
    p_succ: float = 1.0,
    pi: float = 1.0,
) -> float:
    """§VI-D's ``pit = 1 − (1−p_succ)^{nbSuscProc·p_a·z}``."""
    if not 0.0 <= p_succ <= 1.0:
        raise ConfigError(f"p_succ must be in [0,1], got {p_succ}")
    if z < 1 or not 1 <= a <= z:
        raise ConfigError(f"need 1 <= a <= z, got a={a}, z={z}")
    exponent = susceptible_processes(group_size, g, pi) * (a / z) * z
    if p_succ == 1.0:
        return 1.0 if exponent > 0 else 0.0
    return 1.0 - (1.0 - p_succ) ** exponent


def damulticast_reliability(
    sizes: Sequence[int],
    *,
    c: float = 5.0,
    g: float = 5.0,
    a: float = 1.0,
    z: int = 3,
    p_succ: float = 1.0,
    pi: float = 1.0,
) -> float:
    """Hop-exact eq. (1): P(every member of the *top* group receives).

    ``sizes`` runs from the publication group up to the observed group
    (e.g. ``[S_T2, S_T1, S_T0]`` to observe the root). Gossip succeeds in
    every traversed group (one ``e^{-e^{-c}}`` factor each), and the event
    crosses ``len(sizes)-1`` inter-group edges (one ``pit`` factor per
    *crossed* edge, computed from the downstream group's size).
    """
    if not sizes:
        raise ConfigError("need at least one group size")
    reliability = 1.0
    for size in sizes:
        if size < 1:
            raise ConfigError(f"group sizes must be >= 1, got {size}")
        reliability *= atomic_gossip_reliability(c)
    for size in sizes[:-1]:  # each non-top group hands the event upward
        reliability *= intergroup_propagation_probability(
            size, g=g, a=a, z=z, p_succ=p_succ, pi=pi
        )
    return reliability


def damulticast_reliability_paper(
    sizes: Sequence[int],
    *,
    c: float = 5.0,
    g: float = 5.0,
    a: float = 1.0,
    z: int = 3,
    p_succ: float = 1.0,
    pi: float = 1.0,
) -> float:
    """The paper's literal eq. (1): ``Π_{i=t}^{j} (e^{-e^{-c_i}}·pit_i)``.

    Multiplies one ``pit`` per level including the top one (t−j+1 factors)
    — slightly more pessimistic than the hop-exact variant whenever
    ``pit < 1``.
    """
    if not sizes:
        raise ConfigError("need at least one group size")
    reliability = 1.0
    for size in sizes:
        reliability *= atomic_gossip_reliability(
            c
        ) * intergroup_propagation_probability(
            size, g=g, a=a, z=z, p_succ=p_succ, pi=pi
        )
    return reliability


# ----------------------------------------------------------------------
# Baselines (§VI-E.3)
# ----------------------------------------------------------------------
def broadcast_reliability(c: float = 5.0) -> float:
    """Baseline (a): one system-wide gossip — ``e^{-e^{-c}}``."""
    return atomic_gossip_reliability(c)


def multicast_reliability(levels: int, c: float = 5.0) -> float:
    """Baseline (b): ``Π_i e^{-e^{-c_i}}`` over the ``levels`` traversed
    topic groups."""
    if levels < 1:
        raise ConfigError(f"levels must be >= 1, got {levels}")
    return atomic_gossip_reliability(c) ** levels


def hierarchical_reliability(
    n_clusters: int, c1: float = 5.0, c2: float = 5.0
) -> float:
    """Baseline (c) per [10]: ``e^{-N·e^{-c1} − e^{-c2}}``."""
    if n_clusters < 1:
        raise ConfigError(f"n_clusters must be >= 1, got {n_clusters}")
    return math.exp(-n_clusters * math.exp(-c1) - math.exp(-c2))
