"""repro — a full reproduction of *Data-Aware Multicast* (DSN 2004).

daMulticast is a decentralized gossip multicast for hierarchical
topic-based publish/subscribe: processes form one gossip group per topic,
events are gossiped epidemically inside a group and probabilistically
handed up the topic hierarchy, and no process ever receives an event of a
topic it did not subscribe to.

Public API highlights
---------------------
* :class:`repro.core.DaMulticastSystem` — build and run a deployment,
* :class:`repro.core.DaMulticastConfig` / :class:`repro.core.TopicParams`
  — the per-topic reliability/message-complexity trade-off knobs,
* :class:`repro.topics.Topic` / :class:`repro.topics.TopicHierarchy` —
  the topic model,
* :mod:`repro.baselines` — the paper's three comparison algorithms,
* :mod:`repro.analysis` — the closed-form complexity/reliability results,
* :mod:`repro.experiments` — regenerate every figure and table.

See README.md for a quickstart and DESIGN.md for the system inventory.
"""

from repro.core import (
    DaMulticastConfig,
    DaMulticastProcess,
    DaMulticastSystem,
    Event,
    EventId,
    TopicParams,
)
from repro.topics import ROOT, Topic, TopicHierarchy

__version__ = "1.0.0"

__all__ = [
    "DaMulticastSystem",
    "DaMulticastProcess",
    "DaMulticastConfig",
    "TopicParams",
    "Event",
    "EventId",
    "Topic",
    "TopicHierarchy",
    "ROOT",
    "__version__",
]
