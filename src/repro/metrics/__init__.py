"""Measurement layer: delivery tracking, reliability and report tables.

Metrics are computed from observable behaviour only — network counters
(:class:`repro.net.stats.NetworkStats`) and application-level deliveries
(:class:`~repro.metrics.collector.DeliveryTracker`) — so daMulticast and
the baselines are measured identically and none can cheat by reporting its
own internals.
"""

from repro.metrics.collector import DeliveryTracker
from repro.metrics.convergence import OverlayStats, overlay_stats, views_of
from repro.metrics.degradation import (
    WindowPoint,
    degradation_summary,
    delivery_ratio_series,
    time_to_repair,
)
from repro.metrics.delivery import (
    delivered_fraction,
    all_received,
    parasite_deliveries,
    topic_delivery_summary,
)
from repro.metrics.streaming import StreamingDeliveryTracker, TopicDeliveryStats
from repro.metrics.paths import hop_distribution, hops_by_group, max_hops, mean_hops
from repro.metrics.report import Table, format_series, render_table

__all__ = [
    "DeliveryTracker",
    "StreamingDeliveryTracker",
    "TopicDeliveryStats",
    "delivered_fraction",
    "all_received",
    "parasite_deliveries",
    "topic_delivery_summary",
    "WindowPoint",
    "delivery_ratio_series",
    "time_to_repair",
    "degradation_summary",
    "OverlayStats",
    "overlay_stats",
    "views_of",
    "hop_distribution",
    "hops_by_group",
    "mean_hops",
    "max_hops",
    "Table",
    "render_table",
    "format_series",
]
