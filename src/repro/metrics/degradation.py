"""Graceful-degradation metrics: delivery ratio over time, repair latency.

The link-fault layer (:mod:`repro.net.faults`) turns "gossip survives
loss" into something measurable; this module supplies the measurements:

* :func:`delivery_ratio_series` — a sliding-window delivery ratio over
  *event time*: events are bucketed by publish time into fixed windows of
  width ``window``, and each window reports
  ``Σ delivered / Σ expected-at-publish`` over the events published in
  it. Deliveries are attributed to the window their event was published
  in (however late they arrive), so a window's ratio answers "of what was
  asked for then, how much was ultimately delivered";
* :func:`time_to_repair` — how long after a fault window closes the
  system is back above a delivery-ratio threshold;
* :func:`degradation_summary` — per-topic delivered fractions, the raw
  material of delivered-fraction-vs-loss-rate curves.

All three read **both** tracker flavours: the full
:class:`~repro.metrics.collector.DeliveryTracker` (per-event records
folded on demand) and the
:class:`~repro.metrics.streaming.StreamingDeliveryTracker` (pre-folded
window cells and per-topic aggregates — construct it with
``StreamingDeliveryTracker(window=...)`` to enable the series). The
denominator in every ratio is the ``expected`` count recorded at publish
time — the event's *intended receivers*, i.e. how many processes the
protocol would deliver it to over a perfect network — so a fault-free
run scores 1.0. Events without a recorded count are excluded from ratio
denominators.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MetricsError
from repro.topics.topic import Topic
from repro.validation import check_finite, check_window


@dataclass(frozen=True)
class WindowPoint:
    """One sliding window of the delivery-ratio series."""

    #: window covers event publish times in [start, end)
    start: float
    end: float
    #: events published in the window
    published: int
    #: Σ expected receivers over those events (0 when none recorded)
    expected: int
    #: deliveries of those events, whenever they arrived
    delivered: int
    #: delivered / expected; None when no expected counts were recorded
    ratio: float | None


def _require_window(window: float) -> float:
    return check_window(window, "window", error=MetricsError)


def _points_from_cells(
    cells: dict[int, tuple[int, int, int]], window: float
) -> list[WindowPoint]:
    points = []
    for index in sorted(cells):
        published, expected, delivered = cells[index]
        points.append(
            WindowPoint(
                start=index * window,
                end=(index + 1) * window,
                published=published,
                expected=expected,
                delivered=delivered,
                ratio=(delivered / expected) if expected else None,
            )
        )
    return points


def delivery_ratio_series(
    tracker, window: float | None = None
) -> list[WindowPoint]:
    """The sliding-window delivery-ratio series of one run.

    With a full tracker, ``window`` is required and the series is folded
    from the per-event records on demand. With a streaming tracker the
    series was folded at recording time: ``window`` may be omitted (the
    tracker's own width is used) but must match the configured width when
    given — the streaming tracker cannot re-bucket after the fact.

    Only windows with at least one published event appear (gossip
    simulations are bursty; all-empty gaps carry no signal and would
    dominate the list at fine widths).
    """
    if getattr(tracker, "mode", "full") == "streaming":
        if window is not None:
            width = _require_window(window)
            if tracker.window is None or width != tracker.window:
                raise MetricsError(
                    f"streaming tracker folded windows of width "
                    f"{tracker.window!r}; cannot re-bucket to {width!r} "
                    "after the fact — construct "
                    "StreamingDeliveryTracker(window=...) with the width "
                    "you will query"
                )
        return _points_from_cells(tracker.window_cells(), tracker.window)
    if window is None:
        raise MetricsError(
            "delivery_ratio_series needs an explicit window width with "
            "the full tracker"
        )
    width = _require_window(window)
    cells: dict[int, list[int]] = {}
    for event in tracker.events:
        index = int(event.published_at // width)
        cell = cells.get(index)
        if cell is None:
            cell = cells[index] = [0, 0, 0]
        cell[0] += 1
        expected = tracker.expected(event.event_id)
        if expected is not None:
            cell[1] += expected
        cell[2] += tracker.delivery_count(event.event_id)
    return _points_from_cells(
        {index: tuple(cell) for index, cell in cells.items()}, width
    )


def time_to_repair(
    series: list[WindowPoint],
    *,
    after: float,
    threshold: float = 0.99,
) -> float | None:
    """Time from ``after`` (a fault window closing) back to health.

    Returns ``start - after`` of the first window that begins at or after
    ``after`` and reports a ratio ``>= threshold`` — i.e. how long until
    freshly published events are again delivered at the threshold rate.
    Windows straddling ``after`` are skipped (their events were published
    under the fault). Returns None when the series never recovers (or no
    window with a measurable ratio follows ``after``).
    """
    if (
        isinstance(threshold, bool)
        or not isinstance(threshold, (int, float))
        or not 0.0 <= threshold <= 1.0
    ):
        raise MetricsError(
            f"threshold must be a number in [0, 1], got {threshold!r}"
        )
    check_finite(after, "'after'", error=MetricsError)
    for point in series:
        if point.start < after or point.ratio is None:
            continue
        if point.ratio >= threshold:
            return point.start - after
    return None


def degradation_summary(tracker) -> dict[str, dict[str, float | int | None]]:
    """Per-topic delivered fractions from either tracker flavour.

    Returns ``{topic name: {"published", "expected", "delivered",
    "delivered_fraction"}}`` where ``delivered_fraction`` is
    ``delivered / Σ expected-at-publish`` (None when no expected counts
    were recorded for the topic). Sweeping this against a loss-rate grid
    yields the delivered-fraction-vs-loss-rate reliability curves.
    """
    summary: dict[str, dict[str, float | int | None]] = {}
    if getattr(tracker, "mode", "full") == "streaming":
        for topic in tracker.topics():
            stats = tracker.topic_stats(topic)
            summary[topic.name] = {
                "published": stats.published,
                "expected": stats.expected_sum,
                "delivered": stats.delivered,
                "delivered_fraction": stats.delivered_fraction,
            }
        return summary
    totals: dict[Topic, list[int]] = {}
    for event in tracker.events:
        cell = totals.get(event.topic)
        if cell is None:
            cell = totals[event.topic] = [0, 0, 0]
        cell[0] += 1
        expected = tracker.expected(event.event_id)
        if expected is not None:
            cell[1] += expected
        cell[2] += tracker.delivery_count(event.event_id)
    for topic in sorted(totals):
        published, expected, delivered = totals[topic]
        summary[topic.name] = {
            "published": published,
            "expected": expected,
            "delivered": delivered,
            "delivered_fraction": (
                delivered / expected if expected else None
            ),
        }
    return summary
