"""Dissemination-depth analysis: how many hops events travel.

Epidemic dissemination reaches the whole group in ``O(log S)`` rounds;
each delivered copy's ``hops`` field records its transmission chain
length, so the hop distribution is the empirical dissemination-tree depth
profile. Comparing per-group distributions also shows the inter-group
hand-off cost: supergroup members receive the event strictly deeper than
the publication group.
"""

from __future__ import annotations

import statistics
from collections import Counter
from typing import Iterable, Mapping

from repro.core.events import EventId
from repro.metrics.collector import DeliveryTracker
from repro.topics.topic import Topic


def hop_distribution(
    tracker: DeliveryTracker, event_id: EventId
) -> Counter:
    """Histogram hop-count → number of processes first reached at it."""
    return Counter(tracker.delivery_hops(event_id).values())


def mean_hops(tracker: DeliveryTracker, event_id: EventId) -> float | None:
    """Mean hops over all recorded deliveries (None when unrecorded).

    The publisher's own delivery (0 hops) is excluded: it never crossed
    the network.
    """
    hops = [h for h in tracker.delivery_hops(event_id).values() if h > 0]
    if not hops:
        return None
    return statistics.fmean(hops)


def max_hops(tracker: DeliveryTracker, event_id: EventId) -> int:
    """Deepest delivery (0 when nothing recorded)."""
    hops = tracker.delivery_hops(event_id).values()
    return max(hops, default=0)


def hops_by_group(
    tracker: DeliveryTracker,
    event_id: EventId,
    groups: Mapping[Topic, Iterable[int]],
) -> dict[Topic, float | None]:
    """Mean delivery depth per topic group (None for unreached groups)."""
    recorded = tracker.delivery_hops(event_id)
    result: dict[Topic, float | None] = {}
    for topic, pids in groups.items():
        values = [recorded[pid] for pid in pids if pid in recorded and recorded[pid] > 0]
        result[topic] = statistics.fmean(values) if values else None
    return result
