"""Plain-text tables and series rendering for experiment output.

The benchmark harness prints, for every figure/table of the paper, the same
rows/series the paper reports. These helpers render them as aligned ASCII
tables (readable in CI logs) and as machine-readable dicts.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence


def _format_cell(value: Any, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


@dataclass
class Table:
    """A titled table with named columns; renders to aligned ASCII."""

    title: str
    columns: Sequence[str]
    rows: list[list[Any]] = field(default_factory=list)
    precision: int = 4

    def add_row(self, *values: Any) -> None:
        """Append one row; must match the number of columns."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells but table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def render(self) -> str:
        """Aligned ASCII rendering with a title rule."""
        header = list(self.columns)
        body = [
            [_format_cell(value, self.precision) for value in row]
            for row in self.rows
        ]
        widths = [
            max(len(header[i]), *(len(row[i]) for row in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def as_dicts(self) -> list[dict[str, Any]]:
        """Rows as column-keyed dicts (for tests and JSON export)."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        index = list(self.columns).index(name)
        return [row[index] for row in self.rows]

    def to_csv(self) -> str:
        """CSV rendering (header + rows) for external plotting tools."""
        output = io.StringIO()
        writer = csv.writer(output, lineterminator="\n")
        writer.writerow(self.columns)
        writer.writerows(self.rows)
        return output.getvalue()

    def to_json(self) -> str:
        """JSON rendering: ``{"title": ..., "rows": [{col: val}, ...]}``."""
        return json.dumps(
            {"title": self.title, "rows": self.as_dicts()},
            indent=2,
            default=str,
        )


def render_table(table: Table) -> str:
    """Convenience alias for ``table.render()``."""
    return table.render()


#: Payload schemas written by ``repro scenario run/sweep --out`` and read
#: back by ``repro scenario render``.
SCENARIO_RUN_SCHEMA = "repro-scenario-run-v1"
SCENARIO_SWEEP_SCHEMA = "repro-scenario-sweep-v1"


def _select_metrics(
    available: Sequence[str], requested: Sequence[str] | None, what: str
) -> list[str]:
    if requested is None:
        return sorted(available)
    missing = sorted(set(requested) - set(available))
    if missing:
        from repro.errors import ConfigError

        raise ConfigError(
            f"{what}: unknown metric(s) {', '.join(map(repr, missing))}; "
            f"available: {', '.join(sorted(available))}"
        )
    return list(requested)


def table_from_scenario_payload(
    payload: Any, metrics: Sequence[str] | None = None
) -> Table:
    """A figure-style :class:`Table` from a saved scenario payload.

    Accepts the two JSON payloads the scenario CLI writes with ``--out``:

    * ``repro-scenario-run-v1`` → one row per metric (mean, std over runs);
    * ``repro-scenario-sweep-v1`` → one row per swept point, one column per
      metric mean (restrict with ``metrics``).

    The returned table renders to aligned ASCII (:meth:`Table.render`),
    CSV (:meth:`Table.to_csv`) or JSON (:meth:`Table.to_json`).
    """
    from repro.errors import ConfigError

    if not isinstance(payload, dict):
        raise ConfigError(
            f"scenario payload must be a JSON object, got {type(payload).__name__}"
        )
    schema = payload.get("schema")
    if schema == SCENARIO_RUN_SCHEMA:
        means = payload.get("means", {})
        stds = payload.get("stds", {})
        chosen = _select_metrics(list(means), metrics, "render")
        table = Table(
            f"scenario {payload.get('name', '?')} — metrics over "
            f"{payload.get('runs', '?')} run(s), master seed "
            f"{payload.get('master_seed', '?')}",
            ["metric", "mean", "std"],
        )
        for metric in chosen:
            table.add_row(metric, means[metric], stds.get(metric, 0.0))
        return table
    if schema == SCENARIO_SWEEP_SCHEMA:
        means = payload.get("means", {})
        field_name = payload.get("field", "point")
        chosen = _select_metrics(list(means), metrics, "render")
        table = Table(
            f"scenario {payload.get('name', '?')} — sweep over "
            f"{field_name} ({payload.get('runs', '?')} run(s)/point, "
            f"master seed {payload.get('master_seed', '?')})",
            [field_name, *chosen],
        )
        for index, point in enumerate(payload.get("points", [])):
            table.add_row(
                point, *(means[metric][index] for metric in chosen)
            )
        return table
    raise ConfigError(
        f"unknown scenario payload schema {schema!r}; expected "
        f"{SCENARIO_RUN_SCHEMA!r} or {SCENARIO_SWEEP_SCHEMA!r} "
        "(write one with 'repro scenario run/sweep --out')"
    )


def format_series(
    name: str,
    xs: Iterable[float],
    ys: Iterable[float],
    precision: int = 4,
) -> str:
    """One figure series as ``name: (x, y) (x, y) ...`` for log output."""
    points = " ".join(
        f"({x:g}, {y:.{precision}f})" for x, y in zip(xs, ys)
    )
    return f"{name}: {points}"
