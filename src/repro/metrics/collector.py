"""Delivery tracking: who received which event, and when.

The reliability figures (Figs. 10–11) need, per event and per group, the
fraction of processes that received the event; §VI-D's "reliability" is the
probability that *every* interested process receives it. The tracker
records the raw (event, pid, time) triples and the queries in
:mod:`repro.metrics.delivery` aggregate them.
"""

from __future__ import annotations

from collections import defaultdict
from types import MappingProxyType
from typing import Mapping

from repro.core.events import Event, EventId

#: shared empty read-only mapping for unknown event ids
_NO_RECEIVERS: Mapping[int, float] = MappingProxyType({})


class DeliveryTracker:
    """Records publishes and application-level deliveries."""

    def __init__(self) -> None:
        self._published: dict[EventId, Event] = {}
        self._publisher: dict[EventId, int] = {}
        self._receivers: dict[EventId, dict[int, float]] = defaultdict(dict)
        self._hops: dict[EventId, dict[int, int]] = defaultdict(dict)
        self._expected: dict[EventId, int] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_publish(
        self, event: Event, publisher: int, expected: int | None = None
    ) -> None:
        """Note that ``publisher`` published ``event``.

        ``expected`` optionally records the event's *intended receivers*:
        how many processes the protocol would deliver it to over a perfect
        network (for daMulticast, the topic's subscribers plus every
        supergroup's by inclusion; for flooding baselines, everyone). It
        is the denominator the graceful-degradation queries
        (:mod:`repro.metrics.degradation`) normalize delivered counts by,
        so a fault-free run scores 1.0 by construction. All in-repo
        publish paths supply it; trackers fed by external actors may
        leave it None, in which case the event is excluded from ratio
        denominators.
        """
        self._published[event.event_id] = event
        self._publisher[event.event_id] = publisher
        if expected is not None:
            self._expected[event.event_id] = expected

    def record_delivery(
        self, pid: int, event: Event, time: float, hops: int | None = None
    ) -> None:
        """Note that ``pid`` delivered ``event`` to its application.

        Only the first delivery per (event, pid) is kept — redundant gossip
        receptions are deduplicated at the protocol layer anyway. ``hops``
        optionally records the transmission count of the delivering copy
        (0 for the publisher itself).
        """
        receivers = self._receivers[event.event_id]
        if pid not in receivers:
            receivers[pid] = time
            if hops is not None:
                self._hops[event.event_id][pid] = hops

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def events(self) -> list[Event]:
        """All recorded events, in publish order."""
        return list(self._published.values())

    def event(self, event_id: EventId) -> Event | None:
        """The published event with ``event_id`` (None if unknown).

        O(1) — the indexed lookup behind per-event metric extraction;
        callers must not rebuild ``{event_id: event}`` from
        :attr:`events` (that turns an N-event scan quadratic).
        """
        return self._published.get(event_id)

    def publisher_of(self, event_id: EventId) -> int | None:
        """The pid that published ``event_id`` (None if unknown)."""
        return self._publisher.get(event_id)

    def expected(self, event_id: EventId) -> int | None:
        """Subscribers of the event's topic at publish time (if recorded)."""
        return self._expected.get(event_id)

    def receivers(self, event_id: EventId) -> Mapping[int, float]:
        """pid → first-delivery time for ``event_id``.

        Returns a *read-only view* of the live per-event dict — O(1), no
        copy. The historical ``dict(...)`` copy made every reliability
        query O(deliveries) per call (``delivered_fraction`` probes ``pid
        in receivers`` per group member, and paid a full copy first);
        membership tests against the view hit the underlying dict
        directly. Callers needing a snapshot that survives later
        deliveries should copy explicitly.
        """
        receivers = self._receivers.get(event_id)
        return _NO_RECEIVERS if receivers is None else MappingProxyType(receivers)

    def received_by(self, event_id: EventId, pid: int) -> bool:
        """Whether ``pid`` delivered ``event_id``."""
        return pid in self._receivers.get(event_id, _NO_RECEIVERS)

    def delivered(self, event_id: EventId, pid: int) -> bool:
        """O(1) membership fast path (alias of :meth:`received_by`,
        named for the reliability queries in :mod:`repro.metrics.delivery`)."""
        return pid in self._receivers.get(event_id, _NO_RECEIVERS)

    def delivery_count(self, event_id: EventId) -> int:
        """Number of distinct processes that delivered ``event_id``."""
        return len(self._receivers.get(event_id, {}))

    def delivery_times(self, event_id: EventId) -> list[float]:
        """Sorted first-delivery times for ``event_id``."""
        return sorted(self._receivers.get(event_id, {}).values())

    def delivery_hops(self, event_id: EventId) -> dict[int, int]:
        """pid → hop count of the first-delivered copy (where recorded)."""
        return dict(self._hops.get(event_id, {}))

    def clear(self) -> None:
        """Forget everything (e.g. between warm-up and measurement)."""
        self._published.clear()
        self._publisher.clear()
        self._receivers.clear()
        self._hops.clear()
        self._expected.clear()

    def __repr__(self) -> str:
        return (
            f"DeliveryTracker({len(self._published)} events, "
            f"{sum(len(r) for r in self._receivers.values())} deliveries)"
        )
