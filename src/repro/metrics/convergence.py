"""Membership-overlay quality metrics.

The reliability guarantees of the underlying membership algorithm ([10])
rest on two structural properties of the union-of-views overlay: it must
stay *connected* (otherwise gossip partitions) and views must look like
*uniform samples* (in-degree concentration — no hotspots, no forgotten
members). These metrics quantify both for any collection of processes
exposing ``pid`` and a view with ``pids``; they back the flat-membership
tests and the convergence example.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence


@dataclass(frozen=True, slots=True)
class OverlayStats:
    """Structural summary of a membership overlay."""

    n_processes: int
    connected: bool
    reachable_from_first: int
    mean_view_size: float
    mean_in_degree: float
    max_in_degree: int
    min_in_degree: int
    in_degree_stdev: float
    stale_entry_fraction: float

    def is_healthy(self, *, max_stale: float = 0.2) -> bool:
        """Connected, nobody forgotten, few stale entries."""
        return (
            self.connected
            and self.min_in_degree >= 1
            and self.stale_entry_fraction <= max_stale
        )


def view_graph(views: Mapping[int, Sequence[int]]) -> dict[int, set[int]]:
    """Adjacency (pid → known pids) restricted to participating pids."""
    members = set(views)
    return {
        pid: {peer for peer in peers if peer in members}
        for pid, peers in views.items()
    }


def overlay_stats(
    views: Mapping[int, Sequence[int]],
    *,
    is_alive: Callable[[int], bool] = lambda pid: True,
) -> OverlayStats:
    """Compute :class:`OverlayStats` for a pid → view-members mapping.

    ``is_alive`` marks which referenced processes are actually up; view
    entries pointing at dead or departed processes count as *stale*.
    Connectivity is evaluated over alive members only, following edges in
    either direction (gossip exchanges are bidirectional in effect).
    """
    alive = [pid for pid in views if is_alive(pid)]
    n = len(alive)
    if n == 0:
        return OverlayStats(0, True, 0, 0.0, 0.0, 0, 0, 0.0, 0.0)

    alive_set = set(alive)
    in_degree = {pid: 0 for pid in alive}
    total_entries = 0
    stale_entries = 0
    undirected: dict[int, set[int]] = {pid: set() for pid in alive}
    for pid in alive:
        for peer in views[pid]:
            total_entries += 1
            if peer in alive_set:
                in_degree[peer] += 1
                undirected[pid].add(peer)
                undirected[peer].add(pid)
            else:
                stale_entries += 1

    first = alive[0]
    reached = {first}
    frontier = [first]
    while frontier:
        node = frontier.pop()
        for peer in undirected[node]:
            if peer not in reached:
                reached.add(peer)
                frontier.append(peer)

    degrees = list(in_degree.values())
    view_sizes = [len(views[pid]) for pid in alive]
    return OverlayStats(
        n_processes=n,
        connected=len(reached) == n,
        reachable_from_first=len(reached),
        mean_view_size=statistics.fmean(view_sizes),
        mean_in_degree=statistics.fmean(degrees),
        max_in_degree=max(degrees),
        min_in_degree=min(degrees),
        in_degree_stdev=statistics.stdev(degrees) if n > 1 else 0.0,
        stale_entry_fraction=(
            stale_entries / total_entries if total_entries else 0.0
        ),
    )


def views_of(processes: Iterable) -> dict[int, list[int]]:
    """Extract pid → view pids from process-like objects.

    Works with anything exposing ``pid`` and either ``topic_table()`` (the
    daMulticast process) or ``membership.view`` (bare membership actors).
    """
    result: dict[int, list[int]] = {}
    for process in processes:
        if hasattr(process, "topic_table"):
            result[process.pid] = list(process.topic_table().pids)
        else:
            result[process.pid] = list(process.membership.view.pids)
    return result
