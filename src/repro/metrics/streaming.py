"""Streaming delivery metrics — O(topics) state for 10⁵–10⁶-process runs.

The full :class:`~repro.metrics.collector.DeliveryTracker` keeps one
``(event, pid) → time`` record per delivery; at §VII scale that is the
figures' raw material, at S=10⁵–10⁶ it *is* the memory wall (a single
publication can deliver to a hundred thousand processes). This module's
:class:`StreamingDeliveryTracker` folds every delivery into per-topic
aggregates the moment it happens:

* delivered / published counters,
* latency sum, min, max and a fixed 64-bucket geometric histogram
  (power-of-two bucket edges via ``math.frexp``) supporting approximate
  percentiles,
* hop-count sum and max.

State is **O(topics)**, independent of how many events flow. The price is
losing per-event / per-receiver resolution: queries that need it (the
``receivers`` family) raise :class:`~repro.errors.MetricsError` pointing
back at the full tracker, and first-delivery deduplication is delegated to
the protocol layer (each process's ``seen`` set — or the columnar
backend's per-event bitmasks — already guarantees ``record_delivery`` is
called once per (event, pid), which is the documented contract).

Latency needs no per-event state because every
:class:`~repro.core.events.Event` carries its ``published_at`` timestamp:
``time - event.published_at`` is computed at recording time and only the
aggregate survives.
"""

from __future__ import annotations

import math

from repro.core.events import Event, EventId
from repro.errors import MetricsError
from repro.topics.topic import Topic
from repro.validation import check_window

#: histogram buckets: [0] for latency <= 0, then one per power-of-two
#: magnitude, clamped at both ends
_BUCKETS = 64
#: bucket index offset: latencies around 2**-31 land in bucket 1
_EXP_OFFSET = 32


def _latency_bucket(latency: float) -> int:
    """The histogram bucket of ``latency`` (power-of-two edges)."""
    if latency <= 0.0:
        return 0
    exponent = math.frexp(latency)[1]  # latency in [2**(e-1), 2**e)
    return min(_BUCKETS - 1, max(1, exponent + _EXP_OFFSET))


def _bucket_upper_bound(bucket: int) -> float:
    """The inclusive upper latency edge of ``bucket``."""
    if bucket == 0:
        return 0.0
    return 2.0 ** (bucket - _EXP_OFFSET)


class TopicDeliveryStats:
    """Aggregate delivery counters for one topic (fixed-size state)."""

    __slots__ = (
        "topic", "published", "delivered", "expected_sum", "latency_sum",
        "latency_min", "latency_max", "hops_sum", "hops_max", "hops_count",
        "histogram",
    )

    def __init__(self, topic: Topic):
        self.topic = topic
        self.published = 0
        self.delivered = 0
        self.expected_sum = 0
        self.latency_sum = 0.0
        self.latency_min = math.inf
        self.latency_max = -math.inf
        self.hops_sum = 0
        self.hops_max = 0
        self.hops_count = 0
        self.histogram = [0] * _BUCKETS

    @property
    def mean_latency(self) -> float | None:
        """Mean publish→delivery latency, None before any delivery."""
        if self.delivered == 0:
            return None
        return self.latency_sum / self.delivered

    @property
    def delivered_fraction(self) -> float | None:
        """delivered / Σ expected-at-publish; None when no expected counts
        were recorded (see ``record_publish(expected=...)``)."""
        if self.expected_sum == 0:
            return None
        return self.delivered / self.expected_sum

    @property
    def mean_hops(self) -> float | None:
        """Mean hop count of first-delivered copies (where recorded)."""
        if self.hops_count == 0:
            return None
        return self.hops_sum / self.hops_count

    def latency_percentile(self, q: float) -> float | None:
        """Approximate ``q``-quantile latency (power-of-two bucket upper
        bound; exact when all latencies share a bucket, e.g. the
        zero-latency synchronous-round setting)."""
        if not 0.0 <= q <= 1.0:
            raise MetricsError(f"quantile must be in [0,1], got {q}")
        if self.delivered == 0:
            return None
        rank = q * self.delivered
        cumulative = 0
        for bucket, count in enumerate(self.histogram):
            cumulative += count
            if cumulative >= rank and count:
                return min(_bucket_upper_bound(bucket), self.latency_max)
        return self.latency_max

    def __repr__(self) -> str:
        return (
            f"TopicDeliveryStats({self.topic.name}, "
            f"published={self.published}, delivered={self.delivered})"
        )


class StreamingDeliveryTracker:
    """Windowed/aggregate delivery tracker with O(topics) memory.

    Recording API is identical to the full tracker
    (:meth:`record_publish` / :meth:`record_delivery`), so processes and
    systems accept either interchangeably; aggregate queries live here and
    per-event queries raise :class:`~repro.errors.MetricsError`.
    """

    #: distinguishes tracker flavours without isinstance checks
    mode = "streaming"

    def __init__(self, window: float | None = None) -> None:
        if window is not None:
            check_window(window, "window", error=MetricsError)
        #: sliding-window width (event time); None disables the window
        #: series (the per-window dict would otherwise grow O(horizon/width))
        self.window = float(window) if window is not None else None
        self._topics: dict[Topic, TopicDeliveryStats] = {}
        #: window index → [published, expected_sum, delivered]; events are
        #: bucketed by *publish* time, and a delivery folds into the window
        #: its event was published in (``event.published_at`` travels with
        #: the event, so no per-event state is needed)
        self._windows: dict[int, list[int]] = {}
        self.events_published = 0
        self.deliveries = 0

    def _stats_for(self, topic: Topic) -> TopicDeliveryStats:
        stats = self._topics.get(topic)
        if stats is None:
            stats = self._topics[topic] = TopicDeliveryStats(topic)
        return stats

    # ------------------------------------------------------------------
    # Recording (same signatures as the full tracker)
    # ------------------------------------------------------------------
    def record_publish(
        self, event: Event, publisher: int, expected: int | None = None
    ) -> None:
        """Fold one publication into its topic (and window) aggregates.

        ``expected`` — the event's intended receivers over a perfect
        network — feeds the delivered-fraction denominators; see the full
        tracker's docstring for the convention.
        """
        self.events_published += 1
        stats = self._stats_for(event.topic)
        stats.published += 1
        if expected is not None:
            stats.expected_sum += expected
        if self.window is not None:
            cell = self._window_cell(event.published_at)
            cell[0] += 1
            if expected is not None:
                cell[1] += expected

    def record_delivery(
        self, pid: int, event: Event, time: float, hops: int | None = None
    ) -> None:
        """Fold one first delivery into its topic's aggregates.

        Unlike the full tracker this cannot deduplicate (event, pid)
        repeats — that set is exactly the O(messages) state streaming mode
        eliminates. The protocol layer already delivers at most once per
        (event, pid) (Fig. 5's RECEIVE ignores later copies), which is the
        recording contract here.
        """
        self.deliveries += 1
        stats = self._stats_for(event.topic)
        stats.delivered += 1
        if self.window is not None:
            self._window_cell(event.published_at)[2] += 1
        latency = time - event.published_at
        stats.latency_sum += latency
        if latency < stats.latency_min:
            stats.latency_min = latency
        if latency > stats.latency_max:
            stats.latency_max = latency
        stats.histogram[_latency_bucket(latency)] += 1
        if hops is not None:
            stats.hops_count += 1
            stats.hops_sum += hops
            if hops > stats.hops_max:
                stats.hops_max = hops

    def _window_cell(self, published_at: float) -> list[int]:
        index = int(published_at // self.window)
        cell = self._windows.get(index)
        if cell is None:
            cell = self._windows[index] = [0, 0, 0]
        return cell

    # ------------------------------------------------------------------
    # Aggregate queries
    # ------------------------------------------------------------------
    def window_cells(self) -> dict[int, tuple[int, int, int]]:
        """window index → (published, expected_sum, delivered), sorted.

        Raw material for :func:`repro.metrics.degradation.delivery_ratio_series`;
        raises when the tracker was built without a ``window``.
        """
        if self.window is None:
            raise MetricsError(
                "this StreamingDeliveryTracker has no window configured; "
                "construct it with StreamingDeliveryTracker(window=...)"
            )
        return {
            index: tuple(cell)
            for index, cell in sorted(self._windows.items())
        }

    def topics(self) -> list[Topic]:
        """Topics with at least one recorded publish or delivery."""
        return sorted(self._topics)

    def topic_stats(self, topic: Topic) -> TopicDeliveryStats:
        """The aggregates for ``topic`` (fresh zeros if never seen)."""
        stats = self._topics.get(topic)
        return stats if stats is not None else TopicDeliveryStats(topic)

    def delivery_count_by_topic(self, topic: Topic) -> int:
        """Total deliveries recorded for ``topic``."""
        return self.topic_stats(topic).delivered

    def mean_latency(self, topic: Topic) -> float | None:
        """Mean publish→delivery latency for ``topic``."""
        return self.topic_stats(topic).mean_latency

    def latency_percentile(self, topic: Topic, q: float) -> float | None:
        """Approximate ``q``-quantile delivery latency for ``topic``."""
        return self.topic_stats(topic).latency_percentile(q)

    def state_size(self) -> int:
        """Number of per-topic aggregate records held — the quantity the
        O(topics) memory bound is asserted on (never grows with events)."""
        return len(self._topics)

    def clear(self) -> None:
        """Forget everything (e.g. between warm-up and measurement)."""
        self._topics.clear()
        self._windows.clear()
        self.events_published = 0
        self.deliveries = 0

    # ------------------------------------------------------------------
    # Per-event API of the full tracker: unsupported, loudly
    # ------------------------------------------------------------------
    def _unsupported(self, query: str) -> MetricsError:
        return MetricsError(
            f"{query} needs per-event state the streaming tracker does not "
            "keep (memory is O(topics), not O(messages)); run with the "
            "full DeliveryTracker (tracker='full') for per-event queries"
        )

    def receivers(self, event_id: EventId):
        raise self._unsupported("receivers()")

    def received_by(self, event_id: EventId, pid: int) -> bool:
        raise self._unsupported("received_by()")

    def delivered(self, event_id: EventId, pid: int) -> bool:
        raise self._unsupported("delivered()")

    def delivery_count(self, event_id: EventId) -> int:
        raise self._unsupported("delivery_count()")

    def delivery_times(self, event_id: EventId) -> list[float]:
        raise self._unsupported("delivery_times()")

    def delivery_hops(self, event_id: EventId) -> dict[int, int]:
        raise self._unsupported("delivery_hops()")

    def event(self, event_id: EventId) -> Event | None:
        raise self._unsupported("event()")

    def publisher_of(self, event_id: EventId) -> int | None:
        raise self._unsupported("publisher_of()")

    def __repr__(self) -> str:
        return (
            f"StreamingDeliveryTracker({len(self._topics)} topics, "
            f"{self.deliveries} deliveries folded)"
        )
