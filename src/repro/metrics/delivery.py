"""Reliability queries over a :class:`~repro.metrics.collector.DeliveryTracker`.

These implement the paper's measured quantities:

* Figs. 10–11's y-axis — "percentage of processes receiving a message" per
  group (:func:`delivered_fraction`, restricted to alive processes because
  a stillborn process cannot receive anything by definition),
* §VI-D's reliability — "the probability that every process interested in
  topic Ti receives a given event" (:func:`all_received`, estimated over
  repeated runs by the experiment harness),
* §I's "parasite messages" — deliveries of events the receiving process
  never subscribed to (:func:`parasite_deliveries`; zero for daMulticast by
  construction, nonzero for broadcast-style baselines).
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from repro.core.events import EventId
from repro.metrics.collector import DeliveryTracker
from repro.topics.topic import Topic


def delivered_fraction(
    tracker: DeliveryTracker,
    event_id: EventId,
    group_pids: Iterable[int],
    is_alive: Callable[[int], bool] = lambda pid: True,
) -> float:
    """Fraction of (alive) ``group_pids`` that delivered ``event_id``.

    Returns 1.0 for an empty group: vacuously, everyone interested got it.
    """
    alive = [pid for pid in group_pids if is_alive(pid)]
    if not alive:
        return 1.0
    receivers = tracker.receivers(event_id)
    got_it = sum(1 for pid in alive if pid in receivers)
    return got_it / len(alive)


def all_received(
    tracker: DeliveryTracker,
    event_id: EventId,
    group_pids: Iterable[int],
    is_alive: Callable[[int], bool] = lambda pid: True,
) -> bool:
    """§VI-D's reliability indicator: did *every* alive member deliver it?"""
    receivers = tracker.receivers(event_id)
    return all(pid in receivers for pid in group_pids if is_alive(pid))


def parasite_deliveries(
    tracker: DeliveryTracker,
    interests: Mapping[int, Topic],
) -> int:
    """Count deliveries of events outside the receiver's subscription.

    ``interests`` maps pid → subscribed topic; a delivery of event ``e`` to
    ``pid`` is parasitic when ``interests[pid]`` does *not* include
    ``e.topic`` (the process was never interested in it). Processes absent
    from ``interests`` are treated as interested in nothing, so every
    delivery to them counts as parasitic — this is how the broadcast
    baseline's overhead is measured.
    """
    parasites = 0
    for event in tracker.events:
        for pid in tracker.receivers(event.event_id):
            topic = interests.get(pid)
            if topic is None or not topic.includes(event.topic):
                parasites += 1
    return parasites


def mean_delivery_latency(
    tracker: DeliveryTracker, event_id: EventId
) -> float | None:
    """Mean first-delivery time minus publish time; None when undelivered.

    Uses the tracker's O(1) indexed event lookup — extracting latencies
    for every event of an N-event stream is O(total deliveries), not
    O(N²).
    """
    event = tracker.event(event_id)
    if event is None:
        return None
    times = tracker.delivery_times(event_id)
    if not times:
        return None
    return sum(t - event.published_at for t in times) / len(times)
