"""Reliability queries over a :class:`~repro.metrics.collector.DeliveryTracker`.

These implement the paper's measured quantities:

* Figs. 10–11's y-axis — "percentage of processes receiving a message" per
  group (:func:`delivered_fraction`, restricted to alive processes because
  a stillborn process cannot receive anything by definition),
* §VI-D's reliability — "the probability that every process interested in
  topic Ti receives a given event" (:func:`all_received`, estimated over
  repeated runs by the experiment harness),
* §I's "parasite messages" — deliveries of events the receiving process
  never subscribed to (:func:`parasite_deliveries`; zero for daMulticast by
  construction, nonzero for broadcast-style baselines).
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from repro.core.events import EventId
from repro.metrics.collector import DeliveryTracker
from repro.topics.topic import Topic


def delivered_fraction(
    tracker: DeliveryTracker,
    event_id: EventId,
    group_pids: Iterable[int],
    is_alive: Callable[[int], bool] = lambda pid: True,
) -> float:
    """Fraction of (alive) ``group_pids`` that delivered ``event_id``.

    Returns 1.0 when no alive member remains — an empty group, or a group
    whose every member is dead. Both are the same vacuous-truth
    convention :func:`all_received` applies: with nobody left who *could*
    receive, reliability is trivially met. The all-dead case matters under
    heavy stillborn failure (Fig. 10's low alive fractions can kill a
    whole small group); both queries deliberately agree on it, and
    tests/test_metrics.py pins the agreement.

    O(alive) per call: :meth:`DeliveryTracker.receivers` is a read-only
    view over the live per-event dict, so each membership probe is one
    dict lookup — no per-call copy of the delivery records.
    """
    alive = [pid for pid in group_pids if is_alive(pid)]
    if not alive:
        return 1.0
    receivers = tracker.receivers(event_id)
    got_it = sum(1 for pid in alive if pid in receivers)
    return got_it / len(alive)


def all_received(
    tracker: DeliveryTracker,
    event_id: EventId,
    group_pids: Iterable[int],
    is_alive: Callable[[int], bool] = lambda pid: True,
) -> bool:
    """§VI-D's reliability indicator: did *every* alive member deliver it?

    Vacuously True when no alive member remains (empty group or all
    members dead) — the same convention as :func:`delivered_fraction`
    returning 1.0, so the two queries never disagree about a dead group.
    """
    receivers = tracker.receivers(event_id)
    return all(pid in receivers for pid in group_pids if is_alive(pid))


def parasite_deliveries(
    tracker: DeliveryTracker,
    interests: Mapping[int, Topic],
) -> int:
    """Count deliveries of events outside the receiver's subscription.

    ``interests`` maps pid → subscribed topic; a delivery of event ``e`` to
    ``pid`` is parasitic when ``interests[pid]`` does *not* include
    ``e.topic`` (the process was never interested in it). Processes absent
    from ``interests`` are treated as interested in nothing, so every
    delivery to them counts as parasitic — this is how the broadcast
    baseline's overhead is measured.
    """
    parasites = 0
    for event in tracker.events:
        for pid in tracker.receivers(event.event_id):
            topic = interests.get(pid)
            if topic is None or not topic.includes(event.topic):
                parasites += 1
    return parasites


def mean_delivery_latency(
    tracker: DeliveryTracker, event_id: EventId
) -> float | None:
    """Mean first-delivery time minus publish time; None when undelivered.

    Uses the tracker's O(1) indexed event lookup — extracting latencies
    for every event of an N-event stream is O(total deliveries), not
    O(N²).
    """
    event = tracker.event(event_id)
    if event is None:
        return None
    times = tracker.delivery_times(event_id)
    if not times:
        return None
    return sum(t - event.published_at for t in times) / len(times)


def topic_delivery_summary(
    tracker,
    topic: Topic,
) -> dict[str, float | int | None]:
    """Per-topic delivery aggregates from *either* tracker flavour.

    Returns ``{"published", "delivered", "mean_latency"}`` for ``topic``.
    With a :class:`~repro.metrics.streaming.StreamingDeliveryTracker` the
    numbers come straight off its O(topics) aggregates; with the full
    :class:`DeliveryTracker` they are folded from the raw per-event
    records on the fly — identical results, so figures code can run
    unchanged at either scale.
    """
    if getattr(tracker, "mode", "full") == "streaming":
        stats = tracker.topic_stats(topic)
        return {
            "published": stats.published,
            "delivered": stats.delivered,
            "mean_latency": stats.mean_latency,
        }
    published = delivered = 0
    latency_sum = 0.0
    for event in tracker.events:
        if event.topic != topic:
            continue
        published += 1
        times = tracker.delivery_times(event.event_id)
        delivered += len(times)
        latency_sum += sum(t - event.published_at for t in times)
    return {
        "published": published,
        "delivered": delivered,
        "mean_latency": (latency_sum / delivered) if delivered else None,
    }
