"""Exception hierarchy for the daMulticast reproduction.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch library failures with a single ``except`` clause
while still being able to discriminate the failing subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this library."""


class ConfigError(ReproError):
    """A configuration value is out of its documented domain.

    Raised eagerly at construction time (e.g. ``a > z`` in
    :class:`repro.core.params.TopicParams`) rather than lazily during a
    simulation, so misconfigured experiments fail fast.
    """


class TopicError(ReproError):
    """Base class for topic-related errors."""


class InvalidTopicName(TopicError):
    """A topic name does not follow the dotted-path syntax."""


class UnknownTopic(TopicError):
    """A topic was used that is not registered in the hierarchy."""


class HierarchyError(TopicError):
    """The topic hierarchy is structurally invalid (cycle, orphan...)."""


class SimulationError(ReproError):
    """The simulation kernel was driven into an invalid state."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or on a stopped engine."""


class NetworkError(ReproError):
    """A message could not be routed (unknown actor, closed network)."""


class UnknownActor(NetworkError):
    """A message was addressed to a process id never registered."""


class MembershipError(ReproError):
    """A membership table was used in an invalid way."""


class ProtocolError(ReproError):
    """A protocol message violated the daMulticast state machine."""


class MetricsError(ReproError):
    """A metrics query is unsupported by the active tracker mode.

    Raised by the streaming delivery tracker when a per-event /
    per-receiver query is made — those need O(messages) state the
    streaming mode exists to avoid; run with the full tracker instead.
    """
