"""Determinism lint: machine-checked bit-identity invariants.

Every reproducibility guarantee in this tree — the ``derive_seed``
stream contract, draw-free uninstalled hooks, PYTHONHASHSEED-safe
aggregation, NaN/inf rejection at construction time — is enforced here
as a static :mod:`ast` pass instead of by convention. Run it as
``repro lint [PATHS]`` (CI keeps ``src/`` clean) or programmatically::

    from repro.lint import run_lint
    report = run_lint(["src"])
    assert report.ok, report.findings

Rules (see the README's "Determinism invariants" catalog):

========  ==========================================================
DET001    no draws from the process-global ``random`` module
DET002    no wall-clock/entropy sources in sim-pure paths
DET003    PYTHONHASHSEED hazards: hash-ordered iteration, ``hash()``
DET004    RNG stream labels declared in ``STREAM_REGISTRY``
DET005    float parameters reach a finite-check before use
LINT00x   pragma hygiene (syntax, rationale required, unused)
========  ==========================================================

Intentional exceptions are suppressed inline with
``# repro-lint: allow[RULE]: rationale`` (the rationale is mandatory;
unused pragmas are themselves findings).
"""

from repro.lint.config import DEFAULT_CONFIG, LintConfig
from repro.lint.engine import all_rules, lint_source, run_lint
from repro.lint.findings import Finding, LintReport, Suppression
from repro.lint.report import render_json, render_text

__all__ = [
    "DEFAULT_CONFIG",
    "Finding",
    "LintConfig",
    "LintReport",
    "Suppression",
    "all_rules",
    "lint_source",
    "render_json",
    "render_text",
    "run_lint",
]
