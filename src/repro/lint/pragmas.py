"""Inline suppression pragmas for the determinism lint.

Syntax (a comment, on the offending line or alone on the line above)::

    risky_call()  # repro-lint: allow[DET003]: rationale for the exception
    # repro-lint: allow[DET001,DET002]: one rationale for both rules
    risky_call()

The rationale after the closing ``]:`` is **mandatory** — a pragma
without one does not suppress anything and is itself reported
(``LINT001``), so every exception in the tree documents why it is safe.
A pragma whose rules never fire on its target line is reported as unused
(``LINT002``); that is what guarantees "deleting any pragma makes the
lint fail" stays true as the code evolves.

Comments are found with :mod:`tokenize`, so pragma-looking text inside
string literals (e.g. the lint's own fixtures) is never misparsed.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.lint.findings import Finding

PRAGMA_MARKER = "repro-lint:"

#: the inline pragma: the marker followed by ``allow[RULE,...]: rationale``
PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*allow\[(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)\]"
    r"(?::\s*(?P<rationale>.*\S))?\s*$"
)


@dataclass
class Pragma:
    """One parsed ``allow`` pragma."""

    line: int  # line the comment is on
    target_line: int  # line whose findings it suppresses
    rules: tuple[str, ...]
    rationale: str
    used_rules: set[str] = field(default_factory=set)


@dataclass
class PragmaScan:
    """All pragmas of one file plus the hygiene problems found scanning."""

    pragmas: list[Pragma]
    problems: list[Finding]

    def suppression_for(self, rule: str, line: int) -> Pragma | None:
        """The pragma that silences ``rule`` at ``line``, if any."""
        for pragma in self.pragmas:
            if pragma.target_line == line and rule in pragma.rules:
                if not pragma.rationale:
                    return None  # rationale-less pragmas suppress nothing
                pragma.used_rules.add(rule)
                return pragma
        return None

    def unused_pragma_findings(self, path: str) -> list[Finding]:
        findings = []
        for pragma in self.pragmas:
            if not pragma.rationale:
                continue  # already reported as LINT001
            stale = [
                rule for rule in pragma.rules if rule not in pragma.used_rules
            ]
            if stale:
                findings.append(
                    Finding(
                        path=path,
                        line=pragma.line,
                        col=0,
                        rule="LINT002",
                        message=(
                            f"unused suppression for {', '.join(stale)}: no "
                            "such finding on the target line — delete the "
                            "pragma or fix the rule list"
                        ),
                    )
                )
        return findings


def _comment_tokens(source: str) -> list[tuple[int, int, str]]:
    """``(line, col, text)`` of every comment; empty list on tokenize errors."""
    comments = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.start[1], token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # the parser reports the real problem
    return comments


def scan_pragmas(source: str, path: str) -> PragmaScan:
    """Parse every pragma comment in ``source``.

    A pragma on a line with code targets that line; a pragma alone on a
    line targets the next line that holds code.
    """
    lines = source.splitlines()
    pragmas: list[Pragma] = []
    problems: list[Finding] = []
    for line_no, col, text in _comment_tokens(source):
        if PRAGMA_MARKER not in text:
            continue
        match = PRAGMA_RE.search(text)
        if match is None:
            problems.append(
                Finding(
                    path=path,
                    line=line_no,
                    col=col,
                    rule="LINT001",
                    message=(
                        "malformed repro-lint pragma; expected "
                        "'# repro-lint: allow[RULE,...]: rationale'"
                    ),
                )
            )
            continue
        rationale = match.group("rationale") or ""
        if not rationale:
            problems.append(
                Finding(
                    path=path,
                    line=line_no,
                    col=col,
                    rule="LINT001",
                    message=(
                        "suppression pragma needs a rationale: "
                        "'# repro-lint: allow[RULE]: why this is safe'"
                    ),
                )
            )
        standalone = lines[line_no - 1].strip().startswith("#")
        target = line_no
        if standalone:
            for offset, candidate in enumerate(lines[line_no:], start=line_no + 1):
                stripped = candidate.strip()
                if stripped and not stripped.startswith("#"):
                    target = offset
                    break
        pragmas.append(
            Pragma(
                line=line_no,
                target_line=target,
                rules=tuple(
                    rule.strip() for rule in match.group("rules").split(",")
                ),
                rationale=rationale,
            )
        )
    return PragmaScan(pragmas=pragmas, problems=problems)
