"""Finding and report value types for the determinism lint."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic at a precise ``path:line:col`` location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass(frozen=True, order=True)
class Suppression:
    """A finding silenced by an inline pragma, and the pragma's rationale."""

    finding: Finding
    pragma_line: int
    rationale: str

    def render(self) -> str:
        return (
            f"{self.finding.render()}  [suppressed L{self.pragma_line}: "
            f"{self.rationale}]"
        )


@dataclass
class LintReport:
    """The outcome of linting one or more files.

    ``findings`` are the *unsuppressed* diagnostics (including pragma
    hygiene problems — malformed pragmas, missing rationales, unused
    suppressions); ``suppressed`` records what the inline pragmas
    silenced, each with its rationale.
    """

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Suppression] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def extend(self, other: "LintReport") -> None:
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)

    def sort(self) -> None:
        self.findings.sort()
        self.suppressed.sort()
