"""DET001 — no draws from the process-global ``random`` module.

Every random draw in library code must flow through an injected
:class:`random.Random` whose seed was born from
:func:`repro.sim.rng.derive_seed`. A single ``random.random()`` call
consumes from the interpreter-wide Mersenne twister: it is invisible to
the seed contract, couples unrelated components through shared hidden
state, and silently breaks bit-identity the first time import order or
call order shifts. ``random.Random`` / ``random.SystemRandom``
*constructors* are not draws and are left to other rules.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.engine import FileContext, Rule, register
from repro.lint.findings import Finding

#: module-level functions of :mod:`random` that touch the global stream
GLOBAL_DRAWS = frozenset(
    {
        "random",
        "uniform",
        "randint",
        "randrange",
        "choice",
        "choices",
        "sample",
        "shuffle",
        "getrandbits",
        "randbytes",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "expovariate",
        "vonmisesvariate",
        "gammavariate",
        "triangular",
        "betavariate",
        "paretovariate",
        "weibullvariate",
        "binomialvariate",
        "seed",
        "setstate",
        "getstate",
    }
)


def module_aliases(tree: ast.Module, module: str) -> set[str]:
    """Names the module is bound to at file scope (``import x as y``)."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    aliases.add(alias.asname or alias.name)
    return aliases


def from_imports(tree: ast.Module, module: str) -> Iterator[tuple[ast.ImportFrom, str, str]]:
    """``(node, original_name, bound_name)`` for ``from module import ...``."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                yield node, alias.name, alias.asname or alias.name


@register
class GlobalRandomRule(Rule):
    id = "DET001"
    title = "no global random-module draws in library code"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        aliases = module_aliases(ctx.tree, "random")
        for node, original, bound in from_imports(ctx.tree, "random"):
            if original in GLOBAL_DRAWS:
                yield ctx.finding(
                    node,
                    self.id,
                    f"'from random import {original}' binds a global-stream "
                    "draw; inject a random.Random seeded via derive_seed "
                    "instead",
                )
        if not aliases:
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id in aliases
                and node.attr in GLOBAL_DRAWS
            ):
                yield ctx.finding(
                    node,
                    self.id,
                    f"random.{node.attr} draws from the process-global RNG; "
                    "all library draws must come from an injected "
                    "random.Random born from derive_seed",
                )
