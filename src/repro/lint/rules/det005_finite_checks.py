"""DET005 — float parameters must reach a finite-check before use.

The NaN-hole class patched three separate times in this repo (schedule
spacings, latency constructors, churn/campaign times): a NaN passes
every ordered comparison, so ``if x < 0: raise`` accepts it and the
corruption surfaces far away — an unsorted engine heap, a poisoned
binary search, a silently randomized stream. This rule checks *public
constructors* (``__init__`` of public classes, everywhere) and *public
module-level functions* (in the configured spec/validator layers): every
float-ish parameter that the body stores or computes with raw must first
reach a finite-check.

Recognized as validation, structurally:

* a call to a :mod:`repro.validation` helper (``check_finite``,
  ``check_probability``, ``check_positive``, ...) or to any function in
  the same file whose body performs a finite-check (transitively);
* ``math.isfinite(x)`` / ``math.isnan(x)`` / ``x != x``;
* a *chained* comparison such as ``0.0 <= x <= 1.0`` (unlike two
  separate comparisons, a chain rejects NaN on its first link).

Passing the parameter to any non-trivial call counts as delegation (the
callee is responsible and is itself linted); builtins like ``float``,
``min`` or ``abs`` pass NaN through and do not count.

A parameter is float-ish when its annotation mentions ``float``, its
default is a float literal, or its name is ``p`` / ends with
``probability``/``fraction``/``rate``/``ratio``.
"""

from __future__ import annotations

import ast
import fnmatch
from typing import Iterable

from repro.lint.engine import FileContext, Rule, register
from repro.lint.findings import Finding

#: helpers from repro.validation (and their historical local names)
KNOWN_VALIDATORS = frozenset(
    {
        "check_number",
        "check_finite",
        "check_non_negative",
        "check_positive",
        "check_probability",
        "check_window",
        "check_finite_grid",
    }
)

#: builtins that pass NaN through unchanged — not validation, not delegation
NAN_PASSTHROUGH = frozenset(
    {
        "float",
        "int",
        "abs",
        "round",
        "min",
        "max",
        "len",
        "bool",
        "str",
        "repr",
        "format",
        "print",
        "tuple",
        "list",
    }
)

FLOAT_NAME_SUFFIXES = ("probability", "fraction", "rate", "ratio")


def _is_finite_call(node: ast.Call, validators: frozenset[str]) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in validators or func.id in {"isfinite", "isnan"}
    if isinstance(func, ast.Attribute):
        if func.attr in {"isfinite", "isnan"}:
            return True
        return func.attr in validators
    return False


def _local_validators(tree: ast.Module) -> frozenset[str]:
    """File-local functions that (transitively) perform a finite-check."""
    validators = set(KNOWN_VALIDATORS)
    changed = True
    while changed:
        changed = False
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name in validators:
                continue
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call) and _is_finite_call(
                    sub, frozenset(validators)
                ):
                    validators.add(node.name)
                    changed = True
                    break
    return frozenset(validators)


def _float_ish(arg: ast.arg, default: ast.expr | None) -> bool:
    if arg.annotation is not None:
        try:
            if "float" in ast.unparse(arg.annotation):
                return True
        except Exception:  # pragma: no cover - unparse is total on 3.11
            pass
    if (
        isinstance(default, ast.Constant)
        and isinstance(default.value, float)
    ):
        return True
    name = arg.arg
    return name == "p" or name.endswith(FLOAT_NAME_SUFFIXES)


def _params_with_defaults(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[tuple[ast.arg, ast.expr | None]]:
    args = node.args
    out: list[tuple[ast.arg, ast.expr | None]] = []
    positional = args.posonlyargs + args.args
    defaults: list[ast.expr | None] = [None] * (
        len(positional) - len(args.defaults)
    ) + list(args.defaults)
    out.extend(zip(positional, defaults))
    out.extend(zip(args.kwonlyargs, args.kw_defaults))
    return out


class _ParamUsage(ast.NodeVisitor):
    """How one parameter is used inside a function body."""

    def __init__(self, name: str, validators: frozenset[str]):
        self.name = name
        self.validators = validators
        self.validated = False
        self.delegated = False
        self.raw_use: ast.AST | None = None
        self._in_raise = False

    def _mentions(self, node: ast.AST | None) -> bool:
        if node is None:
            return False
        return any(
            isinstance(sub, ast.Name) and sub.id == self.name
            for sub in ast.walk(node)
        )

    def visit_Call(self, node: ast.Call) -> None:
        involved = any(self._mentions(arg) for arg in node.args) or any(
            self._mentions(keyword.value) for keyword in node.keywords
        )
        if involved:
            if _is_finite_call(node, self.validators):
                self.validated = True
            elif not self._in_raise:
                # `raise Error(x)` formats x, it does not validate it
                func = node.func
                passthrough = (
                    isinstance(func, ast.Name) and func.id in NAN_PASSTHROUGH
                )
                if not passthrough:
                    self.delegated = True
        self.generic_visit(node)

    def visit_Raise(self, node: ast.Raise) -> None:
        previous = self._in_raise
        self._in_raise = True
        self.generic_visit(node)
        self._in_raise = previous

    def visit_Compare(self, node: ast.Compare) -> None:
        if self._mentions(node):
            if len(node.ops) >= 2 and all(
                isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
                for op in node.ops
            ):
                # a chained `lo <= x <= hi` rejects NaN on its first link
                self.validated = True
            elif (
                len(node.ops) == 1
                and isinstance(node.ops[0], (ast.NotEq,))
                and self._mentions(node.left)
                and self._mentions(node.comparators[0])
            ):
                self.validated = True  # the `x != x` NaN idiom
            elif len(node.ops) == 1 and isinstance(
                node.ops[0], (ast.Is, ast.IsNot)
            ):
                pass  # `x is None` guards — identity, NaN-proof
            elif self.raw_use is None:
                self.raw_use = node
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if self._mentions(node) and self.raw_use is None:
            self.raw_use = node
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._mentions(node.value) and any(
            isinstance(target, (ast.Attribute, ast.Subscript))
            for target in node.targets
        ):
            if self.raw_use is None:
                self.raw_use = node
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if (
            node.value is not None
            and self._mentions(node.value)
            and isinstance(node.target, (ast.Attribute, ast.Subscript))
            and self.raw_use is None
        ):
            self.raw_use = node
        self.generic_visit(node)


@register
class FiniteCheckRule(Rule):
    id = "DET005"
    title = "float parameters validated finite before use"

    def _check_function(
        self,
        ctx: FileContext,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        qualname: str,
        validators: frozenset[str],
    ) -> Iterable[Finding]:
        for arg, default in _params_with_defaults(node):
            if arg.arg in {"self", "cls"}:
                continue
            if not _float_ish(arg, default):
                continue
            usage = _ParamUsage(arg.arg, validators)
            for stmt in node.body:
                usage.visit(stmt)
            if usage.validated or usage.delegated or usage.raw_use is None:
                continue
            yield ctx.finding(
                usage.raw_use,
                self.id,
                f"float parameter {arg.arg!r} of {qualname} is used without "
                "a finite-check (NaN passes every ordered comparison); "
                "validate with repro.validation.check_finite / "
                "check_probability first",
            )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        validators = _local_validators(ctx.tree)
        check_functions = any(
            fnmatch.fnmatch(ctx.path, pattern)
            for pattern in ctx.config.det005_function_paths
        )
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef) and not node.name.startswith(
                "_"
            ):
                for item in node.body:
                    if (
                        isinstance(
                            item, (ast.FunctionDef, ast.AsyncFunctionDef)
                        )
                        and item.name == "__init__"
                    ):
                        yield from self._check_function(
                            ctx,
                            item,
                            f"{node.name}.__init__",
                            validators,
                        )
            elif (
                check_functions
                and isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and not node.name.startswith("_")
                and node.name not in validators
            ):
                yield from self._check_function(
                    ctx, node, node.name, validators
                )
