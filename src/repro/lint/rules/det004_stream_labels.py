"""DET004 — RNG stream labels must be declared in the stream registry.

:func:`repro.sim.rng.derive_seed` gives every named stream an
independent seed — but only if names never collide. This rule harvests
every stream label the source states literally (``derive_seed(seed,
"spec/faults")``, ``rngs.stream(f"process/{pid}")``, ``SweepCell(...,
seed_name=f"{label}/{point}/{j}")``) and checks it against
``STREAM_REGISTRY`` in :mod:`repro.sim.rng`:

* a literal label must be a declared entry (or match a declared
  ``{placeholder}`` pattern);
* an f-string label is normalized (each formatted field becomes ``{}``)
  and must match a declared pattern; an f-string with **no variable
  field** is flagged — a "dynamic" label that never varies silently
  reuses one stream;
* a label that is neither a literal nor an f-string cannot be checked
  statically and is flagged — either lift the label to a literal or
  suppress with a pragma explaining where the value comes from.

When the linted file *is* the registry module, the registry itself is
validated (duplicates, static/pattern and pattern/pattern collisions)
via :func:`repro.sim.rng.validate_stream_registry`.
"""

from __future__ import annotations

import ast
import importlib
from typing import Iterable, Iterator

from repro.lint.engine import FileContext, Rule, register
from repro.lint.findings import Finding

#: attribute bases accepted as an RngRegistry for ``.stream(label)`` calls
_RNG_BASE_NAMES = ("rngs", "rng_registry", "registry")


def _normalize_fstring(node: ast.JoinedStr) -> tuple[str, bool]:
    """``(normalized_label, has_variable_field)`` for an f-string label."""
    parts: list[str] = []
    has_variable = False
    for value in node.values:
        if isinstance(value, ast.Constant):
            parts.append(str(value.value))
        elif isinstance(value, ast.FormattedValue):
            parts.append("{}")
            for sub in ast.walk(value.value):
                if isinstance(sub, (ast.Name, ast.Attribute)):
                    has_variable = True
                    break
    return "".join(parts), has_variable


def _label_matches_pattern(normalized: str, pattern: str) -> bool:
    """Segment-wise compatibility of a normalized f-string label with a
    registry entry: a ``{}`` (variable) segment on the label side or a
    ``{placeholder}`` segment on the registry side matches anything, a
    literal segment must match exactly."""
    label_parts = normalized.split("/")
    pattern_parts = pattern.split("/")
    if len(label_parts) != len(pattern_parts):
        return False
    for label_part, pattern_part in zip(label_parts, pattern_parts):
        if label_part == "{}" or "{" in pattern_part:
            continue
        if label_part != pattern_part:
            return False
    return True


def _is_registry_stream_call(func: ast.Attribute) -> bool:
    """``<...rngs>.stream(...)`` — the base must look like a registry."""
    base = func.value
    if isinstance(base, ast.Name):
        return base.id in _RNG_BASE_NAMES
    if isinstance(base, ast.Attribute):
        return base.attr in _RNG_BASE_NAMES
    return False


def _harvest(tree: ast.Module) -> Iterator[tuple[ast.expr, str]]:
    """``(label_expr, where)`` for every statically visible stream label."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id == "derive_seed":
            if len(node.args) >= 2:
                yield node.args[1], "derive_seed"
            else:
                for keyword in node.keywords:
                    if keyword.arg == "name":
                        yield keyword.value, "derive_seed"
        elif isinstance(func, ast.Attribute) and func.attr == "stream":
            if _is_registry_stream_call(func) and node.args:
                yield node.args[0], "RngRegistry.stream"
        for keyword in node.keywords:
            if keyword.arg == "seed_name":
                yield keyword.value, "seed_name"


class _Registry:
    """The declared registry, flattened for matching."""

    def __init__(self, module_name: str):
        module = importlib.import_module(module_name)
        self.module = module
        self.entries: list[str] = [
            entry
            for entries in module.STREAM_REGISTRY.values()
            for entry in entries
        ]
        self.statics = {entry for entry in self.entries if "{" not in entry}
        self.patterns = [entry for entry in self.entries if "{" in entry]
        self._regexes = [
            module.stream_pattern_regex(entry) for entry in self.patterns
        ]

    def matches_literal(self, label: str) -> bool:
        if label in self.statics:
            return True
        return any(regex.fullmatch(label) for regex in self._regexes)

    def matches_normalized(self, normalized: str) -> bool:
        return any(
            _label_matches_pattern(normalized, entry)
            for entry in self.entries
        )


@register
class StreamLabelRule(Rule):
    id = "DET004"
    title = "RNG stream labels declared in STREAM_REGISTRY"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        registry = _Registry(ctx.config.registry_module)
        registry_path = registry.module.__name__.rsplit(".", 1)[-1] + ".py"
        if ctx.path == registry_path or ctx.path.endswith("/" + registry_path):
            for problem in registry.module.validate_stream_registry():
                yield ctx.finding(
                    ctx.tree, self.id, f"stream registry problem: {problem}"
                )
        for label_expr, where in _harvest(ctx.tree):
            if isinstance(label_expr, ast.Constant) and isinstance(
                label_expr.value, str
            ):
                label = label_expr.value
                if not registry.matches_literal(label):
                    yield ctx.finding(
                        label_expr,
                        self.id,
                        f"{where} label {label!r} is not declared in "
                        f"{ctx.config.registry_module}.STREAM_REGISTRY; "
                        "declare it (collisions break stream independence)",
                    )
            elif isinstance(label_expr, ast.JoinedStr):
                normalized, has_variable = _normalize_fstring(label_expr)
                if not has_variable:
                    yield ctx.finding(
                        label_expr,
                        self.id,
                        f"{where} f-string label embeds no variable — a "
                        "dynamic label that never varies reuses one stream; "
                        "use a literal or interpolate an index",
                    )
                elif not registry.matches_normalized(normalized):
                    yield ctx.finding(
                        label_expr,
                        self.id,
                        f"{where} dynamic label {normalized!r} matches no "
                        "pattern declared in "
                        f"{ctx.config.registry_module}.STREAM_REGISTRY",
                    )
            else:
                yield ctx.finding(
                    label_expr,
                    self.id,
                    f"{where} label is not statically checkable (neither a "
                    "string literal nor an f-string); lift it to a literal "
                    "or suppress with a rationale naming the label source",
                )
