"""DET002 — no wall-clock or OS-entropy sources in sim-pure code.

Simulation time comes from the event engine and randomness from derived
streams; a ``time.time()`` or ``os.urandom()`` in a sim-pure path makes
a run irreproducible in a way no seed can fix. The CLI, benchmarks and
examples are exempt by configuration (they time and display things for
humans).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.engine import FileContext, Rule, register
from repro.lint.findings import Finding
from repro.lint.rules.det001_global_random import from_imports, module_aliases

#: wall-clock readers of :mod:`time`
TIME_SOURCES = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "localtime",
        "gmtime",
        "ctime",
    }
)

#: wall-clock constructors of :class:`datetime.datetime` / ``date``
DATETIME_SOURCES = frozenset({"now", "utcnow", "today"})

#: entropy readers of :mod:`os`
OS_SOURCES = frozenset({"urandom", "getrandom"})

#: entropy constructors of :mod:`uuid` (uuid3/uuid5 are digests of their
#: inputs and deterministic, so only the clock/entropy ones are flagged)
UUID_SOURCES = frozenset({"uuid1", "uuid4"})


@register
class WallClockRule(Rule):
    id = "DET002"
    title = "no wall-clock/entropy sources in sim-pure paths"

    def _flag(self, ctx: FileContext, node: ast.AST, what: str):
        return ctx.finding(
            node,
            self.id,
            f"{what} is a wall-clock/entropy source; sim-pure code must "
            "take time from the engine and randomness from derive_seed "
            "streams",
        )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        tree = ctx.tree
        flagged_from = (
            ("time", TIME_SOURCES),
            ("os", OS_SOURCES),
            ("uuid", UUID_SOURCES),
        )
        for module, sources in flagged_from:
            for node, original, bound in from_imports(tree, module):
                if original in sources:
                    yield self._flag(
                        ctx, node, f"'from {module} import {original}'"
                    )
        # `import secrets` / `from secrets import ...`: the module's whole
        # purpose is OS entropy, so any import is a finding.
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "secrets":
                        yield self._flag(ctx, node, "the secrets module")
            elif isinstance(node, ast.ImportFrom) and node.module == "secrets":
                yield self._flag(ctx, node, "the secrets module")

        time_aliases = module_aliases(tree, "time")
        os_aliases = module_aliases(tree, "os")
        uuid_aliases = module_aliases(tree, "uuid")
        random_aliases = module_aliases(tree, "random")
        datetime_mod_aliases = module_aliases(tree, "datetime")
        #: names bound to the datetime/date *classes*
        datetime_classes = {
            bound
            for _, original, bound in from_imports(tree, "datetime")
            if original in {"datetime", "date"}
        }

        for node in ast.walk(tree):
            if not isinstance(node, ast.Attribute):
                continue
            value = node.value
            if isinstance(value, ast.Name):
                if value.id in time_aliases and node.attr in TIME_SOURCES:
                    yield self._flag(ctx, node, f"time.{node.attr}")
                elif value.id in os_aliases and node.attr in OS_SOURCES:
                    yield self._flag(ctx, node, f"os.{node.attr}")
                elif value.id in uuid_aliases and node.attr in UUID_SOURCES:
                    yield self._flag(ctx, node, f"uuid.{node.attr}")
                elif (
                    value.id in random_aliases
                    and node.attr == "SystemRandom"
                ):
                    yield self._flag(ctx, node, "random.SystemRandom")
                elif (
                    value.id in datetime_classes
                    and node.attr in DATETIME_SOURCES
                ):
                    yield self._flag(
                        ctx, node, f"datetime.{node.attr}"
                    )
            elif (
                isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id in datetime_mod_aliases
                and value.attr in {"datetime", "date"}
                and node.attr in DATETIME_SOURCES
            ):
                yield self._flag(
                    ctx, node, f"datetime.{value.attr}.{node.attr}"
                )
