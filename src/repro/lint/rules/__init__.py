"""Bundled determinism rules; importing this package registers them."""

from repro.lint.rules import (  # noqa: F401
    det001_global_random,
    det002_wall_clock,
    det003_hash_order,
    det004_stream_labels,
    det005_finite_checks,
)
