"""DET003 — PYTHONHASHSEED hazards: hash-ordered iteration and ``hash()``.

A ``set`` of strings iterates in an order that changes with
``PYTHONHASHSEED``; folding floats, appending results, or drawing from
an RNG inside such a loop bakes the hash seed into the trajectory — the
exact bug class fixed reactively in ``aggregate_runs`` (PR 3), where
per-point means were emitted in hash order. Dict *views* are insertion-
ordered, but looping one while drawing or folding still couples the
result to construction order, so the same body test applies when the
iterable is a bare ``.keys()/.values()/.items()`` call. ``hash()`` of a
``str`` (or of anything containing one) is itself PYTHONHASHSEED-
dependent and must not escape into digests or cross-process data —
:func:`repro.sim.rng.derive_seed` exists precisely because of this.

Detection is local and syntactic: an expression is *set-typed* when it
is a set literal/comprehension, a ``set()``/``frozenset()`` call, a name
assigned one of those in the same file, or a binary operation over one.
A loop is flagged only when its body is order-sensitive (RNG draw,
``.append``/``.extend``/``.insert``, augmented assignment with a
non-constant right side, or ``yield``). Wrapping the iterable in
``sorted(...)`` fixes the finding.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.engine import FileContext, Rule, register
from repro.lint.findings import Finding
from repro.lint.rules.det001_global_random import GLOBAL_DRAWS

DICT_VIEWS = frozenset({"keys", "values", "items"})

#: accumulator methods whose result depends on call order
ORDERED_APPENDS = frozenset({"append", "extend", "insert", "appendleft"})

#: calls that consume an iterable order-insensitively
ORDER_INSENSITIVE_CALLS = frozenset(
    {"sorted", "set", "frozenset", "min", "max", "len", "any", "all"}
)

#: set methods returning sets
SET_PRODUCERS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)


def _set_typed_names(root: ast.AST) -> set[str]:
    """Names assigned a set-typed expression anywhere in ``root``."""
    names: set[str] = set()
    # two passes so `b = a` after `a = set()` is caught
    for _ in range(2):
        for node in ast.walk(root):
            if isinstance(node, ast.Assign) and _is_set_expr(node.value, names):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif (
                isinstance(node, ast.AnnAssign)
                and node.value is not None
                and isinstance(node.target, ast.Name)
                and _is_set_expr(node.value, names)
            ):
                names.add(node.target.id)
            elif isinstance(node, ast.AugAssign) and (
                isinstance(node.target, ast.Name)
                and _is_set_expr(node.value, names)
            ):
                names.add(node.target.id)
    return names


def _is_set_expr(node: ast.expr, set_names: set[str]) -> bool:
    """Is ``node`` syntactically a set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.BinOp):
        return _is_set_expr(node.left, set_names) or _is_set_expr(
            node.right, set_names
        )
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
            return True
        if (
            isinstance(func, ast.Attribute)
            and func.attr in SET_PRODUCERS
            and _is_set_expr(func.value, set_names)
        ):
            return True
    return False


def _is_dict_view(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in DICT_VIEWS
        and not node.args
        and not node.keywords
    )


def _order_sensitive_body(body: list[ast.stmt]) -> str | None:
    """Why the loop body is order-sensitive, or None when it is not."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in GLOBAL_DRAWS:
                    return f"draws via .{node.func.attr}()"
                if node.func.attr in ORDERED_APPENDS:
                    return f"appends results via .{node.func.attr}()"
            elif isinstance(node, ast.AugAssign) and not isinstance(
                node.value, ast.Constant
            ):
                return "folds values with augmented assignment"
            elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                return "yields in iteration order"
    return None


@register
class HashOrderRule(Rule):
    id = "DET003"
    title = "PYTHONHASHSEED-dependent iteration or hash() escape"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        set_names = _set_typed_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id == "hash":
                    yield ctx.finding(
                        node,
                        self.id,
                        "hash() is PYTHONHASHSEED-dependent for str (and "
                        "anything containing one); use hashlib/derive_seed "
                        "if the value reaches a digest or another process",
                    )
                elif (
                    node.func.id in {"sum", "fsum"}
                    and node.args
                    and _is_set_expr(node.args[0], set_names)
                ):
                    yield ctx.finding(
                        node,
                        self.id,
                        "summing a set folds floats in hash order; sum "
                        "sorted(...) instead",
                    )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                iterable = node.generators[0].iter
                if _is_set_expr(iterable, set_names):
                    parent = ctx.parent_of(node)
                    if (
                        isinstance(parent, ast.Call)
                        and isinstance(parent.func, ast.Name)
                        and parent.func.id in ORDER_INSENSITIVE_CALLS
                    ):
                        continue
                    if isinstance(parent, ast.Call) and isinstance(
                        parent.func, ast.Attribute
                    ) and parent.func.attr in {"join", "union", "update"}:
                        # "".join over a set is still order-dependent;
                        # union/update are not
                        if parent.func.attr != "join":
                            continue
                    yield ctx.finding(
                        node,
                        self.id,
                        "comprehension materializes a hash-ordered set into "
                        "an ordered result; iterate sorted(...) instead",
                    )
            elif isinstance(node, ast.For):
                reason = None
                what = None
                if _is_set_expr(node.iter, set_names):
                    what = "a set"
                elif _is_dict_view(node.iter):
                    what = f"a dict .{node.iter.func.attr}() view"
                if what is not None:
                    reason = _order_sensitive_body(node.body)
                if reason is not None:
                    yield ctx.finding(
                        node,
                        self.id,
                        f"iterating {what} while the loop body {reason} "
                        "bakes hash/insertion order into the result; "
                        "iterate sorted(...) instead",
                    )
