"""Configuration for the determinism lint.

The defaults encode this repository's layout: library code under
``src/repro`` is held to every rule, while the CLI, benchmarks and
examples may legitimately touch wall clocks (they time and display
things). Exemptions are path globs per rule, matched against the
POSIX form of the reported path.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import Mapping

#: sim-pure rules do not apply to operator-facing layers
DEFAULT_EXEMPT: Mapping[str, tuple[str, ...]] = {
    # the CLI/benchmarks/examples may read clocks and show progress
    "DET002": (
        "*/cli.py",
        "*/__main__.py",
        "*benchmarks/*",
        "*examples/*",
        # the live service package IS the wall-clock side of the clock
        # seam (AsyncClock reads loop time by design); its determinism
        # story is trace replay on the engine, not virtual-time purity
        "*/service/*",
    ),
    # benchmarks/examples may use ad-hoc rngs for load shaping
    "DET001": ("*benchmarks/*", "*examples/*"),
    "DET003": ("*benchmarks/*", "*examples/*"),
    "DET004": ("*benchmarks/*", "*examples/*"),
    "DET005": ("*benchmarks/*", "*examples/*"),
}

#: where DET005 checks public module-level functions (constructors are
#: checked everywhere) — the spec/validator layers whose float params
#: feed the simulator
DEFAULT_DET005_FUNCTION_PATHS: tuple[str, ...] = (
    "*/workloads/*",
    "*/net/*",
    "*/failures/*",
    "*/metrics/*",
    "*/sim/*",
)


@dataclass(frozen=True)
class LintConfig:
    """Tunable surface of one lint run."""

    #: rule ids to run; None = every registered rule
    select: frozenset[str] | None = None
    #: rule id → path globs it does not apply to
    exempt: Mapping[str, tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_EXEMPT)
    )
    #: globs where DET005 checks public module-level functions
    det005_function_paths: tuple[str, ...] = DEFAULT_DET005_FUNCTION_PATHS
    #: extra function names DET005 accepts as finite-validators
    extra_validators: tuple[str, ...] = ()
    #: module holding STREAM_REGISTRY for DET004
    registry_module: str = "repro.sim.rng"

    def rule_enabled(self, rule_id: str) -> bool:
        return self.select is None or rule_id in self.select

    def rule_exempt(self, rule_id: str, path: str) -> bool:
        return any(
            fnmatch.fnmatch(path, pattern)
            for pattern in self.exempt.get(rule_id, ())
        )


DEFAULT_CONFIG = LintConfig()
