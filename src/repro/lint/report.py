"""Render a lint report as human text or machine JSON."""

from __future__ import annotations

import json

from repro.lint.findings import LintReport


def render_text(report: LintReport, show_suppressed: bool = False) -> str:
    lines = [finding.render() for finding in report.findings]
    if show_suppressed:
        lines.extend(
            suppression.render() for suppression in report.suppressed
        )
    summary = (
        f"{len(report.findings)} finding(s), "
        f"{len(report.suppressed)} suppressed"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    return json.dumps(
        {
            "findings": [
                finding.as_dict() for finding in report.findings
            ],
            "suppressed": [
                {
                    **suppression.finding.as_dict(),
                    "pragma_line": suppression.pragma_line,
                    "rationale": suppression.rationale,
                }
                for suppression in report.suppressed
            ],
        },
        indent=2,
    )
