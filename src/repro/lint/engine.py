"""Rule engine of the determinism lint.

A rule is an :class:`ast` pass over one file: it receives a parsed
:class:`FileContext` and yields :class:`~repro.lint.findings.Finding`
diagnostics with precise line/column locations. The engine owns file
discovery, pragma suppression (see :mod:`repro.lint.pragmas`) and report
assembly; rules own only detection logic and register themselves with
:func:`register`.
"""

from __future__ import annotations

import ast
import pathlib
from typing import Iterable, Iterator, Sequence, Type

from repro.lint.config import DEFAULT_CONFIG, LintConfig
from repro.lint.findings import Finding, LintReport, Suppression
from repro.lint.pragmas import scan_pragmas


class FileContext:
    """Everything a rule may inspect about one source file."""

    def __init__(
        self, path: str, source: str, tree: ast.Module, config: LintConfig
    ):
        self.path = path
        self.source = source
        self.tree = tree
        self.config = config
        self._parents: dict[ast.AST, ast.AST] | None = None

    def parent_of(self, node: ast.AST) -> ast.AST | None:
        """The syntactic parent of ``node`` (lazily built once per file)."""
        if self._parents is None:
            self._parents = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    self._parents[child] = parent
        return self._parents.get(node)

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            rule=rule,
            message=message,
        )


class Rule:
    """Base class: subclasses set ``id``/``title`` and implement check()."""

    id: str = ""
    title: str = ""

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        raise NotImplementedError


_RULES: dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    _RULES[cls.id] = cls
    return cls


def all_rules() -> dict[str, Type[Rule]]:
    """Every registered rule, importing the bundled rule modules once."""
    import repro.lint.rules  # noqa: F401  (registers via decorators)

    return dict(sorted(_RULES.items()))


def _display_path(path: pathlib.Path) -> str:
    """Project-relative POSIX path when possible (stable across CWDs)."""
    resolved = path if path.is_absolute() else pathlib.Path.cwd() / path
    try:
        return resolved.relative_to(pathlib.Path.cwd()).as_posix()
    except ValueError:
        return resolved.as_posix()


def lint_source(
    source: str,
    path: str = "<string>",
    config: LintConfig = DEFAULT_CONFIG,
) -> LintReport:
    """Lint one in-memory source text (the fixture-test entry point)."""
    report = LintReport()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        report.findings.append(
            Finding(
                path=path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                rule="LINT000",
                message=f"syntax error: {exc.msg}",
            )
        )
        return report
    scan = scan_pragmas(source, path)
    raw: list[Finding] = []
    ctx = FileContext(path, source, tree, config)
    for rule_id, rule_cls in sorted(all_rules().items()):
        if not config.rule_enabled(rule_id):
            continue
        if config.rule_exempt(rule_id, path):
            continue
        raw.extend(rule_cls().check(ctx))
    for finding in raw:
        pragma = scan.suppression_for(finding.rule, finding.line)
        if pragma is None:
            report.findings.append(finding)
        else:
            report.suppressed.append(
                Suppression(
                    finding=finding,
                    pragma_line=pragma.line,
                    rationale=pragma.rationale,
                )
            )
    report.findings.extend(scan.problems)
    report.findings.extend(scan.unused_pragma_findings(path))
    report.sort()
    return report


def iter_python_files(paths: Sequence[str | pathlib.Path]) -> Iterator[pathlib.Path]:
    """Expand files/directories into a sorted stream of ``*.py`` files."""
    seen: set[pathlib.Path] = set()
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            candidates: Iterable[pathlib.Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def run_lint(
    paths: Sequence[str | pathlib.Path],
    config: LintConfig = DEFAULT_CONFIG,
) -> LintReport:
    """Lint every ``*.py`` file under ``paths`` and merge the reports."""
    report = LintReport()
    for path in iter_python_files(paths):
        display = _display_path(path)
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            report.findings.append(
                Finding(
                    path=display,
                    line=0,
                    col=0,
                    rule="LINT000",
                    message=f"cannot read file: {exc}",
                )
            )
            continue
        report.extend(lint_source(source, display, config))
    report.sort()
    return report
