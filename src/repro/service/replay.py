"""Replay a live-service trace on the deterministic engine.

The golden-compare contract of service mode: the discrete-event
:class:`~repro.sim.engine.Engine` remains the *test oracle* for live
runs. :func:`replay_live_trace` rebuilds the recorded topology with the
recorded seed, re-publishes every recorded event pinned to its recorded
publisher, and drives the engine to quiescence after each publish —
mirroring the live runtime's drain-between-publishes discipline. Both
executions then made identical draws on every shared RNG stream (the
live side's only extra decision, publisher choice, came from its own
``"live/publish"`` stream), so the per-topic delivery sets must match
exactly. ``tests/test_service_live.py`` asserts it.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.params import DaMulticastConfig
from repro.core.system import DaMulticastSystem
from repro.errors import ConfigError
from repro.net.latency import LatencyModel, ZERO_LATENCY


def delivery_sets_from_trace(trace: Mapping[str, Any]) -> dict[str, list[int]]:
    """The recorded per-event delivery sets, normalized (sorted pids)."""
    return {
        key: sorted(pids) for key, pids in trace["deliveries"].items()
    }


def replay_live_trace(
    trace: Mapping[str, Any],
    *,
    config: DaMulticastConfig | None = None,
    latency: LatencyModel = ZERO_LATENCY,
) -> dict[str, Any]:
    """Re-execute a :meth:`~repro.service.runtime.LiveRuntime.trace` on
    virtual time and return the engine-side delivery sets.

    Returns ``{"system": ..., "deliveries": {event_id_str: [pid, ...]},
    "matches": bool}`` where ``matches`` compares against the trace's own
    recorded sets. Non-default ``config``/``latency`` used live must be
    passed again here — models are code, not data, so the trace does not
    serialize them.
    """
    version = trace.get("version")
    if version != 1:
        raise ConfigError(f"unsupported live trace version: {version!r}")
    if trace["mode"] != "static":
        raise ConfigError(
            "only static-mode traces are replayable (dynamic-mode "
            "membership depends on wall-clock task interleaving)"
        )
    system = DaMulticastSystem(
        config=config,
        seed=trace["seed"],
        mode="static",
        p_success=trace.get("p_success", 1.0),
        latency=latency,
    )
    for name, count in trace["topics"]:
        system.add_group(name, count)
    system.finalize_static_membership()

    deliveries: dict[str, list[int]] = {}
    for record in trace["publishes"]:
        publisher = system.process(record["publisher"])
        event = system.publish(
            record["topic"], record["payload"], publisher=publisher
        )
        if str(event.event_id) != record["event"]:
            raise ConfigError(
                f"replay diverged: published {event.event_id}, "
                f"trace recorded {record['event']}"
            )
        system.run_until_idle()
        receivers = system.tracker.receivers(event.event_id)
        deliveries[str(event.event_id)] = sorted(receivers)

    return {
        "system": system,
        "deliveries": deliveries,
        "matches": deliveries == delivery_sets_from_trace(trace),
    }
