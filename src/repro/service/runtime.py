"""The live pub/sub runtime: da-multicast served on wall-clock asyncio.

:class:`LiveRuntime` wires the protocol core to the live side of both
seams — an :class:`~repro.service.clock.AsyncClock` as the
:class:`~repro.sim.clock.Clock` and a
:class:`~repro.net.transport.QueueTransport` pumped by an asyncio task as
the delivery :class:`~repro.net.transport.Transport` — and exposes:

* ``subscribe(topic, callback)`` — callback fires on every event
  delivered at a process of that topic;
* ``await publish(topic, payload)`` — publishes from a uniformly chosen
  group member and waits for the dissemination cascade to drain;
* ``status()`` — per-topic delivery counts (via the streaming tracker),
  :class:`~repro.net.stats.NetworkStats`, queue depth and scheduler lag
  (the wall-clock analogue of engine-vs-wall drift);
* ``trace()`` — a JSON-serializable record of the run that
  :func:`repro.service.replay.replay_live_trace` re-executes on the
  deterministic engine, reproducing the same per-topic delivery sets.

Determinism contract (what makes the trace replayable): the runtime
draws every live-only decision — which member publishes — from its own
dedicated ``"live/publish"`` RNG stream, never from the streams the
protocol core consumes. Replay pins the recorded publishers instead of
re-drawing, so both executions make *identical* draws on every shared
stream; and because ``publish`` drains the cascade before returning,
live delivery order matches the engine's ``(time, seq)`` order publish
by publish.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable

from repro.core.params import DaMulticastConfig
from repro.core.events import Event
from repro.core.process import DaMulticastProcess
from repro.core.system import DaMulticastSystem
from repro.errors import ConfigError, UnknownTopic
from repro.metrics.streaming import StreamingDeliveryTracker
from repro.net.latency import LatencyModel, ZERO_LATENCY
from repro.net.transport import QueueTransport
from repro.runtime import SimulationHarness
from repro.service.clock import AsyncClock
from repro.topics.topic import Topic

SubscribeCallback = Callable[[Event, int], Any]

TRACE_VERSION = 1


class LiveRuntime:
    """A da-multicast system served live on an asyncio event loop."""

    def __init__(
        self,
        *,
        seed: int = 0,
        mode: str = "static",
        config: DaMulticastConfig | None = None,
        p_success: float = 1.0,
        latency: LatencyModel = ZERO_LATENCY,
    ):
        self.seed = seed
        self.mode = mode
        self.clock = AsyncClock()
        self.transport = QueueTransport(self.clock, on_enqueue=self._on_enqueue)
        self.harness = SimulationHarness(
            seed=seed,
            p_success=p_success,
            latency=latency,
            clock=self.clock,
            transport=self.transport,
            tracker=StreamingDeliveryTracker(),
        )
        self.system = DaMulticastSystem(
            config=config,
            mode=mode,
            harness=self.harness,
            delivery_callback=self._on_delivery,
        )
        #: live-only draws come from this dedicated stream so the shared
        #: protocol streams see exactly the draws a replay makes
        self._publish_rng = self.harness.rngs.stream("live/publish")
        self._subscribers: dict[Topic, list[SubscribeCallback]] = {}
        self._topics: list[tuple[str, int]] = []
        self._publishes: list[dict[str, Any]] = []
        self._deliveries: dict[str, list[int]] = {}
        self._p_success = p_success
        self._wake: asyncio.Event | None = None
        self._idle: asyncio.Event | None = None
        self._pump_task: asyncio.Task | None = None
        self._max_lag = 0.0
        self._last_lag = 0.0
        self._finalized = False

    # ------------------------------------------------------------------
    # Topology (record construction order — the replay re-runs it)
    # ------------------------------------------------------------------
    def add_group(self, topic: str, count: int) -> list[DaMulticastProcess]:
        """Create ``count`` processes interested in ``topic``."""
        if self._pump_task is not None and self.mode == "static":
            raise ConfigError(
                "static-mode topology is fixed once the runtime is started"
            )
        processes = self.system.add_group(topic, count)
        self._topics.append((topic, count))
        return processes

    def subscribe(self, topic: str, callback: SubscribeCallback) -> None:
        """Invoke ``callback(event, pid)`` on every event delivered at a
        process of ``topic`` (one call per delivering process)."""
        resolved = self.system.hierarchy.add(topic)
        self._subscribers.setdefault(resolved, []).append(callback)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Attach the clock to the running loop and start the pump task.

        In static mode, membership tables are finalized here (once) —
        mirroring the engine-backed setup sequence the replay performs.
        """
        if self._pump_task is not None:
            raise ConfigError("LiveRuntime is already started")
        self.clock.attach()
        self._wake = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        if self.mode == "static" and not self._finalized:
            self.system.finalize_static_membership()
            self._finalized = True
        self._pump_task = asyncio.create_task(
            self._pump_loop(), name="repro-live-pump"
        )

    async def stop(self) -> None:
        """Stop the pump task and every process's periodic work."""
        task = self._pump_task
        self._pump_task = None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        for process in self.system.processes:
            process.unsubscribe()

    async def __aenter__(self) -> "LiveRuntime":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    async def publish(self, topic: str, payload: Any = None) -> Event:
        """Publish on ``topic`` from a uniformly chosen alive member and
        wait for the dissemination cascade to drain.

        Draining before returning is what keeps the run replayable: each
        publish's cascade completes before the next begins, exactly like
        consecutive ``publish(); run_until_idle()`` steps on the engine.
        """
        if self._pump_task is None:
            raise ConfigError("LiveRuntime.publish requires start() first")
        resolved = Topic.parse(topic)
        members = self.system.group(resolved)
        alive = [p for p in members if self.harness.is_alive(p.pid)]
        if not alive:
            raise UnknownTopic(
                f"no alive process interested in {resolved.name} to publish from"
            )
        publisher = self._publish_rng.choice(alive)
        event = self.system.publish(resolved, payload, publisher=publisher)
        self._publishes.append(
            {
                "topic": resolved.name,
                "payload": payload,
                "publisher": publisher.pid,
                "event": str(event.event_id),
            }
        )
        await self.drain()
        return event

    async def drain(self) -> None:
        """Wait until the delivery queue is empty (cascade finished)."""
        while self.transport.next_due() is not None:
            self._idle.clear()
            self._wake.set()
            await self._idle.wait()

    # ------------------------------------------------------------------
    # Delivery plumbing
    # ------------------------------------------------------------------
    def _on_enqueue(self) -> None:
        if self._wake is not None:
            self._wake.set()

    def _on_delivery(self, process: DaMulticastProcess, event: Event) -> None:
        self._deliveries.setdefault(str(event.event_id), []).append(process.pid)
        callbacks = self._subscribers.get(process.topic)
        if callbacks:
            for callback in list(callbacks):
                callback(event, process.pid)

    async def _pump_loop(self) -> None:
        transport = self.transport
        clock = self.clock
        wake = self._wake
        idle = self._idle
        while True:
            due = transport.next_due()
            if due is None:
                idle.set()
                await wake.wait()
                wake.clear()
                continue
            delay = due - clock.now
            if delay > 0:
                # Sleep until the earliest entry is due — or an enqueue
                # introduces an earlier one.
                wake.clear()
                try:
                    await asyncio.wait_for(wake.wait(), timeout=delay)
                except asyncio.TimeoutError:
                    pass
                continue
            self._last_lag = clock.now - due
            if self._last_lag > self._max_lag:
                self._max_lag = self._last_lag
            transport.pump()

    # ------------------------------------------------------------------
    # Status / trace surfaces
    # ------------------------------------------------------------------
    def status(self) -> dict[str, Any]:
        """A point-in-time snapshot of the live service."""
        tracker = self.harness.tracker
        return {
            "now": self.clock.now,
            "running": self._pump_task is not None,
            "processes": len(self.system.processes),
            "published": len(self._publishes),
            "deliveries_by_topic": {
                topic.name: tracker.delivery_count_by_topic(topic)
                for topic in tracker.topics()
            },
            "queue": {
                "pending": self.transport.pending,
                "dispatched": self.transport.dispatched,
                "executed": self.transport.executed,
            },
            "network": self.harness.stats.as_dict(),
            #: how late deliveries ran relative to their due time — the
            #: wall-clock analogue of engine-vs-wall drift
            "scheduler_lag": {"last": self._last_lag, "max": self._max_lag},
        }

    def trace(self) -> dict[str, Any]:
        """The replayable record of this run (JSON-serializable).

        Feed it to :func:`repro.service.replay.replay_live_trace` to
        re-execute the run on the deterministic engine and compare
        delivery sets.
        """
        return {
            "version": TRACE_VERSION,
            "seed": self.seed,
            "mode": self.mode,
            "p_success": self._p_success,
            "topics": [list(entry) for entry in self._topics],
            "publishes": [dict(record) for record in self._publishes],
            "deliveries": {
                key: sorted(pids) for key, pids in self._deliveries.items()
            },
        }

    def __repr__(self) -> str:
        return (
            f"LiveRuntime(seed={self.seed}, mode={self.mode!r}, "
            f"published={len(self._publishes)}, "
            f"running={self._pump_task is not None})"
        )
