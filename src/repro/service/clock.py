"""Wall-clock :class:`~repro.sim.clock.Clock` over an asyncio event loop.

The live half of the clock seam: where :class:`~repro.sim.engine.Engine`
*is* time (events advance it), :class:`AsyncClock` *reads* time from the
loop's monotonic clock and delegates scheduling to ``loop.call_later``.
The protocol core — :class:`~repro.sim.clock.PeriodicTask`, maintenance,
membership — runs on either without modification.

Wall-clock access is intentional and confined to this package; the
determinism lint's DET002 allowlist exempts ``service/`` explicitly (see
``lint/config.py``) rather than via per-line pragmas.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable

from repro.errors import SchedulingError
from repro.sim.clock import PeriodicTask
from repro.validation import check_non_negative


class AsyncHandle:
    """Cancellable wrapper over an asyncio ``TimerHandle``.

    Satisfies the :class:`~repro.sim.clock.Handle` protocol — asyncio's
    own handle has ``cancel``/``cancelled`` but no fired/pending state,
    which :class:`PeriodicTask` and tests rely on.
    """

    __slots__ = ("_timer", "_fired", "_cancelled")

    def __init__(self):
        self._timer: asyncio.TimerHandle | None = None
        self._fired = False
        self._cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running (no-op once fired)."""
        if self._fired or self._cancelled:
            return
        self._cancelled = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def pending(self) -> bool:
        return not self._fired and not self._cancelled

    def _run(self, callback: Callable[[], Any]) -> None:
        if self._cancelled:
            return
        self._fired = True
        self._timer = None
        callback()


class AsyncClock:
    """Reads ``loop.time()``; schedules via ``loop.call_later``.

    Time is reported relative to the moment of :meth:`attach` (or first
    use inside a running loop), so a fresh runtime starts near ``now == 0``
    just like a fresh engine — keeping timestamps in recorded live traces
    comparable to virtual time.
    """

    def __init__(self):
        self._loop: asyncio.AbstractEventLoop | None = None
        self._origin = 0.0

    def attach(self, loop: asyncio.AbstractEventLoop | None = None) -> None:
        """Bind to ``loop`` (default: the running loop) and zero the clock.

        Idempotent for the same loop; rebinding to a different loop resets
        the origin (a fresh serve invocation).
        """
        resolved = loop if loop is not None else asyncio.get_running_loop()
        if resolved is self._loop:
            return
        self._loop = resolved
        self._origin = resolved.time()

    def _running(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            self.attach()  # raises outside a loop, which is the right error
        return self._loop

    @property
    def attached(self) -> bool:
        """Whether the clock is bound to a loop yet."""
        return self._loop is not None

    @property
    def now(self) -> float:
        """Seconds since :meth:`attach` (0.0 before attachment)."""
        if self._loop is None:
            return 0.0
        return self._loop.time() - self._origin

    def schedule(self, delay: float, callback: Callable[[], Any]) -> AsyncHandle:
        """Run ``callback`` after ``delay`` seconds of wall-clock time."""
        check_non_negative(delay, "delay", error=SchedulingError)
        loop = self._running()
        handle = AsyncHandle()
        handle._timer = loop.call_later(delay, handle._run, callback)
        return handle

    def schedule_at(self, time: float, callback: Callable[[], Any]) -> AsyncHandle:
        """Run ``callback`` at absolute clock time ``time`` (>= now)."""
        delay = time - self.now
        if delay < 0:
            raise SchedulingError(
                f"cannot schedule in the past (time={time}, now={self.now})"
            )
        return self.schedule(delay, callback)

    def every(
        self,
        interval: float,
        callback: Callable[[], Any],
        *,
        initial_delay: float | None = None,
        max_firings: int | None = None,
    ) -> PeriodicTask:
        """Fire ``callback`` every ``interval`` seconds (same
        :class:`PeriodicTask` semantics as the engine)."""
        return PeriodicTask(
            self,
            interval,
            callback,
            initial_delay=initial_delay,
            max_firings=max_firings,
        )

    def __repr__(self) -> str:
        state = f"now={self.now:.3f}" if self.attached else "detached"
        return f"AsyncClock({state})"
