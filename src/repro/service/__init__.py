"""Live service mode: the protocol core on wall-clock asyncio time.

The same dissemination/membership code that runs under the deterministic
discrete-event :class:`~repro.sim.engine.Engine` runs here as a live
pub/sub service — the clock/transport seam is the only thing that changes:

* :class:`~repro.service.clock.AsyncClock` implements the
  :class:`~repro.sim.clock.Clock` protocol on an asyncio event loop;
* deliveries flow through a :class:`~repro.net.transport.QueueTransport`
  pumped by an asyncio task instead of the engine heap;
* :class:`~repro.service.runtime.LiveRuntime` wraps it all in a
  ``subscribe(topic, callback)`` / ``await publish(topic, payload)`` API
  with a status/metrics surface.

The engine stays the test oracle: a live run records a trace, and
:func:`~repro.service.replay.replay_live_trace` re-executes it on virtual
time — producing the *same per-topic delivery sets*, which the golden
tests assert.
"""

from repro.service.clock import AsyncClock, AsyncHandle
from repro.service.replay import delivery_sets_from_trace, replay_live_trace
from repro.service.runtime import LiveRuntime

__all__ = [
    "AsyncClock",
    "AsyncHandle",
    "LiveRuntime",
    "delivery_sets_from_trace",
    "replay_live_trace",
]
