"""§VI-E measured comparisons: all four algorithms on one scenario.

For each algorithm — daMulticast and baselines (a), (b), (c) — one
publication is simulated on an identical substrate (same sizes, channel
loss, seed discipline) and we measure what §VI-E tabulates:

* total event messages sent (message complexity),
* per-process membership entries and table counts (memory complexity),
* delivery among the interested processes (reliability),
* parasite deliveries (the efficiency property daMulticast guarantees).
"""

from __future__ import annotations

import functools
from typing import Mapping

from repro.baselines.broadcast import GossipBroadcastSystem
from repro.baselines.hierarchical import HierarchicalGossipSystem
from repro.baselines.multicast import GossipMulticastSystem
from repro.experiments.executor import ExecutorSpec, coerce_executor
from repro.experiments.runner import (
    ProgressFn,
    SweepCell,
    aggregate_runs,
    grouped_progress,
    run_cells,
)
from repro.metrics.delivery import delivered_fraction, parasite_deliveries
from repro.metrics.report import Table
from repro.sim.rng import derive_seed
from repro.workloads.scenarios import PaperScenario


def _measure_damulticast(
    scenario: PaperScenario, seed: int
) -> Mapping[str, float]:
    built = scenario.build(seed=seed, alive_fraction=1.0)
    event = built.publish_and_run()
    system = built.system
    interested_pids = [
        p.pid
        for p in system.processes
        if p.topic.includes(built.publish_topic)
    ]
    footprints = [
        p.memory_footprint
        for p in system.processes
    ]
    metrics = {
        "event_messages": float(system.stats.event_messages_sent()),
        "memory_mean": sum(footprints) / len(footprints),
        "memory_max": float(max(footprints)),
        "tables_max": 2.0,
        "delivered_interested": delivered_fraction(
            system.tracker, event.event_id, interested_pids
        ),
    }
    # Parasite check: publish on a *mid-level* topic — subscribers of its
    # subtopics are NOT interested, so broadcast-style algorithms leak.
    if len(built.topics) > 1:
        system.publish(built.topics[1])
        system.run_until_idle()
    metrics["parasites"] = float(
        parasite_deliveries(system.tracker, system.interests())
    )
    return metrics


def _populate_baseline(system, scenario: PaperScenario):
    for topic, size in zip(scenario.topics(), scenario.sizes):
        system.add_group(topic, size)
    system.finalize_membership()
    return system


def _measure_baseline(system, scenario: PaperScenario) -> Mapping[str, float]:
    topics = scenario.topics()
    publish_topic = topics[scenario.publish_level]
    event = system.publish(publish_topic)
    system.run_until_idle()
    interested_pids = [p.pid for p in system.interested_in(publish_topic)]
    footprints = system.memory_footprints()
    tables = [p.table_count for p in system.processes]
    metrics = {
        "event_messages": float(system.stats.event_messages_sent()),
        "memory_mean": sum(footprints) / len(footprints),
        "memory_max": float(max(footprints)),
        "tables_max": float(max(tables)),
        "delivered_interested": delivered_fraction(
            system.tracker, event.event_id, interested_pids
        ),
    }
    # Mid-level publication exposes parasite deliveries (see above).
    if len(topics) > 1:
        system.publish(topics[1])
        system.run_until_idle()
    metrics["parasites"] = float(system.parasite_count())
    return metrics


def run_all_algorithms_once(
    scenario: PaperScenario, seed: int
) -> dict[str, Mapping[str, float]]:
    """One measured run of all four algorithms with aligned settings."""
    common = dict(
        p_success=scenario.p_succ,
        b=scenario.b,
        c=scenario.c,
        log_base=scenario.fanout_log_base,
    )
    results: dict[str, Mapping[str, float]] = {}
    results["daMulticast"] = _measure_damulticast(scenario, seed)

    broadcast = _populate_baseline(
        GossipBroadcastSystem(seed=derive_seed(seed, "a"), **common), scenario
    )
    results["broadcast (a)"] = _measure_baseline(broadcast, scenario)

    multicast = _populate_baseline(
        GossipMulticastSystem(seed=derive_seed(seed, "b"), **common), scenario
    )
    results["multicast (b)"] = _measure_baseline(multicast, scenario)

    total = sum(scenario.sizes)
    n_clusters = max(2, round(total ** 0.5 / 3))
    hierarchical = _populate_baseline(
        HierarchicalGossipSystem(
            seed=derive_seed(seed, "c"), n_clusters=n_clusters, **common
        ),
        scenario,
    )
    results["hierarchical (c)"] = _measure_baseline(hierarchical, scenario)
    return results


def _comparison_cell(
    _point: int, seed: int, *, scenario: PaperScenario
) -> dict[str, Mapping[str, float]]:
    return run_all_algorithms_once(scenario, seed)


def measured_comparison(
    *,
    scenario: PaperScenario | None = None,
    runs: int = 3,
    master_seed: int = 0,
    executor: ExecutorSpec = None,
    progress: ProgressFn | None = None,
    jobs: int | None = None,
) -> Table:
    """The §VI-E table, measured: one row per algorithm (means over runs).

    ``executor`` runs the repetitions on a parallel backend; seed names
    match the serial ``comparison/{j}`` derivation, so the table is
    identical for every backend. ``jobs`` is the deprecated keyword.
    ``progress`` is invoked per completed repetition as
    ``progress(run_index, completed_runs, total_runs)``.
    """
    scenario = scenario or PaperScenario()
    cells = [
        SweepCell(arg=j, seed_name=f"comparison/{j}", describe=f"run={j}")
        for j in range(runs)
    ]
    per_run = run_cells(
        functools.partial(_comparison_cell, scenario=scenario),
        cells,
        master_seed=master_seed,
        executor=coerce_executor(executor, jobs=jobs),
        on_result=grouped_progress(
            progress, [float(j) for j in range(runs)], 1
        ),
    )
    per_algorithm: dict[str, list[Mapping[str, float]]] = {}
    for result in per_run:
        # repro-lint: allow[DET003]: each per-run dict lists algorithms in the fixed _comparison_cell construction order
        for name, metrics in result.items():
            per_algorithm.setdefault(name, []).append(metrics)

    table = Table(
        "§VI-E measured comparison (means over "
        f"{runs} runs; publication on the bottom topic)",
        [
            "algorithm",
            "event_messages",
            "memory_mean",
            "memory_max",
            "tables_max",
            "delivered_interested",
            "parasites",
        ],
        precision=2,
    )
    for name, samples in per_algorithm.items():
        means, _ = aggregate_runs(samples)
        table.add_row(
            name,
            means["event_messages"],
            means["memory_mean"],
            means["memory_max"],
            means["tables_max"],
            means["delivered_interested"],
            means["parasites"],
        )
    return table
