"""Execution port: pluggable backends for sweep-cell evaluation.

Every sweep in the tree reduces to one operation — *evaluate
``run(cell.arg, seed)`` for a list of cells and return the results in
cell order* — and an :class:`Executor` is exactly that operation behind
a stable interface::

    executor.map_cells(run, cells, master_seed=..., on_result=...)

Three first-class backends ship here:

* :class:`SerialExecutor` — in-process, canonical order; the oracle
  every other backend must match bit-for-bit.
* :class:`PoolExecutor` — the chunked fail-fast ``multiprocessing``
  scheduler (PR 3), relocated behind the port. A fresh pool is spawned
  per :meth:`~Executor.map_cells` call and torn down afterwards.
* :class:`WarmPoolExecutor` — a pool whose worker processes persist
  across ``map_cells`` calls. Workers keep the unpickled run function
  cached by content digest, and (via the process-local compiled-spec
  cache in :mod:`repro.workloads.spec`) re-use compiled scenario specs
  across cells and across whole sweeps — the ModelOps-style warm-pool
  shape: pay the spawn + import + compile cost once, not per sweep.

Optional adapters (:class:`JoblibExecutor`, :class:`DaskExecutor`) map
onto third-party schedulers when those libraries are installed; they are
import-gated and raise :class:`~repro.errors.ConfigError` otherwise —
nothing here requires a dependency beyond the stdlib.

Bit-identity contract
---------------------
Every backend derives each cell's seed *inside the worker* as
``derive_seed(master_seed, cell.seed_name)`` and returns results in cell
order, so any backend × any worker count × any chunking is bit-identical
to :class:`SerialExecutor`. The equality gate in
``benchmarks/bench_sweep_parallel.py`` and the hypothesis suite in
``tests/test_executor.py`` enforce this for every backend.

Executor specs
--------------
User-facing entry points accept an :data:`ExecutorSpec` — an
:class:`Executor` instance, ``None`` (serial), or a compact string::

    "serial"            in-process
    "pool"  / "pool:N"  fresh multiprocessing pool, N workers
    "warm"  / "warm:N"  persistent multiprocessing pool, N workers
    "joblib" / "joblib:N"  joblib.Parallel (requires joblib)
    "dask"  / "dask:N"     dask.bag (requires dask)

``N`` defaults to the machine's CPU count. :func:`resolve_executor`
turns a spec into an instance; :func:`coerce_executor` additionally
accepts the legacy ``jobs``/``chunk_size``/``start_method`` keyword
trio (PR 3's API) with a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import hashlib
import math
import multiprocessing
import os
import pickle
import traceback
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Protocol, Sequence, Union, runtime_checkable

from repro.errors import ConfigError
from repro.sim.rng import derive_seed

#: Per-cell completion callback: ``on_result(index, completed, total)``,
#: invoked after each *successful* cell (completion order under parallel
#: backends, canonical order serially). A failed cell is never announced.
OnResultFn = Callable[[int, int, int], None]


@dataclass(frozen=True)
class SweepCell:
    """One schedulable unit of sweep work.

    ``arg`` is handed to the run function verbatim; the worker derives
    the cell's seed as ``derive_seed(master_seed, seed_name)`` — it never
    receives a seed over the wire, which keeps the contract auditable
    from the cell alone. ``describe`` labels the cell in error messages.
    """

    arg: Any
    seed_name: str
    describe: str = ""


class SweepWorkerError(RuntimeError):
    """A sweep cell's run function raised.

    Identifies the failing cell — point/arg, run index (via
    ``describe``), seed name and the derived seed — plus the worker-side
    traceback when the failure happened in a pool worker.
    """

    def __init__(
        self,
        cell: SweepCell,
        seed: int,
        cause: str,
        worker_traceback: str | None = None,
    ):
        self.cell = cell
        self.seed = seed
        self.cause = cause
        self.worker_traceback = worker_traceback
        where = cell.describe or f"arg={cell.arg!r}"
        message = (
            f"sweep cell failed ({where}, seed_name={cell.seed_name!r}, "
            f"seed={seed}): {cause}"
        )
        if worker_traceback:
            message += f"\n--- worker traceback ---\n{worker_traceback}"
        super().__init__(message)


@runtime_checkable
class Executor(Protocol):
    """The execution port: evaluate cells, return results in cell order."""

    def map_cells(
        self,
        run: Callable[[Any, int], Any],
        cells: Sequence[SweepCell],
        *,
        master_seed: int = 0,
        on_result: OnResultFn | None = None,
    ) -> list[Any]:
        """Evaluate ``run(cell.arg, derive_seed(master_seed,
        cell.seed_name))`` for every cell; results in cell order."""
        ...  # pragma: no cover — protocol signature

    def close(self) -> None:
        """Release any held workers (no-op for stateless backends)."""
        ...  # pragma: no cover — protocol signature


#: What user-facing entry points accept for their ``executor`` argument.
ExecutorSpec = Union[Executor, str, None]


# ----------------------------------------------------------------------
# Shared worker plumbing (serial loop, picklability, chunking).
# ----------------------------------------------------------------------
def _run_serial(
    run: Callable[[Any, int], Any],
    cells: Sequence[SweepCell],
    master_seed: int,
    on_result: OnResultFn | None,
) -> list[Any]:
    results: list[Any] = [None] * len(cells)
    total = len(cells)
    for index, cell in enumerate(cells):
        # repro-lint: allow[DET004]: cell.seed_name is an f-string literal declared by each sweep driver and linted there
        seed = derive_seed(master_seed, cell.seed_name)
        try:
            results[index] = run(cell.arg, seed)
        except Exception as exc:
            raise SweepWorkerError(cell, seed, repr(exc)) from exc
        if on_result is not None:
            on_result(index, index + 1, total)
    return results


def _ensure_picklable(
    run: Callable[[Any, int], Any], cells: Sequence[SweepCell]
) -> None:
    try:
        pickle.dumps(run)
    except Exception as exc:
        raise ConfigError(
            "run function must be picklable for parallel executors: use a "
            "module-level function or a functools.partial of one "
            f"(got {run!r}: {exc})"
        ) from exc
    try:
        pickle.dumps(list(cells))
    except Exception as exc:
        raise ConfigError(
            f"cell args must be picklable for parallel executors: {exc}"
        ) from exc


def _make_chunks(
    cells: Sequence[SweepCell], jobs: int, chunk_size: int | None
) -> list[list[tuple[int, SweepCell]]]:
    total = len(cells)
    if chunk_size is None:
        chunk_size = max(1, math.ceil(total / (jobs * 4)))
    indexed = list(enumerate(cells))
    return [
        indexed[start : start + chunk_size]
        for start in range(0, total, chunk_size)
    ]


def _raise_first_failure(
    failures: list[tuple[int, tuple[str, str]]],
    cells: Sequence[SweepCell],
    master_seed: int,
) -> None:
    index, (cause, worker_tb) = min(failures)
    cell = cells[index]
    raise SweepWorkerError(
        cell,
        # repro-lint: allow[DET004]: cell.seed_name is an f-string literal declared by each sweep driver and linted there
        derive_seed(master_seed, cell.seed_name),
        cause,
        worker_tb,
    )


# Cold-pool workers are initialized once with (run, master_seed); each
# task is a chunk of (index, cell) pairs. The worker re-derives every
# cell's seed from (master_seed, cell.seed_name) — the parent never
# ships seeds, so the serial and parallel paths cannot diverge on
# seeding. Exceptions are captured per cell and reported back as data:
# a worker never dies on a run-function error, and the parent re-raises
# deterministically for the lowest failing cell index.
_WORKER_RUN: Callable[[Any, int], Any] | None = None
_WORKER_MASTER_SEED: int = 0


def _init_worker(run: Callable[[Any, int], Any], master_seed: int) -> None:
    global _WORKER_RUN, _WORKER_MASTER_SEED
    _WORKER_RUN = run
    _WORKER_MASTER_SEED = master_seed


def _eval_cell(
    run: Callable[[Any, int], Any],
    master_seed: int,
    index: int,
    cell: SweepCell,
) -> tuple[int, bool, Any]:
    # repro-lint: allow[DET004]: cell.seed_name is an f-string literal declared by each sweep driver and linted there
    seed = derive_seed(master_seed, cell.seed_name)
    try:
        result = run(cell.arg, seed)
        # Verify the result survives the trip back to the parent — an
        # unpicklable value would otherwise abort the whole pool with an
        # opaque MaybeEncodingError naming no cell.
        pickle.dumps(result)
        return (index, True, result)
    except Exception as exc:  # noqa: BLE001 — reported to the parent
        return (index, False, (repr(exc), traceback.format_exc()))


def _run_chunk(
    chunk: list[tuple[int, SweepCell]]
) -> list[tuple[int, bool, Any]]:
    return [
        _eval_cell(_WORKER_RUN, _WORKER_MASTER_SEED, index, cell)
        for index, cell in chunk
    ]


def _default_jobs() -> int:
    return os.cpu_count() or 1


def _check_jobs(jobs: int) -> int:
    if isinstance(jobs, bool) or not isinstance(jobs, int) or jobs < 1:
        raise ConfigError(f"jobs must be an integer >= 1, got {jobs!r}")
    return jobs


def _check_chunk_size(chunk_size: int | None) -> int | None:
    if chunk_size is not None and chunk_size < 1:
        raise ConfigError(f"chunk_size must be >= 1, got {chunk_size}")
    return chunk_size


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
class SerialExecutor:
    """In-process, canonical-order evaluation — the determinism oracle."""

    def map_cells(
        self,
        run: Callable[[Any, int], Any],
        cells: Sequence[SweepCell],
        *,
        master_seed: int = 0,
        on_result: OnResultFn | None = None,
    ) -> list[Any]:
        return _run_serial(run, list(cells), master_seed, on_result)

    def close(self) -> None:
        pass

    def __repr__(self) -> str:
        return "SerialExecutor()"


class PoolExecutor:
    """Chunked fail-fast ``multiprocessing`` pool, one pool per call.

    The PR-3 scheduler behind the port: cells fan out in contiguous
    chunks of ``chunk_size`` (default: enough chunks for ~4 per worker)
    over a pool created for the call and torn down afterwards.
    ``start_method`` picks fork/spawn/forkserver (None = platform
    default). A single-cell (or empty) call never pays for a pool — it
    degrades to the serial path, so even unpicklable run functions work.

    On a run-function failure the error is re-raised as
    :class:`SweepWorkerError` for the lowest failing cell index, with
    the worker traceback attached; once every cell below the lowest
    observed failure has completed (so the canonical first failure is
    known), the pool is torn down without waiting for the rest.
    """

    def __init__(
        self,
        jobs: int,
        *,
        chunk_size: int | None = None,
        start_method: str | None = None,
    ):
        self.jobs = _check_jobs(jobs)
        self.chunk_size = _check_chunk_size(chunk_size)
        self.start_method = start_method

    def map_cells(
        self,
        run: Callable[[Any, int], Any],
        cells: Sequence[SweepCell],
        *,
        master_seed: int = 0,
        on_result: OnResultFn | None = None,
    ) -> list[Any]:
        cells = list(cells)
        total = len(cells)
        if self.jobs == 1 or total <= 1:
            return _run_serial(run, cells, master_seed, on_result)
        _ensure_picklable(run, cells)
        chunks = _make_chunks(cells, self.jobs, self.chunk_size)
        results: list[Any] = [None] * total
        failures: list[tuple[int, tuple[str, str]]] = []
        finished = [False] * total
        done = 0
        ctx = multiprocessing.get_context(self.start_method)
        with ctx.Pool(
            processes=min(self.jobs, len(chunks)),
            initializer=_init_worker,
            initargs=(run, master_seed),
        ) as pool:
            for chunk_results in pool.imap_unordered(_run_chunk, chunks):
                for index, ok, payload in chunk_results:
                    finished[index] = True
                    if ok:
                        results[index] = payload
                        done += 1
                        if on_result is not None:
                            on_result(index, done, total)
                    else:
                        failures.append((index, payload))
                # Fail fast, deterministically: once every cell below the
                # lowest observed failure has completed (necessarily
                # successfully, or the minimum would be lower), that
                # failure is the canonical first one — abandon the rest
                # of the sweep instead of draining it. Exiting the `with`
                # terminates the pool.
                if failures and all(finished[: min(failures)[0]]):
                    break
        if failures:
            _raise_first_failure(failures, cells, master_seed)
        return results

    def close(self) -> None:
        pass

    def __repr__(self) -> str:
        return f"PoolExecutor(jobs={self.jobs})"


# Warm workers cache unpickled run functions by content digest, so a
# sweep's thousands of cells unpickle their shared run function (and its
# bound spec dict) once per worker, not once per chunk — and the
# process-local compiled-spec cache in repro.workloads.spec then keeps
# the *compiled* scenario alive across cells, sweeps and map_cells
# calls for as long as the worker lives.
_WARM_RUN_CACHE: dict[str, Callable[[Any, int], Any]] = {}
_WARM_RUN_CACHE_LIMIT = 8


def _run_warm_chunk(
    task: tuple[str, bytes, int, list[tuple[int, SweepCell]]]
) -> list[tuple[int, bool, Any]]:
    run_digest, run_blob, master_seed, chunk = task
    run = _WARM_RUN_CACHE.get(run_digest)
    if run is None:
        run = pickle.loads(run_blob)
        if len(_WARM_RUN_CACHE) >= _WARM_RUN_CACHE_LIMIT:
            _WARM_RUN_CACHE.clear()
        _WARM_RUN_CACHE[run_digest] = run
    return [
        _eval_cell(run, master_seed, index, cell) for index, cell in chunk
    ]


class WarmPoolExecutor:
    """A ``multiprocessing`` pool whose workers persist across calls.

    The pool is created lazily on the first parallel ``map_cells`` and
    reused by every later call — ``run_cells``, ``run_sweep`` and
    ``sweep_scenario`` invocations through one executor instance all
    share the same workers, so the spawn/import cost is paid once per
    executor, not once per sweep. Workers additionally cache the
    unpickled run function by content digest and (through the
    compiled-spec cache in :mod:`repro.workloads.spec`) the compiled
    scenario per spec digest.

    Failure semantics match :class:`PoolExecutor` — deterministic
    :class:`SweepWorkerError` for the canonically first failing cell —
    except that the pool is *not* torn down: in-flight chunks finish in
    the background and the workers stay warm for the next call.

    Close explicitly (``close()`` or use as a context manager) when
    done; an unclosed executor's pool is reclaimed at garbage
    collection / interpreter exit by ``multiprocessing``'s own
    finalizers.
    """

    def __init__(
        self,
        jobs: int,
        *,
        chunk_size: int | None = None,
        start_method: str | None = None,
    ):
        self.jobs = _check_jobs(jobs)
        self.chunk_size = _check_chunk_size(chunk_size)
        self.start_method = start_method
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            ctx = multiprocessing.get_context(self.start_method)
            self._pool = ctx.Pool(processes=self.jobs)
        return self._pool

    def map_cells(
        self,
        run: Callable[[Any, int], Any],
        cells: Sequence[SweepCell],
        *,
        master_seed: int = 0,
        on_result: OnResultFn | None = None,
    ) -> list[Any]:
        cells = list(cells)
        total = len(cells)
        if self.jobs == 1 and self._pool is None:
            # A 1-worker warm pool would only re-pay IPC per chunk; keep
            # the serial fast path (still bit-identical by contract).
            return _run_serial(run, cells, master_seed, on_result)
        if total <= 1:
            return _run_serial(run, cells, master_seed, on_result)
        _ensure_picklable(run, cells)
        run_blob = pickle.dumps(run)
        run_digest = hashlib.sha256(run_blob).hexdigest()
        chunks = _make_chunks(cells, self.jobs, self.chunk_size)
        tasks = [(run_digest, run_blob, master_seed, chunk) for chunk in chunks]
        results: list[Any] = [None] * total
        failures: list[tuple[int, tuple[str, str]]] = []
        finished = [False] * total
        done = 0
        pool = self._ensure_pool()
        for chunk_results in pool.imap_unordered(_run_warm_chunk, tasks):
            for index, ok, payload in chunk_results:
                finished[index] = True
                if ok:
                    results[index] = payload
                    done += 1
                    if on_result is not None:
                        on_result(index, done, total)
                else:
                    failures.append((index, payload))
            # Same deterministic fail-fast condition as PoolExecutor,
            # but the iterator is abandoned rather than the pool torn
            # down — remaining chunks drain in the background and the
            # workers stay warm.
            if failures and all(finished[: min(failures)[0]]):
                break
        if failures:
            _raise_first_failure(failures, cells, master_seed)
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "WarmPoolExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "warm" if self._pool is not None else "cold"
        return f"WarmPoolExecutor(jobs={self.jobs}, {state})"


# ----------------------------------------------------------------------
# Optional third-party adapters (import-gated; stdlib-only otherwise).
# ----------------------------------------------------------------------
def _joblib_eval(blob: bytes, master_seed: int, index: int, cell: SweepCell):
    return _eval_cell(pickle.loads(blob), master_seed, index, cell)


class JoblibExecutor:
    """Adapter onto ``joblib.Parallel`` (loky processes).

    Requires joblib to be installed; constructing the executor without
    it raises :class:`~repro.errors.ConfigError`. Results and seeding
    follow the same contract as every other backend.
    """

    def __init__(self, jobs: int):
        try:
            import joblib  # noqa: F401 — availability probe
        except ImportError as exc:
            raise ConfigError(
                "executor 'joblib' requires the joblib package, which is "
                "not installed"
            ) from exc
        self.jobs = _check_jobs(jobs)

    def map_cells(
        self,
        run: Callable[[Any, int], Any],
        cells: Sequence[SweepCell],
        *,
        master_seed: int = 0,
        on_result: OnResultFn | None = None,
    ) -> list[Any]:
        import joblib

        cells = list(cells)
        total = len(cells)
        if self.jobs == 1 or total <= 1:
            return _run_serial(run, cells, master_seed, on_result)
        _ensure_picklable(run, cells)
        blob = pickle.dumps(run)
        outputs = joblib.Parallel(n_jobs=self.jobs)(
            joblib.delayed(_joblib_eval)(blob, master_seed, index, cell)
            for index, cell in enumerate(cells)
        )
        results: list[Any] = [None] * total
        failures: list[tuple[int, tuple[str, str]]] = []
        done = 0
        for index, ok, payload in outputs:
            if ok:
                results[index] = payload
                done += 1
                if on_result is not None:
                    on_result(index, done, total)
            else:
                failures.append((index, payload))
        if failures:
            _raise_first_failure(failures, cells, master_seed)
        return results

    def close(self) -> None:
        pass

    def __repr__(self) -> str:
        return f"JoblibExecutor(jobs={self.jobs})"


class DaskExecutor:
    """Adapter onto ``dask.bag`` with the multiprocessing scheduler.

    Requires dask to be installed; constructing the executor without it
    raises :class:`~repro.errors.ConfigError`.
    """

    def __init__(self, jobs: int):
        try:
            import dask.bag  # noqa: F401 — availability probe
        except ImportError as exc:
            raise ConfigError(
                "executor 'dask' requires the dask package, which is "
                "not installed"
            ) from exc
        self.jobs = _check_jobs(jobs)

    def map_cells(
        self,
        run: Callable[[Any, int], Any],
        cells: Sequence[SweepCell],
        *,
        master_seed: int = 0,
        on_result: OnResultFn | None = None,
    ) -> list[Any]:
        import dask.bag

        cells = list(cells)
        total = len(cells)
        if self.jobs == 1 or total <= 1:
            return _run_serial(run, cells, master_seed, on_result)
        _ensure_picklable(run, cells)
        blob = pickle.dumps(run)
        bag = dask.bag.from_sequence(list(enumerate(cells)), npartitions=self.jobs)
        outputs = bag.map(
            lambda pair: _joblib_eval(blob, master_seed, pair[0], pair[1])
        ).compute(scheduler="processes", num_workers=self.jobs)
        results: list[Any] = [None] * total
        failures: list[tuple[int, tuple[str, str]]] = []
        done = 0
        for index, ok, payload in outputs:
            if ok:
                results[index] = payload
                done += 1
                if on_result is not None:
                    on_result(index, done, total)
            else:
                failures.append((index, payload))
        if failures:
            _raise_first_failure(failures, cells, master_seed)
        return results

    def close(self) -> None:
        pass

    def __repr__(self) -> str:
        return f"DaskExecutor(jobs={self.jobs})"


# ----------------------------------------------------------------------
# Spec parsing and the legacy-kwarg shim
# ----------------------------------------------------------------------
_BACKENDS: dict[str, Callable[[int], Executor]] = {
    "serial": lambda jobs: SerialExecutor(),
    "pool": PoolExecutor,
    "warm": WarmPoolExecutor,
    "joblib": JoblibExecutor,
    "dask": DaskExecutor,
}


def parse_executor_spec(spec: str) -> Executor:
    """Parse a compact executor spec string into an instance.

    ``"serial"``, ``"pool"``/``"pool:N"``, ``"warm"``/``"warm:N"``,
    ``"joblib[:N]"``, ``"dask[:N]"``; ``N`` defaults to the CPU count.
    """
    name, sep, arg = spec.partition(":")
    factory = _BACKENDS.get(name)
    if factory is None:
        raise ConfigError(
            f"unknown executor {spec!r}; expected one of "
            f"{', '.join(sorted(_BACKENDS))} (optionally ':N' workers)"
        )
    if not sep:
        jobs = 1 if name == "serial" else _default_jobs()
    else:
        if name == "serial":
            raise ConfigError(
                f"executor 'serial' takes no worker count, got {spec!r}"
            )
        try:
            jobs = int(arg)
        except ValueError:
            raise ConfigError(
                f"executor {spec!r}: worker count must be an integer, "
                f"got {arg!r}"
            ) from None
    return factory(jobs)


def resolve_executor(executor: ExecutorSpec) -> Executor:
    """Turn an :data:`ExecutorSpec` into an :class:`Executor` instance.

    ``None`` means serial; strings are parsed with
    :func:`parse_executor_spec`; instances pass through unchanged.
    """
    if executor is None:
        return SerialExecutor()
    if isinstance(executor, str):
        return parse_executor_spec(executor)
    if isinstance(executor, Executor):
        return executor
    raise ConfigError(
        "executor must be None, a spec string ('serial', 'pool:N', "
        f"'warm:N', ...) or an Executor instance, got {executor!r}"
    )


def coerce_executor(
    executor: ExecutorSpec = None,
    *,
    jobs: int | None = None,
    chunk_size: int | None = None,
    start_method: str | None = None,
    _stacklevel: int = 3,
) -> Executor:
    """Resolve ``executor``, honouring the deprecated PR-3 keyword trio.

    ``jobs``/``chunk_size``/``start_method`` were the pre-executor API;
    passing any of them emits a :class:`DeprecationWarning` and builds
    the equivalent backend (``jobs<=1`` → serial, else a
    :class:`PoolExecutor`). Combining them with ``executor`` is a
    :class:`ConfigError` — there must be one source of truth.
    """
    legacy = (
        jobs is not None or chunk_size is not None or start_method is not None
    )
    if not legacy:
        return resolve_executor(executor)
    if executor is not None:
        raise ConfigError(
            "pass either executor=... or the deprecated jobs/chunk_size/"
            "start_method keywords, not both"
        )
    warnings.warn(
        "the jobs/chunk_size/start_method keywords are deprecated; pass "
        "executor='serial' | 'pool:N' | 'warm:N' (or an Executor "
        "instance) instead",
        DeprecationWarning,
        stacklevel=_stacklevel,
    )
    jobs = 1 if jobs is None else _check_jobs(jobs)
    _check_chunk_size(chunk_size)
    if jobs == 1 and chunk_size is None and start_method is None:
        return SerialExecutor()
    return PoolExecutor(
        jobs, chunk_size=chunk_size, start_method=start_method
    )
