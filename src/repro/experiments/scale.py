"""Scaling experiments: the asymptotic claims of §VI, measured.

Two sweeps back the §VI-E.1 statements:

* :func:`sweep_group_size` grows the publication group ``S_Tt`` and
  measures total event messages per publication. The §VI-B bound says the
  total is dominated by ``S·(log S + c)``, so the *normalized* column
  ``messages / (S·(log S + c))`` must stay ≈ constant (≤ 1, approaching
  the coverage fraction).
* :func:`sweep_depth` grows the chain depth ``t`` at fixed per-level size
  and measures total messages, which §VI-B bounds by
  ``t·S_max·log(S_max)·(1+c+z)`` — i.e. *linear* in ``t``.
"""

from __future__ import annotations

import functools
import math
from dataclasses import replace
from typing import Mapping, Sequence

from repro.experiments.executor import ExecutorSpec, coerce_executor
from repro.experiments.runner import ProgressFn, run_sweep
from repro.metrics.report import Table
from repro.workloads.scenarios import PaperScenario


def _messages_for_scenario(
    scenario: PaperScenario, seed: int
) -> Mapping[str, float]:
    built = scenario.build(seed=seed, alive_fraction=1.0)
    built.publish_and_run()
    bottom = built.topics[-1]
    return {
        "event_messages": float(built.system.stats.event_messages_sent()),
        "bottom_messages": float(
            built.system.stats.events_sent_in_group(bottom)
        ),
        "inter_messages": float(sum(built.inter_group_messages().values())),
    }


def _group_size_cell(
    s: float, seed: int, *, base: PaperScenario, upper_sizes: tuple[int, ...]
) -> Mapping[str, float]:
    scenario = replace(base, sizes=(*upper_sizes, int(s)))
    return _messages_for_scenario(scenario, seed)


def sweep_group_size(
    *,
    s_values: Sequence[int] = (50, 100, 200, 400, 800),
    upper_sizes: Sequence[int] = (5, 20),
    runs: int = 3,
    master_seed: int = 0,
    c: float = 5.0,
    log_base: float = 10.0,
    executor: ExecutorSpec = None,
    progress: ProgressFn | None = None,
    jobs: int | None = None,
) -> Table:
    """Messages per publication vs the bottom group size ``S``.

    ``upper_sizes`` fixes the root-side groups so only the publication
    group scales — isolating the ``S_Tmax`` term.
    """
    base = PaperScenario(
        sizes=(*upper_sizes, s_values[0]),
        c=c,
        fanout_log_base=log_base,
        p_succ=1.0,
    )
    sweep = run_sweep(
        functools.partial(
            _group_size_cell, base=base, upper_sizes=tuple(upper_sizes)
        ),
        [float(s) for s in s_values],
        runs=runs, master_seed=master_seed, label="scale-S",
        executor=coerce_executor(executor, jobs=jobs), progress=progress,
    )
    table = Table(
        "Scaling — event messages vs bottom group size S "
        f"(c={c}, log base {log_base:g})",
        ["S", "event_messages", "bottom_messages", "S_logS_c", "normalized"],
        precision=3,
    )
    for index, s in enumerate(sweep.points):
        dominant = s * (math.log(s, log_base) + c)
        total = sweep.means["event_messages"][index]
        bottom = sweep.means["bottom_messages"][index]
        # Normalize the publication group's own cost by its S(log S + c)
        # law — this isolates the dominant term from the (fixed) upper
        # groups' contribution.
        table.add_row(int(s), total, bottom, dominant, bottom / dominant)
    return table


def _depth_cell(
    t: float, seed: int, *, level_size: int, c: float, log_base: float
) -> Mapping[str, float]:
    scenario = PaperScenario(
        sizes=tuple([level_size] * (int(t) + 1)),
        c=c,
        fanout_log_base=log_base,
        p_succ=1.0,
    )
    return _messages_for_scenario(scenario, seed)


def sweep_depth(
    *,
    t_values: Sequence[int] = (1, 2, 3, 4, 5),
    level_size: int = 100,
    runs: int = 3,
    master_seed: int = 0,
    c: float = 5.0,
    log_base: float = 10.0,
    executor: ExecutorSpec = None,
    progress: ProgressFn | None = None,
    jobs: int | None = None,
) -> Table:
    """Messages per publication vs chain depth ``t`` at fixed level size."""
    sweep = run_sweep(
        functools.partial(
            _depth_cell, level_size=level_size, c=c, log_base=log_base
        ),
        [float(t) for t in t_values],
        runs=runs, master_seed=master_seed, label="scale-t",
        executor=coerce_executor(executor, jobs=jobs), progress=progress,
    )
    table = Table(
        "Scaling — total event messages vs hierarchy depth t "
        f"(S={level_size} per level)",
        ["t", "levels", "event_messages", "per_level", "inter_messages"],
        precision=3,
    )
    for index, t in enumerate(sweep.points):
        levels = int(t) + 1
        measured = sweep.means["event_messages"][index]
        table.add_row(
            int(t),
            levels,
            measured,
            measured / levels,
            sweep.means["inter_messages"][index],
        )
    return table
