"""Ablations over the tuning knobs the paper highlights.

§VII closes with: "To achieve better reliability, we can easily adjust
z_Ti, p_a^Ti and g_Ti." These sweeps quantify that trade-off — measured
root-group reliability and inter-group traffic as the link-redundancy
parameters (g, a, z) and the fan-out constant c vary.
"""

from __future__ import annotations

import functools
from dataclasses import replace
from typing import Mapping, Sequence

from repro.analysis.reliability import (
    atomic_gossip_reliability,
    damulticast_reliability,
)
from repro.experiments.executor import ExecutorSpec, coerce_executor
from repro.experiments.runner import ProgressFn, run_sweep
from repro.metrics.report import Table
from repro.workloads.scenarios import PaperScenario


def _run_with_scenario(
    scenario: PaperScenario, seed: int, alive_fraction: float
) -> Mapping[str, float]:
    built = scenario.build(seed=seed, alive_fraction=alive_fraction)
    built.publish_and_run()
    fractions = built.delivered_fractions()
    root = built.topics[0]
    inter_total = sum(built.inter_group_messages().values())
    return {
        "received_root": fractions[root],
        "received_bottom": fractions[built.publish_topic],
        "inter_messages": float(inter_total),
        "event_messages": float(built.system.stats.event_messages_sent()),
    }


def _link_redundancy_cell(
    g: float, seed: int, *, base: PaperScenario, alive_fraction: float
) -> Mapping[str, float]:
    return _run_with_scenario(replace(base, g=float(g)), seed, alive_fraction)


def _fanout_constant_cell(
    c: float, seed: int, *, base: PaperScenario, alive_fraction: float
) -> Mapping[str, float]:
    return _run_with_scenario(replace(base, c=float(c)), seed, alive_fraction)


def sweep_link_redundancy(
    *,
    g_values: Sequence[float] = (1, 2, 5, 10, 20),
    scenario: PaperScenario | None = None,
    alive_fraction: float = 0.7,
    runs: int = 5,
    master_seed: int = 0,
    executor: ExecutorSpec = None,
    progress: ProgressFn | None = None,
    jobs: int | None = None,
) -> Table:
    """Reliability/messages as the number of inter-group links ``g`` grows.

    Each extra self-elected link multiplies the chance an event survives
    the hop (pit = 1-(1-p_succ)^{g·a·π}) at the price of ``g·a`` more
    inter-group messages per level.
    """
    base = scenario or PaperScenario()
    sweep = run_sweep(
        functools.partial(
            _link_redundancy_cell, base=base, alive_fraction=alive_fraction
        ),
        list(g_values),
        runs=runs,
        master_seed=master_seed,
        label="ablation-g",
        executor=coerce_executor(executor, jobs=jobs),
        progress=progress,
    )
    table = Table(
        f"Ablation — link redundancy g (alive={alive_fraction})",
        ["g", "recv_root", "recv_bottom", "inter_msgs", "analytic_root"],
        precision=3,
    )
    for index, g in enumerate(sweep.points):
        analytic = damulticast_reliability(
            list(reversed(base.sizes)),
            c=base.c,
            g=float(g),
            a=base.a,
            z=base.z,
            p_succ=base.p_succ * alive_fraction,
        )
        table.add_row(
            g,
            sweep.means["received_root"][index],
            sweep.means["received_bottom"][index],
            sweep.means["inter_messages"][index],
            analytic,
        )
    return table


def sweep_fanout_constant(
    *,
    c_values: Sequence[float] = (0, 1, 2, 3, 5, 8),
    scenario: PaperScenario | None = None,
    alive_fraction: float = 1.0,
    runs: int = 5,
    master_seed: int = 0,
    executor: ExecutorSpec = None,
    progress: ProgressFn | None = None,
    jobs: int | None = None,
) -> Table:
    """Reliability/messages as the gossip fan-out constant ``c`` grows.

    The intra-group term: reliability ``e^{-e^{-c}}`` versus message cost
    ``S·(log S + c)`` — §VI-D's "we can tune c_Ti to choose between the
    reliability of the dissemination ... and the message complexity".
    """
    base = scenario or PaperScenario()
    sweep = run_sweep(
        functools.partial(
            _fanout_constant_cell, base=base, alive_fraction=alive_fraction
        ),
        list(c_values),
        runs=runs,
        master_seed=master_seed,
        label="ablation-c",
        executor=coerce_executor(executor, jobs=jobs),
        progress=progress,
    )
    table = Table(
        f"Ablation — gossip constant c (alive={alive_fraction})",
        ["c", "recv_bottom", "event_msgs", "analytic_one_group"],
        precision=3,
    )
    for index, c in enumerate(sweep.points):
        table.add_row(
            c,
            sweep.means["received_bottom"][index],
            sweep.means["event_messages"][index],
            atomic_gossip_reliability(float(c)),
        )
    return table
