"""Steady-state workload experiment: a stream of publications.

The paper evaluates single publications; a deployment serves a *stream*
(the newsgroup workload its introduction motivates). This experiment
replays a Poisson stream over the paper hierarchy and measures what
amortizes and what doesn't:

* per-event message cost (should match the single-shot cost — infect-and-
  die gossip holds no shared state between events),
* delivery fraction per event (stability: no degradation over the stream),
* aggregate parasite count (stays zero whatever the mix of topics).
"""

from __future__ import annotations

import functools
import random
import statistics
from typing import Mapping

from repro.experiments.executor import ExecutorSpec, coerce_executor
from repro.experiments.runner import (
    ProgressFn,
    SweepCell,
    grouped_progress,
    run_cells,
)
from repro.metrics.delivery import parasite_deliveries
from repro.metrics.report import Table
from repro.sim.rng import derive_seed
from repro.workloads.publications import PoissonSchedule, replay_on
from repro.workloads.scenarios import PaperScenario


def run_stream(
    *,
    scenario: PaperScenario | None = None,
    rate: float = 0.2,
    horizon: float = 100.0,
    seed: int = 0,
    publish_levels: tuple[int, ...] = (1, 2),
) -> Mapping[str, float]:
    """Replay one Poisson stream; return aggregate stream metrics."""
    scenario = scenario or PaperScenario(sizes=(5, 25, 120))
    built = scenario.build(seed=seed, alive_fraction=1.0)
    system = built.system
    topics = [built.topics[level] for level in publish_levels]
    schedule = PoissonSchedule(topics, rate=rate, horizon=horizon)
    publications = schedule.generate(random.Random(derive_seed(seed, "stream")))
    if not publications:
        return {
            "events": 0.0,
            "messages_per_event": 0.0,
            "mean_delivery": 1.0,
            "min_delivery": 1.0,
            "parasites": 0.0,
        }
    published = replay_on(system, publications)
    system.run_until_idle()

    fractions = []
    for event in published:
        subscribers = system.group_pids(event.topic)
        if subscribers:
            fractions.append(
                system.delivered_fraction(event, event.topic)
            )
    total_messages = system.stats.event_messages_sent()
    return {
        "events": float(len(published)),
        "messages_per_event": total_messages / len(published),
        "mean_delivery": statistics.fmean(fractions) if fractions else 1.0,
        "min_delivery": min(fractions) if fractions else 1.0,
        "parasites": float(
            parasite_deliveries(system.tracker, system.interests())
        ),
    }


def _stream_cell(
    rate: float,
    seed: int,
    *,
    scenario: PaperScenario | None,
    publish_levels: tuple[int, ...],
) -> Mapping[str, float]:
    return run_stream(
        scenario=scenario, rate=rate, seed=seed, publish_levels=publish_levels
    )


def stream_table(
    *,
    rates: tuple[float, ...] = (0.05, 0.2, 0.5),
    runs: int = 3,
    master_seed: int = 0,
    scenario: PaperScenario | None = None,
    publish_levels: tuple[int, ...] = (1, 2),
    executor: ExecutorSpec = None,
    progress: ProgressFn | None = None,
    jobs: int | None = None,
) -> Table:
    """Stream metrics across arrival rates (means over ``runs``).

    ``publish_levels`` picks which hierarchy levels publications land on;
    restrict it to a single level when comparing per-event costs across
    rates (mixed levels have legitimately different costs). ``executor``
    fans the (rate, run) cells over a parallel backend; the seed names
    match the serial loop's ``stream/{rate}/{j}`` derivation, so results
    are identical for every backend (``jobs`` is the deprecated
    keyword). ``progress`` is invoked once per completed rate as
    ``progress(rate, completed_rates, total_rates)``.
    """
    table = Table(
        "Steady-state stream — per-event cost and delivery vs arrival rate",
        [
            "rate",
            "events",
            "messages_per_event",
            "mean_delivery",
            "min_delivery",
            "parasites",
        ],
        precision=3,
    )
    cells = [
        SweepCell(
            arg=rate,
            seed_name=f"stream/{rate}/{j}",
            describe=f"rate={rate!r}, run={j}",
        )
        for rate in rates
        for j in range(runs)
    ]
    flat = run_cells(
        functools.partial(
            _stream_cell, scenario=scenario, publish_levels=publish_levels
        ),
        cells,
        master_seed=master_seed,
        executor=coerce_executor(executor, jobs=jobs),
        on_result=grouped_progress(progress, list(rates), runs),
    )
    for index, rate in enumerate(rates):
        samples = flat[index * runs : (index + 1) * runs]
        table.add_row(
            rate,
            statistics.fmean(s["events"] for s in samples),
            statistics.fmean(s["messages_per_event"] for s in samples),
            statistics.fmean(s["mean_delivery"] for s in samples),
            min(s["min_delivery"] for s in samples),
            statistics.fmean(s["parasites"] for s in samples),
        )
    return table
