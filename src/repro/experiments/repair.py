"""Repair experiment: what the paper's frozen-membership assumption costs.

§VII states: "Pessimistically, we assume that the membership algorithm
does not 'replace' a failed process" — Figs. 8–10 freeze all tables and
let dead entries rot in them. The full protocol is better than that: the
flat membership evicts unresponsive partners, KEEP_TABLE_UPDATED refreshes
supertopic tables, and FIND_SUPER_CONTACT re-bootstraps lost links.

This experiment quantifies the gap. For the same failure fraction:

* **frozen** — the paper's setting: stillborn failures, static tables,
  publish immediately;
* **repaired** — the dynamic protocol: converge, crash the same fraction
  at runtime, give maintenance a repair window, then publish.

The repaired system should recover most of the failure-free delivery
among survivors, because its tables point (almost) only at live peers.
"""

from __future__ import annotations

import functools
import random
import statistics
from typing import Mapping

from repro.core.params import DaMulticastConfig, TopicParams
from repro.core.system import DaMulticastSystem
from repro.experiments.executor import ExecutorSpec, coerce_executor
from repro.experiments.runner import (
    ProgressFn,
    SweepCell,
    grouped_progress,
    run_cells,
)
from repro.failures.churn import ChurnSchedule
from repro.metrics.report import Table
from repro.sim.rng import derive_seed
from repro.topics.builders import chain
from repro.workloads.scenarios import PaperScenario


def _frozen_run(
    scenario: PaperScenario, alive_fraction: float, seed: int
) -> Mapping[str, float]:
    built = scenario.build(
        seed=seed, alive_fraction=alive_fraction, failure_mode="stillborn"
    )
    built.publish_and_run()
    fractions = built.delivered_fractions(alive_only=True)
    return {
        "bottom": fractions[built.publish_topic],
        "root": fractions[built.topics[0]],
    }


def _repaired_run(
    scenario: PaperScenario,
    alive_fraction: float,
    seed: int,
    *,
    settle_time: float = 30.0,
    repair_window: float = 60.0,
) -> Mapping[str, float]:
    topics = chain(scenario.depth, prefix="t")
    churn = ChurnSchedule()
    config = DaMulticastConfig(
        default_params=TopicParams(
            b=scenario.b,
            c=scenario.c,
            g=max(scenario.g, 10),  # probe often enough to repair in time
            a=scenario.a,
            z=scenario.z,
            fanout_log_base=scenario.fanout_log_base,
        ),
        maintain_interval=1.0,
        ping_timeout=0.5,
        bootstrap_timeout=2.0,
    )
    system = DaMulticastSystem(
        config=config,
        seed=seed,
        p_success=scenario.p_succ,
        mode="dynamic",
        failure_model=churn,
    )
    for topic, size in zip(topics, scenario.sizes):
        system.add_group(topic, size)
    system.run(until=settle_time)

    # Crash the same fraction the frozen variant suffers, at runtime.
    rng = random.Random(derive_seed(seed, "repair-victims"))
    pids = [p.pid for p in system.processes]
    publish_topic = topics[scenario.publish_level]
    publisher_pid = rng.choice(system.group_pids(publish_topic))
    candidates = [pid for pid in pids if pid != publisher_pid]
    n_failed = min(
        round(len(pids) * (1.0 - alive_fraction)), len(candidates)
    )
    for pid in rng.sample(candidates, n_failed):
        churn.crash_at(pid, settle_time)

    system.run(until=settle_time + repair_window)
    event = system.publish(
        publish_topic, publisher=system.process(publisher_pid)
    )
    system.run(until=settle_time + repair_window + 30.0)
    return {
        "bottom": system.delivered_fraction(
            event, publish_topic, alive_only=True
        ),
        "root": system.delivered_fraction(event, topics[0], alive_only=True),
    }


def _repair_cell(
    mode: str, seed: int, *, scenario: PaperScenario, alive_fraction: float
) -> Mapping[str, float]:
    if mode == "frozen":
        return _frozen_run(scenario, alive_fraction, seed)
    return _repaired_run(scenario, alive_fraction, seed)


def repair_comparison(
    *,
    alive_fraction: float = 0.6,
    runs: int = 4,
    master_seed: int = 0,
    scenario: PaperScenario | None = None,
    executor: ExecutorSpec = None,
    progress: ProgressFn | None = None,
    jobs: int | None = None,
) -> Table:
    """Frozen vs repaired delivery among survivors, same failure fraction.

    Both modes of repetition ``j`` share ``derive_seed(master_seed,
    f"repair/{j}")`` — the comparison is paired — and ``executor`` fans
    the 2·runs cells over a parallel backend without changing any seed
    (``jobs`` is the deprecated keyword). ``progress`` fires once per
    completed (frozen, repaired) pair.
    """
    scenario = scenario or PaperScenario(sizes=(4, 12, 48), p_succ=0.9)
    cells = [
        SweepCell(
            arg=mode, seed_name=f"repair/{j}", describe=f"mode={mode}, run={j}"
        )
        for j in range(runs)
        for mode in ("frozen", "repaired")
    ]
    flat = run_cells(
        functools.partial(
            _repair_cell, scenario=scenario, alive_fraction=alive_fraction
        ),
        cells,
        master_seed=master_seed,
        executor=coerce_executor(executor, jobs=jobs),
        on_result=grouped_progress(progress, list(range(runs)), 2),
    )
    rows: dict[str, list[Mapping[str, float]]] = {
        "frozen": flat[0::2],
        "repaired": flat[1::2],
    }
    table = Table(
        "Frozen membership (paper's pessimistic §VII setting) vs live "
        f"repair — delivery among survivors at alive={alive_fraction}",
        ["mode", "bottom_delivery", "root_delivery"],
        precision=3,
    )
    for mode, samples in rows.items():
        table.add_row(
            mode,
            statistics.fmean(s["bottom"] for s in samples),
            statistics.fmean(s["root"] for s in samples),
        )
    return table
