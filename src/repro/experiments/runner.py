"""Seeded sweeps with aggregation.

An experiment is a function ``run(point, seed) -> dict[str, float]``.
:func:`run_sweep` evaluates it at every grid point with ``runs`` derived
seeds each and aggregates the metric dict per point (mean and standard
deviation). Seeds are derived deterministically from one master seed, so
whole sweeps are reproducible and individually re-runnable.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.errors import ConfigError
from repro.sim.rng import derive_seed

RunFn = Callable[[float, int], Mapping[str, float]]


@dataclass
class SweepResult:
    """Aggregated metrics for one sweep."""

    points: list[float] = field(default_factory=list)
    means: dict[str, list[float]] = field(default_factory=dict)
    stds: dict[str, list[float]] = field(default_factory=dict)
    runs: int = 0

    def series(self, metric: str) -> list[tuple[float, float]]:
        """``[(x, mean_y), ...]`` for one metric."""
        return list(zip(self.points, self.means[metric]))

    def metric_names(self) -> list[str]:
        """All aggregated metric names, sorted."""
        return sorted(self.means)


def aggregate_runs(
    samples: Sequence[Mapping[str, float]]
) -> tuple[dict[str, float], dict[str, float]]:
    """Mean and standard deviation per metric over repeated runs."""
    if not samples:
        raise ConfigError("cannot aggregate zero runs")
    keys = set(samples[0])
    for sample in samples[1:]:
        if set(sample) != keys:
            raise ConfigError("runs returned inconsistent metric keys")
    means: dict[str, float] = {}
    stds: dict[str, float] = {}
    for key in keys:
        values = [float(sample[key]) for sample in samples]
        means[key] = statistics.fmean(values)
        stds[key] = statistics.stdev(values) if len(values) > 1 else 0.0
    return means, stds


def run_sweep(
    run: RunFn,
    grid: Sequence[float],
    *,
    runs: int = 5,
    master_seed: int = 0,
    label: str = "sweep",
) -> SweepResult:
    """Evaluate ``run`` at every grid point, ``runs`` times each.

    Seed for run ``j`` at point ``x`` is ``derive_seed(master_seed,
    f"{label}/{x}/{j}")`` — independent across points and runs, stable
    across processes.
    """
    if runs < 1:
        raise ConfigError(f"runs must be >= 1, got {runs}")
    if not grid:
        raise ConfigError("grid must not be empty")
    if math.isnan(sum(grid)):
        raise ConfigError("grid contains NaN")
    result = SweepResult(runs=runs)
    for point in grid:
        samples = [
            run(point, derive_seed(master_seed, f"{label}/{point}/{j}"))
            for j in range(runs)
        ]
        means, stds = aggregate_runs(samples)
        result.points.append(point)
        for key, value in means.items():
            result.means.setdefault(key, []).append(value)
        for key, value in stds.items():
            result.stds.setdefault(key, []).append(value)
    return result
