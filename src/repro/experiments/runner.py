"""Seeded sweeps with aggregation and parallel execution.

An experiment is a function ``run(point, seed) -> dict[str, float]``.
:func:`run_sweep` evaluates it at every grid point with ``runs`` derived
seeds each and aggregates the metric dict per point (mean and standard
deviation). Seeds are derived deterministically from one master seed, so
whole sweeps are reproducible and individually re-runnable.

Seeding contract
----------------
The seed for run ``j`` at grid point ``x`` is::

    derive_seed(master_seed, f"{label}/{x}/{j}")

:func:`~repro.sim.rng.derive_seed` is SHA-256 based, so the mapping is
stable across Python versions, platforms and *processes* — a worker in a
``multiprocessing`` pool re-derives exactly the seed the serial loop
would have used. This is what makes ``run_sweep(..., jobs=N)``
bit-identical to the serial path for every ``N``: each (point, run) cell
is a pure function of ``(master_seed, label, point, j)``, and
aggregation always happens in canonical (point, run) order regardless of
completion order or worker count.

Label-collision caveat: two sweeps sharing the same ``label`` (e.g. the
default ``"sweep"``) *and* a grid point reuse seeds cell-for-cell. Give
each experiment a distinct label when their grids can overlap and the
runs must be statistically independent.

Parallel execution
------------------
``jobs=N`` fans the (point, run) cells out over a ``multiprocessing``
pool via a chunked scheduler (:func:`run_cells`). The run function must
be picklable — a module-level function, or a :func:`functools.partial`
of one with picklable bound arguments; lambdas and nested closures are
rejected with a :class:`~repro.errors.ConfigError`. Workers receive only
``(run, master_seed)`` once at pool start and per-cell ``(point,
seed_name)`` tuples, so the design is spawn-safe: nothing relies on
forked parent state.
"""

from __future__ import annotations

import math
import multiprocessing
import pickle
import statistics
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.errors import ConfigError
from repro.sim.rng import derive_seed
from repro.validation import check_finite_grid

RunFn = Callable[[float, int], Mapping[str, float]]

#: Per-point progress callback: ``progress(point, completed_points,
#: total_points)``, invoked once per grid point as soon as all of its
#: runs have finished (completion order under ``jobs>1``, canonical
#: order under ``jobs=1``).
ProgressFn = Callable[[float, int, int], None]


@dataclass
class SweepResult:
    """Aggregated metrics for one sweep.

    ``means`` and ``stds`` are keyed by metric name in sorted order
    (deterministic regardless of ``PYTHONHASHSEED`` and of the key
    insertion order the run function happened to use).
    """

    points: list[float] = field(default_factory=list)
    means: dict[str, list[float]] = field(default_factory=dict)
    stds: dict[str, list[float]] = field(default_factory=dict)
    runs: int = 0

    def series(self, metric: str) -> list[tuple[float, float]]:
        """``[(x, mean_y), ...]`` for one metric."""
        return list(zip(self.points, self.means[metric]))

    def metric_names(self) -> list[str]:
        """All aggregated metric names, sorted."""
        return sorted(self.means)


@dataclass(frozen=True)
class SweepCell:
    """One schedulable unit of sweep work.

    ``arg`` is handed to the run function verbatim; the worker derives
    the cell's seed as ``derive_seed(master_seed, seed_name)`` — it never
    receives a seed over the wire, which keeps the contract auditable
    from the cell alone. ``describe`` labels the cell in error messages.
    """

    arg: Any
    seed_name: str
    describe: str = ""


class SweepWorkerError(RuntimeError):
    """A sweep cell's run function raised.

    Identifies the failing cell — point/arg, run index (via
    ``describe``), seed name and the derived seed — plus the worker-side
    traceback when the failure happened in a pool worker.
    """

    def __init__(
        self,
        cell: SweepCell,
        seed: int,
        cause: str,
        worker_traceback: str | None = None,
    ):
        self.cell = cell
        self.seed = seed
        self.cause = cause
        self.worker_traceback = worker_traceback
        where = cell.describe or f"arg={cell.arg!r}"
        message = (
            f"sweep cell failed ({where}, seed_name={cell.seed_name!r}, "
            f"seed={seed}): {cause}"
        )
        if worker_traceback:
            message += f"\n--- worker traceback ---\n{worker_traceback}"
        super().__init__(message)


def aggregate_runs(
    samples: Sequence[Mapping[str, float]]
) -> tuple[dict[str, float], dict[str, float]]:
    """Mean and standard deviation per metric over repeated runs.

    Metrics are emitted in sorted key order so the returned dicts (and
    everything serialized from them — sweep tables, figure columns) have
    an ordering independent of ``PYTHONHASHSEED`` and of the order the
    run function built its dict in.
    """
    if not samples:
        raise ConfigError("cannot aggregate zero runs")
    keys = set(samples[0])
    for sample in samples[1:]:
        if set(sample) != keys:
            raise ConfigError("runs returned inconsistent metric keys")
    means: dict[str, float] = {}
    stds: dict[str, float] = {}
    for key in sorted(keys):
        values = [float(sample[key]) for sample in samples]
        means[key] = statistics.fmean(values)
        stds[key] = statistics.stdev(values) if len(values) > 1 else 0.0
    return means, stds


# ----------------------------------------------------------------------
# Pool worker plumbing.
#
# Workers are initialized once with (run, master_seed); each task is a
# chunk of (index, cell) pairs. The worker re-derives every cell's seed
# from (master_seed, cell.seed_name) — the parent never ships seeds, so
# the serial and parallel paths cannot diverge on seeding. Exceptions
# are captured per cell and reported back as data: a worker never dies
# on a run-function error, and the parent re-raises deterministically
# for the lowest failing cell index.
# ----------------------------------------------------------------------

_WORKER_RUN: Callable[[Any, int], Any] | None = None
_WORKER_MASTER_SEED: int = 0


def _init_worker(run: Callable[[Any, int], Any], master_seed: int) -> None:
    global _WORKER_RUN, _WORKER_MASTER_SEED
    _WORKER_RUN = run
    _WORKER_MASTER_SEED = master_seed


def _run_chunk(
    chunk: list[tuple[int, SweepCell]]
) -> list[tuple[int, bool, Any]]:
    out: list[tuple[int, bool, Any]] = []
    for index, cell in chunk:
        # repro-lint: allow[DET004]: cell.seed_name is an f-string literal declared by each sweep driver and linted there
        seed = derive_seed(_WORKER_MASTER_SEED, cell.seed_name)
        try:
            result = _WORKER_RUN(cell.arg, seed)
            # Verify the result survives the trip back to the parent —
            # an unpicklable value would otherwise abort the whole pool
            # with an opaque MaybeEncodingError naming no cell.
            pickle.dumps(result)
            out.append((index, True, result))
        except Exception as exc:  # noqa: BLE001 — reported to the parent
            out.append(
                (index, False, (repr(exc), traceback.format_exc()))
            )
    return out


def _ensure_picklable(
    run: Callable[[Any, int], Any], cells: Sequence[SweepCell]
) -> None:
    try:
        pickle.dumps(run)
    except Exception as exc:
        raise ConfigError(
            "run function must be picklable for jobs > 1: use a "
            "module-level function or a functools.partial of one "
            f"(got {run!r}: {exc})"
        ) from exc
    try:
        pickle.dumps(list(cells))
    except Exception as exc:
        raise ConfigError(
            f"cell args must be picklable for jobs > 1: {exc}"
        ) from exc


def grouped_progress(
    progress: ProgressFn | None,
    groups: Sequence[Any],
    cells_per_group: int,
) -> Callable[[int, int, int], None] | None:
    """Adapt a per-group ``progress`` callback to a per-cell ``on_result``.

    For a cell list laid out group-major (``cells_per_group`` consecutive
    cells per entry of ``groups``), the returned callback fires
    ``progress(group, completed_groups, len(groups))`` once the last cell
    of a group completes. Returns None when ``progress`` is None.
    """
    if progress is None:
        return None
    remaining = [cells_per_group] * len(groups)
    groups_done = 0

    def on_result(index: int, done: int, total: int) -> None:
        nonlocal groups_done
        group_index = index // cells_per_group
        remaining[group_index] -= 1
        if remaining[group_index] == 0:
            groups_done += 1
            progress(groups[group_index], groups_done, len(groups))

    return on_result


def run_cells(
    run: Callable[[Any, int], Any],
    cells: Sequence[SweepCell],
    *,
    master_seed: int = 0,
    jobs: int = 1,
    chunk_size: int | None = None,
    start_method: str | None = None,
    on_result: Callable[[int, int, int], None] | None = None,
) -> list[Any]:
    """Evaluate ``run(cell.arg, seed)`` for every cell; results in order.

    The chunked scheduler behind :func:`run_sweep` — also usable
    directly by experiments whose repetition structure isn't a (grid x
    runs) sweep (paired comparisons, per-algorithm runs). Each cell's
    seed is ``derive_seed(master_seed, cell.seed_name)``, derived inside
    the worker.

    ``jobs=1`` runs in-process, in order. ``jobs>1`` fans cells out over
    a ``multiprocessing`` pool (``start_method`` picks fork/spawn/
    forkserver; None = platform default) in contiguous chunks of
    ``chunk_size`` cells (default: enough chunks for ~4 per worker). The
    returned list is always in cell order, so callers see identical
    results for every ``jobs``/``chunk_size``/``start_method`` choice.

    ``on_result(index, completed, total)`` is called after each
    *successful* cell (completion order); a failed cell is never
    announced as done. A run-function exception is re-raised as
    :class:`SweepWorkerError` for the lowest failing cell index, with
    the worker traceback attached; once every cell below the lowest
    observed failure has completed (so the canonical first failure is
    known), the pool is torn down without waiting for the rest of the
    sweep.
    """
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs}")
    if chunk_size is not None and chunk_size < 1:
        raise ConfigError(f"chunk_size must be >= 1, got {chunk_size}")
    cells = list(cells)
    total = len(cells)
    results: list[Any] = [None] * total
    if jobs == 1 or total <= 1:
        for index, cell in enumerate(cells):
            # repro-lint: allow[DET004]: cell.seed_name is an f-string literal declared by each sweep driver and linted there
            seed = derive_seed(master_seed, cell.seed_name)
            try:
                results[index] = run(cell.arg, seed)
            except Exception as exc:
                raise SweepWorkerError(cell, seed, repr(exc)) from exc
            if on_result is not None:
                on_result(index, index + 1, total)
        return results

    _ensure_picklable(run, cells)
    if chunk_size is None:
        chunk_size = max(1, math.ceil(total / (jobs * 4)))
    indexed = list(enumerate(cells))
    chunks = [
        indexed[start : start + chunk_size]
        for start in range(0, total, chunk_size)
    ]
    failures: list[tuple[int, tuple[str, str]]] = []
    finished = [False] * total
    done = 0
    ctx = multiprocessing.get_context(start_method)
    with ctx.Pool(
        processes=min(jobs, len(chunks)),
        initializer=_init_worker,
        initargs=(run, master_seed),
    ) as pool:
        for chunk_results in pool.imap_unordered(_run_chunk, chunks):
            for index, ok, payload in chunk_results:
                finished[index] = True
                if ok:
                    results[index] = payload
                    done += 1
                    if on_result is not None:
                        on_result(index, done, total)
                else:
                    failures.append((index, payload))
            # Fail fast, deterministically: once every cell below the
            # lowest observed failure has completed (necessarily
            # successfully, or the minimum would be lower), that failure
            # is the canonical first one — abandon the rest of the sweep
            # instead of draining it. Exiting the `with` terminates the
            # pool.
            if failures and all(finished[: min(failures)[0]]):
                break
    if failures:
        index, (cause, worker_tb) = min(failures)
        cell = cells[index]
        raise SweepWorkerError(
            cell,
            # repro-lint: allow[DET004]: cell.seed_name is an f-string literal declared by each sweep driver and linted there
            derive_seed(master_seed, cell.seed_name),
            cause,
            worker_tb,
        )
    return results


def run_sweep(
    run: RunFn,
    grid: Sequence[float],
    *,
    runs: int = 5,
    master_seed: int = 0,
    label: str = "sweep",
    jobs: int = 1,
    progress: ProgressFn | None = None,
    chunk_size: int | None = None,
    start_method: str | None = None,
) -> SweepResult:
    """Evaluate ``run`` at every grid point, ``runs`` times each.

    Seed for run ``j`` at point ``x`` is ``derive_seed(master_seed,
    f"{label}/{x}/{j}")`` — independent across points and runs, stable
    across processes (see the module docstring for the full contract and
    the label-collision caveat: sweeps sharing a ``label`` and a grid
    point reuse seeds).

    ``jobs=N`` evaluates the (point, run) cells on a pool of ``N``
    worker processes; the result is bit-identical to ``jobs=1`` for
    every ``N`` because workers re-derive seeds from the contract above
    and aggregation happens in canonical (point, run) order. The run
    function must then be picklable (module-level or a
    ``functools.partial`` of one). ``progress`` is invoked once per
    completed grid point as ``progress(point, completed_points,
    total_points)``.
    """
    if runs < 1:
        raise ConfigError(f"runs must be >= 1, got {runs}")
    if not grid:
        raise ConfigError("grid must not be empty")
    check_finite_grid(grid)
    cells = [
        SweepCell(
            arg=point,
            seed_name=f"{label}/{point}/{j}",
            describe=f"point={point!r}, run={j}",
        )
        for point in grid
        for j in range(runs)
    ]
    samples = run_cells(
        run,
        cells,
        master_seed=master_seed,
        jobs=jobs,
        chunk_size=chunk_size,
        start_method=start_method,
        on_result=grouped_progress(progress, list(grid), runs),
    )
    result = SweepResult(runs=runs)
    for point_index, point in enumerate(grid):
        means, stds = aggregate_runs(
            samples[point_index * runs : (point_index + 1) * runs]
        )
        result.points.append(point)
        # repro-lint: allow[DET003]: aggregate_runs returns dicts with sorted keys
        for key, value in means.items():
            result.means.setdefault(key, []).append(value)
        # repro-lint: allow[DET003]: aggregate_runs returns dicts with sorted keys
        for key, value in stds.items():
            result.stds.setdefault(key, []).append(value)
    return result
