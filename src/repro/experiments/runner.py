"""Seeded sweeps with aggregation over a pluggable execution port.

An experiment is a function ``run(point, seed) -> dict[str, float]``.
:func:`run_sweep` evaluates it at every grid point with ``runs`` derived
seeds each and aggregates the metric dict per point (mean and standard
deviation). Seeds are derived deterministically from one master seed, so
whole sweeps are reproducible and individually re-runnable.

Seeding contract
----------------
The seed for run ``j`` at grid point ``x`` is::

    derive_seed(master_seed, f"{label}/{x}/{j}")

:func:`~repro.sim.rng.derive_seed` is SHA-256 based, so the mapping is
stable across Python versions, platforms and *processes* — a worker in a
``multiprocessing`` pool re-derives exactly the seed the serial loop
would have used. This is what makes ``run_sweep(...,
executor="pool:N")`` bit-identical to the serial path for every ``N``:
each (point, run) cell is a pure function of ``(master_seed, label,
point, j)``, and aggregation always happens in canonical (point, run)
order regardless of completion order or worker count.

Label-collision caveat: two sweeps sharing the same ``label`` (e.g. the
default ``"sweep"``) *and* a grid point reuse seeds cell-for-cell. Give
each experiment a distinct label when their grids can overlap and the
runs must be statistically independent.

Execution backends
------------------
How cells are evaluated is the :class:`~repro.experiments.executor.
Executor` port's concern — ``executor=None`` (serial, the default),
``"pool:N"`` (fresh multiprocessing pool), ``"warm:N"`` (persistent
workers), or any object implementing the protocol (e.g. a
:class:`~repro.experiments.artifacts.CachingExecutor`). Parallel
backends require the run function to be picklable — a module-level
function, or a :func:`functools.partial` of one with picklable bound
arguments; lambdas and nested closures are rejected with a
:class:`~repro.errors.ConfigError`. The pre-executor ``jobs``/
``chunk_size``/``start_method`` keywords still work, with a
:class:`DeprecationWarning`.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.errors import ConfigError
from repro.experiments.executor import (
    ExecutorSpec,
    OnResultFn,
    SweepCell,
    SweepWorkerError,
    coerce_executor,
)
from repro.validation import check_finite_grid

__all__ = [
    "RunFn",
    "ProgressFn",
    "SweepResult",
    "SweepCell",
    "SweepWorkerError",
    "aggregate_runs",
    "grouped_progress",
    "run_cells",
    "run_sweep",
]

RunFn = Callable[[float, int], Mapping[str, float]]

#: Per-point progress callback: ``progress(point, completed_points,
#: total_points)``, invoked once per grid point as soon as all of its
#: runs have finished (completion order under parallel executors,
#: canonical order serially).
ProgressFn = Callable[[float, int, int], None]


@dataclass
class SweepResult:
    """Aggregated metrics for one sweep.

    ``means`` and ``stds`` are keyed by metric name in sorted order
    (deterministic regardless of ``PYTHONHASHSEED`` and of the key
    insertion order the run function happened to use).
    """

    points: list[float] = field(default_factory=list)
    means: dict[str, list[float]] = field(default_factory=dict)
    stds: dict[str, list[float]] = field(default_factory=dict)
    runs: int = 0

    def series(self, metric: str) -> list[tuple[float, float]]:
        """``[(x, mean_y), ...]`` for one metric."""
        return list(zip(self.points, self.means[metric]))

    def metric_names(self) -> list[str]:
        """All aggregated metric names, sorted."""
        return sorted(self.means)


def aggregate_runs(
    samples: Sequence[Mapping[str, float]]
) -> tuple[dict[str, float], dict[str, float]]:
    """Mean and standard deviation per metric over repeated runs.

    Metrics are emitted in sorted key order so the returned dicts (and
    everything serialized from them — sweep tables, figure columns) have
    an ordering independent of ``PYTHONHASHSEED`` and of the order the
    run function built its dict in.
    """
    if not samples:
        raise ConfigError("cannot aggregate zero runs")
    keys = set(samples[0])
    for sample in samples[1:]:
        if set(sample) != keys:
            raise ConfigError("runs returned inconsistent metric keys")
    means: dict[str, float] = {}
    stds: dict[str, float] = {}
    for key in sorted(keys):
        values = [float(sample[key]) for sample in samples]
        means[key] = statistics.fmean(values)
        stds[key] = statistics.stdev(values) if len(values) > 1 else 0.0
    return means, stds


def grouped_progress(
    progress: ProgressFn | None,
    groups: Sequence[Any],
    cells_per_group: int,
) -> OnResultFn | None:
    """Adapt a per-group ``progress`` callback to a per-cell ``on_result``.

    For a cell list laid out group-major (``cells_per_group`` consecutive
    cells per entry of ``groups``), the returned callback fires
    ``progress(group, completed_groups, len(groups))`` once the last cell
    of a group completes. Returns None when ``progress`` is None.
    """
    if progress is None:
        return None
    remaining = [cells_per_group] * len(groups)
    groups_done = 0

    def on_result(index: int, done: int, total: int) -> None:
        nonlocal groups_done
        group_index = index // cells_per_group
        remaining[group_index] -= 1
        if remaining[group_index] == 0:
            groups_done += 1
            progress(groups[group_index], groups_done, len(groups))

    return on_result


def run_cells(
    run: Callable[[Any, int], Any],
    cells: Sequence[SweepCell],
    *,
    master_seed: int = 0,
    executor: ExecutorSpec = None,
    on_result: OnResultFn | None = None,
    jobs: int | None = None,
    chunk_size: int | None = None,
    start_method: str | None = None,
) -> list[Any]:
    """Evaluate ``run(cell.arg, seed)`` for every cell; results in order.

    The cell-level entry point behind :func:`run_sweep` — also usable
    directly by experiments whose repetition structure isn't a (grid x
    runs) sweep (paired comparisons, per-algorithm runs). Each cell's
    seed is ``derive_seed(master_seed, cell.seed_name)``, derived inside
    the worker, so results are bit-identical across backends.

    ``executor`` selects the backend (None = serial; ``"pool:N"``,
    ``"warm:N"``, or an :class:`~repro.experiments.executor.Executor`
    instance). ``on_result(index, completed, total)`` is called after
    each *successful* cell (completion order); a failed cell is never
    announced as done. A run-function exception is re-raised as
    :class:`SweepWorkerError` for the canonically first failing cell,
    with the worker traceback attached when it failed in a pool worker.

    ``jobs``/``chunk_size``/``start_method`` are the deprecated PR-3
    keywords; they still work (DeprecationWarning) but cannot be
    combined with ``executor``.
    """
    resolved = coerce_executor(
        executor,
        jobs=jobs,
        chunk_size=chunk_size,
        start_method=start_method,
    )
    return resolved.map_cells(
        run, cells, master_seed=master_seed, on_result=on_result
    )


def run_sweep(
    run: RunFn,
    grid: Sequence[float],
    *,
    runs: int = 5,
    master_seed: int = 0,
    label: str = "sweep",
    executor: ExecutorSpec = None,
    progress: ProgressFn | None = None,
    jobs: int | None = None,
    chunk_size: int | None = None,
    start_method: str | None = None,
) -> SweepResult:
    """Evaluate ``run`` at every grid point, ``runs`` times each.

    Seed for run ``j`` at point ``x`` is ``derive_seed(master_seed,
    f"{label}/{x}/{j}")`` — independent across points and runs, stable
    across processes (see the module docstring for the full contract and
    the label-collision caveat: sweeps sharing a ``label`` and a grid
    point reuse seeds).

    ``executor="pool:N"`` (or ``"warm:N"``, or an Executor instance)
    evaluates the (point, run) cells on ``N`` worker processes; the
    result is bit-identical to serial for every backend and worker count
    because workers re-derive seeds from the contract above and
    aggregation happens in canonical (point, run) order. Parallel
    backends need a picklable run function (module-level or a
    ``functools.partial`` of one). ``progress`` is invoked once per
    completed grid point as ``progress(point, completed_points,
    total_points)``.

    ``jobs``/``chunk_size``/``start_method`` are the deprecated PR-3
    keywords; they still work (DeprecationWarning) but cannot be
    combined with ``executor``.
    """
    if runs < 1:
        raise ConfigError(f"runs must be >= 1, got {runs}")
    if not grid:
        raise ConfigError("grid must not be empty")
    check_finite_grid(grid)
    resolved = coerce_executor(
        executor,
        jobs=jobs,
        chunk_size=chunk_size,
        start_method=start_method,
    )
    cells = [
        SweepCell(
            arg=point,
            seed_name=f"{label}/{point}/{j}",
            describe=f"point={point!r}, run={j}",
        )
        for point in grid
        for j in range(runs)
    ]
    samples = resolved.map_cells(
        run,
        cells,
        master_seed=master_seed,
        on_result=grouped_progress(progress, list(grid), runs),
    )
    result = SweepResult(runs=runs)
    for point_index, point in enumerate(grid):
        means, stds = aggregate_runs(
            samples[point_index * runs : (point_index + 1) * runs]
        )
        result.points.append(point)
        # repro-lint: allow[DET003]: aggregate_runs returns dicts with sorted keys
        for key, value in means.items():
            result.means.setdefault(key, []).append(value)
        # repro-lint: allow[DET003]: aggregate_runs returns dicts with sorted keys
        for key, value in stds.items():
            result.stds.setdefault(key, []).append(value)
    return result
