"""Experiment harness: regenerate every figure and table of the paper.

* :mod:`~repro.experiments.executor` — the execution port: serial /
  pool / warm-pool backends behind one ``Executor`` protocol,
* :mod:`~repro.experiments.artifacts` — content-addressed per-cell
  result store (``--cache``): skip finished cells, resume interrupted
  sweeps, re-render without recomputation,
* :mod:`~repro.experiments.runner` — seeded parameter sweeps with
  mean/std aggregation over repeated runs,
* :mod:`~repro.experiments.figures` — Figs. 8, 9, 10, 11 (§VII),
* :mod:`~repro.experiments.comparisons` — the §VI-E tables, measured by
  simulation next to their closed forms,
* :mod:`~repro.experiments.ablations` — sweeps over the tuning knobs
  (z, a, g, c) the paper highlights as the reliability/message trade-off.

Every entry point returns a :class:`repro.metrics.report.Table` whose rows
are the series the paper plots; the benchmarks print them and assert the
qualitative shape (who wins, orderings, crossovers).
"""

from repro.experiments.executor import (
    Executor,
    ExecutorSpec,
    PoolExecutor,
    SerialExecutor,
    WarmPoolExecutor,
    coerce_executor,
    parse_executor_spec,
    resolve_executor,
)
from repro.experiments.artifacts import (
    ArtifactStore,
    CachingExecutor,
    write_json_atomic,
)
from repro.experiments.runner import (
    SweepCell,
    SweepResult,
    SweepWorkerError,
    aggregate_runs,
    run_cells,
    run_sweep,
)
from repro.experiments.figures import (
    DEFAULT_GRID,
    run_figure8,
    run_figure9,
    run_figure10,
    run_figure11,
)
from repro.experiments.comparisons import (
    measured_comparison,
    run_all_algorithms_once,
)
from repro.experiments.ablations import (
    sweep_fanout_constant,
    sweep_link_redundancy,
)

__all__ = [
    "Executor",
    "ExecutorSpec",
    "SerialExecutor",
    "PoolExecutor",
    "WarmPoolExecutor",
    "parse_executor_spec",
    "resolve_executor",
    "coerce_executor",
    "ArtifactStore",
    "CachingExecutor",
    "write_json_atomic",
    "run_sweep",
    "run_cells",
    "aggregate_runs",
    "SweepResult",
    "SweepCell",
    "SweepWorkerError",
    "DEFAULT_GRID",
    "run_figure8",
    "run_figure9",
    "run_figure10",
    "run_figure11",
    "measured_comparison",
    "run_all_algorithms_once",
    "sweep_fanout_constant",
    "sweep_link_redundancy",
]
